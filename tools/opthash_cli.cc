// opthash_cli — train / apply / query / evaluate opt-hash estimators on
// CSV stream traces, and snapshot / restore durable sketch checkpoints.
// This is the operational workflow of §3: learn the scheme offline from an
// observed prefix, ship the model to the stream processor, keep counting,
// checkpoint, answer queries.
//
// The authoritative synopsis, flag list and defaults live in kUsageText
// below — the one string `--help` prints. (An earlier revision duplicated
// the synopsis here and the copies drifted; keep this comment prose-only.)
//
// Traces are CSV files with header `id,text`; the text column feeds the
// bag-of-words featurizer (may be empty for key-only workloads).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/evaluation.h"
#include "core/opt_hash_estimator.h"
#include "io/model_io.h"
#include "io/sketch_snapshot.h"
#include "io/windowed_snapshot.h"
#include "sketch/windowed_sketch.h"
#include "server/protocol.h"
#include "server/served_model.h"
#include "stream/element.h"
#include "stream/features.h"
#include "stream/sharded_ingest.h"
#include "stream/trace_io.h"
#include "tool_flags.h"

namespace opthash::cli {
namespace {

// Single source of truth for the CLI contract: Usage() prints it, and the
// file header comment above defers to it instead of restating defaults.
constexpr const char* kUsageText =
    "usage: opthash_cli <train|apply|query|evaluate|snapshot|restore|topk> "
    "--flag value ...\n"
    "  train    --trace prefix.csv --out model [--buckets N] [--ratio C]\n"
    "           [--lambda L] [--solver bcd|dp|milp]\n"
    "           [--classifier rf|cart|logreg|none] [--vocab V] [--seed S]\n"
    "           [--format text|binary]\n"
    "  apply    --model model --trace stream.csv --out model\n"
    "           [--threads N] [--block-size B] [--format text|binary]\n"
    "  query    --model model --trace queries.csv [--block-size B]\n"
    "  evaluate --model model --trace stream.csv\n"
    "  snapshot --trace stream.csv --out ckpt.bin [--in prev.bin]\n"
    "           [--sketch cms|countsketch|ams|lcms|mg|ss] [--width W]\n"
    "           [--depth D] [--capacity K] [--heavy H] [--buckets N]\n"
    "           [--seed S] [--conservative 1]\n"
    "           [--windows W --window N [--decay L]]\n"
    "  restore  --in file [--trace queries.csv] [--mmap 1]\n"
    "           [--block-size B]\n"
    "  topk     --in file [--k N] [--mmap 1]\n"
    "\n"
    "traces are CSV files with header `id,text`: a numeric (uint64)\n"
    "element key plus optional free text feeding the bag-of-words\n"
    "featurizer; the text column may be empty for key-only workloads.\n"
    "\n"
    "model files exist in two formats (docs/FORMATS.md): the legacy text\n"
    "bundle and the versioned, CRC-checked binary snapshot container.\n"
    "Readers auto-detect the format; --format picks what gets written.\n"
    "\n"
    "train flags:\n"
    "  --buckets N     overall memory budget b_total in 4-byte buckets,\n"
    "                  split between aggregation buckets and stored ids\n"
    "                  (default 1000)\n"
    "  --ratio C       the split ratio c = b/n of paper sec. 7.3; the\n"
    "                  paper examines 0.03 and 0.3 (default 0.3)\n"
    "  --lambda L      objective trade-off in [0,1]: 1 = estimation\n"
    "                  error only, 0 = feature similarity only\n"
    "                  (default 1.0)\n"
    "  --solver S      bcd (Algorithm 1), dp (exact for lambda = 1), or\n"
    "                  milp (exact branch-and-bound, tiny instances\n"
    "                  only) (default bcd)\n"
    "  --classifier K  model routing unseen elements: rf, cart, logreg,\n"
    "                  or none (default rf)\n"
    "  --vocab V       bag-of-words vocabulary size (default 500)\n"
    "  --seed S        RNG seed (default 1)\n"
    "  --format F      output encoding: text (legacy bundle) or binary\n"
    "                  (snapshot container; smaller, CRC-checked,\n"
    "                  mmap-loadable) (default text)\n"
    "\n"
    "query flags:\n"
    "  --block-size B  queries per batched estimator call: blocks flow\n"
    "                  through the allocation-free batch query path, and\n"
    "                  ids the learned table resolves skip featurization\n"
    "                  entirely (default 4096)\n"
    "\n"
    "apply flags:\n"
    "  --threads N     worker threads for sharded trace ingestion; 0 uses\n"
    "                  the hardware concurrency. Estimates after the\n"
    "                  merge are identical at every thread count\n"
    "                  (default 1)\n"
    "  --block-size B  trace items per worker dispatch block\n"
    "                  (default 65536)\n"
    "  --format F      output encoding; default: keep the input model's\n"
    "                  format\n"
    "\n"
    "snapshot flags (mid-stream sketch checkpoints):\n"
    "  --in prev.bin   resume from an existing checkpoint (its sketch\n"
    "                  kind and geometry win; the flags below are for\n"
    "                  fresh checkpoints only)\n"
    "  --sketch T      cms (count-min, default), countsketch, ams,\n"
    "                  lcms (learned count-min with a top-H oracle from\n"
    "                  this trace), mg (misra-gries), ss (space-saving)\n"
    "  --width W       counters per level, cms/countsketch (default 1024)\n"
    "  --depth D       levels, cms/countsketch/lcms; ams groups\n"
    "                  (default 4)\n"
    "  --capacity K    tracked entries, mg/ss; ams estimators per group\n"
    "                  (default 256)\n"
    "  --heavy H       lcms heavy keys, taken as this trace's top-H\n"
    "                  (default 16)\n"
    "  --buckets N     lcms total bucket budget (default 1024)\n"
    "  --seed S        hash seed (default 1)\n"
    "  --conservative 1  cms only: Estan-Varghese conservative update\n"
    "                  (default 0)\n"
    "  --windows W     wrap the sketch in a ring of W per-window\n"
    "                  sub-sketches counting a sliding window of the\n"
    "                  last W*N arrivals (default 0 = lifetime counting;\n"
    "                  every kind except ams)\n"
    "  --window N      advance the ring every N arrivals (required with\n"
    "                  --windows). A windowed checkpoint stores the ring\n"
    "                  position, so `--in prev.bin` resumes mid-window\n"
    "                  exactly\n"
    "  --decay L       per-window geometric weight L in (0,1]; < 1 turns\n"
    "                  restore/serve estimates into exponentially\n"
    "                  decayed counts (default 1 = plain sliding window)\n"
    "\n"
    "restore flags:\n"
    "  --in file       a model bundle (either format) or a sketch\n"
    "                  checkpoint; the content is auto-detected\n"
    "  --trace Q       query CSV: prints id,estimate for each distinct\n"
    "                  id (ams checkpoints answer only the stream-wide\n"
    "                  F2 moment, so the trace is ignored with a note).\n"
    "                  Without it, prints a summary of the file\n"
    "  --mmap 1        zero-copy load: serve queries straight from the\n"
    "                  mapped file. Binary files only; bundles answer\n"
    "                  stored-id queries (no classifier fallback), cms\n"
    "                  checkpoints answer all point queries. Sketch kinds\n"
    "                  without a mapped view (countsketch/ams/lcms/mg/ss)\n"
    "                  fall back to a full load with a stderr notice; the\n"
    "                  mode actually used is always reported as a\n"
    "                  `load mode:` stderr line\n"
    "  --block-size B  query ids per batched estimator call\n"
    "                  (default 4096)\n"
    "\n"
    "topk flags (offline heavy hitters, id,estimate,error_bound,guaranteed\n"
    "CSV — byte-identical to `opthash_client topk` on the same model):\n"
    "  --in file       any servable artifact. mg/ss report their tracked\n"
    "                  entries with sound bounds, lcms its exact oracle\n"
    "                  counts, model bundles their stored-id table; plain\n"
    "                  cms/countsketch checkpoints store no candidate ids\n"
    "                  and error out (same contract as the daemon)\n"
    "  --k N           heavy hitters to print (default 10)\n"
    "  --mmap 1        zero-copy load where supported; answers stay\n"
    "                  byte-identical to the full load\n"
    "\n"
    "serving (separate binaries, same artifacts):\n"
    "  opthash_serve   long-running daemon: loads any artifact this CLI\n"
    "                  writes, ingests live arrivals, answers batched\n"
    "                  queries over a Unix socket, rotates durable\n"
    "                  snapshots (see opthash_serve --help)\n"
    "  opthash_client  scripting client for the daemon (ping/query/\n"
    "                  ingest/stats/snapshot/shutdown)\n"
    "operations manual + wire protocol: docs/OPERATIONS.md\n";

Result<core::SolverKind> ParseSolver(const std::string& name) {
  if (name == "bcd") return core::SolverKind::kBcd;
  if (name == "dp") return core::SolverKind::kDp;
  if (name == "milp") return core::SolverKind::kExact;
  return Status::InvalidArgument("unknown solver: " + name);
}

Result<core::ClassifierKind> ParseClassifier(const std::string& name) {
  if (name == "rf") return core::ClassifierKind::kRandomForest;
  if (name == "cart") return core::ClassifierKind::kCart;
  if (name == "logreg") return core::ClassifierKind::kLogisticRegression;
  if (name == "none") return core::ClassifierKind::kNone;
  return Status::InvalidArgument("unknown classifier: " + name);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdTrain(const Flags& flags) {
  if (!flags.Has("trace") || !flags.Has("out")) {
    return Fail(Status::InvalidArgument("train needs --trace and --out"));
  }
  // Validate every flag before touching the (possibly large) trace.
  const auto vocab = flags.GetUint("vocab", 500);
  if (!vocab.ok()) return Fail(vocab.status());
  const auto buckets = flags.GetUint("buckets", 1000);
  if (!buckets.ok()) return Fail(buckets.status());
  const auto ratio = flags.GetDouble("ratio", 0.3);
  if (!ratio.ok()) return Fail(ratio.status());
  const auto lambda = flags.GetDouble("lambda", 1.0);
  if (!lambda.ok()) return Fail(lambda.status());
  const auto seed = flags.GetUint("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  const auto solver = ParseSolver(flags.Get("solver", "bcd"));
  if (!solver.ok()) return Fail(solver.status());
  const auto classifier = ParseClassifier(flags.Get("classifier", "rf"));
  if (!classifier.ok()) return Fail(classifier.status());
  const auto format = io::ParseSnapshotFormat(flags.Get("format", "text"));
  if (!format.ok()) return Fail(format.status());

  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());

  // Prefix frequencies + a representative text per id.
  std::unordered_map<uint64_t, double> counts;
  std::unordered_map<uint64_t, std::string> texts;
  for (const auto& record : trace.value()) {
    counts[record.id] += 1.0;
    texts.emplace(record.id, record.text);
  }
  std::printf("prefix: %zu arrivals, %zu distinct elements\n",
              trace.value().size(), counts.size());

  io::ModelBundle bundle;
  bundle.featurizer =
      stream::BagOfWordsFeaturizer(static_cast<size_t>(vocab.value()));
  std::vector<std::pair<std::string, double>> corpus;
  corpus.reserve(counts.size());
  for (const auto& [id, count] : counts) corpus.push_back({texts[id], count});
  bundle.featurizer.Fit(corpus);

  std::vector<core::PrefixElement> prefix;
  prefix.reserve(counts.size());
  for (const auto& [id, count] : counts) {
    prefix.push_back({.id = id,
                      .frequency = count,
                      .features = bundle.featurizer.Featurize(texts[id])});
  }

  core::OptHashConfig config;
  config.total_buckets = buckets.value();
  config.id_ratio = ratio.value();
  config.lambda = lambda.value();
  config.seed = seed.value();
  config.solver = solver.value();
  config.classifier = classifier.value();
  config.rf.num_trees = 10;

  auto trained = core::OptHashEstimator::Train(config, prefix);
  if (!trained.ok()) return Fail(trained.status());
  bundle.estimator = std::move(trained).value();
  std::printf(
      "trained: %zu buckets + %zu stored ids (%.2f KB), solver objective "
      "%.3f\n",
      bundle.estimator->num_buckets(), bundle.estimator->num_stored_ids(),
      bundle.estimator->MemoryKb(),
      bundle.estimator->training_info().solve_result.objective.overall);

  const Status saved =
      io::SaveModelBundle(flags.Get("out", ""), bundle, format.value());
  if (!saved.ok()) return Fail(saved);
  std::printf("%s model written to %s\n",
              io::SnapshotFormatName(format.value()),
              flags.Get("out", "").c_str());
  return 0;
}

int CmdApply(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("trace") || !flags.Has("out")) {
    return Fail(
        Status::InvalidArgument("apply needs --model, --trace and --out"));
  }
  const auto threads = flags.GetUint("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  const auto block_size = flags.GetUint("block-size", 1 << 16);
  if (!block_size.ok()) return Fail(block_size.status());
  stream::ShardedIngestConfig config;
  config.num_threads = static_cast<size_t>(threads.value());
  config.block_size = static_cast<size_t>(block_size.value());
  const Status config_ok = config.Validate();
  if (!config_ok.ok()) return Fail(config_ok);

  // Default output format: whatever the input model already uses.
  auto format = io::DetectFileFormat(flags.Get("model", ""));
  if (!format.ok()) return Fail(format.status());
  if (flags.Has("format")) {
    format = io::ParseSnapshotFormat(flags.Get("format", ""));
    if (!format.ok()) return Fail(format.status());
  }

  auto bundle = io::LoadModelBundle(flags.Get("model", ""));
  if (!bundle.ok()) return Fail(bundle.status());
  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());

  std::vector<uint64_t> ids;
  ids.reserve(trace.value().size());
  for (const auto& record : trace.value()) ids.push_back(record.id);

  // Stream processing only adds to bucket counters through the read-only
  // learned table, so each worker accumulates into a private delta array
  // and the deltas fold back in at the end — exactly equivalent to a
  // sequential Update loop at any thread count.
  core::OptHashEstimator& estimator = *bundle.value().estimator;
  auto stats = stream::ShardedIngestCustom(
      ids, config,
      [&estimator](size_t) {
        return std::vector<double>(estimator.num_buckets(), 0.0);
      },
      [&estimator](std::vector<double>& deltas, size_t /*worker*/,
                   Span<const uint64_t> block) {
        estimator.AccumulateUpdates(block, deltas);
      },
      [&estimator](std::vector<double>& deltas) {
        return estimator.ApplyBucketDeltas(deltas);
      });
  if (!stats.ok()) return Fail(stats.status());
  std::printf("applied %zu arrivals (%zu threads, %.3fs, %.0f items/sec)\n",
              stats.value().num_items, stats.value().threads_used,
              stats.value().seconds, stats.value().ItemsPerSecond());
  const Status saved = io::SaveModelBundle(flags.Get("out", ""),
                                           bundle.value(), format.value());
  if (!saved.ok()) return Fail(saved);
  return 0;
}

int CmdQuery(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("trace")) {
    return Fail(Status::InvalidArgument("query needs --model and --trace"));
  }
  const auto block_size = flags.GetUint("block-size", 4096);
  if (!block_size.ok()) return Fail(block_size.status());
  if (block_size.value() == 0) {
    return Fail(Status::InvalidArgument("--block-size must be >= 1"));
  }
  auto bundle = io::LoadModelBundle(flags.Get("model", ""));
  if (!bundle.ok()) return Fail(bundle.status());
  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());
  std::printf("id,estimate\n");
  // Distinct queries stream through the batched, allocation-free read
  // path in blocks; output is identical to the scalar featurize+Estimate
  // loop this replaced (the engine skips featurization only where the
  // features could never be read).
  io::BundleQueryEngine engine(bundle.value());
  std::unordered_set<uint64_t> seen;
  std::vector<stream::TraceRecord> block;
  std::vector<double> estimates;
  // Clamp before reserving: --block-size is user input and an absurd
  // value must not abort via std::length_error.
  block.reserve(std::min<size_t>(block_size.value(), trace.value().size()));
  const auto flush = [&] {
    estimates.resize(block.size());
    engine.EstimateBlock(
        Span<const stream::TraceRecord>(block.data(), block.size()),
        Span<double>(estimates.data(), estimates.size()));
    for (size_t i = 0; i < block.size(); ++i) {
      std::printf("%llu,%.2f\n",
                  static_cast<unsigned long long>(block[i].id), estimates[i]);
    }
    block.clear();
  };
  for (const auto& record : trace.value()) {
    if (!seen.insert(record.id).second) continue;
    block.push_back(record);
    if (block.size() >= block_size.value()) flush();
  }
  flush();
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("trace")) {
    return Fail(Status::InvalidArgument("evaluate needs --model and --trace"));
  }
  auto bundle = io::LoadModelBundle(flags.Get("model", ""));
  if (!bundle.ok()) return Fail(bundle.status());
  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());

  stream::ExactCounter truth;
  std::unordered_map<uint64_t, std::string> texts;
  for (const auto& record : trace.value()) {
    truth.Add(record.id);
    texts.emplace(record.id, record.text);
  }
  std::vector<std::vector<double>> feature_store;
  feature_store.reserve(truth.NumDistinct());
  std::vector<core::EvalQuery> queries;
  for (const auto& [id, count] : truth.counts()) {
    feature_store.push_back(bundle.value().featurizer.Featurize(texts[id]));
    queries.push_back(
        {{id, &feature_store.back()}, static_cast<double>(count)});
  }
  const core::ErrorMetrics metrics =
      core::EvaluateEstimator(*bundle.value().estimator, queries);
  std::printf("queries: %zu distinct elements (%llu arrivals)\n",
              metrics.num_queries,
              static_cast<unsigned long long>(truth.total()));
  std::printf("average absolute error:   %.4f\n",
              metrics.average_absolute_error);
  std::printf("expected magnitude error: %.4f\n",
              metrics.expected_magnitude_error);
  return 0;
}

// ---------------------------------------------------------------------------
// snapshot / restore: durable mid-stream sketch checkpoints.

Result<std::vector<uint64_t>> TraceIds(const std::string& path) {
  auto trace = stream::ReadTraceCsv(path);
  if (!trace.ok()) return trace.status();
  std::vector<uint64_t> ids;
  ids.reserve(trace.value().size());
  for (const auto& record : trace.value()) ids.push_back(record.id);
  return ids;
}

template <typename Sketch>
int IngestAndSave(Sketch sketch, Span<const uint64_t> ids,
                  const std::string& out, const char* kind) {
  sketch.UpdateBatch(ids);
  const Status saved = io::SaveSketchSnapshot(out, sketch);
  if (!saved.ok()) return Fail(saved);
  std::printf("%s checkpoint: ingested %zu arrivals, written to %s\n", kind,
              ids.size(), out.c_str());
  return 0;
}

template <typename Sketch>
int ResumeIngestAndSave(const std::string& in, Span<const uint64_t> ids,
                        const std::string& out, const char* kind) {
  auto sketch = io::LoadSketchSnapshot<Sketch>(in);
  if (!sketch.ok()) return Fail(sketch.status());
  return IngestAndSave(std::move(sketch).value(), ids, out, kind);
}

// Windowed counting rides the same snapshot verb: the ring (position,
// per-window counts, sub-sketches) IS the checkpoint, so a later
// `--in prev.bin` run resumes mid-window exactly where this one stopped.
struct WindowSpec {
  size_t windows = 0;  // 0 = plain lifetime counting.
  uint64_t window_items = 0;
  double decay = 1.0;
};

template <typename Sketch>
int IngestAndSaveWindowed(sketch::WindowedSketch<Sketch> ring,
                          Span<const uint64_t> ids, const std::string& out,
                          const char* kind) {
  ring.UpdateBatch(ids);
  const Status saved = io::SaveWindowedSketchSnapshot(out, ring);
  if (!saved.ok()) return Fail(saved);
  std::printf(
      "windowed %s checkpoint: ingested %zu arrivals (%zu windows x %llu "
      "items, sequence %llu), written to %s\n",
      kind, ids.size(), ring.num_windows(),
      static_cast<unsigned long long>(ring.window_items()),
      static_cast<unsigned long long>(ring.window_sequence()), out.c_str());
  return 0;
}

template <typename Sketch>
int IngestAndSaveMaybeWindowed(Sketch sketch, const WindowSpec& window,
                               Span<const uint64_t> ids,
                               const std::string& out, const char* kind) {
  if (window.windows == 0) {
    return IngestAndSave(std::move(sketch), ids, out, kind);
  }
  auto ring = sketch::WindowedSketch<Sketch>::Create(
      sketch, window.windows, window.window_items, window.decay);
  if (!ring.ok()) return Fail(ring.status());
  return IngestAndSaveWindowed(std::move(ring).value(), ids, out, kind);
}

template <typename Sketch>
int ResumeWindowedIngestAndSave(const std::string& in,
                                Span<const uint64_t> ids,
                                const std::string& out, const char* kind) {
  auto ring = io::LoadWindowedSketchSnapshot<Sketch>(in);
  if (!ring.ok()) return Fail(ring.status());
  return IngestAndSaveWindowed(std::move(ring).value(), ids, out, kind);
}

// The checkpoint's windowed section decides the sub-sketch kind on
// resume, mirroring the plain single-section dispatch below.
int ResumeWindowed(const std::string& in, Span<const uint64_t> ids,
                   const std::string& out) {
  auto inner = io::WindowedInnerTypeOfFile(in);
  if (!inner.ok()) return Fail(inner.status());
  switch (inner.value()) {
    case io::SectionType::kCountMinSketch:
      return ResumeWindowedIngestAndSave<sketch::CountMinSketch>(
          in, ids, out, "count-min");
    case io::SectionType::kCountSketch:
      return ResumeWindowedIngestAndSave<sketch::CountSketch>(
          in, ids, out, "count-sketch");
    case io::SectionType::kLearnedCountMin:
      return ResumeWindowedIngestAndSave<sketch::LearnedCountMinSketch>(
          in, ids, out, "learned-count-min");
    case io::SectionType::kMisraGries:
      return ResumeWindowedIngestAndSave<sketch::MisraGries>(in, ids, out,
                                                             "misra-gries");
    case io::SectionType::kSpaceSaving:
      return ResumeWindowedIngestAndSave<sketch::SpaceSaving>(
          in, ids, out, "space-saving");
    default:
      return Fail(Status::InvalidArgument(
          in + " wraps a sub-sketch kind without per-key estimates"));
  }
}

int CmdSnapshot(const Flags& flags) {
  if (!flags.Has("trace") || !flags.Has("out")) {
    return Fail(Status::InvalidArgument("snapshot needs --trace and --out"));
  }
  const auto width = flags.GetUint("width", 1024);
  if (!width.ok()) return Fail(width.status());
  const auto depth = flags.GetUint("depth", 4);
  if (!depth.ok()) return Fail(depth.status());
  const auto capacity = flags.GetUint("capacity", 256);
  if (!capacity.ok()) return Fail(capacity.status());
  const auto heavy = flags.GetUint("heavy", 16);
  if (!heavy.ok()) return Fail(heavy.status());
  const auto buckets = flags.GetUint("buckets", 1024);
  if (!buckets.ok()) return Fail(buckets.status());
  const auto seed = flags.GetUint("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  const auto conservative = flags.GetUint("conservative", 0);
  if (!conservative.ok()) return Fail(conservative.status());
  // Zero geometry would trip the sketch constructors' internal-invariant
  // aborts; reject it as flag validation like every other bad input.
  if (width.value() == 0 || depth.value() == 0 || capacity.value() == 0 ||
      buckets.value() == 0) {
    return Fail(Status::InvalidArgument(
        "--width, --depth, --capacity and --buckets must be >= 1"));
  }
  const auto windows_flag = flags.GetUint("windows", 0);
  if (!windows_flag.ok()) return Fail(windows_flag.status());
  const auto window_flag = flags.GetUint("window", 0);
  if (!window_flag.ok()) return Fail(window_flag.status());
  const auto decay_flag = flags.GetDouble("decay", 1.0);
  if (!decay_flag.ok()) return Fail(decay_flag.status());
  WindowSpec window;
  window.windows = static_cast<size_t>(windows_flag.value());
  window.window_items = window_flag.value();
  window.decay = decay_flag.value();
  if (window.windows == 0) {
    if (window.window_items != 0 || window.decay != 1.0) {
      return Fail(Status::InvalidArgument(
          "--window and --decay configure windowed counting; add "
          "--windows W (>= 1)"));
    }
  } else {
    if (window.window_items == 0) {
      return Fail(Status::InvalidArgument(
          "windowed checkpoints advance by item count: --window N must "
          "be >= 1"));
    }
    const Status config_ok =
        sketch::ValidateWindowedConfig(window.windows, window.decay);
    if (!config_ok.ok()) return Fail(config_ok);
  }

  auto ids = TraceIds(flags.Get("trace", ""));
  if (!ids.ok()) return Fail(ids.status());
  const std::string out = flags.Get("out", "");

  // Resume path: the checkpoint's own section decides the sketch kind;
  // geometry flags apply only to fresh checkpoints.
  if (flags.Has("in")) {
    const std::string in = flags.Get("in", "");
    auto sections = io::ListSnapshotSections(in);
    if (!sections.ok()) return Fail(sections.status());
    if (sections.value().size() != 1) {
      return Fail(Status::InvalidArgument(
          in + " is not a single-sketch checkpoint"));
    }
    if (sections.value().front() == io::SectionType::kWindowedSketch) {
      return ResumeWindowed(in, ids.value(), out);
    }
    switch (sections.value().front()) {
      case io::SectionType::kCountMinSketch:
        return ResumeIngestAndSave<sketch::CountMinSketch>(
            in, ids.value(), out, "count-min");
      case io::SectionType::kCountSketch:
        return ResumeIngestAndSave<sketch::CountSketch>(in, ids.value(), out,
                                                        "count-sketch");
      case io::SectionType::kAmsSketch:
        return ResumeIngestAndSave<sketch::AmsSketch>(in, ids.value(), out,
                                                      "ams");
      case io::SectionType::kLearnedCountMin:
        return ResumeIngestAndSave<sketch::LearnedCountMinSketch>(
            in, ids.value(), out, "learned-count-min");
      case io::SectionType::kMisraGries:
        return ResumeIngestAndSave<sketch::MisraGries>(in, ids.value(), out,
                                                       "misra-gries");
      case io::SectionType::kSpaceSaving:
        return ResumeIngestAndSave<sketch::SpaceSaving>(in, ids.value(), out,
                                                        "space-saving");
      default:
        return Fail(Status::InvalidArgument(
            in + " holds no sketch section (is it a model bundle?)"));
    }
  }

  const std::string kind = flags.Get("sketch", "cms");
  if (kind == "cms") {
    return IngestAndSaveMaybeWindowed(
        sketch::CountMinSketch(width.value(), depth.value(), seed.value(),
                               conservative.value() != 0),
        window, ids.value(), out, "count-min");
  }
  if (kind == "countsketch") {
    return IngestAndSaveMaybeWindowed(
        sketch::CountSketch(width.value(), depth.value(), seed.value()),
        window, ids.value(), out, "count-sketch");
  }
  if (kind == "ams") {
    if (window.windows != 0) {
      return Fail(Status::InvalidArgument(
          "ams estimates the stream-wide F2 moment, not per-key counts; "
          "windowed counting needs cms, countsketch, lcms, mg or ss"));
    }
    return IngestAndSave(
        sketch::AmsSketch(depth.value(), capacity.value(), seed.value()),
        ids.value(), out, "ams");
  }
  if (kind == "lcms") {
    std::unordered_map<uint64_t, uint64_t> counts;
    for (uint64_t id : ids.value()) ++counts[id];
    auto lcms = sketch::LearnedCountMinSketch::Create(
        buckets.value(), depth.value(),
        sketch::SelectTopKeys(counts, heavy.value()), seed.value());
    if (!lcms.ok()) return Fail(lcms.status());
    return IngestAndSaveMaybeWindowed(std::move(lcms).value(), window,
                                      ids.value(), out, "learned-count-min");
  }
  if (kind == "mg") {
    return IngestAndSaveMaybeWindowed(sketch::MisraGries(capacity.value()),
                                      window, ids.value(), out,
                                      "misra-gries");
  }
  if (kind == "ss") {
    return IngestAndSaveMaybeWindowed(sketch::SpaceSaving(capacity.value()),
                                      window, ids.value(), out,
                                      "space-saving");
  }
  return Fail(Status::InvalidArgument("unknown sketch kind: " + kind));
}

std::vector<uint64_t> DistinctInOrder(const std::vector<uint64_t>& ids) {
  std::vector<uint64_t> distinct;
  std::unordered_set<uint64_t> seen;
  for (uint64_t id : ids) {
    if (seen.insert(id).second) distinct.push_back(id);
  }
  return distinct;
}

// The mode actually used to open a checkpoint, reported on stderr so
// callers (and tests) can tell a real zero-copy serve from the full-load
// fallback without parsing per-kind summary lines.
void ReportLoadMode(bool mmap) {
  std::fprintf(stderr, "load mode: %s\n", mmap ? "mmap" : "full");
}

Result<size_t> RestoreBlockSize(const Flags& flags) {
  const auto block_size = flags.GetUint("block-size", 4096);
  if (!block_size.ok()) return block_size.status();
  if (block_size.value() == 0) {
    return Status::InvalidArgument("--block-size must be >= 1");
  }
  return static_cast<size_t>(block_size.value());
}

// Distinct query ids flow to the estimator in blocks through the batch
// API; estimate_block fills one Span<double> per block.
template <typename BatchFn>
int PrintEstimatesBatch(const std::vector<uint64_t>& ids, size_t block_size,
                        BatchFn estimate_block) {
  std::printf("id,estimate\n");
  const std::vector<uint64_t> distinct = DistinctInOrder(ids);
  std::vector<double> estimates(std::min(block_size, distinct.size()));
  for (size_t base = 0; base < distinct.size(); base += block_size) {
    const size_t block = std::min(block_size, distinct.size() - base);
    estimate_block(Span<const uint64_t>(distinct.data() + base, block),
                   Span<double>(estimates.data(), block));
    for (size_t i = 0; i < block; ++i) {
      std::printf("%llu,%.2f\n",
                  static_cast<unsigned long long>(distinct[base + i]),
                  estimates[i]);
    }
  }
  return 0;
}

// Adapter from the sketches' typed batch queries to the double answers
// the CSV printer wants, staged through fixed-size stack chunks. One
// chunk loop for every raw counter type; the overloads below only pick
// the Raw type per sketch.
template <typename Raw, typename Sketch>
void EstimateChunksAsDouble(const Sketch& sketch, Span<const uint64_t> keys,
                            Span<double> out) {
  constexpr size_t kChunk = 256;
  Raw raw[kChunk];
  for (size_t base = 0; base < keys.size(); base += kChunk) {
    const size_t chunk = std::min(kChunk, keys.size() - base);
    sketch.EstimateBatch(keys.subspan(base, chunk), Span<Raw>(raw, chunk));
    for (size_t i = 0; i < chunk; ++i) {
      out[base + i] = static_cast<double>(raw[i]);
    }
  }
}

template <typename Sketch>
void EstimateBlockAsDouble(const Sketch& sketch, Span<const uint64_t> keys,
                           Span<double> out) {
  EstimateChunksAsDouble<uint64_t>(sketch, keys, out);
}

// CountSketch keeps its signed median semantics (the scalar restore path
// printed negatives too), so it routes through the int64 batch query.
void EstimateBlockAsDouble(const sketch::CountSketch& sketch,
                           Span<const uint64_t> keys, Span<double> out) {
  EstimateChunksAsDouble<int64_t>(sketch, keys, out);
}

int RestoreBundle(const Flags& flags, const std::string& in, bool use_mmap) {
  const auto block_size = RestoreBlockSize(flags);
  if (!block_size.ok()) return Fail(block_size.status());
  if (use_mmap) {
    auto view = io::MappedEstimatorView::Open(in);
    if (!view.ok()) return Fail(view.status());
    ReportLoadMode(/*mmap=*/true);
    if (!flags.Has("trace")) {
      std::printf(
          "mapped model bundle: %zu buckets, %zu stored ids (stored-id "
          "queries only)\n",
          view.value().num_buckets(), view.value().num_stored_ids());
      return 0;
    }
    auto ids = TraceIds(flags.Get("trace", ""));
    if (!ids.ok()) return Fail(ids.status());
    return PrintEstimatesBatch(
        ids.value(), block_size.value(),
        [&view](Span<const uint64_t> keys, Span<double> out) {
          view.value().EstimateBatch(keys, out);
        });
  }
  auto bundle = io::LoadModelBundle(in);
  if (!bundle.ok()) return Fail(bundle.status());
  ReportLoadMode(/*mmap=*/false);
  if (!flags.Has("trace")) {
    std::printf("model bundle: %zu buckets, %zu stored ids, %.2f KB\n",
                bundle.value().estimator->num_buckets(),
                bundle.value().estimator->num_stored_ids(),
                bundle.value().estimator->MemoryKb());
    return 0;
  }
  // Restored serving answers the same id-keyed queries the checkpointed
  // estimator would; featureless queries resolve through the stored table.
  auto ids = TraceIds(flags.Get("trace", ""));
  if (!ids.ok()) return Fail(ids.status());
  std::vector<stream::StreamItem> items;
  return PrintEstimatesBatch(
      ids.value(), block_size.value(),
      [&bundle, &items](Span<const uint64_t> keys, Span<double> out) {
        items.resize(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
          items[i] = {keys[i], nullptr};
        }
        bundle.value().estimator->EstimateBatch(
            Span<const stream::StreamItem>(items.data(), items.size()), out);
      });
}

template <typename Sketch>
int RestoreSketch(const Flags& flags, const std::string& in,
                  const char* kind) {
  const auto block_size = RestoreBlockSize(flags);
  if (!block_size.ok()) return Fail(block_size.status());
  auto sketch = io::LoadSketchSnapshot<Sketch>(in);
  if (!sketch.ok()) return Fail(sketch.status());
  ReportLoadMode(/*mmap=*/false);
  if (!flags.Has("trace")) {
    std::printf("%s checkpoint restored from %s\n", kind, in.c_str());
    return 0;
  }
  auto ids = TraceIds(flags.Get("trace", ""));
  if (!ids.ok()) return Fail(ids.status());
  return PrintEstimatesBatch(
      ids.value(), block_size.value(),
      [&sketch](Span<const uint64_t> keys, Span<double> out) {
        EstimateBlockAsDouble(sketch.value(), keys, out);
      });
}

template <typename Sketch>
int RestoreWindowedSketch(const Flags& flags, const std::string& in,
                          const char* kind) {
  const auto block_size = RestoreBlockSize(flags);
  if (!block_size.ok()) return Fail(block_size.status());
  auto ring = io::LoadWindowedSketchSnapshot<Sketch>(in);
  if (!ring.ok()) return Fail(ring.status());
  ReportLoadMode(/*mmap=*/false);
  if (!flags.Has("trace")) {
    std::printf(
        "windowed %s checkpoint restored from %s: %zu windows x %llu "
        "items, sequence %llu, decay %.6f\n",
        kind, in.c_str(), ring.value().num_windows(),
        static_cast<unsigned long long>(ring.value().window_items()),
        static_cast<unsigned long long>(ring.value().window_sequence()),
        ring.value().decay());
    return 0;
  }
  auto ids = TraceIds(flags.Get("trace", ""));
  if (!ids.ok()) return Fail(ids.status());
  // WindowedSketch answers in double natively (decay weights are
  // fractional), so no raw-counter staging is needed.
  return PrintEstimatesBatch(
      ids.value(), block_size.value(),
      [&ring](Span<const uint64_t> keys, Span<double> out) {
        ring.value().EstimateBatch(keys, out);
      });
}

// A windowed checkpoint's inner section decides the sub-sketch kind,
// exactly like the resume dispatch in CmdSnapshot.
int RestoreWindowed(const Flags& flags, const std::string& in) {
  auto inner = io::WindowedInnerTypeOfFile(in);
  if (!inner.ok()) return Fail(inner.status());
  switch (inner.value()) {
    case io::SectionType::kCountMinSketch:
      return RestoreWindowedSketch<sketch::CountMinSketch>(flags, in,
                                                           "count-min");
    case io::SectionType::kCountSketch:
      return RestoreWindowedSketch<sketch::CountSketch>(flags, in,
                                                        "count-sketch");
    case io::SectionType::kLearnedCountMin:
      return RestoreWindowedSketch<sketch::LearnedCountMinSketch>(
          flags, in, "learned-count-min");
    case io::SectionType::kMisraGries:
      return RestoreWindowedSketch<sketch::MisraGries>(flags, in,
                                                       "misra-gries");
    case io::SectionType::kSpaceSaving:
      return RestoreWindowedSketch<sketch::SpaceSaving>(flags, in,
                                                        "space-saving");
    default:
      return Fail(Status::InvalidArgument(
          in + " wraps a sub-sketch kind without per-key estimates"));
  }
}

int CmdRestore(const Flags& flags) {
  if (!flags.Has("in")) {
    return Fail(Status::InvalidArgument("restore needs --in"));
  }
  const auto mmap_flag = flags.GetUint("mmap", 0);
  if (!mmap_flag.ok()) return Fail(mmap_flag.status());
  const bool use_mmap = mmap_flag.value() != 0;
  const std::string in = flags.Get("in", "");

  auto format = io::DetectFileFormat(in);
  if (!format.ok()) return Fail(format.status());
  if (format.value() == io::SnapshotFormat::kText) {
    if (use_mmap) {
      return Fail(Status::InvalidArgument(
          "--mmap needs a binary snapshot; this is a text bundle"));
    }
    return RestoreBundle(flags, in, /*use_mmap=*/false);
  }

  auto sections = io::ListSnapshotSections(in);
  if (!sections.ok()) return Fail(sections.status());
  if (sections.value().size() == 1) {
    const io::SectionType section = sections.value().front();
    // Zero-copy serving exists only for count-min checkpoints and model
    // bundles (PR 3 gap, now explicit): every other kind downgrades to a
    // full load with a notice, and the `load mode:` line always reports
    // what actually happened.
    const bool mmap_fallback = use_mmap && !io::MmapServingSupported(section);
    const auto notice = [&](const char* kind) {
      if (mmap_fallback) {
        std::fprintf(stderr, "note: mmap unsupported for %s, loading fully\n",
                     kind);
      }
    };
    switch (section) {
      case io::SectionType::kCountMinSketch: {
        if (!use_mmap) {
          return RestoreSketch<sketch::CountMinSketch>(flags, in,
                                                       "count-min");
        }
        const auto block_size = RestoreBlockSize(flags);
        if (!block_size.ok()) return Fail(block_size.status());
        auto view = io::MappedCountMinView::Open(in);
        if (!view.ok()) return Fail(view.status());
        ReportLoadMode(/*mmap=*/true);
        if (!flags.Has("trace")) {
          std::printf(
              "mapped count-min: %zux%zu counters, %llu arrivals\n",
              view.value().depth(), view.value().width(),
              static_cast<unsigned long long>(view.value().total_count()));
          return 0;
        }
        auto ids = TraceIds(flags.Get("trace", ""));
        if (!ids.ok()) return Fail(ids.status());
        return PrintEstimatesBatch(
            ids.value(), block_size.value(),
            [&view](Span<const uint64_t> keys, Span<double> out) {
              EstimateBlockAsDouble(view.value(), keys, out);
            });
      }
      case io::SectionType::kCountSketch:
        notice("count-sketch");
        return RestoreSketch<sketch::CountSketch>(flags, in, "count-sketch");
      case io::SectionType::kAmsSketch: {
        notice("ams");
        auto ams = io::LoadSketchSnapshot<sketch::AmsSketch>(in);
        if (!ams.ok()) return Fail(ams.status());
        ReportLoadMode(/*mmap=*/false);
        if (flags.Has("trace")) {
          std::fprintf(stderr,
                       "note: ams estimates F2, not per-id counts; "
                       "--trace ignored\n");
        }
        std::printf("ams checkpoint restored from %s\nf2,%.2f\n", in.c_str(),
                    ams.value().EstimateF2());
        return 0;
      }
      case io::SectionType::kLearnedCountMin:
        notice("learned-count-min");
        return RestoreSketch<sketch::LearnedCountMinSketch>(
            flags, in, "learned-count-min");
      case io::SectionType::kMisraGries:
        notice("misra-gries");
        return RestoreSketch<sketch::MisraGries>(flags, in, "misra-gries");
      case io::SectionType::kSpaceSaving:
        notice("space-saving");
        return RestoreSketch<sketch::SpaceSaving>(flags, in, "space-saving");
      case io::SectionType::kWindowedSketch:
        notice("windowed checkpoints");
        return RestoreWindowed(flags, in);
      default:
        break;
    }
  }
  // Multi-section binary files are model bundles.
  return RestoreBundle(flags, in, use_mmap);
}

// Offline heavy hitters over any servable artifact, answered through the
// same ServedModel layer (and the same k clamp) as the daemon, so
// `opthash_cli topk` and `opthash_client topk` diff byte-identical on
// the same model file.
int CmdTopK(const Flags& flags) {
  if (!flags.Has("in")) {
    return Fail(Status::InvalidArgument("topk needs --in"));
  }
  const auto k_flag = flags.GetUint("k", 10);
  if (!k_flag.ok()) return Fail(k_flag.status());
  if (k_flag.value() == 0) {
    return Fail(Status::InvalidArgument("--k must be >= 1"));
  }
  const auto mmap_flag = flags.GetUint("mmap", 0);
  if (!mmap_flag.ok()) return Fail(mmap_flag.status());
  auto opened =
      server::OpenServedModel(flags.Get("in", ""), mmap_flag.value() != 0);
  if (!opened.ok()) return Fail(opened.status());
  ReportLoadMode(opened.value().mmap_used);
  const server::ServedModel& model = *opened.value().model;
  auto context = model.NewQueryContext();
  const size_t want = std::min<size_t>(static_cast<size_t>(k_flag.value()),
                                       server::kMaxHittersPerFrame);
  std::vector<sketch::HeavyHitter> hitters;
  const Status answered = model.TopK(*context, want, hitters);
  if (!answered.ok()) return Fail(answered);
  std::printf("%s\n", sketch::kHeavyHitterCsvHeader);
  for (const sketch::HeavyHitter& hitter : hitters) {
    std::printf("%s\n", sketch::HeavyHitterCsvRow(hitter).c_str());
  }
  return 0;
}

int Usage(std::FILE* out) {
  std::fputs(kUsageText, out);
  return out == stdout ? 0 : 2;
}

bool IsHelp(const std::string& arg) {
  return arg == "--help" || arg == "-h" || arg == "help";
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  if (IsHelp(argv[1])) return Usage(stdout);
  // Honor --help/-h after the subcommand, but only in flag-name positions
  // (odd offsets): `--trace help` is a value, not a help request.
  for (int i = 2; i < argc; i += 2) {
    if (IsHelp(argv[i])) return Usage(stdout);
  }
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return Usage(stderr);
  }
  if (command == "train") return CmdTrain(flags.value());
  if (command == "apply") return CmdApply(flags.value());
  if (command == "query") return CmdQuery(flags.value());
  if (command == "evaluate") return CmdEvaluate(flags.value());
  if (command == "snapshot") return CmdSnapshot(flags.value());
  if (command == "restore") return CmdRestore(flags.value());
  if (command == "topk") return CmdTopK(flags.value());
  return Usage(stderr);
}

}  // namespace
}  // namespace opthash::cli

int main(int argc, char** argv) { return opthash::cli::Main(argc, argv); }

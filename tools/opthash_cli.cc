// opthash_cli — train / apply / query / evaluate opt-hash estimators on
// CSV stream traces. This is the operational workflow of §3: learn the
// scheme offline from an observed prefix, ship the model to the stream
// processor, keep counting, answer queries.
//
//   opthash_cli train    --trace prefix.csv --out model.txt
//                        [--buckets 1000] [--ratio 0.3] [--lambda 1.0]
//                        [--solver bcd|dp|milp]
//                        [--classifier rf|cart|logreg|none]
//                        [--vocab 500] [--seed 1]
//   opthash_cli apply    --model model.txt --trace day1.csv --out model.txt
//                        [--threads N] [--block-size B]
//   opthash_cli query    --model model.txt --trace queries.csv
//   opthash_cli evaluate --model model.txt --trace stream.csv
//
// Traces are CSV files with header `id,text`; the text column feeds the
// bag-of-words featurizer (may be empty for key-only workloads).

#include <cstdio>
#include <optional>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluation.h"
#include "core/opt_hash_estimator.h"
#include "stream/element.h"
#include "stream/features.h"
#include "stream/sharded_ingest.h"
#include "stream/trace_io.h"

namespace opthash::cli {
namespace {

constexpr const char* kBundleMagic = "opthash.bundle.v1";

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  Result<double> GetDouble(const std::string& name, double fallback) const {
    auto it = values.find(name);
    if (it == values.end()) return fallback;
    try {
      size_t consumed = 0;
      const double parsed = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) throw std::invalid_argument("");
      return parsed;
    } catch (const std::exception&) {
      return Status::InvalidArgument("--" + name +
                                     " needs a number, got: " + it->second);
    }
  }
  Result<uint64_t> GetUint(const std::string& name, uint64_t fallback) const {
    auto it = values.find(name);
    if (it == values.end()) return fallback;
    // Digits only: stoull would silently wrap negatives modulo 2^64.
    const bool digits_only =
        !it->second.empty() &&
        it->second.find_first_not_of("0123456789") == std::string::npos;
    try {
      if (!digits_only) throw std::invalid_argument("");
      return std::stoull(it->second);
    } catch (const std::exception&) {
      return Status::InvalidArgument(
          "--" + name + " needs a non-negative integer, got: " + it->second);
    }
  }
  bool Has(const std::string& name) const { return values.count(name) > 0; }
};

Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag needs a value: " + arg);
    }
    flags.values[arg.substr(2)] = argv[++i];
  }
  return flags;
}

struct ModelBundle {
  stream::BagOfWordsFeaturizer featurizer{500};
  std::optional<core::OptHashEstimator> estimator;
};

Status SaveBundle(const std::string& path, const ModelBundle& bundle) {
  std::ostringstream out;
  out << kBundleMagic << '\n';
  bundle.featurizer.SerializeTo(out);
  out << bundle.estimator->Serialize();
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot write: " + path);
  file << out.str();
  return file.good() ? Status::OK()
                     : Status::Internal("short write to " + path);
}

Result<ModelBundle> LoadBundle(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot read: " + path);
  std::string magic;
  file >> magic;
  if (magic != kBundleMagic) {
    return Status::InvalidArgument("not an opthash model bundle: " + path);
  }
  auto featurizer = stream::BagOfWordsFeaturizer::DeserializeFrom(file);
  if (!featurizer.ok()) return featurizer.status();
  std::stringstream rest;
  rest << file.rdbuf();
  auto estimator = core::OptHashEstimator::Deserialize(rest.str());
  if (!estimator.ok()) return estimator.status();
  ModelBundle bundle;
  bundle.featurizer = std::move(featurizer).value();
  bundle.estimator = std::move(estimator).value();
  return bundle;
}

Result<core::SolverKind> ParseSolver(const std::string& name) {
  if (name == "bcd") return core::SolverKind::kBcd;
  if (name == "dp") return core::SolverKind::kDp;
  if (name == "milp") return core::SolverKind::kExact;
  return Status::InvalidArgument("unknown solver: " + name);
}

Result<core::ClassifierKind> ParseClassifier(const std::string& name) {
  if (name == "rf") return core::ClassifierKind::kRandomForest;
  if (name == "cart") return core::ClassifierKind::kCart;
  if (name == "logreg") return core::ClassifierKind::kLogisticRegression;
  if (name == "none") return core::ClassifierKind::kNone;
  return Status::InvalidArgument("unknown classifier: " + name);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdTrain(const Flags& flags) {
  if (!flags.Has("trace") || !flags.Has("out")) {
    return Fail(Status::InvalidArgument("train needs --trace and --out"));
  }
  // Validate every flag before touching the (possibly large) trace.
  const auto vocab = flags.GetUint("vocab", 500);
  if (!vocab.ok()) return Fail(vocab.status());
  const auto buckets = flags.GetUint("buckets", 1000);
  if (!buckets.ok()) return Fail(buckets.status());
  const auto ratio = flags.GetDouble("ratio", 0.3);
  if (!ratio.ok()) return Fail(ratio.status());
  const auto lambda = flags.GetDouble("lambda", 1.0);
  if (!lambda.ok()) return Fail(lambda.status());
  const auto seed = flags.GetUint("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  const auto solver = ParseSolver(flags.Get("solver", "bcd"));
  if (!solver.ok()) return Fail(solver.status());
  const auto classifier = ParseClassifier(flags.Get("classifier", "rf"));
  if (!classifier.ok()) return Fail(classifier.status());

  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());

  // Prefix frequencies + a representative text per id.
  std::unordered_map<uint64_t, double> counts;
  std::unordered_map<uint64_t, std::string> texts;
  for (const auto& record : trace.value()) {
    counts[record.id] += 1.0;
    texts.emplace(record.id, record.text);
  }
  std::printf("prefix: %zu arrivals, %zu distinct elements\n",
              trace.value().size(), counts.size());

  ModelBundle bundle;
  bundle.featurizer =
      stream::BagOfWordsFeaturizer(static_cast<size_t>(vocab.value()));
  std::vector<std::pair<std::string, double>> corpus;
  corpus.reserve(counts.size());
  for (const auto& [id, count] : counts) corpus.push_back({texts[id], count});
  bundle.featurizer.Fit(corpus);

  std::vector<core::PrefixElement> prefix;
  prefix.reserve(counts.size());
  for (const auto& [id, count] : counts) {
    prefix.push_back({.id = id,
                      .frequency = count,
                      .features = bundle.featurizer.Featurize(texts[id])});
  }

  core::OptHashConfig config;
  config.total_buckets = buckets.value();
  config.id_ratio = ratio.value();
  config.lambda = lambda.value();
  config.seed = seed.value();
  config.solver = solver.value();
  config.classifier = classifier.value();
  config.rf.num_trees = 10;

  auto trained = core::OptHashEstimator::Train(config, prefix);
  if (!trained.ok()) return Fail(trained.status());
  bundle.estimator = std::move(trained).value();
  std::printf(
      "trained: %zu buckets + %zu stored ids (%.2f KB), solver objective "
      "%.3f\n",
      bundle.estimator->num_buckets(), bundle.estimator->num_stored_ids(),
      bundle.estimator->MemoryKb(),
      bundle.estimator->training_info().solve_result.objective.overall);

  const Status saved = SaveBundle(flags.Get("out", ""), bundle);
  if (!saved.ok()) return Fail(saved);
  std::printf("model written to %s\n", flags.Get("out", "").c_str());
  return 0;
}

int CmdApply(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("trace") || !flags.Has("out")) {
    return Fail(
        Status::InvalidArgument("apply needs --model, --trace and --out"));
  }
  const auto threads = flags.GetUint("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  const auto block_size = flags.GetUint("block-size", 1 << 16);
  if (!block_size.ok()) return Fail(block_size.status());
  stream::ShardedIngestConfig config;
  config.num_threads = static_cast<size_t>(threads.value());
  config.block_size = static_cast<size_t>(block_size.value());
  const Status config_ok = config.Validate();
  if (!config_ok.ok()) return Fail(config_ok);

  auto bundle = LoadBundle(flags.Get("model", ""));
  if (!bundle.ok()) return Fail(bundle.status());
  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());

  std::vector<uint64_t> ids;
  ids.reserve(trace.value().size());
  for (const auto& record : trace.value()) ids.push_back(record.id);

  // Stream processing only adds to bucket counters through the read-only
  // learned table, so each worker accumulates into a private delta array
  // and the deltas fold back in at the end — exactly equivalent to a
  // sequential Update loop at any thread count.
  core::OptHashEstimator& estimator = *bundle.value().estimator;
  auto stats = stream::ShardedIngestCustom(
      ids, config,
      [&estimator](size_t) {
        return std::vector<double>(estimator.num_buckets(), 0.0);
      },
      [&estimator](std::vector<double>& deltas, size_t /*worker*/,
                   Span<const uint64_t> block) {
        estimator.AccumulateUpdates(block, deltas);
      },
      [&estimator](std::vector<double>& deltas) {
        return estimator.ApplyBucketDeltas(deltas);
      });
  if (!stats.ok()) return Fail(stats.status());
  std::printf("applied %zu arrivals (%zu threads, %.3fs, %.0f items/sec)\n",
              stats.value().num_items, stats.value().threads_used,
              stats.value().seconds, stats.value().ItemsPerSecond());
  const Status saved = SaveBundle(flags.Get("out", ""), bundle.value());
  if (!saved.ok()) return Fail(saved);
  return 0;
}

int CmdQuery(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("trace")) {
    return Fail(Status::InvalidArgument("query needs --model and --trace"));
  }
  auto bundle = LoadBundle(flags.Get("model", ""));
  if (!bundle.ok()) return Fail(bundle.status());
  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());
  std::printf("id,estimate\n");
  std::unordered_map<uint64_t, bool> seen;
  for (const auto& record : trace.value()) {
    if (seen[record.id]) continue;
    seen[record.id] = true;
    const std::vector<double> features =
        bundle.value().featurizer.Featurize(record.text);
    const double estimate =
        bundle.value().estimator->Estimate({record.id, &features});
    std::printf("%llu,%.2f\n", static_cast<unsigned long long>(record.id),
                estimate);
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  if (!flags.Has("model") || !flags.Has("trace")) {
    return Fail(Status::InvalidArgument("evaluate needs --model and --trace"));
  }
  auto bundle = LoadBundle(flags.Get("model", ""));
  if (!bundle.ok()) return Fail(bundle.status());
  auto trace = stream::ReadTraceCsv(flags.Get("trace", ""));
  if (!trace.ok()) return Fail(trace.status());

  stream::ExactCounter truth;
  std::unordered_map<uint64_t, std::string> texts;
  for (const auto& record : trace.value()) {
    truth.Add(record.id);
    texts.emplace(record.id, record.text);
  }
  std::vector<std::vector<double>> feature_store;
  feature_store.reserve(truth.NumDistinct());
  std::vector<core::EvalQuery> queries;
  for (const auto& [id, count] : truth.counts()) {
    feature_store.push_back(bundle.value().featurizer.Featurize(texts[id]));
    queries.push_back(
        {{id, &feature_store.back()}, static_cast<double>(count)});
  }
  const core::ErrorMetrics metrics =
      core::EvaluateEstimator(*bundle.value().estimator, queries);
  std::printf("queries: %zu distinct elements (%llu arrivals)\n",
              metrics.num_queries,
              static_cast<unsigned long long>(truth.total()));
  std::printf("average absolute error:   %.4f\n",
              metrics.average_absolute_error);
  std::printf("expected magnitude error: %.4f\n",
              metrics.expected_magnitude_error);
  return 0;
}

int Usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: opthash_cli <train|apply|query|evaluate> --flag value ...\n"
      "  train    --trace prefix.csv --out model.txt [--buckets N]\n"
      "           [--ratio C] [--lambda L] [--solver bcd|dp|milp]\n"
      "           [--classifier rf|cart|logreg|none] [--vocab V] [--seed S]\n"
      "  apply    --model model.txt --trace stream.csv --out model.txt\n"
      "           [--threads N] [--block-size B]\n"
      "  query    --model model.txt --trace queries.csv\n"
      "  evaluate --model model.txt --trace stream.csv\n"
      "\n"
      "traces are CSV files with header `id,text`: a numeric (uint64)\n"
      "element key plus optional free text feeding the bag-of-words\n"
      "featurizer; the text column may be empty for key-only workloads.\n"
      "\n"
      "train flags:\n"
      "  --buckets N     overall memory budget b_total in 4-byte buckets,\n"
      "                  split between aggregation buckets and stored ids\n"
      "                  (default 1000)\n"
      "  --ratio C       the split ratio c = b/n of paper sec. 7.3; the\n"
      "                  paper examines 0.03 and 0.3 (default 0.3)\n"
      "  --lambda L      objective trade-off in [0,1]: 1 = estimation\n"
      "                  error only, 0 = feature similarity only\n"
      "                  (default 1.0)\n"
      "  --solver S      bcd (Algorithm 1), dp (exact for lambda = 1), or\n"
      "                  milp (exact branch-and-bound, tiny instances\n"
      "                  only) (default bcd)\n"
      "  --classifier K  model routing unseen elements: rf, cart, logreg,\n"
      "                  or none (default rf)\n"
      "  --vocab V       bag-of-words vocabulary size (default 500)\n"
      "  --seed S        RNG seed (default 1)\n"
      "\n"
      "apply flags:\n"
      "  --threads N     worker threads for sharded trace ingestion; 0 uses\n"
      "                  the hardware concurrency. Estimates after the\n"
      "                  merge are identical at every thread count\n"
      "                  (default 1)\n"
      "  --block-size B  trace items per worker dispatch block\n"
      "                  (default 65536)\n");
  return out == stdout ? 0 : 2;
}

bool IsHelp(const std::string& arg) {
  return arg == "--help" || arg == "-h" || arg == "help";
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  if (IsHelp(argv[1])) return Usage(stdout);
  // Honor --help/-h after the subcommand, but only in flag-name positions
  // (odd offsets): `--trace help` is a value, not a help request.
  for (int i = 2; i < argc; i += 2) {
    if (IsHelp(argv[i])) return Usage(stdout);
  }
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return Usage(stderr);
  }
  if (command == "train") return CmdTrain(flags.value());
  if (command == "apply") return CmdApply(flags.value());
  if (command == "query") return CmdQuery(flags.value());
  if (command == "evaluate") return CmdEvaluate(flags.value());
  return Usage(stderr);
}

}  // namespace
}  // namespace opthash::cli

int main(int argc, char** argv) { return opthash::cli::Main(argc, argv); }

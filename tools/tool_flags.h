#ifndef OPTHASH_TOOLS_TOOL_FLAGS_H_
#define OPTHASH_TOOLS_TOOL_FLAGS_H_

// Shared --flag value parsing for the opthash tools (opthash_cli and
// opthash_serve speak the identical flag dialect; one copy keeps the
// validation rules — digits-only uints so stoull can't wrap negatives,
// fully-consumed doubles — from drifting apart).

#include <map>
#include <stdexcept>
#include <string>

#include "common/status.h"

namespace opthash::cli {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }

  Result<double> GetDouble(const std::string& name, double fallback) const {
    auto it = values.find(name);
    if (it == values.end()) return fallback;
    try {
      size_t consumed = 0;
      const double parsed = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) throw std::invalid_argument("");
      return parsed;
    } catch (const std::exception&) {
      return Status::InvalidArgument("--" + name +
                                     " needs a number, got: " + it->second);
    }
  }

  Result<uint64_t> GetUint(const std::string& name, uint64_t fallback) const {
    auto it = values.find(name);
    if (it == values.end()) return fallback;
    // Digits only: stoull would silently wrap negatives modulo 2^64.
    const bool digits_only =
        !it->second.empty() &&
        it->second.find_first_not_of("0123456789") == std::string::npos;
    try {
      if (!digits_only) throw std::invalid_argument("");
      return std::stoull(it->second);
    } catch (const std::exception&) {
      return Status::InvalidArgument(
          "--" + name + " needs a non-negative integer, got: " + it->second);
    }
  }

  bool Has(const std::string& name) const { return values.count(name) > 0; }
};

inline Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag needs a value: " + arg);
    }
    flags.values[arg.substr(2)] = argv[++i];
  }
  return flags;
}

}  // namespace opthash::cli

#endif  // OPTHASH_TOOLS_TOOL_FLAGS_H_

#!/bin/sh
# End-to-end serving acceptance test (registered as ctest
# opthash_serve_e2e), proving the two contracts the daemon is for:
#
#  1. Served answers == offline answers: a trained model bundle queried
#     through the daemon is byte-identical (same id,estimate CSV) to the
#     offline `opthash_cli query` verb.
#  2. Crash recovery: ingest part A, snapshot, ingest part B, kill -9;
#     a daemon restarted from the rotated snapshot that re-ingests part B
#     answers exactly like one unbroken ingestion of A+B (checked against
#     the offline `snapshot`/`restore` verbs with identical geometry).
#
# Both transports run the identical script: MODE=unix drives the daemon
# over --socket, MODE=tcp over --listen 127.0.0.1:0 with the
# kernel-picked port parsed from the daemon's "listening on tcp:" line.
#
# Usage: serve_e2e_test.sh CLI SERVE CLIENT WORKDIR [unix|tcp]
set -eu

CLI="$1"; SERVE="$2"; CLIENT="$3"; WORK="$4"; MODE="${5:-unix}"
SOCK="/tmp/opthash_e2e_$$.sock"

if [ "$MODE" = "tcp" ]; then
  SERVE_LISTEN="--listen 127.0.0.1:0"
else
  SERVE_LISTEN="--socket $SOCK"
fi

rm -rf "$WORK"
mkdir -p "$WORK"
trap 'kill -9 $SERVE_PID 2>/dev/null || true; rm -f "$SOCK"' EXIT

# Sets TARGET to the client's connect flags for the daemon whose log is
# $1 — in tcp mode that means waiting for the listen line and parsing
# the ephemeral port out of it (a new port every daemon start).
resolve_target() {
  if [ "$MODE" = "tcp" ]; then
    i=0
    while ! grep -q "listening on tcp:" "$1" 2>/dev/null; do
      i=$((i + 1))
      [ "$i" -lt 100 ] || { echo "FAIL: daemon never printed its port"; exit 1; }
      sleep 0.1
    done
    PORT=$(sed -n 's/.*(port \([0-9][0-9]*\)).*/\1/p' "$1" | head -n 1)
    TARGET="--connect 127.0.0.1:$PORT"
  else
    TARGET="--socket $SOCK"
  fi
}

wait_ready() {
  i=0
  while ! "$CLIENT" $TARGET ping >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: daemon never became ready"; exit 1; }
    sleep 0.1
  done
}

# ---------------------------------------------------------------------------
echo "== part 1: served bundle answers == offline query verb"

awk 'BEGIN {
  print "id,text";
  for (i = 0; i < 400; i++) {
    id = (i % 13 == 0) ? i % 7 : 100 + i % 90;
    printf "%d,item %d words\n", id, id;
  }
}' > "$WORK/prefix.csv"
# Key-only queries (empty text): the wire protocol is key-only, so the
# offline reference must be too.
awk 'BEGIN { print "id,text"; for (i = 0; i < 160; i++) printf "%d,\n", i; }' \
  > "$WORK/queries.csv"

"$CLI" train --trace "$WORK/prefix.csv" --out "$WORK/model.bin" \
  --buckets 120 --solver dp --classifier cart --format binary \
  > /dev/null

"$CLI" query --model "$WORK/model.bin" --trace "$WORK/queries.csv" \
  > "$WORK/offline.csv"

"$SERVE" $SERVE_LISTEN --in "$WORK/model.bin" \
  > "$WORK/serve_bundle.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_bundle.log"
wait_ready
"$CLIENT" $TARGET query --trace "$WORK/queries.csv" \
  > "$WORK/served.csv"
"$CLIENT" $TARGET shutdown > /dev/null
wait "$SERVE_PID"

diff "$WORK/offline.csv" "$WORK/served.csv" || {
  echo "FAIL: served bundle answers differ from offline query verb"
  exit 1
}
echo "ok: served answers byte-identical to offline query"

# ---------------------------------------------------------------------------
echo "== part 2: kill -9 + resume from rotated snapshot == unbroken ingest"

awk 'BEGIN {
  print "id,text";
  srand(42);
  for (i = 0; i < 3000; i++) printf "%d,\n", int(rand() * 500);
}' > "$WORK/full.csv"
head -n 2001 "$WORK/full.csv" > "$WORK/part_a.csv"          # header + 2000
{ head -n 1 "$WORK/full.csv"; tail -n +2002 "$WORK/full.csv"; } \
  > "$WORK/part_b.csv"                                       # header + 1000
awk 'BEGIN { print "id,text"; for (i = 0; i < 500; i++) printf "%d,\n", i; }' \
  > "$WORK/keys.csv"

# Unbroken offline reference with the daemon's default cms geometry.
"$CLI" snapshot --trace "$WORK/full.csv" --out "$WORK/ref.bin" \
  --sketch cms > /dev/null
"$CLI" restore --in "$WORK/ref.bin" --trace "$WORK/keys.csv" \
  2>/dev/null > "$WORK/unbroken.csv"

"$SERVE" $SERVE_LISTEN --sketch cms --snapshot-dir "$WORK/snaps" \
  > "$WORK/serve_a.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_a.log"
wait_ready
"$CLIENT" $TARGET ingest --trace "$WORK/part_a.csv" > /dev/null
"$CLIENT" $TARGET snapshot > /dev/null
# Ingested but never snapshotted: these arrivals die with the process and
# are re-sent after the restart.
"$CLIENT" $TARGET ingest --trace "$WORK/part_b.csv" > /dev/null
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

[ -f "$WORK/snaps/snapshot-000001.bin" ] || {
  echo "FAIL: no rotated snapshot on disk after kill -9"
  exit 1
}

"$SERVE" $SERVE_LISTEN --sketch cms --snapshot-dir "$WORK/snaps" \
  > "$WORK/serve_b.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_b.log"
wait_ready
grep -q "resuming from" "$WORK/serve_b.log" || {
  echo "FAIL: restarted daemon did not resume from the rotated snapshot"
  exit 1
}
"$CLIENT" $TARGET ingest --trace "$WORK/part_b.csv" > /dev/null
"$CLIENT" $TARGET query --trace "$WORK/keys.csv" \
  > "$WORK/resumed.csv"
"$CLIENT" $TARGET shutdown > /dev/null
wait "$SERVE_PID"

diff "$WORK/unbroken.csv" "$WORK/resumed.csv" || {
  echo "FAIL: resumed counts differ from unbroken ingestion"
  exit 1
}
echo "ok: crash recovery matches unbroken ingestion exactly"
echo "PASS"

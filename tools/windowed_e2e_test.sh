#!/bin/sh
# Windowed-serving acceptance test (registered as ctest
# opthash_serve_windowed_e2e), proving the sliding-window contracts
# end to end, over a real daemon and real kill -9:
#
#  1. Served windowed answers == offline windowed checkpoint: a daemon
#     started with --windows/--window answers (and reports ring
#     position) exactly like `opthash_cli snapshot ... --windows` +
#     `restore` fed the identical stream.
#  2. Crash recovery MID-WINDOW: ingest part A ending inside an open
#     window, snapshot, ingest part B, kill -9; a daemon restarted from
#     the rotated windowed snapshot resumes at the exact ring position
#     (sequence AND items-into-window) and, after re-ingesting part B,
#     is byte-identical to one unbroken windowed ingestion of A+B.
#
# MODE=unix drives the daemon over --socket, MODE=tcp over
# --listen 127.0.0.1:0 with the kernel-picked port parsed from the log.
#
# Usage: windowed_e2e_test.sh CLI SERVE CLIENT WORKDIR [unix|tcp]
set -eu

CLI="$1"; SERVE="$2"; CLIENT="$3"; WORK="$4"; MODE="${5:-unix}"
SOCK="/tmp/opthash_we2e_$$.sock"

# Ring geometry: 3000 arrivals over 800-item windows leaves the daemon
# mid-window (sequence 3, 600 items in) at every checkpoint we take.
WINDOWS=3
WINDOW=800

if [ "$MODE" = "tcp" ]; then
  SERVE_LISTEN="--listen 127.0.0.1:0"
else
  SERVE_LISTEN="--socket $SOCK"
fi

rm -rf "$WORK"
mkdir -p "$WORK"
trap 'kill -9 $SERVE_PID 2>/dev/null || true; rm -f "$SOCK"' EXIT

resolve_target() {
  if [ "$MODE" = "tcp" ]; then
    i=0
    while ! grep -q "listening on tcp:" "$1" 2>/dev/null; do
      i=$((i + 1))
      [ "$i" -lt 100 ] || { echo "FAIL: daemon never printed its port"; exit 1; }
      sleep 0.1
    done
    PORT=$(sed -n 's/.*(port \([0-9][0-9]*\)).*/\1/p' "$1" | head -n 1)
    TARGET="--connect 127.0.0.1:$PORT"
  else
    TARGET="--socket $SOCK"
  fi
}

wait_ready() {
  i=0
  while ! "$CLIENT" $TARGET ping >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: daemon never became ready"; exit 1; }
    sleep 0.1
  done
}

# Asserts the daemon's ring position: expect_ring SEQUENCE ITEMS_IN_WINDOW
expect_ring() {
  "$CLIENT" $TARGET windows > "$WORK/ring.txt"
  grep -q "^window_sequence $1\$" "$WORK/ring.txt" || {
    echo "FAIL: expected window_sequence $1, got:"; cat "$WORK/ring.txt"
    exit 1
  }
  grep -q "^items_in_current_window $2\$" "$WORK/ring.txt" || {
    echo "FAIL: expected items_in_current_window $2, got:"; cat "$WORK/ring.txt"
    exit 1
  }
}

# ---------------------------------------------------------------------------
echo "== windowed kill -9 + resume mid-window == unbroken windowed ingest"

awk 'BEGIN {
  print "id,text";
  srand(42);
  for (i = 0; i < 3000; i++) printf "%d,\n", int(rand() * 500);
}' > "$WORK/full.csv"
head -n 2001 "$WORK/full.csv" > "$WORK/part_a.csv"          # header + 2000
{ head -n 1 "$WORK/full.csv"; tail -n +2002 "$WORK/full.csv"; } \
  > "$WORK/part_b.csv"                                       # header + 1000
awk 'BEGIN { print "id,text"; for (i = 0; i < 500; i++) printf "%d,\n", i; }' \
  > "$WORK/keys.csv"

# Unbroken offline windowed reference, identical ring geometry.
"$CLI" snapshot --trace "$WORK/full.csv" --out "$WORK/ref.bin" \
  --sketch cms --windows "$WINDOWS" --window "$WINDOW" > /dev/null
"$CLI" restore --in "$WORK/ref.bin" --trace "$WORK/keys.csv" \
  2>/dev/null > "$WORK/unbroken.csv"

"$SERVE" $SERVE_LISTEN --sketch cms --windows "$WINDOWS" \
  --window "$WINDOW" --snapshot-dir "$WORK/snaps" \
  > "$WORK/serve_a.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_a.log"
wait_ready
"$CLIENT" $TARGET ingest --trace "$WORK/part_a.csv" > /dev/null
# 2000 arrivals into 800-item windows: 2 closed windows, 400 items into
# the third — the snapshot below is taken MID-window on purpose.
expect_ring 2 400
"$CLIENT" $TARGET snapshot > /dev/null
# Ingested but never snapshotted: dies with the process, re-sent later.
"$CLIENT" $TARGET ingest --trace "$WORK/part_b.csv" > /dev/null
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

[ -f "$WORK/snaps/snapshot-000001.bin" ] || {
  echo "FAIL: no rotated snapshot on disk after kill -9"
  exit 1
}

"$SERVE" $SERVE_LISTEN --sketch cms --windows "$WINDOWS" \
  --window "$WINDOW" --snapshot-dir "$WORK/snaps" \
  > "$WORK/serve_b.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_b.log"
wait_ready
grep -q "resuming from" "$WORK/serve_b.log" || {
  echo "FAIL: restarted daemon did not resume from the rotated snapshot"
  exit 1
}
# The ring came back at the exact mid-window position it was killed at.
expect_ring 2 400
"$CLIENT" $TARGET ingest --trace "$WORK/part_b.csv" > /dev/null
expect_ring 3 600
"$CLIENT" $TARGET query --trace "$WORK/keys.csv" > "$WORK/resumed.csv"
"$CLIENT" $TARGET shutdown > /dev/null
wait "$SERVE_PID"

diff "$WORK/unbroken.csv" "$WORK/resumed.csv" || {
  echo "FAIL: resumed windowed counts differ from unbroken ingestion"
  exit 1
}
echo "ok: mid-window crash recovery matches unbroken windowed ingestion"
echo "PASS"

// opthash_serve — the long-running serving daemon: loads a model bundle
// or sketch checkpoint (mmap when supported), ingests live arrivals on
// writer threads through the sharded-ingest engine, answers batched
// frequency queries over a Unix-domain socket, and keeps itself durable
// through background snapshot rotation (atomic write-temp-then-rename,
// bounded retention). `kill -9` it at any instant and a restart with the
// same --snapshot-dir resumes from the last rotated checkpoint.
//
// The wire protocol, every flag, and the crash-recovery walkthrough are
// documented in docs/OPERATIONS.md; kUsageText below is the flag-level
// summary `--help` prints. Scripting companion: opthash_client.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "server/served_model.h"
#include "server/server.h"
#include "server/snapshot_rotator.h"
#include "sketch/kernels/simd_dispatch.h"
#include "tool_flags.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace opthash::cli {
namespace {

constexpr const char* kUsageText =
    "usage: opthash_serve (--socket /path/daemon.sock | --listen host:port)\n"
    "           (--in artifact | --sketch cms|countsketch|lcms|mg|ss)\n"
    "           [--mmap 1] [--snapshot-dir DIR] [--snapshot-keep K]\n"
    "           [--snapshot-every-items N] [--snapshot-every-seconds S]\n"
    "           [--threads N] [--block-size B]\n"
    "           [--max-connections N] [--idle-timeout S] [--event-threads N]\n"
    "           [--simd scalar|avx2|neon]\n"
    "           [--width W] [--depth D] [--capacity K] [--buckets N]\n"
    "           [--seed S] [--conservative 1]\n"
    "\n"
    "Long-running frequency-estimation daemon: concurrent ingest +\n"
    "batched queries over a Unix-domain socket and/or a TCP listener\n"
    "(identical protocol on both), durable through rotated snapshots.\n"
    "Protocol spec and operations manual: docs/OPERATIONS.md.\n"
    "Drive it with opthash_client; stop it with SIGINT/SIGTERM or a\n"
    "client shutdown request.\n"
    "\n"
    "model selection (exactly one source):\n"
    "  --in FILE       serve an existing artifact: a model bundle (text\n"
    "                  or binary) or a single-sketch checkpoint; the\n"
    "                  content is auto-detected. AMS checkpoints are\n"
    "                  rejected (F2-only, no per-key queries)\n"
    "  --sketch T      start a fresh, empty sketch of kind T instead\n"
    "                  (geometry flags below)\n"
    "  If --snapshot-dir already holds rotated snapshots, the newest one\n"
    "  wins over both (crash recovery); --in/--sketch then only describe\n"
    "  the cold-start state.\n"
    "\n"
    "serving flags (at least one of --socket / --listen):\n"
    "  --socket PATH   Unix-domain socket to listen on (<= 107 bytes)\n"
    "  --listen H:P    TCP listen address, e.g. 127.0.0.1:9090 — port 0\n"
    "                  lets the kernel pick; the bound port is printed as\n"
    "                  a `listening on tcp:` line. No auth, no TLS: bind\n"
    "                  loopback or a trusted network only\n"
    "  --max-connections N  live sessions across both transports; one\n"
    "                  past the limit gets an error frame and is closed\n"
    "                  (default 1024)\n"
    "  --idle-timeout S  disconnect sessions with no protocol progress\n"
    "                  for S seconds, including peers that stop reading\n"
    "                  replies (default 0 = never)\n"
    "  --event-threads N  event-loop threads serving the sessions\n"
    "                  (default 0 = one per hardware thread)\n"
    "  --mmap 1        zero-copy read-only serving straight from the\n"
    "                  mapped file (binary bundles: stored-id queries\n"
    "                  only; cms checkpoints: all point queries). Kinds\n"
    "                  without a mapped view fall back to a full load\n"
    "                  with a stderr notice; the mode actually used is\n"
    "                  always reported as a `load mode:` line. Read-only\n"
    "                  serving rejects ingest and snapshot requests\n"
    "  --threads N     writer threads per ingest request block, via the\n"
    "                  sharded-ingest engine; 0 = hardware concurrency\n"
    "                  (default 1)\n"
    "  --block-size B  trace items per worker dispatch block\n"
    "                  (default 65536)\n"
    "  --simd TIER     pin the sketch kernel tier (scalar|avx2|neon)\n"
    "                  instead of auto-detecting the best one; unknown or\n"
    "                  unavailable tiers fail at startup. Equivalent env\n"
    "                  var: OPTHASH_SIMD (the flag wins). The active tier\n"
    "                  is printed as a `simd kernels:` line and exported\n"
    "                  as the opthash_simd_tier_info metric\n"
    "\n"
    "snapshot rotation (durability; see docs/OPERATIONS.md):\n"
    "  --snapshot-dir DIR        rotate checkpoints into DIR as\n"
    "                  snapshot-NNNNNN.bin via write-temp-then-rename;\n"
    "                  also the crash-recovery source at startup\n"
    "  --snapshot-every-items N  rotate after N newly ingested items\n"
    "                  (default 0 = off)\n"
    "  --snapshot-every-seconds S  rotate after S seconds (default 0 =\n"
    "                  off; with both triggers off only client snapshot\n"
    "                  requests rotate)\n"
    "  --snapshot-keep K         rotated files retained (default 4)\n"
    "\n"
    "fresh-sketch geometry (with --sketch; mirrors the snapshot verb):\n"
    "  --width W       counters per level, cms/countsketch (default 1024)\n"
    "  --depth D       levels, cms/countsketch/lcms (default 4)\n"
    "  --capacity K    tracked entries, mg/ss (default 256)\n"
    "  --buckets N     lcms total bucket budget (default 1024)\n"
    "  --seed S        hash seed (default 1)\n"
    "  --conservative 1  cms only: conservative update (default 0)\n"
    "\n"
    "windowed counting (with --sketch; counts over a sliding window\n"
    "of the last W*N arrivals instead of the whole stream):\n"
    "  --windows W     ring of W per-window sub-sketches (default 0 =\n"
    "                  plain lifetime counting)\n"
    "  --window N      advance the ring every N arrivals (required with\n"
    "                  --windows)\n"
    "  --decay L       per-window geometric weight L in (0,1]; < 1 turns\n"
    "                  estimates into exponentially decayed counts\n"
    "                  (default 1 = plain sliding window)\n";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int signum) { g_signal = signum; }

Result<server::OpenedModel> LoadInitialModel(const Flags& flags,
                                             bool use_mmap) {
  // Crash recovery first: the newest rotated snapshot (if any) is the
  // authoritative state; --in/--sketch describe only the cold start.
  const std::string snapshot_dir = flags.Get("snapshot-dir", "");
  if (!snapshot_dir.empty()) {
    auto latest = server::SnapshotRotator::FindLatestSnapshot(snapshot_dir);
    if (latest.ok()) {
      std::fprintf(stderr, "resuming from %s\n", latest.value().c_str());
      return server::OpenServedModel(latest.value(), use_mmap);
    }
    if (latest.status().code() != StatusCode::kNotFound) {
      return latest.status();
    }
  }
  if (flags.Has("in")) {
    return server::OpenServedModel(flags.Get("in", ""), use_mmap);
  }
  if (flags.Has("sketch")) {
    if (use_mmap) {
      return Status::InvalidArgument(
          "--mmap serves an existing file; it cannot apply to a fresh "
          "--sketch");
    }
    server::FreshSketchSpec spec;
    spec.kind = flags.Get("sketch", "cms");
    const auto width = flags.GetUint("width", 1024);
    if (!width.ok()) return width.status();
    const auto depth = flags.GetUint("depth", 4);
    if (!depth.ok()) return depth.status();
    const auto capacity = flags.GetUint("capacity", 256);
    if (!capacity.ok()) return capacity.status();
    const auto buckets = flags.GetUint("buckets", 1024);
    if (!buckets.ok()) return buckets.status();
    const auto seed = flags.GetUint("seed", 1);
    if (!seed.ok()) return seed.status();
    const auto conservative = flags.GetUint("conservative", 0);
    if (!conservative.ok()) return conservative.status();
    const auto windows = flags.GetUint("windows", 0);
    if (!windows.ok()) return windows.status();
    const auto window_items = flags.GetUint("window", 0);
    if (!window_items.ok()) return window_items.status();
    const auto decay = flags.GetDouble("decay", 1.0);
    if (!decay.ok()) return decay.status();
    spec.windows = static_cast<size_t>(windows.value());
    spec.window_items = window_items.value();
    spec.decay = decay.value();
    spec.width = static_cast<size_t>(width.value());
    spec.depth = static_cast<size_t>(depth.value());
    spec.capacity = static_cast<size_t>(capacity.value());
    spec.buckets = static_cast<size_t>(buckets.value());
    spec.seed = seed.value();
    spec.conservative = conservative.value() != 0;
    auto model = server::CreateServedSketch(spec);
    if (!model.ok()) return model.status();
    server::OpenedModel opened;
    opened.model = std::move(model).value();
    return opened;
  }
  return Status::InvalidArgument(
      "nothing to serve: pass --in FILE or --sketch KIND (or point "
      "--snapshot-dir at rotated snapshots)");
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      std::fputs(kUsageText, stdout);
      return 0;
    }
  }
  auto flags = ParseFlags(argc, argv, 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    std::fputs(kUsageText, stderr);
    return 2;
  }
  if (!flags.value().Has("socket") && !flags.value().Has("listen")) {
    std::fputs("error: pass --socket PATH and/or --listen host:port\n",
               stderr);
    std::fputs(kUsageText, stderr);
    return 2;
  }

  // Kernel tier: --simd pins it (overriding OPTHASH_SIMD); otherwise a
  // typo'd environment override must fail the daemon loudly instead of
  // silently serving on the default tier.
  if (flags.value().Has("simd")) {
    const Status forced = sketch::kernels::ForceKernelTierByName(
        flags.value().Get("simd", ""));
    if (!forced.ok()) return Fail(forced);
  } else {
    const Status env_status = sketch::kernels::KernelEnvStatus();
    if (!env_status.ok()) return Fail(env_status);
  }
  std::fprintf(stderr, "simd kernels: %s\n",
               std::string(sketch::kernels::KernelTierName(
                               sketch::kernels::ActiveKernelTier()))
                   .c_str());

  server::ServerConfig config;
  config.socket_path = flags.value().Get("socket", "");
  config.listen_address = flags.value().Get("listen", "");
  const auto max_connections =
      flags.value().GetUint("max-connections", 1024);
  if (!max_connections.ok()) return Fail(max_connections.status());
  config.max_connections = static_cast<size_t>(max_connections.value());
  const auto idle_timeout = flags.value().GetDouble("idle-timeout", 0.0);
  if (!idle_timeout.ok()) return Fail(idle_timeout.status());
  config.idle_timeout_seconds = idle_timeout.value();
  const auto event_threads = flags.value().GetUint("event-threads", 0);
  if (!event_threads.ok()) return Fail(event_threads.status());
  config.event_threads = static_cast<size_t>(event_threads.value());
  const auto threads = flags.value().GetUint("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  const auto block_size = flags.value().GetUint("block-size", 1 << 16);
  if (!block_size.ok()) return Fail(block_size.status());
  config.ingest.num_threads = static_cast<size_t>(threads.value());
  config.ingest.block_size = static_cast<size_t>(block_size.value());
  config.rotation.dir = flags.value().Get("snapshot-dir", "");
  const auto every_items =
      flags.value().GetUint("snapshot-every-items", 0);
  if (!every_items.ok()) return Fail(every_items.status());
  const auto every_seconds =
      flags.value().GetDouble("snapshot-every-seconds", 0.0);
  if (!every_seconds.ok()) return Fail(every_seconds.status());
  const auto keep = flags.value().GetUint("snapshot-keep", 4);
  if (!keep.ok()) return Fail(keep.status());
  config.rotation.every_items = every_items.value();
  config.rotation.every_seconds = every_seconds.value();
  config.rotation.keep = static_cast<size_t>(keep.value());

  const auto mmap_flag = flags.value().GetUint("mmap", 0);
  if (!mmap_flag.ok()) return Fail(mmap_flag.status());
  const bool use_mmap = mmap_flag.value() != 0;

  auto opened = LoadInitialModel(flags.value(), use_mmap);
  if (!opened.ok()) return Fail(opened.status());
  if (use_mmap && !opened.value().mmap_used) {
    std::fprintf(stderr, "note: mmap unsupported for this artifact, "
                         "loading fully\n");
  }
  std::fprintf(stderr, "load mode: %s\n",
               opened.value().mmap_used ? "mmap" : "full");

  server::Server daemon(config, std::move(opened.value().model));
  const Status started = daemon.Start();
  if (!started.ok()) return Fail(started);
  if (!config.socket_path.empty()) {
    std::fprintf(stderr, "serving %s on %s%s\n", daemon.model().Kind(),
                 config.socket_path.c_str(),
                 daemon.model().ReadOnly() ? " (read-only)" : "");
  }
  if (!config.listen_address.empty()) {
    // The resolved port matters when --listen asked for port 0; scripts
    // parse this line to find the connect target.
    std::fprintf(stderr, "listening on tcp: %s (port %u)%s\n",
                 config.listen_address.c_str(),
                 static_cast<unsigned>(daemon.tcp_port()),
                 daemon.model().ReadOnly() ? " (read-only)" : "");
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);  // Peer resets must not kill the daemon.
#endif

  // A signal handler cannot safely notify the server's condition
  // variable, so a tiny waker thread polls the flag and converts it into
  // a RequestShutdown; Wait() returns on either shutdown source.
  std::thread signal_waker([&daemon] {
    while (daemon.running() && g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (g_signal != 0) daemon.RequestShutdown();
  });
  daemon.Wait();
  daemon.RequestShutdown();
  signal_waker.join();

  const server::ServerStatsSnapshot stats = daemon.StatsNow();
  std::fprintf(stderr,
               "shutdown: %llu items ingested, %llu queries served, %llu "
               "snapshots written\n",
               static_cast<unsigned long long>(stats.items_ingested),
               static_cast<unsigned long long>(stats.queries_served),
               static_cast<unsigned long long>(stats.snapshots_written));
  return 0;
}

}  // namespace
}  // namespace opthash::cli

int main(int argc, char** argv) { return opthash::cli::Main(argc, argv); }

#!/usr/bin/env python3
"""Project-invariant linter: the conventions no off-the-shelf tool knows.

The wire protocol, the snapshot format, and the CLI flag surface each
span several files that must stay in lockstep — an enum in a header, its
codec, its hostile-payload tests, its fuzzer entry, its byte-layout doc
row. PRs 5-8 each re-discovered one of these by hand; this linter turns
the drift into a test failure (it is registered as a ctest and a CI
step).

Enforced invariants:

  MessageType (src/server/protocol.h) — every enumerator must
    1. appear as a `case` in BOTH the MessageTypeName and the
       PeekMessageType switches in protocol.cc (name + wire-level
       accept: a frame type Peek doesn't know can never decode),
    2. have round-trip/hostile-payload coverage in
       tests/server_protocol_test.cc,
    3. [requests only, value < 128] have a mutation base entry in
       tests/server_fuzz_test.cc,
    4. have a `| <value> |` byte-layout row in docs/OPERATIONS.md.

  SectionType (src/io/snapshot.h) — every enumerator must
    1. have a `| <value> |` row in docs/FORMATS.md,
    2. be referenced as `SectionType::kX` somewhere under tests/
       (round-trip or compat-fixture coverage).

  Tool flags — every `--flag` in a tool's kUsageText must appear in
    tools/CMakeLists.txt, where the help-flag test loops assert it in
    the tool's --help output.

  Kernel layer (src/sketch/kernels/) — every KernelOps entry point
    (function-pointer field in kernels.h) must be named in
    tests/kernel_differential_test.cc, and every KernelTier enumerator
    (simd_dispatch.h) in tests/simd_dispatch_test.cc: a new kernel or
    tier cannot ship without joining the scalar-vs-vector differential
    harness that proves the tiers bit-identical.

Adding a new frame/section/flag without its paired artifacts fails this
script with a message naming every missing piece (see
docs/DEVELOPING.md for the add-a-frame walkthrough). Exit 0 clean,
1 on violations, 2 on parse trouble (treated as failure: if the linter
cannot find the enum it guards, the guard is gone).
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def read(rel):
    path = os.path.join(REPO_ROOT, rel)
    try:
        with open(path, encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        sys.exit("opthash_lint: cannot read %s: %s" % (rel, exc))


def strip_comments(text):
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def parse_enum(text, enum_name, rel):
    """Returns [(name, value)] for `enum class <enum_name>` in `text`."""
    match = re.search(
        r"enum\s+class\s+%s\s*(?::\s*\w+\s*)?\{(.*?)\}" % enum_name,
        strip_comments(text), re.S)
    if not match:
        sys.exit("opthash_lint: enum %s not found in %s" % (enum_name, rel))
    out = []
    value = -1
    for part in match.group(1).split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, raw = part.partition("=")
            value = int(raw.strip(), 0)
            name = name.strip()
        else:
            name = part
            value += 1
        out.append((name, value))
    if not out:
        sys.exit("opthash_lint: enum %s parsed empty in %s"
                 % (enum_name, rel))
    return out


def switch_cases(source, function_signature_regex):
    """Enumerator names appearing as `case MessageType::kX:` inside the
    function whose definition starts at `function_signature_regex`."""
    match = re.search(function_signature_regex, source)
    if not match:
        sys.exit("opthash_lint: function %r not found in protocol.cc"
                 % function_signature_regex)
    # Scan to the function's closing brace by depth counting.
    depth = 0
    start = source.index("{", match.start())
    for i in range(start, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                body = source[start:i]
                break
    else:
        sys.exit("opthash_lint: unbalanced braces after %r"
                 % function_signature_regex)
    return set(re.findall(r"case\s+MessageType::(\w+)\s*:", body))


def doc_rows(text):
    """Set of integer first-column values of markdown table rows."""
    return set(int(v) for v in
               re.findall(r"^\|\s*`?(\d+)`?\s*\|", text, re.M))


def usage_flags(tool_source):
    """--flags inside a tool's kUsageText literal (the single source of
    truth for its documented surface)."""
    match = re.search(r"kUsageText\s*=\s*(.*?);", tool_source, re.S)
    if not match:
        return None
    flags = set(re.findall(r"--([a-z][a-z0-9-]*)", match.group(1)))
    # Synopsis placeholders, not real flags.
    return flags - {"flag", "help"}


def check_message_types(problems):
    header = read("src/server/protocol.h")
    impl = read("src/server/protocol.cc")
    protocol_test = read("tests/server_protocol_test.cc")
    fuzz_test = read("tests/server_fuzz_test.cc")
    operations = read("docs/OPERATIONS.md")
    rows = doc_rows(operations)

    name_cases = switch_cases(impl, r"MessageTypeName\s*\(")
    peek_cases = switch_cases(impl, r"PeekMessageType\s*\(")

    for name, value in parse_enum(header, "MessageType",
                                  "src/server/protocol.h"):
        stem = name[1:] if name.startswith("k") else name
        where = "MessageType::%s (= %d)" % (name, value)
        if name not in name_cases:
            problems.append(
                "%s: no `case` in protocol.cc MessageTypeName — the frame "
                "has no wire name" % where)
        if name not in peek_cases:
            problems.append(
                "%s: no `case` in protocol.cc PeekMessageType — the type "
                "byte is rejected before any decoder runs" % where)
        if ("MessageType::%s" % name) not in protocol_test \
                and stem not in protocol_test:
            problems.append(
                "%s: no round-trip/hostile-payload coverage in "
                "tests/server_protocol_test.cc" % where)
        if value < 128 and ("MessageType::%s" % name) not in fuzz_test \
                and stem not in fuzz_test:
            problems.append(
                "%s: request type missing from the mutation bases in "
                "tests/server_fuzz_test.cc" % where)
        if value not in rows:
            problems.append(
                "%s: no `| %d |` byte-layout row in docs/OPERATIONS.md "
                "wire tables" % (where, value))


def check_section_types(problems):
    header = read("src/io/snapshot.h")
    formats = read("docs/FORMATS.md")
    rows = doc_rows(formats)
    tests_dir = os.path.join(REPO_ROOT, "tests")
    test_blob = "".join(
        read(os.path.join("tests", f)) for f in sorted(os.listdir(tests_dir))
        if f.endswith((".cc", ".h")))

    for name, value in parse_enum(header, "SectionType",
                                  "src/io/snapshot.h"):
        where = "SectionType::%s (= %d)" % (name, value)
        if value not in rows:
            problems.append(
                "%s: no `| %d |` row in docs/FORMATS.md (section-type "
                "table + payload spec)" % (where, value))
        # Qualified match: a bare `kRandomForest` could be ClassifierKind.
        if ("SectionType::%s" % name) not in test_blob:
            problems.append(
                "%s: never referenced under tests/ — add round-trip or "
                "compat-fixture coverage naming it" % where)


def check_tool_flags(problems):
    cmake = read("tools/CMakeLists.txt")
    for tool in ("opthash_cli", "opthash_serve", "opthash_client"):
        flags = usage_flags(read("tools/%s.cc" % tool))
        if flags is None:
            problems.append("%s.cc: kUsageText literal not found" % tool)
            continue
        for flag in sorted(flags):
            if not re.search(r"\b%s\b" % re.escape(flag), cmake):
                problems.append(
                    "%s --%s: documented in kUsageText but absent from "
                    "tools/CMakeLists.txt — add it to the tool's "
                    "help-flag test list" % (tool, flag))


def check_kernel_entry_points(problems):
    kernels_header = read("src/sketch/kernels/kernels.h")
    dispatch_header = read("src/sketch/kernels/simd_dispatch.h")
    differential = read("tests/kernel_differential_test.cc")
    dispatch_test = read("tests/simd_dispatch_test.cc")

    ops_match = re.search(r"struct\s+KernelOps\s*\{(.*?)\};",
                          strip_comments(kernels_header), re.S)
    if not ops_match:
        sys.exit("opthash_lint: struct KernelOps not found in "
                 "src/sketch/kernels/kernels.h")
    fields = re.findall(r"\(\s*\*\s*(\w+)\s*\)\s*\(", ops_match.group(1))
    if not fields:
        sys.exit("opthash_lint: KernelOps parsed with no function-pointer "
                 "fields — the kernel guard is gone")
    for field in fields:
        if not re.search(r"\b%s\b" % re.escape(field), differential):
            problems.append(
                "KernelOps::%s: kernel entry point never exercised in "
                "tests/kernel_differential_test.cc — every kernel needs a "
                "per-tier differential case proving bit-identity" % field)

    for name, _ in parse_enum(dispatch_header, "KernelTier",
                              "src/sketch/kernels/simd_dispatch.h"):
        if not re.search(r"\b%s\b" % re.escape(name), dispatch_test):
            problems.append(
                "KernelTier::%s: enumerator never named in "
                "tests/simd_dispatch_test.cc — a tier must be coverable by "
                "the force/availability/naming suite" % name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args()
    problems = []
    check_message_types(problems)
    check_section_types(problems)
    check_tool_flags(problems)
    check_kernel_entry_points(problems)
    if problems:
        print("opthash_lint: %d invariant violation(s)\n" % len(problems))
        for p in problems:
            print("  * %s" % p)
        print("\nThe add-a-frame/section/flag checklists live in "
              "docs/DEVELOPING.md.")
        return 1
    print("opthash_lint: all project invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""clang-tidy driver for the opthash tree.

Runs the checked-in .clang-tidy configuration over every repo-owned
translation unit in a compile_commands.json and fails (exit 1) on any
diagnostic — WarningsAsErrors is '*' so a "warning" from tidy is a gate
failure here, matching the CI contract that a clean tree stays clean.

Usage:
  tools/lint/run_clang_tidy.py --build-dir build [--jobs N]
      [--only src/server] [--export findings.txt]
  tools/lint/run_clang_tidy.py --self-test

The binary is resolved from $CLANG_TIDY, then clang-tidy-18 .. -14, then
plain clang-tidy. A missing binary is a hard error (exit 2) with an
install hint — the gate must never silently pass because the tool was
absent.

--self-test seeds a temporary file with known violations and asserts the
configured check set flags them: it proves the gate DETECTS, not merely
runs. CI executes the self-test before the tree sweep so a
misconfiguration (empty check list, wrong config discovery) fails loudly
instead of green-washing the sweep.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# Only repo-owned code is in scope; FetchContent'd gtest/benchmark
# sources appear in compile_commands.json but are not ours to lint.
OWNED_PREFIXES = ("src/", "tools/", "tests/", "bench/", "examples/")

CANDIDATE_BINARIES = (
    "clang-tidy-18", "clang-tidy-17", "clang-tidy-16", "clang-tidy-15",
    "clang-tidy-14", "clang-tidy",
)


def find_clang_tidy():
    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        path = shutil.which(explicit)
        if path:
            return path
        sys.exit("error: $CLANG_TIDY=%r not found on PATH" % explicit)
    for name in CANDIDATE_BINARIES:
        path = shutil.which(name)
        if path:
            return path
    sys.stderr.write(
        "error: no clang-tidy binary found (tried %s).\n"
        "Install one (e.g. `apt-get install clang-tidy-18`) or point "
        "$CLANG_TIDY at it.\n" % ", ".join(CANDIDATE_BINARIES))
    sys.exit(2)


def owned_sources(build_dir, only):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            "error: %s not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the tree's default)"
            % db_path)
    with open(db_path) as fh:
        entries = json.load(fh)
    files = []
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        try:
            rel = os.path.relpath(path, REPO_ROOT)
        except ValueError:
            continue
        if rel.startswith(".."):
            continue  # FetchContent / system sources.
        if not rel.startswith(OWNED_PREFIXES):
            continue
        if only and not any(rel.startswith(o) for o in only):
            continue
        files.append(path)
    return sorted(set(files))


def run_one(binary, build_dir, path):
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    # tidy prints findings on stdout; config/driver noise on stderr.
    findings = proc.stdout.strip()
    hard_error = proc.returncode != 0 and not findings
    return path, findings, proc.returncode, (
        proc.stderr.strip() if hard_error else "")


def sweep(args):
    binary = find_clang_tidy()
    build_dir = os.path.abspath(args.build_dir)
    files = owned_sources(build_dir, args.only)
    if not files:
        sys.exit("error: no owned sources matched in %s" % build_dir)
    print("clang-tidy: %s over %d translation units"
          % (binary, len(files)))
    failures = []
    exported = []
    jobs = args.jobs or os.cpu_count() or 1
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for path, findings, rc, errors in pool.map(
                lambda p: run_one(binary, build_dir, p), files):
            rel = os.path.relpath(path, REPO_ROOT)
            if findings or rc != 0:
                failures.append(rel)
                block = findings or errors or "(exit %d, no output)" % rc
                print("== %s\n%s" % (rel, block))
                exported.append("== %s\n%s\n" % (rel, block))
    if args.export and exported:
        with open(args.export, "w") as fh:
            fh.writelines(exported)
        print("findings exported to %s" % args.export)
    if failures:
        print("clang-tidy: FAILED — findings in %d/%d files"
              % (len(failures), len(files)))
        return 1
    print("clang-tidy: clean (%d files)" % len(files))
    return 0


# One deliberate violation per check family the gate leans on. If tidy
# reports nothing here, the configuration is broken (not the tree clean).
SELF_TEST_SOURCE = """
#include <string>
#include <utility>
int* seeded_null() { return 0; }  // modernize-use-nullptr
std::string seeded_use_after_move(std::string s) {
  std::string t = std::move(s);
  return s + t;  // bugprone-use-after-move
}
void seeded_copy_in_loop(const std::string& x) {
  for (int i = 0; i < 3; ++i) {
    std::string copy = x;  // performance-unnecessary-copy-initialization
    (void)copy;
  }
}
"""


def self_test():
    binary = find_clang_tidy()
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "seeded_violation.cc")
        with open(src, "w") as fh:
            fh.write(SELF_TEST_SOURCE)
        proc = subprocess.run(
            [binary, "--config-file",
             os.path.join(REPO_ROOT, ".clang-tidy"), src,
             "--", "-std=c++17"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    expected = ("modernize-use-nullptr", "bugprone-use-after-move")
    missing = [c for c in expected if c not in proc.stdout]
    if missing:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print("self-test: FAILED — seeded violations not flagged: %s"
              % ", ".join(missing))
        return 1
    print("self-test: OK — seeded violations flagged (%s)"
          % ", ".join(expected))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel tidy processes (0 = cores)")
    parser.add_argument("--only", action="append", default=[],
                        help="restrict to repo-relative path prefix "
                             "(repeatable)")
    parser.add_argument("--export", default="",
                        help="also write findings to this file (CI "
                             "artifact)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches seeded violations")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    sys.exit(sweep(args))


if __name__ == "__main__":
    main()

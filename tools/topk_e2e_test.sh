#!/bin/sh
# End-to-end top-k acceptance test (registered as ctest
# opthash_serve_topk_e2e), proving the contracts the TopK surface is for:
#
#  1. Served top-k == offline top-k: a space-saving checkpoint queried
#     through the daemon (`opthash_client topk`) prints byte-identical
#     id,estimate,error_bound,guaranteed CSV to the offline
#     `opthash_cli topk` verb on the same file.
#  2. Unsupported kinds degrade, not crash: a count-min daemon answers
#     topk with a kError frame naming the supported kinds, and the same
#     daemon still answers ping/query/metrics afterwards.
#  3. The model-id envelope is honoured: --model-id 0 behaves exactly
#     like a bare client, a non-zero id is rejected NotFound.
#
# Usage: topk_e2e_test.sh CLI SERVE CLIENT WORKDIR [unix|tcp]
set -eu

CLI="$1"; SERVE="$2"; CLIENT="$3"; WORK="$4"; MODE="${5:-unix}"
SOCK="/tmp/opthash_topk_e2e_$$.sock"

if [ "$MODE" = "tcp" ]; then
  SERVE_LISTEN="--listen 127.0.0.1:0"
else
  SERVE_LISTEN="--socket $SOCK"
fi

rm -rf "$WORK"
mkdir -p "$WORK"
trap 'kill -9 $SERVE_PID 2>/dev/null || true; rm -f "$SOCK"' EXIT

# Sets TARGET to the client's connect flags for the daemon whose log is
# $1 — in tcp mode that means waiting for the listen line and parsing
# the ephemeral port out of it (a new port every daemon start).
resolve_target() {
  if [ "$MODE" = "tcp" ]; then
    i=0
    while ! grep -q "listening on tcp:" "$1" 2>/dev/null; do
      i=$((i + 1))
      [ "$i" -lt 100 ] || { echo "FAIL: daemon never printed its port"; exit 1; }
      sleep 0.1
    done
    PORT=$(sed -n 's/.*(port \([0-9][0-9]*\)).*/\1/p' "$1" | head -n 1)
    TARGET="--connect 127.0.0.1:$PORT"
  else
    TARGET="--socket $SOCK"
  fi
}

wait_ready() {
  i=0
  while ! "$CLIENT" $TARGET ping >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: daemon never became ready"; exit 1; }
    sleep 0.1
  done
}

# ---------------------------------------------------------------------------
echo "== part 1: served top-k byte-identical to offline topk verb"

# Divisor trace: key j appears floor(500/j) times for j in 1..10, a
# skewed distribution with an easy exact oracle.
awk 'BEGIN {
  print "id,text";
  for (i = 1; i < 500; i++)
    for (j = 1; j <= 10; j++)
      if (i % j == 0) printf "%d,\n", j;
}' > "$WORK/trace.csv"

"$CLI" snapshot --trace "$WORK/trace.csv" --out "$WORK/ss.bin" \
  --sketch ss > /dev/null

"$CLI" topk --in "$WORK/ss.bin" --k 8 2>/dev/null > "$WORK/offline.csv"

"$SERVE" $SERVE_LISTEN --in "$WORK/ss.bin" \
  > "$WORK/serve_ss.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_ss.log"
wait_ready
"$CLIENT" $TARGET topk --k 8 > "$WORK/served.csv"
# Model-id 0 must be byte-identical to a bare client (default id).
"$CLIENT" $TARGET --model-id 0 topk --k 8 > "$WORK/served_id0.csv"
# A non-zero model id is NotFound until the multi-bundle registry lands.
if "$CLIENT" $TARGET --model-id 7 topk --k 8 > /dev/null 2>&1; then
  echo "FAIL: model id 7 was answered; expected NotFound"
  exit 1
fi
"$CLIENT" $TARGET shutdown > /dev/null
wait "$SERVE_PID"

grep -q "^id,estimate,error_bound,guaranteed$" "$WORK/offline.csv" || {
  echo "FAIL: offline topk did not print the CSV header"
  exit 1
}
diff "$WORK/offline.csv" "$WORK/served.csv" || {
  echo "FAIL: served top-k differs from offline topk verb"
  exit 1
}
diff "$WORK/served.csv" "$WORK/served_id0.csv" || {
  echo "FAIL: --model-id 0 answers differ from bare-client answers"
  exit 1
}
echo "ok: served top-k byte-identical to offline topk"

# ---------------------------------------------------------------------------
echo "== part 2: unsupported kind answers kError and the daemon survives"

"$SERVE" $SERVE_LISTEN --sketch cms \
  > "$WORK/serve_cms.log" 2>&1 &
SERVE_PID=$!
resolve_target "$WORK/serve_cms.log"
wait_ready
"$CLIENT" $TARGET ingest --trace "$WORK/trace.csv" > /dev/null
if "$CLIENT" $TARGET topk --k 8 > /dev/null 2> "$WORK/cms_topk.err"; then
  echo "FAIL: count-min daemon answered topk; expected an error"
  exit 1
fi
grep -q "cannot answer top-k" "$WORK/cms_topk.err" || {
  echo "FAIL: topk error did not explain the unsupported kind"
  exit 1
}
# The error must not have taken the daemon (or even the session) down.
"$CLIENT" $TARGET ping > /dev/null || {
  echo "FAIL: daemon dead after unsupported topk request"
  exit 1
}
"$CLIENT" $TARGET metrics | grep -q "opthash_topk_requests_total" || {
  echo "FAIL: metrics scrape missing the topk request counter"
  exit 1
}
"$CLIENT" $TARGET shutdown > /dev/null
wait "$SERVE_PID"
echo "ok: unsupported top-k degrades to a protocol error, daemon survives"
echo "PASS"

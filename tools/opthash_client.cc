// opthash_client — scripting/testing companion of opthash_serve: one
// shot per invocation, speaking the length-prefixed binary protocol of
// docs/OPERATIONS.md over the daemon's Unix-domain socket or TCP
// listener. Query output is the same `id,estimate` CSV the offline
// `query`/`restore` verbs print, so offline and served answers diff
// cleanly.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "server/client.h"
#include "stream/trace_io.h"

namespace opthash::cli {
namespace {

constexpr const char* kUsageText =
    "usage: opthash_client (--socket /path/daemon.sock |\n"
    "                       --connect host:port) <verb> [flags]\n"
    "  ping                       liveness probe (exit 0 iff serving)\n"
    "  query    --ids 1,2,3 | --trace queries.csv [--batch B]\n"
    "                             prints id,estimate CSV (distinct ids,\n"
    "                             first-seen order, like the query verb)\n"
    "  ingest   --trace stream.csv [--batch B]\n"
    "                             streams arrivals to the daemon in\n"
    "                             batches; prints the items-ingested total\n"
    "  stats                      prints `key value` lines (items/queries/\n"
    "                             latency p50+p99/snapshot age/uptime)\n"
    "  topk     [--k N]           prints id,estimate,error_bound,guaranteed\n"
    "                             CSV of the N heaviest keys (default 10),\n"
    "                             byte-identical to `opthash_cli topk` on\n"
    "                             the same model\n"
    "  metrics                    prints the Prometheus text-exposition\n"
    "                             scrape body (counters, gauges, latency\n"
    "                             summary + histogram)\n"
    "  windows                    prints `key value` lines of the served\n"
    "                             ring: window size/sequence/decay and\n"
    "                             per-window counts, oldest first (fails\n"
    "                             unless the daemon serves a windowed\n"
    "                             model: --windows W --window N)\n"
    "  snapshot                   forces one snapshot rotation; prints the\n"
    "                             sequence number written\n"
    "  shutdown                   asks the daemon to exit cleanly\n"
    "\n"
    "flags:\n"
    "  --socket PATH   daemon Unix-domain socket\n"
    "  --connect H:P   daemon TCP address, e.g. 127.0.0.1:9090 (exactly\n"
    "                  one of --socket/--connect; same protocol, same\n"
    "                  answers on both transports)\n"
    "  --ids LIST      comma-separated uint64 keys for query\n"
    "  --trace CSV     `id,text` trace; ids feed the request (text is\n"
    "                  not transmitted — serving is key-only)\n"
    "  --batch B       keys per request frame (default 4096)\n"
    "  --k N           heavy hitters to request for topk (default 10)\n"
    "  --model-id M    address requests to model id M via the scoped\n"
    "                  request envelope (default 0 = the served model;\n"
    "                  other ids are NotFound until the registry lands)\n"
    "\n"
    "wire protocol + error codes: docs/OPERATIONS.md\n";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage(std::FILE* out) {
  std::fputs(kUsageText, out);
  return out == stdout ? 0 : 2;
}

struct Args {
  std::string verb;
  std::string target;  // Unix socket path or TCP host:port.
  std::string ids;
  std::string trace;
  size_t batch = 4096;
  uint32_t k = 10;
  uint32_t model_id = 0;
};

Result<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(std::string("flag needs a value: ") +
                                       name);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--socket" || arg == "--connect") {
      auto value = need_value(arg.c_str());
      if (!value.ok()) return value.status();
      if (!args.target.empty()) {
        return Status::InvalidArgument(
            "pass exactly one of --socket / --connect");
      }
      args.target = value.value();
    } else if (arg == "--ids") {
      auto value = need_value("--ids");
      if (!value.ok()) return value.status();
      args.ids = value.value();
    } else if (arg == "--trace") {
      auto value = need_value("--trace");
      if (!value.ok()) return value.status();
      args.trace = value.value();
    } else if (arg == "--batch") {
      auto value = need_value("--batch");
      if (!value.ok()) return value.status();
      char* end = nullptr;
      args.batch = std::strtoull(value.value().c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || args.batch == 0) {
        return Status::InvalidArgument("--batch must be a positive integer");
      }
    } else if (arg == "--k") {
      auto value = need_value("--k");
      if (!value.ok()) return value.status();
      char* end = nullptr;
      const unsigned long long k = std::strtoull(value.value().c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || k == 0 || k > UINT32_MAX) {
        return Status::InvalidArgument("--k must be a positive u32");
      }
      args.k = static_cast<uint32_t>(k);
    } else if (arg == "--model-id") {
      auto value = need_value("--model-id");
      if (!value.ok()) return value.status();
      char* end = nullptr;
      const unsigned long long id =
          std::strtoull(value.value().c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || id > UINT32_MAX) {
        return Status::InvalidArgument("--model-id must be a u32");
      }
      args.model_id = static_cast<uint32_t>(id);
    } else if (arg.rfind("--", 0) == 0) {
      return Status::InvalidArgument("unknown flag: " + arg);
    } else if (args.verb.empty()) {
      args.verb = arg;
    } else {
      return Status::InvalidArgument("unexpected argument: " + arg);
    }
  }
  if (args.verb.empty()) return Status::InvalidArgument("missing verb");
  if (args.target.empty()) {
    return Status::InvalidArgument("--socket or --connect is required");
  }
  return args;
}

Result<std::vector<uint64_t>> KeysOf(const Args& args, bool distinct) {
  std::vector<uint64_t> keys;
  if (!args.ids.empty()) {
    size_t at = 0;
    while (at <= args.ids.size()) {
      const size_t comma = args.ids.find(',', at);
      const std::string token =
          args.ids.substr(at, comma == std::string::npos ? std::string::npos
                                                         : comma - at);
      if (token.empty() ||
          token.find_first_not_of("0123456789") != std::string::npos) {
        return Status::InvalidArgument("--ids needs uint64s, got: " + token);
      }
      try {
        // std::stoull throws out_of_range where strtoull would silently
        // saturate to UINT64_MAX and query the wrong key.
        keys.push_back(std::stoull(token));
      } catch (const std::exception&) {
        return Status::InvalidArgument("--ids value out of uint64 range: " +
                                       token);
      }
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  } else if (!args.trace.empty()) {
    auto trace = stream::ReadTraceCsv(args.trace);
    if (!trace.ok()) return trace.status();
    keys.reserve(trace.value().size());
    for (const auto& record : trace.value()) keys.push_back(record.id);
  } else {
    return Status::InvalidArgument("query/ingest need --ids or --trace");
  }
  if (distinct) {
    // First-seen order, matching the offline query verb's output.
    std::vector<uint64_t> ordered;
    ordered.reserve(keys.size());
    std::unordered_set<uint64_t> seen;
    for (uint64_t key : keys) {
      if (seen.insert(key).second) ordered.push_back(key);
    }
    return ordered;
  }
  return keys;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      return Usage(stdout);
    }
  }
  auto parsed = Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return Usage(stderr);
  }
  Args args = parsed.value();
  // The client library splits oversized spans itself; clamping --batch
  // here just keeps the printed request sizes honest.
  if (args.batch > server::kMaxKeysPerFrame) {
    args.batch = server::kMaxKeysPerFrame;
  }

  auto client = server::Client::Connect(args.target);
  if (!client.ok()) return Fail(client.status());
  client.value().set_model_id(args.model_id);

  if (args.verb == "ping") {
    const Status status = client.value().Ping();
    if (!status.ok()) return Fail(status);
    std::printf("pong\n");
    return 0;
  }
  if (args.verb == "query") {
    auto keys = KeysOf(args, /*distinct=*/true);
    if (!keys.ok()) return Fail(keys.status());
    std::printf("id,estimate\n");
    std::vector<double> estimates;
    for (size_t base = 0; base < keys.value().size(); base += args.batch) {
      const size_t block =
          std::min(args.batch, keys.value().size() - base);
      const Status status = client.value().Query(
          Span<const uint64_t>(keys.value().data() + base, block),
          estimates);
      if (!status.ok()) return Fail(status);
      for (size_t i = 0; i < block; ++i) {
        std::printf("%llu,%.2f\n",
                    static_cast<unsigned long long>(keys.value()[base + i]),
                    estimates[i]);
      }
    }
    return 0;
  }
  if (args.verb == "ingest") {
    auto keys = KeysOf(args, /*distinct=*/false);
    if (!keys.ok()) return Fail(keys.status());
    uint64_t total = 0;
    for (size_t base = 0; base < keys.value().size(); base += args.batch) {
      const size_t block =
          std::min(args.batch, keys.value().size() - base);
      auto acked = client.value().Ingest(
          Span<const uint64_t>(keys.value().data() + base, block));
      if (!acked.ok()) return Fail(acked.status());
      total = acked.value();
    }
    std::printf("ingested %zu arrivals (server total this run: %llu)\n",
                keys.value().size(),
                static_cast<unsigned long long>(total));
    return 0;
  }
  if (args.verb == "stats") {
    auto stats = client.value().Stats();
    if (!stats.ok()) return Fail(stats.status());
    const server::ServerStatsSnapshot& s = stats.value();
    std::printf("items_ingested %llu\n",
                static_cast<unsigned long long>(s.items_ingested));
    std::printf("model_total_items %llu\n",
                static_cast<unsigned long long>(s.model_total_items));
    std::printf("queries_served %llu\n",
                static_cast<unsigned long long>(s.queries_served));
    std::printf("query_requests %llu\n",
                static_cast<unsigned long long>(s.query_requests));
    std::printf("ingest_requests %llu\n",
                static_cast<unsigned long long>(s.ingest_requests));
    std::printf("sessions_accepted %llu\n",
                static_cast<unsigned long long>(s.sessions_accepted));
    std::printf("snapshots_written %llu\n",
                static_cast<unsigned long long>(s.snapshots_written));
    std::printf("uptime_seconds %.3f\n", s.uptime_seconds);
    std::printf("query_p50_micros %.1f\n", s.query_p50_micros);
    std::printf("query_p99_micros %.1f\n", s.query_p99_micros);
    std::printf("snapshot_age_seconds %.3f\n", s.snapshot_age_seconds);
    return 0;
  }
  if (args.verb == "topk") {
    std::vector<sketch::HeavyHitter> hitters;
    const Status status = client.value().TopK(args.k, hitters);
    if (!status.ok()) return Fail(status);
    std::printf("%s\n", sketch::kHeavyHitterCsvHeader);
    for (const sketch::HeavyHitter& hitter : hitters) {
      std::printf("%s\n", sketch::HeavyHitterCsvRow(hitter).c_str());
    }
    return 0;
  }
  if (args.verb == "metrics") {
    std::string text;
    const Status status = client.value().Metrics(text);
    if (!status.ok()) return Fail(status);
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (args.verb == "windows") {
    auto window_stats = client.value().WindowStats();
    if (!window_stats.ok()) return Fail(window_stats.status());
    const server::WindowStatsSnapshot& w = window_stats.value();
    std::printf("num_windows %zu\n", w.window_counts.size());
    std::printf("window_items %llu\n",
                static_cast<unsigned long long>(w.window_items));
    std::printf("decay %.6f\n", w.decay);
    std::printf("window_sequence %llu\n",
                static_cast<unsigned long long>(w.window_sequence));
    std::printf("items_in_current_window %llu\n",
                static_cast<unsigned long long>(w.items_in_current_window));
    std::string counts;
    for (size_t i = 0; i < w.window_counts.size(); ++i) {
      if (i > 0) counts += ',';
      counts += std::to_string(w.window_counts[i]);
    }
    std::printf("window_counts %s\n", counts.c_str());
    return 0;
  }
  if (args.verb == "snapshot") {
    auto sequence = client.value().Snapshot();
    if (!sequence.ok()) return Fail(sequence.status());
    std::printf("snapshot %llu written\n",
                static_cast<unsigned long long>(sequence.value()));
    return 0;
  }
  if (args.verb == "shutdown") {
    const Status status = client.value().Shutdown();
    if (!status.ok()) return Fail(status);
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  std::fprintf(stderr, "error: unknown verb: %s\n", args.verb.c_str());
  return Usage(stderr);
}

}  // namespace
}  // namespace opthash::cli

int main(int argc, char** argv) { return opthash::cli::Main(argc, argv); }

// Fig. 7 (a-d): estimation error as a function of the estimator's size
// (in KB) on the query-log substitute, after day 30 and day 70. For each
// family the best hyperparameter configuration is reported, as in §7.2.
//
// Scale note (see DESIGN.md §1): the log is a calibrated synthetic
// substitute for the AOL data (Zipf s = 0.82, text shape correlated with
// rank); the universe and arrival volume are ~50x smaller than AOL so the
// harness runs in CI time. Absolute errors are therefore smaller than the
// paper's; the *shape* — opt-hash dominating both metrics, with the
// largest margins on the average (per element) error and at small sizes —
// is the reproduction target.

#include <cstdio>

#include "aol_harness.h"
#include "common/table_printer.h"

namespace opthash::bench {
namespace {

void Run() {
  stream::QueryLogConfig config;
  config.num_queries = 300000;
  config.arrivals_per_day = 30000;
  config.num_days = 71;
  config.seed = 2006;
  AolHarness harness(config);
  std::printf(
      "Fig. 7: error vs estimator size. Query-log substitute: %zu unique "
      "queries, %zu arrivals/day, day-0 support = %zu queries.\n\n",
      config.num_queries, config.arrivals_per_day, harness.NumDay0Queries());

  TablePrinter table({"size_kb", "day", "family", "best_config",
                      "avg_abs_error", "expected_abs_error"});
  const std::vector<size_t> checkpoint_days = {30, 70};

  for (double size_kb : {1.2, 4.0, 12.0, 40.0, 120.0}) {
    const auto buckets = static_cast<size_t>(size_kb * 1000.0 / 4.0);
    std::vector<AolCandidate> candidates =
        harness.BuildCandidates(buckets, /*seed=*/9);
    const auto metrics = harness.Run(candidates, checkpoint_days, 70);

    for (size_t checkpoint = 0; checkpoint < checkpoint_days.size();
         ++checkpoint) {
      for (const std::string family :
           {"count-min", "heavy-hitter", "opt-hash"}) {
        const size_t best = BestCandidate(candidates, metrics, family,
                                          checkpoint, /*use_average=*/true);
        if (best == SIZE_MAX) continue;
        const core::ErrorMetrics& m = metrics[best][checkpoint].metrics;
        table.AddRow({TablePrinter::Num(size_kb, 1),
                      std::to_string(checkpoint_days[checkpoint]), family,
                      candidates[best].description,
                      TablePrinter::Num(m.average_absolute_error, 2),
                      TablePrinter::Num(m.expected_magnitude_error, 2)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 7): all errors fall with size; opt-hash "
      "< heavy-hitter < count-min\nthroughout, with the largest opt-hash "
      "margin on the average (per element) error and at small\nsizes; the "
      "expected-magnitude gap narrows as size grows.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

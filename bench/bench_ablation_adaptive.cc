// Ablation (DESIGN.md §3): static opt-hash vs the §5.3 adaptive counting
// extension. Unseen elements (never in the prefix) are where the two
// differ: the static estimator can only answer with stale prefix averages,
// while the adaptive one keeps counting through the classifier + Bloom
// filter, at the cost of the filter's memory and its overestimation bias.
// The Bloom false-positive rate is swept to expose the accuracy/memory
// trade-off.

#include <cstdio>

#include "common/table_printer.h"
#include "core/adaptive_estimator.h"
#include "core/evaluation.h"
#include "experiment_util.h"

namespace opthash::bench {
namespace {

void Run() {
  std::printf(
      "Ablation: static vs adaptive opt-hash on unseen elements "
      "(G = 8, g0 = 0.33, 10 epochs)\n\n");

  stream::SyntheticConfig world_config;
  world_config.num_groups = 8;
  world_config.fraction_seen = 0.33;
  world_config.seed = 21;
  stream::SyntheticWorld world(world_config);
  Rng rng(22);
  const std::vector<size_t> prefix =
      world.GeneratePrefix(world.DefaultPrefixLength(), rng);
  const PrefixSummary summary = SummarizePrefix(prefix);
  const std::vector<core::PrefixElement> prefix_elements =
      BuildPrefixElements(world, summary);
  const std::vector<size_t> stream_tail =
      world.GenerateStream(10 * prefix.size(), rng);

  stream::ExactCounter truth;
  for (size_t element : prefix) truth.Add(element);
  for (size_t element : stream_tail) truth.Add(element);

  auto train = [&]() {
    core::OptHashConfig config;
    config.total_buckets = 400;
    config.id_ratio = 0.3;
    config.lambda = 1.0;
    config.solver = core::SolverKind::kBcd;
    config.classifier = core::ClassifierKind::kCart;
    auto result = core::OptHashEstimator::Train(config, prefix_elements);
    OPTHASH_CHECK(result.ok());
    return std::move(result).value();
  };

  // Queries: unseen elements (prefix-ineligible) that actually appeared.
  std::vector<core::EvalQuery> unseen_queries;
  for (const auto& [element, count] : truth.counts()) {
    if (!world.PrefixEligible(element)) {
      unseen_queries.push_back({{element, &world.FeaturesOf(element)},
                                static_cast<double>(count)});
    }
  }

  TablePrinter table({"estimator", "bloom_fpr", "memory_buckets",
                      "unseen_avg_abs_error", "unseen_expected_error"});

  // Static baseline.
  {
    core::OptHashEstimator static_estimator = train();
    for (size_t element : stream_tail) {
      static_estimator.Update({element, &world.FeaturesOf(element)});
    }
    const core::ErrorMetrics metrics =
        core::EvaluateEstimator(static_estimator, unseen_queries);
    table.AddRow({"opt-hash (static)", "-",
                  std::to_string(static_estimator.MemoryBuckets()),
                  TablePrinter::Num(metrics.average_absolute_error, 2),
                  TablePrinter::Num(metrics.expected_magnitude_error, 2)});
  }

  // Adaptive variants across Bloom filter qualities.
  std::vector<uint64_t> prefix_ids;
  for (const auto& element : prefix_elements) prefix_ids.push_back(element.id);
  for (double fpr : {0.2, 0.05, 0.01, 0.001}) {
    core::AdaptiveConfig adaptive_config;
    adaptive_config.bloom_fpr = fpr;
    adaptive_config.expected_distinct = world.NumElements() * 2;
    core::AdaptiveOptHashEstimator adaptive(train(), adaptive_config,
                                            prefix_ids);
    for (size_t element : stream_tail) {
      adaptive.Update({element, &world.FeaturesOf(element)});
    }
    const core::ErrorMetrics metrics =
        core::EvaluateEstimator(adaptive, unseen_queries);
    table.AddRow({"opt-hash (adaptive)", TablePrinter::Num(fpr, 3),
                  std::to_string(adaptive.MemoryBuckets()),
                  TablePrinter::Num(metrics.average_absolute_error, 2),
                  TablePrinter::Num(metrics.expected_magnitude_error, 2)});
  }
  table.Print();
  std::printf(
      "\nReading: the adaptive extension cuts the unseen-element error "
      "relative to static mode;\nlower Bloom FPR costs more memory but "
      "removes the overestimation bias of c_j undercounts.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

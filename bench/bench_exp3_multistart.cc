// Experiment 3 (paper Fig. 4): stability of bcd across multiple random
// starting points for lambda = 0.5 and increasing G. The paper's takeaway:
// "bcd is robust to the (random) initialization of the algorithm and
// computes stable solutions" — i.e. the across-start standard deviation of
// every error term stays small relative to its mean.

#include <cstdio>

#include "common/running_stats.h"
#include "common/table_printer.h"
#include "experiment_util.h"
#include "opt/bcd.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumBuckets = 10;
constexpr size_t kNumStarts = 5;
constexpr double kLambda = 0.5;

void Run() {
  std::printf(
      "Experiment 3 (Fig. 4): bcd from %zu random starts, lambda = %.1f, "
      "b = %zu\n\n",
      kNumStarts, kLambda, kNumBuckets);
  TablePrinter table({"num_groups", "prefix_estimation_error",
                      "prefix_similarity_error", "prefix_overall_error",
                      "overall_rel_std", "elapsed_sec"});

  for (size_t groups = 4; groups <= 10; ++groups) {
    stream::SyntheticConfig world_config;
    world_config.num_groups = groups;
    world_config.fraction_seen = 0.5;
    world_config.seed = 5 * groups;
    stream::SyntheticWorld world(world_config);
    Rng rng(31 + groups);
    const PrefixSummary summary = SummarizePrefix(
        world.GeneratePrefix(world.DefaultPrefixLength(), rng));
    const opt::HashingProblem problem =
        BuildProblem(world, summary, kNumBuckets, kLambda);

    RunningStats estimation;
    RunningStats similarity;
    RunningStats overall;
    RunningStats seconds;
    for (size_t start = 0; start < kNumStarts; ++start) {
      opt::BcdConfig config;
      config.init = opt::InitStrategy::kRandom;
      config.seed = 9000 + 17 * start;
      const opt::SolveResult result = opt::BcdSolver(config).Solve(problem);
      const opt::NormalizedObjective normalized =
          opt::NormalizeObjective(problem, result.assignment);
      estimation.Add(normalized.estimation_error_per_element);
      similarity.Add(normalized.similarity_error_per_pair);
      overall.Add(normalized.overall);
      seconds.Add(result.elapsed_seconds);
    }
    const double rel_std =
        overall.mean() > 0 ? overall.stddev() / overall.mean() : 0.0;
    table.AddRow({std::to_string(groups),
                  TablePrinter::Num(estimation.mean(), 3) + " +/- " +
                      TablePrinter::Num(estimation.stddev(), 3),
                  TablePrinter::Num(similarity.mean(), 3) + " +/- " +
                      TablePrinter::Num(similarity.stddev(), 3),
                  TablePrinter::Num(overall.mean(), 3) + " +/- " +
                      TablePrinter::Num(overall.stddev(), 3),
                  TablePrinter::Num(rel_std, 4),
                  TablePrinter::Num(seconds.mean(), 3)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 4): small error bars at every G — the "
      "relative std of\nthe overall error stays in the low percents, i.e. "
      "bcd solutions are stable across starts.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

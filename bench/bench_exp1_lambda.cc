// Experiment 1 (paper Fig. 2): impact of the hyperparameter lambda on the
// learned hashing scheme for G = 6, comparing milp (branch-and-bound
// substitute), bcd and dp. Reports the raw (un-normalized) estimation,
// similarity and overall errors on S0, plus elapsed time, averaged over
// independent repetitions — the same four panels as Fig. 2 (a)-(d).

#include <cstdio>

#include "common/running_stats.h"
#include "common/table_printer.h"
#include "experiment_util.h"
#include "opt/bcd.h"
#include "opt/dp.h"
#include "opt/exact.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumGroups = 6;
constexpr size_t kNumBuckets = 10;
constexpr size_t kRepeats = 3;

struct SolverOutput {
  opt::ObjectiveValue value;
  double seconds = 0.0;
};

SolverOutput RunSolver(const std::string& name,
                       const opt::HashingProblem& problem, uint64_t seed) {
  SolverOutput output;
  if (name == "bcd") {
    opt::BcdConfig config;
    config.seed = seed;
    config.num_restarts = 3;  // "repeated multiple times from different
                              // starting points" (§4.3).
    opt::BcdSolver solver(config);
    const opt::SolveResult result = solver.Solve(problem);
    output.value = result.objective;
    output.seconds = result.elapsed_seconds;
  } else if (name == "dp") {
    // The paper's dp ignores the similarity term regardless of lambda; the
    // reported overall error is evaluated at the problem's lambda.
    opt::DpSolver solver;
    const opt::SolveResult result = solver.Solve(problem);
    output.value = result.objective;
    output.seconds = result.elapsed_seconds;
  } else {  // milp
    opt::ExactConfig config;
    config.time_limit_seconds = 1.0;  // Mirrors a Gurobi time limit.
    config.bcd.num_restarts = 3;
    config.bcd.seed = seed;
    opt::ExactSolver solver(config);
    const opt::SolveResult result = solver.Solve(problem);
    output.value = result.objective;
    output.seconds = result.elapsed_seconds;
  }
  return output;
}

void Run() {
  std::printf(
      "Experiment 1 (Fig. 2): impact of lambda, G = %zu, b = %zu, "
      "%zu repeats\n\n",
      kNumGroups, kNumBuckets, kRepeats);
  TablePrinter table({"lambda", "solver", "prefix_estimation_error",
                      "prefix_similarity_error", "prefix_overall_error",
                      "elapsed_sec"});

  for (double lambda : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    for (const std::string solver : {"bcd", "dp", "milp"}) {
      RunningStats estimation;
      RunningStats similarity;
      RunningStats overall;
      RunningStats seconds;
      for (size_t repeat = 0; repeat < kRepeats; ++repeat) {
        stream::SyntheticConfig world_config;
        world_config.num_groups = kNumGroups;
        world_config.fraction_seen = 0.5;
        world_config.seed = 100 + repeat;
        stream::SyntheticWorld world(world_config);
        Rng rng(200 + repeat);
        const PrefixSummary summary = SummarizePrefix(
            world.GeneratePrefix(world.DefaultPrefixLength(), rng));
        const opt::HashingProblem problem =
            BuildProblem(world, summary, kNumBuckets, lambda);
        const SolverOutput output = RunSolver(solver, problem, 300 + repeat);
        estimation.Add(output.value.estimation_error);
        similarity.Add(output.value.similarity_error);
        overall.Add(output.value.overall);
        seconds.Add(output.seconds);
      }
      table.AddRow({TablePrinter::Num(lambda, 1), solver,
                    TablePrinter::Num(estimation.mean(), 1) + " +/- " +
                        TablePrinter::Num(estimation.stddev(), 1),
                    TablePrinter::Num(similarity.mean(), 0) + " +/- " +
                        TablePrinter::Num(similarity.stddev(), 0),
                    TablePrinter::Num(overall.mean(), 1) + " +/- " +
                        TablePrinter::Num(overall.stddev(), 1),
                    TablePrinter::Num(seconds.mean(), 3)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 2): milp <= bcd on overall error with "
      "small gaps;\ndp minimizes the estimation error at every lambda but "
      "pays on similarity/overall\nfor lambda < 1; dp and bcd run in well "
      "under a second, milp costs the most.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

#ifndef OPTHASH_BENCH_AOL_HARNESS_H_
#define OPTHASH_BENCH_AOL_HARNESS_H_

// Shared harness for the real-world (§7) experiments on the AOL-substitute
// query log: builds the day-0 prefix, trains every estimator family at a
// given memory budget, streams the remaining days, and scores the §7.4
// metrics at day checkpoints. Used by bench_aol_error_vs_size (Fig. 7),
// bench_aol_error_vs_time (Fig. 8) and bench_aol_table1 (Table 1).

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/table_printer.h"
#include "core/baseline_estimators.h"
#include "core/evaluation.h"
#include "core/opt_hash_estimator.h"
#include "experiment_util.h"
#include "sketch/learned_count_min.h"
#include "stream/element.h"
#include "stream/query_log.h"

namespace opthash::bench {

/// One candidate estimator (a hyperparameter choice within a family).
struct AolCandidate {
  std::string family;       // "count-min" / "heavy-hitter" / "opt-hash".
  std::string description;  // e.g. "d=4" or "c=0.3".
  std::unique_ptr<core::FrequencyEstimator> estimator;
};

/// Checkpointed metrics for one candidate.
struct AolCheckpoint {
  size_t day = 0;
  core::ErrorMetrics metrics;
};

class AolHarness {
 public:
  explicit AolHarness(const stream::QueryLogConfig& config)
      : log_(config), pipeline_(log_) {
    // Day-0 prefix counts (the observed stream prefix S0 of §7.3).
    for (size_t rank : log_.GenerateDay(0)) {
      day0_counts_[rank] += 1.0;
    }
    // Ideal heavy-hitter oracle input: true frequencies over all days
    // (§7.2: "the IDs of the heavy-hitters in the test set (over the
    // entire 90-day period) are known").
    for (size_t day = 0; day < log_.NumDays(); ++day) {
      for (size_t rank : log_.GenerateDay(day)) {
        ++total_counts_[log_.QueryId(rank)];
      }
    }
  }

  const stream::QueryLog& log() const { return log_; }
  size_t NumDay0Queries() const { return day0_counts_.size(); }

  /// Builds the §7.2/§7.3 candidate set for a total budget of `buckets`.
  std::vector<AolCandidate> BuildCandidates(size_t buckets, uint64_t seed) {
    std::vector<AolCandidate> candidates;
    // count-min: depth swept over {1, 2, 4, 6}.
    for (size_t depth : {1u, 2u, 4u, 6u}) {
      if (buckets / depth == 0) continue;
      candidates.push_back(
          {"count-min", "d=" + std::to_string(depth),
           std::make_unique<core::CountMinEstimator>(buckets, depth, seed)});
    }
    // heavy-hitter (LCMS, ideal oracle): depth x b_heavy sweeps.
    for (size_t depth : {1u, 2u, 4u, 6u}) {
      for (size_t heavy : {10u, 100u, 1000u, 10000u}) {
        if (2 * heavy >= buckets) continue;  // b_heavy <= b/2 constraint.
        const std::vector<uint64_t> heavy_keys =
            sketch::SelectTopKeys(total_counts_, heavy);
        auto estimator = core::LearnedCmsEstimator::Create(
            buckets, depth, heavy_keys, seed);
        if (!estimator.ok()) continue;
        candidates.push_back(
            {"heavy-hitter",
             "d=" + std::to_string(depth) + ",bh=" + std::to_string(heavy),
             std::make_unique<core::LearnedCmsEstimator>(
                 std::move(estimator).value())});
      }
    }
    // opt-hash: ratio c swept over {0.03, 0.3}; lambda = 1 as in §7.3.
    for (double ratio : {0.03, 0.3}) {
      auto estimator = TrainOptHash(buckets, ratio, seed);
      if (estimator != nullptr) {
        candidates.push_back({"opt-hash",
                              "c=" + TablePrinter::Num(ratio, 2),
                              std::move(estimator)});
      }
    }
    return candidates;
  }

  /// Streams days 1..last_day through every candidate (baselines also see
  /// day 0), collecting metrics at the requested checkpoint days.
  /// Returns metrics[candidate][checkpoint].
  std::vector<std::vector<AolCheckpoint>> Run(
      std::vector<AolCandidate>& candidates,
      const std::vector<size_t>& checkpoint_days, size_t last_day) {
    stream::ExactCounter truth;
    // Day 0: baselines ingest it; opt-hash already folded it in at training.
    for (size_t rank : log_.GenerateDay(0)) {
      const uint64_t id = log_.QueryId(rank);
      truth.Add(id);
      for (auto& candidate : candidates) {
        if (candidate.family != "opt-hash") {
          candidate.estimator->Update({id, nullptr});
        }
      }
    }
    std::vector<std::vector<AolCheckpoint>> metrics(candidates.size());
    auto maybe_checkpoint = [&](size_t day) {
      if (std::find(checkpoint_days.begin(), checkpoint_days.end(), day) ==
          checkpoint_days.end()) {
        return;
      }
      const std::vector<core::EvalQuery> queries = DayQueries(day, truth);
      for (size_t c = 0; c < candidates.size(); ++c) {
        metrics[c].push_back(
            {day, core::EvaluateEstimator(*candidates[c].estimator, queries)});
      }
    };
    maybe_checkpoint(0);
    for (size_t day = 1; day <= last_day; ++day) {
      for (size_t rank : log_.GenerateDay(day)) {
        const uint64_t id = log_.QueryId(rank);
        truth.Add(id);
        for (auto& candidate : candidates) {
          candidate.estimator->Update({id, nullptr});
        }
      }
      maybe_checkpoint(day);
    }
    return metrics;
  }

  /// The §7.4 query set U_t: queries appearing in day t, scored against
  /// their cumulative true frequency over days 0..t.
  std::vector<core::EvalQuery> DayQueries(size_t day,
                                          const stream::ExactCounter& truth) {
    std::set<size_t> day_ranks;
    for (size_t rank : log_.GenerateDay(day)) day_ranks.insert(rank);
    std::vector<core::EvalQuery> queries;
    queries.reserve(day_ranks.size());
    for (size_t rank : day_ranks) {
      const uint64_t id = log_.QueryId(rank);
      queries.push_back({{id, &pipeline_.Features(rank)},
                         static_cast<double>(truth.Count(id))});
    }
    return queries;
  }

  /// Cumulative true frequency of a rank at the end of the log.
  uint64_t TotalCount(size_t rank) const {
    auto it = total_counts_.find(log_.QueryId(rank));
    return it == total_counts_.end() ? 0 : it->second;
  }

  /// Trains the opt-hash estimator on the day-0 prefix (lambda = 1, fast
  /// O(nb) DP path, random-forest classifier — the §7.3 configuration).
  std::unique_ptr<core::OptHashEstimator> TrainOptHash(size_t buckets,
                                                       double ratio,
                                                       uint64_t seed) {
    std::vector<core::PrefixElement> prefix;
    prefix.reserve(day0_counts_.size());
    for (const auto& [rank, count] : day0_counts_) {
      prefix.push_back({.id = log_.QueryId(rank),
                        .frequency = count,
                        .features = pipeline_.Features(rank)});
    }
    core::OptHashConfig config;
    config.total_buckets = buckets;
    config.id_ratio = ratio;
    config.lambda = 1.0;
    config.solver = core::SolverKind::kDp;
    config.dp.algorithm = opt::DpAlgorithm::kSmawk;
    config.dp.center = opt::DpCostCenter::kMedian;
    config.classifier = core::ClassifierKind::kRandomForest;
    config.rf.num_trees = 10;
    config.rf.max_depth = 12;
    config.rf.seed = seed;
    config.seed = seed;
    auto result = core::OptHashEstimator::Train(config, prefix);
    if (!result.ok()) return nullptr;
    return std::make_unique<core::OptHashEstimator>(
        std::move(result).value());
  }

 private:
  stream::QueryLog log_;
  QueryFeaturePipeline pipeline_;
  std::unordered_map<size_t, double> day0_counts_;            // rank -> f0.
  std::unordered_map<uint64_t, uint64_t> total_counts_;       // id -> total.
};

/// Picks, within a family, the candidate with the lowest value of the
/// given metric at a checkpoint index ("we report the best performing
/// version", §7.2). Returns candidate index or SIZE_MAX.
inline size_t BestCandidate(
    const std::vector<AolCandidate>& candidates,
    const std::vector<std::vector<AolCheckpoint>>& metrics,
    const std::string& family, size_t checkpoint_index, bool use_average) {
  size_t best = SIZE_MAX;
  double best_value = 0.0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c].family != family) continue;
    const core::ErrorMetrics& m = metrics[c][checkpoint_index].metrics;
    const double value =
        use_average ? m.average_absolute_error : m.expected_magnitude_error;
    if (best == SIZE_MAX || value < best_value) {
      best = c;
      best_value = value;
    }
  }
  return best;
}

}  // namespace opthash::bench

#endif  // OPTHASH_BENCH_AOL_HARNESS_H_

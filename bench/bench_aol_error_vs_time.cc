// Fig. 8 (a-d): estimation error as a function of time (in days) for two
// memory configurations, 4 KB and 120 KB, on the query-log substitute.
// As in Fig. 7, the best hyperparameter configuration per family is shown
// (selected at the final checkpoint and held fixed across days, so the
// series are consistent over time).

#include <cstdio>

#include "aol_harness.h"
#include "common/table_printer.h"

namespace opthash::bench {
namespace {

void Run() {
  stream::QueryLogConfig config;
  config.num_queries = 300000;
  config.arrivals_per_day = 30000;
  config.num_days = 90;
  config.seed = 2006;
  AolHarness harness(config);
  std::printf(
      "Fig. 8: error vs time (days) at 4 KB and 120 KB. Day-0 support = %zu "
      "queries.\n\n",
      harness.NumDay0Queries());

  const std::vector<size_t> checkpoint_days = {10, 30, 50, 70, 89};

  for (double size_kb : {4.0, 120.0}) {
    const auto buckets = static_cast<size_t>(size_kb * 1000.0 / 4.0);
    std::vector<AolCandidate> candidates =
        harness.BuildCandidates(buckets, /*seed=*/10);
    const auto metrics = harness.Run(candidates, checkpoint_days, 89);

    std::printf("--- Size = %.1f KB ---\n", size_kb);
    TablePrinter table({"day", "family", "config", "avg_abs_error",
                        "expected_abs_error"});
    const size_t final_checkpoint = checkpoint_days.size() - 1;
    for (size_t checkpoint = 0; checkpoint < checkpoint_days.size();
         ++checkpoint) {
      for (const std::string family :
           {"count-min", "heavy-hitter", "opt-hash"}) {
        const size_t best = BestCandidate(candidates, metrics, family,
                                          final_checkpoint, true);
        if (best == SIZE_MAX) continue;
        const core::ErrorMetrics& m = metrics[best][checkpoint].metrics;
        table.AddRow({std::to_string(checkpoint_days[checkpoint]), family,
                      candidates[best].description,
                      TablePrinter::Num(m.average_absolute_error, 2),
                      TablePrinter::Num(m.expected_magnitude_error, 2)});
      }
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 8): errors grow with time for every "
      "method (counts accumulate);\nopt-hash stays below both baselines at "
      "both sizes across the whole horizon.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

// Figure 1 (paper Fig. 1 a-d): visualization of the synthetic universe and
// the learned hash codes. G = 10 groups, prefix of length |S0| = 1000 with
// g0 = 0.33; the hashing scheme is learned by bcd and unseen elements are
// hashed by a cart classifier. Since this is a terminal harness, the four
// panels are emitted as CSV files (plottable with any tool) and the
// structure they would show is summarized as purity statistics.

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "experiment_util.h"
#include "ml/decision_tree.h"
#include "opt/bcd.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumGroups = 10;
constexpr size_t kNumBuckets = 10;
constexpr size_t kPrefixLength = 1000;

void Run() {
  std::printf(
      "Figure 1: element groups, prefix frequencies, learned + predicted "
      "hash codes\n(G = %zu, |S0| = %zu, g0 = 0.33, b = %zu, solver = bcd, "
      "classifier = cart)\n\n",
      kNumGroups, kPrefixLength, kNumBuckets);

  stream::SyntheticConfig world_config;
  world_config.num_groups = kNumGroups;
  world_config.fraction_seen = 0.33;
  world_config.seed = 11;
  stream::SyntheticWorld world(world_config);
  Rng rng(12);
  const std::vector<size_t> prefix = world.GeneratePrefix(kPrefixLength, rng);
  const PrefixSummary summary = SummarizePrefix(prefix);

  const opt::HashingProblem problem =
      BuildProblem(world, summary, kNumBuckets, /*lambda=*/0.5);
  opt::BcdConfig bcd_config;
  bcd_config.seed = 13;
  const opt::SolveResult solved = opt::BcdSolver(bcd_config).Solve(problem);

  ml::Dataset train(world.config().feature_dim);
  for (size_t t = 0; t < summary.elements.size(); ++t) {
    train.Add(world.FeaturesOf(summary.elements[t]), solved.assignment[t]);
  }
  ml::DecisionTree cart;
  cart.Fit(train);

  // Panel (a): every element's features + group.
  CsvWriter panel_a({"x0", "x1", "group"});
  for (size_t e = 0; e < world.NumElements(); ++e) {
    panel_a.AddRow({TablePrinter::Num(world.FeaturesOf(e)[0], 4),
                    TablePrinter::Num(world.FeaturesOf(e)[1], 4),
                    std::to_string(world.GroupOf(e))});
  }
  // Panel (b): prefix element log-frequencies.
  CsvWriter panel_b({"x0", "x1", "log_frequency"});
  for (size_t t = 0; t < summary.elements.size(); ++t) {
    const size_t e = summary.elements[t];
    panel_b.AddRow({TablePrinter::Num(world.FeaturesOf(e)[0], 4),
                    TablePrinter::Num(world.FeaturesOf(e)[1], 4),
                    TablePrinter::Num(std::log10(summary.frequencies[t]), 4)});
  }
  // Panel (c): learned hash code for seen elements.
  CsvWriter panel_c({"x0", "x1", "bucket"});
  for (size_t t = 0; t < summary.elements.size(); ++t) {
    const size_t e = summary.elements[t];
    panel_c.AddRow({TablePrinter::Num(world.FeaturesOf(e)[0], 4),
                    TablePrinter::Num(world.FeaturesOf(e)[1], 4),
                    std::to_string(solved.assignment[t])});
  }
  // Panel (d): predicted hash code for unseen elements.
  std::unordered_map<size_t, bool> seen;
  for (size_t e : summary.elements) seen[e] = true;
  CsvWriter panel_d({"x0", "x1", "predicted_bucket"});
  std::unordered_map<int, std::unordered_map<size_t, size_t>> bucket_groups;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    if (seen.count(e)) continue;
    const int bucket = cart.Predict(world.FeaturesOf(e));
    panel_d.AddRow({TablePrinter::Num(world.FeaturesOf(e)[0], 4),
                    TablePrinter::Num(world.FeaturesOf(e)[1], 4),
                    std::to_string(bucket)});
    ++bucket_groups[bucket][world.GroupOf(e)];
  }

  for (const auto& [name, csv] :
       std::vector<std::pair<std::string, const CsvWriter*>>{
           {"fig1a_groups.csv", &panel_a},
           {"fig1b_prefix_frequencies.csv", &panel_b},
           {"fig1c_seen_hash_code.csv", &panel_c},
           {"fig1d_unseen_hash_code.csv", &panel_d}}) {
    const Status status = csv->WriteFile(name);
    std::printf("wrote %s (%zu rows): %s\n", name.c_str(), csv->row_count(),
                status.ToString().c_str());
  }

  // Summary: how feature-coherent the predicted buckets are (dominant group
  // share per bucket — high purity is what panels (c)/(d) show visually).
  std::printf("\nPredicted-bucket group purity (unseen elements):\n");
  TablePrinter purity({"bucket", "unseen_elements", "dominant_group",
                       "dominant_share"});
  for (const auto& [bucket, groups] : bucket_groups) {
    size_t total = 0;
    size_t best_count = 0;
    size_t best_group = 0;
    for (const auto& [group, count] : groups) {
      total += count;
      if (count > best_count) {
        best_count = count;
        best_group = group;
      }
    }
    purity.AddRow({std::to_string(bucket), std::to_string(total),
                   std::to_string(best_group),
                   TablePrinter::Num(static_cast<double>(best_count) /
                                         static_cast<double>(total),
                                     3)});
  }
  purity.Print();
  std::printf(
      "\nExpected shape (paper Fig. 1): buckets align with the Gaussian "
      "feature blobs,\nand unseen elements inherit the bucket of their "
      "group's seen members.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

// bench_window_accuracy — sliding-window estimation error versus window
// count: the same Zipf stream flows through windowed count-min rings
// that all cover the SAME live span (window_items x windows held
// constant) but slice it into 1..16 windows, and every ring's answers
// are scored against an exact trailing-span oracle (a brute-force count
// over the last `span` arrivals). Reported as JSON per ring (like the
// other bench drivers, so CI archives the trajectory per commit).
//
//   bench_window_accuracy [--quick] [--items N] [--span L] [--out path]
//
// Two error sources show up, and the table separates knob from noise:
// count-min collision error (identical across rows — same geometry,
// same stream) and GRANULARITY error — a ring expires whole windows, so
// coarse rings (few, large windows) answer over a live set that lags
// the ideal trailing span by up to one window. More windows buy a
// tighter match to the trailing span at the cost of one sub-sketch per
// window; the measured curve below is the sizing guidance quoted in
// docs/OPERATIONS.md ("Windowed serving").
// --quick shrinks the workload for the CI bench-smoke job.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "sketch/count_min_sketch.h"
#include "sketch/windowed_sketch.h"

namespace opthash {
namespace {

struct Options {
  size_t items = 200'000;  // Total arrivals streamed through each ring.
  size_t span = 8192;      // Live span every ring covers (items).
  bool quick = false;
  std::string out;  // Empty = stdout.
};

struct ResultRow {
  size_t windows = 0;
  uint64_t window_items = 0;
  size_t keys_scored = 0;
  double mean_abs_error = 0.0;
  double p99_abs_error = 0.0;
  double max_abs_error = 0.0;
  double mean_rel_error = 0.0;  // Relative to the span.
};

std::vector<uint64_t> ZipfishKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto r = static_cast<uint64_t>(rng.NextUint64());
    keys.push_back(r % ((r % 7 == 0) ? 20'000 : 128));
  }
  return keys;
}

// Streams every arrival through the ring, then scores a key sample
// against the exact count over the trailing `span` arrivals.
ResultRow MeasureRing(const std::vector<uint64_t>& stream, size_t span,
                      size_t windows) {
  ResultRow row;
  row.windows = windows;
  row.window_items = static_cast<uint64_t>(span / windows);

  sketch::CountMinSketch prototype(4096, 4, 17);
  auto ring = sketch::WindowedSketch<sketch::CountMinSketch>::Create(
      prototype, windows, row.window_items);
  if (!ring.ok()) {
    std::fprintf(stderr, "ring: %s\n", ring.status().ToString().c_str());
    std::abort();
  }
  ring.value().UpdateBatch(
      Span<const uint64_t>(stream.data(), stream.size()));

  // The oracle the operator has in mind: exact counts over the last
  // `span` arrivals, irrespective of window boundaries.
  std::unordered_map<uint64_t, uint64_t> trailing;
  const size_t start = stream.size() > span ? stream.size() - span : 0;
  for (size_t i = start; i < stream.size(); ++i) ++trailing[stream[i]];

  std::vector<double> errors;
  for (uint64_t key = 0; key < 2048; ++key) {
    const auto exact = trailing.find(key);
    const double truth =
        exact == trailing.end() ? 0.0
                                : static_cast<double>(exact->second);
    const double estimate = ring.value().Estimate(key);
    errors.push_back(std::abs(estimate - truth));
  }
  row.keys_scored = errors.size();
  double total = 0.0;
  for (double error : errors) total += error;
  row.mean_abs_error = total / static_cast<double>(errors.size());
  std::sort(errors.begin(), errors.end());
  row.p99_abs_error =
      errors[std::min(errors.size() - 1,
                      static_cast<size_t>(0.99 * errors.size()))];
  row.max_abs_error = errors.back();
  row.mean_rel_error = row.mean_abs_error / static_cast<double>(span);
  return row;
}

void PrintJson(std::FILE* out, const Options& options,
               const std::vector<ResultRow>& rows) {
  std::fprintf(out, "{\n  \"benchmark\": \"window_accuracy\",\n");
  std::fprintf(out, "  \"items\": %zu,\n", options.items);
  std::fprintf(out, "  \"span\": %zu,\n", options.span);
  std::fprintf(out, "  \"quick\": %s,\n", options.quick ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    std::fprintf(out,
                 "    {\"windows\": %zu, \"window_items\": %llu, "
                 "\"keys_scored\": %zu, \"mean_abs_error\": %.4f, "
                 "\"p99_abs_error\": %.4f, \"max_abs_error\": %.4f, "
                 "\"mean_rel_error\": %.6f}%s\n",
                 row.windows,
                 static_cast<unsigned long long>(row.window_items),
                 row.keys_scored, row.mean_abs_error, row.p99_abs_error,
                 row.max_abs_error, row.mean_rel_error,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--items") {
      options.items = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--span") {
      options.span = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--out") {
      options.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_window_accuracy [--quick] [--items N] "
                   "[--span L] [--out path]\n");
      return 2;
    }
  }
  if (options.quick) {
    options.items = 40'000;
    options.span = 4096;
  }

  const std::vector<uint64_t> stream = ZipfishKeys(options.items, 29);
  std::vector<ResultRow> rows;
  for (size_t windows : {1, 2, 4, 8, 16}) {
    rows.push_back(MeasureRing(stream, options.span, windows));
    std::fprintf(stderr,
                 "windows=%2zu x %llu items: mean=%.2f p99=%.2f max=%.2f\n",
                 rows.back().windows,
                 static_cast<unsigned long long>(rows.back().window_items),
                 rows.back().mean_abs_error, rows.back().p99_abs_error,
                 rows.back().max_abs_error);
  }

  if (!options.out.empty()) {
    std::FILE* file = std::fopen(options.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", options.out.c_str());
      return 1;
    }
    PrintJson(file, options, rows);
    std::fclose(file);
  } else {
    PrintJson(stdout, options, rows);
  }
  return 0;
}

}  // namespace
}  // namespace opthash

int main(int argc, char** argv) { return opthash::Main(argc, argv); }

// google-benchmark micro-benchmarks for the ML substrate: training and
// per-element prediction cost of the three classifiers (§5.2's h_U must be
// cheap — it sits on the stream's query path for unseen elements).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"

namespace opthash::ml {
namespace {

Dataset MakeBlobs(size_t n, size_t classes, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  for (size_t i = 0; i < n; ++i) {
    const auto label = static_cast<int>(i % classes);
    std::vector<double> x(dim);
    for (size_t d = 0; d < dim; ++d) {
      x[d] = static_cast<double>(label) * 2.0 + rng.NextGaussian();
    }
    data.Add(std::move(x), label);
  }
  return data;
}

void BM_LogRegFit(benchmark::State& state) {
  const Dataset data =
      MakeBlobs(static_cast<size_t>(state.range(0)), 10, 8, 1);
  LogisticRegressionConfig config;
  config.max_iters = 50;
  for (auto _ : state) {
    LogisticRegression model(config);
    model.Fit(data);
    benchmark::DoNotOptimize(model.Predict(data.Features(0)));
  }
}
BENCHMARK(BM_LogRegFit)->Arg(500)->Arg(2000);

void BM_CartFit(benchmark::State& state) {
  const Dataset data =
      MakeBlobs(static_cast<size_t>(state.range(0)), 10, 8, 2);
  for (auto _ : state) {
    DecisionTree tree;
    tree.Fit(data);
    benchmark::DoNotOptimize(tree.NodeCount());
  }
}
BENCHMARK(BM_CartFit)->Arg(500)->Arg(2000)->Arg(8000);

void BM_RandomForestFit(benchmark::State& state) {
  const Dataset data =
      MakeBlobs(static_cast<size_t>(state.range(0)), 10, 8, 3);
  RandomForestConfig config;
  config.num_trees = 10;
  for (auto _ : state) {
    RandomForest forest(config);
    forest.Fit(data);
    benchmark::DoNotOptimize(forest.NumTrees());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(500)->Arg(2000);

void BM_CartPredict(benchmark::State& state) {
  const Dataset data = MakeBlobs(4000, 10, 8, 4);
  DecisionTree tree;
  tree.Fit(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(data.Features(i++ & 4095 % 4000)));
    if (i >= 4000) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CartPredict);

void BM_RandomForestPredict(benchmark::State& state) {
  const Dataset data = MakeBlobs(4000, 10, 8, 5);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest(config);
  forest.Fit(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(data.Features(i)));
    if (++i >= 4000) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

void BM_LogRegPredict(benchmark::State& state) {
  const Dataset data = MakeBlobs(4000, 10, 8, 6);
  LogisticRegressionConfig config;
  config.max_iters = 30;
  LogisticRegression model(config);
  model.Fit(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(data.Features(i)));
    if (++i >= 4000) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRegPredict);

}  // namespace
}  // namespace opthash::ml

BENCHMARK_MAIN();

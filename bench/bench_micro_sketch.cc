// google-benchmark micro-benchmarks for the sketch substrate: per-arrival
// update / point-query cost of the Count-Min Sketch (standard and
// conservative), Count Sketch and Bloom filter — the "update and query
// times are constant" requirement of §1.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hashing/bloom_filter.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"

namespace opthash {
namespace {

std::vector<uint64_t> MakeKeys(size_t count) {
  Rng rng(1);
  ZipfSampler zipf(100000, 1.0);
  std::vector<uint64_t> keys(count);
  for (auto& key : keys) key = zipf.Sample(rng);
  return keys;
}

void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMinSketch sketch(1 << 12, static_cast<size_t>(state.range(0)),
                                7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_CountMinConservativeUpdate(benchmark::State& state) {
  sketch::CountMinSketch sketch(1 << 12, 4, 7, /*conservative_update=*/true);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinConservativeUpdate);

void BM_CountMinEstimate(benchmark::State& state) {
  sketch::CountMinSketch sketch(1 << 12, 4, 7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  for (uint64_t key : keys) sketch.Update(key);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinEstimate);

void BM_CountSketchUpdate(benchmark::State& state) {
  sketch::CountSketch sketch(1 << 12, 5, 7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_CountSketchEstimate(benchmark::State& state) {
  sketch::CountSketch sketch(1 << 12, 5, 7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  for (uint64_t key : keys) sketch.Update(key);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchEstimate);

void BM_LearnedCmsUpdate(benchmark::State& state) {
  std::vector<uint64_t> heavy(100);
  for (size_t h = 0; h < heavy.size(); ++h) heavy[h] = h + 1;
  auto sketch = sketch::LearnedCountMinSketch::Create(1 << 12, 2, heavy, 7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  size_t i = 0;
  for (auto _ : state) {
    sketch.value().Update(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LearnedCmsUpdate);

void BM_BloomAdd(benchmark::State& state) {
  hashing::BloomFilter filter(1 << 16, 5, 7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  size_t i = 0;
  for (auto _ : state) {
    filter.Add(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomMayContain(benchmark::State& state) {
  hashing::BloomFilter filter(1 << 16, 5, 7);
  const std::vector<uint64_t> keys = MakeKeys(4096);
  for (uint64_t key : keys) filter.Add(key);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomMayContain);

}  // namespace
}  // namespace opthash

BENCHMARK_MAIN();

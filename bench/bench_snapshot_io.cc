// bench_snapshot_io — save/load latency and on-disk size of the binary
// snapshot format vs. text parsing, plus the mmap zero-copy open path.
// Emits machine-readable JSON (like bench_throughput) so CI can archive
// the restart-cost trajectory across commits.
//
//   bench_snapshot_io [--quick] [--counters N] [--reps R] [--out path.json]
//
// Three artifacts are measured:
//   1. A Count-Min sketch with N counters (default 1,000,000 — the
//      acceptance workload): binary snapshot save/load, mmap view open,
//      and a text-parse baseline (the counters as whitespace decimals,
//      i.e. what a model.txt-style encoding would cost).
//   2. The trained model bundle (featurizer + estimator + classifier):
//      legacy text format vs. binary snapshot, both directions.
//   3. First-query latency through the mapped views (open + one query)
//      versus full deserialization — the hot-restart story.
//
// --quick shrinks N to 100,000 and reps to 3 for CI smoke runs. JSON goes
// to --out (stdout when omitted); a human summary always goes to stderr.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/opt_hash_estimator.h"
#include "io/model_io.h"
#include "io/sketch_snapshot.h"
#include "sketch/count_min_sketch.h"

namespace opthash {
namespace {

struct Options {
  size_t counters = 1'000'000;
  size_t reps = 5;
  std::string out;  // Empty = stdout.
  bool quick = false;
};

struct ResultRow {
  std::string artifact;
  std::string operation;
  double seconds = 0.0;
  size_t bytes = 0;
};

// Best-of-reps wall time: snapshots are dominated by deterministic CPU
// work, so min is the stable statistic.
template <typename Fn>
double BestOf(size_t reps, Fn fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

size_t FileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  return file ? static_cast<size_t>(file.tellg()) : 0;
}

// The text baseline for raw counters: what a whitespace-decimal encoding
// (the pre-snapshot model.txt idiom) costs to write and re-parse.
void WriteCountersAsText(const std::string& path,
                         const sketch::CountMinSketch& sketch) {
  io::ByteWriter payload;
  sketch.Serialize(payload);
  // Round-trip through the binary payload to reach the counters without
  // befriending the sketch: header is 40 bytes, then u64 counters.
  std::ostringstream out;
  out << sketch.width() << ' ' << sketch.depth() << ' ' << sketch.seed()
      << ' ' << sketch.total_count() << '\n';
  const uint8_t* counters = payload.bytes().data() + 40;
  const size_t count = sketch.width() * sketch.depth();
  for (size_t i = 0; i < count; ++i) {
    out << io::LoadLittleU64(counters + i * 8) << ' ';
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << out.str();
}

uint64_t ParseCountersFromText(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  size_t width = 0;
  size_t depth = 0;
  uint64_t seed = 0;
  uint64_t total = 0;
  file >> width >> depth >> seed >> total;
  uint64_t checksum = 0;
  uint64_t value = 0;
  for (size_t i = 0; i < width * depth && (file >> value); ++i) {
    checksum ^= value;
  }
  return checksum;
}

std::vector<core::PrefixElement> BenchPrefix(size_t elements) {
  Rng rng(7);
  std::vector<core::PrefixElement> prefix;
  prefix.reserve(elements);
  for (size_t i = 0; i < elements; ++i) {
    const bool heavy = i % 10 == 0;
    prefix.push_back(
        {.id = 1000 + i,
         .frequency = heavy ? 200.0 + static_cast<double>(i % 97) : 2.0,
         .features = {heavy ? 1.0 + 0.1 * rng.NextGaussian()
                            : -1.0 + 0.1 * rng.NextGaussian(),
                      rng.NextGaussian()}});
  }
  return prefix;
}

void PrintJson(std::FILE* out, const Options& options,
               const std::vector<ResultRow>& rows) {
  std::fprintf(out, "{\n  \"benchmark\": \"snapshot_io\",\n");
  std::fprintf(out, "  \"counters\": %zu,\n  \"reps\": %zu,\n",
               options.counters, options.reps);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"artifact\": \"%s\", \"operation\": \"%s\", "
                 "\"seconds\": %.6f, \"bytes\": %zu}%s\n",
                 rows[i].artifact.c_str(), rows[i].operation.c_str(),
                 rows[i].seconds, rows[i].bytes,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.counters = 100'000;
      options.reps = 3;
    } else if (arg == "--counters" && i + 1 < argc) {
      options.counters = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reps" && i + 1 < argc) {
      options.reps = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_snapshot_io [--quick] [--counters N] "
                   "[--reps R] [--out path.json]\n");
      return 2;
    }
  }
  std::vector<ResultRow> rows;
  const std::string dir = "/tmp";

  // ---- Artifact 1: Count-Min with N counters. -------------------------
  const size_t depth = 4;
  const size_t width = options.counters / depth;
  sketch::CountMinSketch cms(width, depth, 11);
  {
    // Load the sketch to realistic occupancy (~16 expected hits per
    // counter): an empty sketch would flatter the text baseline, whose
    // cost scales with digit count.
    Rng rng(13);
    std::vector<uint64_t> keys(1 << 16);
    for (uint64_t& key : keys) key = rng.NextBounded(1 << 19);
    const size_t rounds = options.counters / (1 << 14);
    for (size_t round = 0; round < rounds; ++round) {
      for (uint64_t& key : keys) key = (key * 2862933555777941757ull) + 1;
      cms.UpdateBatch(keys);
    }
  }
  const std::string cms_bin = dir + "/bench_snapshot_cms.bin";
  const std::string cms_txt = dir + "/bench_snapshot_cms.txt";

  rows.push_back({"cms", "binary_save",
                  BestOf(options.reps,
                         [&] { (void)io::SaveSketchSnapshot(cms_bin, cms); }),
                  0});
  rows.back().bytes = FileBytes(cms_bin);
  rows.push_back(
      {"cms", "binary_load",
       BestOf(options.reps,
              [&] {
                auto loaded =
                    io::LoadSketchSnapshot<sketch::CountMinSketch>(cms_bin);
                if (!loaded.ok()) std::abort();
              }),
       FileBytes(cms_bin)});
  rows.push_back({"cms", "mmap_open_and_query",
                  BestOf(options.reps,
                         [&] {
                           auto view = io::MappedCountMinView::Open(cms_bin);
                           if (!view.ok()) std::abort();
                           (void)view.value().Estimate(42);
                         }),
                  FileBytes(cms_bin)});
  rows.push_back(
      {"cms", "text_save",
       BestOf(options.reps, [&] { WriteCountersAsText(cms_txt, cms); }), 0});
  rows.back().bytes = FileBytes(cms_txt);
  rows.push_back({"cms", "text_load",
                  BestOf(options.reps,
                         [&] { (void)ParseCountersFromText(cms_txt); }),
                  FileBytes(cms_txt)});

  // ---- Artifact 2: the model bundle. ----------------------------------
  io::ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(64);
  bundle.featurizer.Fit({{"alpha beta gamma", 5.0}, {"delta epsilon", 2.0}});
  core::OptHashConfig config;
  // Modest estimator: the bundle numbers track format overhead, not
  // training cost, and the DP solve would dominate setup far above this.
  config.total_buckets = options.quick ? 500 : 2000;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;
  auto trained =
      core::OptHashEstimator::Train(config, BenchPrefix(config.total_buckets));
  if (!trained.ok()) {
    std::fprintf(stderr, "error: %s\n", trained.status().ToString().c_str());
    return 1;
  }
  bundle.estimator = std::move(trained).value();

  const std::string bundle_bin = dir + "/bench_snapshot_bundle.bin";
  const std::string bundle_txt = dir + "/bench_snapshot_bundle.txt";
  for (const auto format :
       {io::SnapshotFormat::kBinary, io::SnapshotFormat::kText}) {
    const bool binary = format == io::SnapshotFormat::kBinary;
    const std::string& path = binary ? bundle_bin : bundle_txt;
    const char* tag = binary ? "binary" : "text";
    rows.push_back(
        {"bundle", std::string(tag) + "_save",
         BestOf(options.reps,
                [&] { (void)io::SaveModelBundle(path, bundle, format); }),
         0});
    rows.back().bytes = FileBytes(path);
    rows.push_back({"bundle", std::string(tag) + "_load",
                    BestOf(options.reps,
                           [&] {
                             auto loaded = io::LoadModelBundle(path);
                             if (!loaded.ok()) std::abort();
                           }),
                    FileBytes(path)});
  }
  rows.push_back({"bundle", "mmap_open_and_query",
                  BestOf(options.reps,
                         [&] {
                           auto view =
                               io::MappedEstimatorView::Open(bundle_bin);
                           if (!view.ok()) std::abort();
                           (void)view.value().Estimate(1000);
                         }),
                  FileBytes(bundle_bin)});

  // ---- Report. --------------------------------------------------------
  double binary_load = 0.0;
  double text_load = 0.0;
  for (const ResultRow& row : rows) {
    std::fprintf(stderr, "%-8s %-22s %10.3f ms  %10zu bytes\n",
                 row.artifact.c_str(), row.operation.c_str(),
                 row.seconds * 1e3, row.bytes);
    if (row.artifact == "cms" && row.operation == "binary_load") {
      binary_load = row.seconds;
    }
    if (row.artifact == "cms" && row.operation == "text_load") {
      text_load = row.seconds;
    }
  }
  if (binary_load > 0.0) {
    std::fprintf(stderr,
                 "cms load speedup: binary is %.1fx faster than text parse\n",
                 text_load / binary_load);
  }
  if (options.out.empty()) {
    PrintJson(stdout, options, rows);
  } else {
    std::FILE* file = std::fopen(options.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    PrintJson(file, options, rows);
    std::fclose(file);
    std::fprintf(stderr, "json written to %s\n", options.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace opthash

int main(int argc, char** argv) { return opthash::Main(argc, argv); }

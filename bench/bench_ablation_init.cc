// Ablation (DESIGN.md §3): BCD initialization strategies. §4.3 proposes
// random, sorted-split and heavy-hitter starts, and §4.4 adds the DP warm
// start. This harness quantifies the objective / sweep-count / time
// trade-off between them on synthetic instances at two lambdas.

#include <cstdio>

#include "common/running_stats.h"
#include "common/table_printer.h"
#include "experiment_util.h"
#include "opt/bcd.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumGroups = 8;
constexpr size_t kNumBuckets = 10;
constexpr size_t kRepeats = 3;

void Run() {
  std::printf(
      "Ablation: BCD initialization strategies (G = %zu, b = %zu, %zu "
      "repeats)\n\n",
      kNumGroups, kNumBuckets, kRepeats);
  TablePrinter table({"lambda", "init", "overall_error", "sweeps",
                      "elapsed_sec"});

  for (double lambda : {0.5, 1.0}) {
    for (opt::InitStrategy init :
         {opt::InitStrategy::kRandom, opt::InitStrategy::kSortedSplit,
          opt::InitStrategy::kHeavyHitter, opt::InitStrategy::kDpWarmStart}) {
      RunningStats overall;
      RunningStats sweeps;
      RunningStats seconds;
      for (size_t repeat = 0; repeat < kRepeats; ++repeat) {
        stream::SyntheticConfig world_config;
        world_config.num_groups = kNumGroups;
        world_config.fraction_seen = 0.5;
        world_config.seed = 400 + repeat;
        stream::SyntheticWorld world(world_config);
        Rng rng(500 + repeat);
        const PrefixSummary summary = SummarizePrefix(
            world.GeneratePrefix(world.DefaultPrefixLength(), rng));
        const opt::HashingProblem problem =
            BuildProblem(world, summary, kNumBuckets, lambda);
        opt::BcdConfig config;
        config.init = init;
        config.seed = 600 + repeat;
        const opt::SolveResult result = opt::BcdSolver(config).Solve(problem);
        overall.Add(result.objective.overall);
        sweeps.Add(static_cast<double>(result.iterations));
        seconds.Add(result.elapsed_seconds);
      }
      table.AddRow({TablePrinter::Num(lambda, 1),
                    opt::InitStrategyName(init),
                    TablePrinter::Num(overall.mean(), 1) + " +/- " +
                        TablePrinter::Num(overall.stddev(), 1),
                    TablePrinter::Num(sweeps.mean(), 1),
                    TablePrinter::Num(seconds.mean(), 3)});
    }
  }
  table.Print();
  std::printf(
      "\nReading: the DP warm start reaches the best lambda = 1 objective "
      "immediately (it is optimal\nthere) and cuts sweeps at lambda = 0.5; "
      "sorted-split is the cheapest competitive heuristic start.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

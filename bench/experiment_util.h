#ifndef OPTHASH_BENCH_EXPERIMENT_UTIL_H_
#define OPTHASH_BENCH_EXPERIMENT_UTIL_H_

// Shared plumbing for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §3 for the experiment index).

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/opt_hash_estimator.h"
#include "opt/objective.h"
#include "opt/problem.h"
#include "stream/features.h"
#include "stream/query_log.h"
#include "stream/synthetic.h"

namespace opthash::bench {

/// Prefix summary of a synthetic run: per-element counts and the element
/// ids in a stable order.
struct PrefixSummary {
  std::vector<size_t> elements;       // Distinct element ids, sorted.
  std::vector<double> frequencies;    // f0 per element (same order).
};

inline PrefixSummary SummarizePrefix(const std::vector<size_t>& prefix) {
  std::unordered_map<size_t, double> counts;
  for (size_t element : prefix) counts[element] += 1.0;
  PrefixSummary summary;
  summary.elements.reserve(counts.size());
  for (const auto& [element, count] : counts) {
    summary.elements.push_back(element);
  }
  std::sort(summary.elements.begin(), summary.elements.end());
  summary.frequencies.reserve(summary.elements.size());
  for (size_t element : summary.elements) {
    summary.frequencies.push_back(counts[element]);
  }
  return summary;
}

/// Builds the optimization instance of §4 from an observed prefix.
inline opt::HashingProblem BuildProblem(const stream::SyntheticWorld& world,
                                        const PrefixSummary& summary,
                                        size_t num_buckets, double lambda) {
  opt::HashingProblem problem;
  problem.num_buckets = num_buckets;
  problem.lambda = lambda;
  problem.frequencies = summary.frequencies;
  problem.features.reserve(summary.elements.size());
  for (size_t element : summary.elements) {
    problem.features.push_back(world.FeaturesOf(element));
  }
  return problem;
}

/// Builds PrefixElements (the estimator training input) from a summary.
inline std::vector<core::PrefixElement> BuildPrefixElements(
    const stream::SyntheticWorld& world, const PrefixSummary& summary) {
  std::vector<core::PrefixElement> out;
  out.reserve(summary.elements.size());
  for (size_t t = 0; t < summary.elements.size(); ++t) {
    out.push_back({.id = summary.elements[t],
                   .frequency = summary.frequencies[t],
                   .features = world.FeaturesOf(summary.elements[t])});
  }
  return out;
}

/// Errors of a *predicted* hash code on elements that never appeared in the
/// prefix (paper Experiments 4-5). Estimation error compares the bucket's
/// prefix-average against the element's per-epoch arrival rate measured
/// over the post-prefix window (window counts scaled by |S0|/|S|).
/// Similarity error averages ||x_u - x_k||^2 over (unseen, co-bucket seen)
/// pairs.
struct UnseenErrors {
  double estimation_per_element = 0.0;
  double similarity_per_pair = 0.0;
  double overall = 0.0;  // lambda-weighted combination.
  size_t num_unseen = 0;
};

inline UnseenErrors EvaluateUnseen(
    const stream::SyntheticWorld& world, const PrefixSummary& summary,
    const opt::Assignment& seen_assignment, size_t num_buckets, double lambda,
    const ml::Classifier& classifier, const std::vector<size_t>& window,
    double window_epochs) {
  // Bucket aggregates of seen elements.
  std::vector<double> bucket_freq(num_buckets, 0.0);
  std::vector<double> bucket_count(num_buckets, 0.0);
  std::vector<std::vector<size_t>> bucket_members(num_buckets);
  for (size_t t = 0; t < summary.elements.size(); ++t) {
    const auto j = static_cast<size_t>(seen_assignment[t]);
    bucket_freq[j] += summary.frequencies[t];
    bucket_count[j] += 1.0;
    bucket_members[j].push_back(summary.elements[t]);
  }

  // Window frequencies of unseen elements.
  std::unordered_map<size_t, double> window_counts;
  for (size_t element : window) window_counts[element] += 1.0;
  std::unordered_map<size_t, bool> seen;
  for (size_t element : summary.elements) seen[element] = true;

  UnseenErrors errors;
  double similarity_total = 0.0;
  double pair_total = 0.0;
  for (const auto& [element, count] : window_counts) {
    if (seen.count(element)) continue;
    ++errors.num_unseen;
    const int bucket = classifier.Predict(world.FeaturesOf(element));
    const auto j = static_cast<size_t>(bucket);
    const double estimate =
        bucket_count[j] > 0.0 ? bucket_freq[j] / bucket_count[j] : 0.0;
    const double rate = count / window_epochs;  // Per-epoch arrival count.
    errors.estimation_per_element += std::abs(estimate - rate);
    for (size_t member : bucket_members[j]) {
      similarity_total +=
          opt::SquaredDistance(world.FeaturesOf(element),
                               world.FeaturesOf(member));
      pair_total += 1.0;
    }
  }
  if (errors.num_unseen > 0) {
    errors.estimation_per_element /= static_cast<double>(errors.num_unseen);
  }
  if (pair_total > 0.0) {
    errors.similarity_per_pair = similarity_total / pair_total;
  }
  errors.overall = lambda * errors.estimation_per_element +
                   (1.0 - lambda) * errors.similarity_per_pair;
  return errors;
}

/// Shared featurization pipeline for the query-log experiments (§7.3):
/// fits the 500-word vocabulary on the day-0 queries weighted by their
/// observed counts, and caches feature vectors per rank.
class QueryFeaturePipeline {
 public:
  QueryFeaturePipeline(const stream::QueryLog& log, size_t vocabulary = 500)
      : log_(log), featurizer_(vocabulary) {
    std::unordered_map<size_t, double> day0;
    for (size_t rank : log.GenerateDay(0)) day0[rank] += 1.0;
    std::vector<std::pair<std::string, double>> corpus;
    corpus.reserve(day0.size());
    for (const auto& [rank, count] : day0) {
      corpus.push_back({log.QueryText(rank), count});
    }
    featurizer_.Fit(corpus);
  }

  const std::vector<double>& Features(size_t rank) {
    auto it = cache_.find(rank);
    if (it == cache_.end()) {
      it = cache_.emplace(rank, featurizer_.Featurize(log_.QueryText(rank)))
               .first;
    }
    return it->second;
  }

  const stream::BagOfWordsFeaturizer& featurizer() const {
    return featurizer_;
  }

 private:
  const stream::QueryLog& log_;
  stream::BagOfWordsFeaturizer featurizer_;
  std::unordered_map<size_t, std::vector<double>> cache_;
};

}  // namespace opthash::bench

#endif  // OPTHASH_BENCH_EXPERIMENT_UTIL_H_

// Ablation (§7.2): the paper evaluates the heavy-hitter baseline with an
// *ideal* oracle, noting it "significantly outperform[s] any realistically
// implementable version ... that relied upon non-ideal heavy-hitter
// oracles (e.g. recurrent neural network classifier)". This harness
// quantifies that hierarchy on the query-log substitute at one budget:
//
//   plain count-min  >=  learned-oracle LCMS  >=  ideal-oracle LCMS
//
// in *expected magnitude of error* — the metric ref [8]'s analysis
// optimizes. (On the average per-element metric, unique buckets steal CMS
// width from the tail, so both LCMS variants can trail plain count-min at
// tight budgets; the paper makes the same observation: the heavy-hitter
// improvement "is much more notable in terms of the expected magnitude".)

#include <cstdio>
#include <unordered_map>

#include "aol_harness.h"
#include "common/table_printer.h"
#include "core/oracle_cms.h"

namespace opthash::bench {
namespace {

void Run() {
  stream::QueryLogConfig config;
  config.num_queries = 100000;
  config.arrivals_per_day = 20000;
  config.num_days = 31;
  config.seed = 77;
  stream::QueryLog log(config);
  QueryFeaturePipeline pipeline(log);

  // Day-0 prefix.
  std::unordered_map<size_t, double> day0;
  for (size_t rank : log.GenerateDay(0)) day0[rank] += 1.0;
  std::vector<core::PrefixElement> prefix;
  for (const auto& [rank, count] : day0) {
    prefix.push_back({.id = log.QueryId(rank),
                      .frequency = count,
                      .features = pipeline.Features(rank)});
  }
  std::printf(
      "Oracle ablation: %zu-query universe, day-0 support %zu, 30 streamed "
      "days, 10 KB budget.\n\n",
      config.num_queries, prefix.size());

  constexpr size_t kBudget = 2500;  // 10 KB.
  constexpr size_t kHeavy = 500;

  // Ideal oracle: true top keys over the full horizon.
  std::unordered_map<uint64_t, uint64_t> totals;
  for (size_t day = 0; day < config.num_days; ++day) {
    for (size_t rank : log.GenerateDay(day)) ++totals[log.QueryId(rank)];
  }
  auto ideal = core::LearnedCmsEstimator::Create(
      kBudget, 2, sketch::SelectTopKeys(totals, kHeavy), 3);
  OPTHASH_CHECK(ideal.ok());

  // Realizable oracle: classifier trained on day-0 features (§2.2
  // footnote: predict the top fraction of the frequencies).
  auto oracle = core::TrainHeavyHitterOracle(
      prefix, static_cast<double>(kHeavy) / static_cast<double>(prefix.size()),
      4);
  OPTHASH_CHECK(oracle.ok());
  auto learned = core::OracleLearnedCms::Create(
      kBudget, 2, kHeavy, oracle.value().AsPredicate(), 3);
  OPTHASH_CHECK(learned.ok());
  std::printf("learned oracle: train accuracy %.3f, cutoff frequency %.0f\n\n",
              oracle.value().train_accuracy,
              oracle.value().frequency_cutoff);

  core::CountMinEstimator plain(kBudget, 2, 3);

  // Stream all days; keep features alive for the learned oracle.
  stream::ExactCounter truth;
  for (size_t day = 0; day < config.num_days; ++day) {
    for (size_t rank : log.GenerateDay(day)) {
      const uint64_t id = log.QueryId(rank);
      truth.Add(id);
      const stream::StreamItem item{id, &pipeline.Features(rank)};
      ideal.value().Update(item);
      learned.value().Update(item);
      plain.Update(item);
    }
  }

  // Evaluate on the final day's query set.
  const std::vector<size_t> last_day = log.GenerateDay(config.num_days - 1);
  std::set<size_t> day_ranks(last_day.begin(), last_day.end());
  std::vector<core::EvalQuery> queries;
  for (size_t rank : day_ranks) {
    queries.push_back({{log.QueryId(rank), &pipeline.Features(rank)},
                       static_cast<double>(truth.Count(log.QueryId(rank)))});
  }

  TablePrinter table({"estimator", "avg_abs_error", "expected_abs_error"});
  for (const auto& [name, estimator] :
       std::vector<std::pair<std::string, const core::FrequencyEstimator*>>{
           {"count-min (no oracle)", &plain},
           {"heavy-hitter (learned oracle)", &learned.value()},
           {"heavy-hitter (ideal oracle)", &ideal.value()}}) {
    const core::ErrorMetrics metrics =
        core::EvaluateEstimator(*estimator, queries);
    table.AddRow({name, TablePrinter::Num(metrics.average_absolute_error, 2),
                  TablePrinter::Num(metrics.expected_magnitude_error, 2)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (§7.2): on the expected-magnitude metric, ideal <= "
      "learned <= none —\nthe ideal oracle upper-bounds every realizable "
      "learned oracle, which in turn beats\noracle-free hashing. On the "
      "average metric the unique buckets cost the tail CMS width\n(the "
      "paper's own observation about where heavy-hitter helps).\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

// bench_query_throughput — serving-side queries/sec of the batched,
// allocation-free read path (PR 4) against the scalar per-query path it
// replaces, for both the owned learned estimator and the zero-copy mapped
// views. Emits machine-readable JSON (like bench_throughput /
// bench_snapshot_io) so CI can archive the query-latency trajectory.
//
//   bench_query_throughput [--quick] [--queries N] [--block B] [--reps R]
//                          [--out path.json]
//
// Workload: a Zipf-shaped query mix over a synthetic id universe with
// bag-of-words texts — popular elements are queried more, exactly the
// regime the paper's learned scheme serves. Six measurements:
//
//   learned/owned/scalar : per query, featurize (legacy allocating
//                          Featurize) + OptHashEstimator::Estimate — the
//                          pre-batch serving loop.
//   learned/owned/batch  : io::BundleQueryEngine blocks — stored ids skip
//                          featurization, misses are classified in one
//                          PredictBatch, all scratch reused.
//   learned/mmap/scalar  : MappedEstimatorView::Estimate per id
//                          (stored-id queries, no classifier).
//   learned/mmap/batch   : MappedEstimatorView::EstimateBatch blocks.
//   cms/owned/{scalar,batch} and cms/mmap/{scalar,batch}: the same
//   comparison for the count-min baseline's level-major batch walk.
//
// Batch answers are asserted element-wise identical to the scalar path
// before anything is timed. --quick shrinks the workload for CI smoke.
// JSON goes to --out (stdout when omitted); a summary goes to stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/opt_hash_estimator.h"
#include "io/model_io.h"
#include "io/sketch_snapshot.h"
#include "sketch/count_min_sketch.h"
#include "sketch/kernels/simd_dispatch.h"
#include "stream/features.h"
#include "stream/trace_io.h"

namespace opthash {
namespace {

struct Options {
  size_t queries = 100'000;
  size_t block = 4096;
  size_t reps = 3;
  std::string out;  // Empty = stdout.
  bool quick = false;
};

struct ResultRow {
  std::string path;     // "learned" | "cms"
  std::string storage;  // "owned" | "mmap"
  std::string mode;     // "scalar" | "batch"
  std::string tier;     // kernel tier for batch sketch rows, else "none"
  double seconds = 0.0;
  double queries_per_sec = 0.0;
};

template <typename Fn>
double BestOf(size_t reps, Fn fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Deterministic bag-of-words text for an element: three words from a
// small lexicon plus a rank token, so texts are featurizable and distinct
// ranks get distinct (but overlapping) token sets.
std::string TextOf(uint64_t id) {
  static const char* kWords[] = {
      "alpha",  "beta",   "gamma", "delta", "epsilon", "zeta",  "eta",
      "theta",  "iota",   "kappa", "lambda", "mu",     "nu",    "xi",
      "omicron", "pi",    "rho",   "sigma", "tau",     "upsilon"};
  constexpr uint64_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);
  uint64_t state = id + 1;
  const uint64_t mixed = SplitMix64(state);
  std::string text = kWords[mixed % kNumWords];
  text += ' ';
  text += kWords[(mixed >> 8) % kNumWords];
  text += ' ';
  text += kWords[(mixed >> 16) % kNumWords];
  text += " q";
  text += std::to_string(id % 97);
  return text;
}

void PrintJson(std::FILE* out, const Options& options, double hit_fraction,
               const std::vector<ResultRow>& rows) {
  std::fprintf(out, "{\n  \"benchmark\": \"query_throughput\",\n");
  std::fprintf(out,
               "  \"queries\": %zu,\n  \"block\": %zu,\n  \"reps\": %zu,\n",
               options.queries, options.block, options.reps);
  std::fprintf(out, "  \"stored_id_hit_fraction\": %.4f,\n", hit_fraction);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"path\": \"%s\", \"storage\": \"%s\", "
                 "\"mode\": \"%s\", \"tier\": \"%s\", "
                 "\"seconds\": %.6f, "
                 "\"queries_per_sec\": %.0f}%s\n",
                 rows[i].path.c_str(), rows[i].storage.c_str(),
                 rows[i].mode.c_str(), rows[i].tier.c_str(),
                 rows[i].seconds, rows[i].queries_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.queries = 10'000;
      options.reps = 2;
    } else if (arg == "--queries" && i + 1 < argc) {
      options.queries = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--block" && i + 1 < argc) {
      options.block = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reps" && i + 1 < argc) {
      options.reps = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_query_throughput [--quick] [--queries N] "
                   "[--block B] [--reps R] [--out path.json]\n");
      return 2;
    }
  }
  if (options.queries == 0 || options.block == 0 || options.reps == 0) {
    std::fprintf(stderr, "error: --queries/--block/--reps must be >= 1\n");
    return 2;
  }

  // ---- Workload: Zipf-shaped queries over a synthetic universe. --------
  // Sized to the paper's serving regime: the learned table keeps the
  // heavy hitters (~3/4 of Zipf query volume), the classifier handles
  // the long tail.
  const size_t universe = options.quick ? 6'000 : 10'000;
  const size_t prefix_support = 2'000;

  stream::BagOfWordsFeaturizer featurizer(100);
  {
    std::vector<std::pair<std::string, double>> corpus;
    corpus.reserve(prefix_support);
    for (size_t rank = 0; rank < prefix_support; ++rank) {
      corpus.push_back(
          {TextOf(rank), static_cast<double>(universe) / (rank + 1.0)});
    }
    featurizer.Fit(corpus);
  }

  // Prefix: the top prefix_support ranks with Zipf frequencies. The
  // trained table keeps ~1000 ids (frequency-proportional subsample).
  std::vector<core::PrefixElement> prefix;
  prefix.reserve(prefix_support);
  for (size_t rank = 0; rank < prefix_support; ++rank) {
    prefix.push_back(
        {.id = rank,
         .frequency = static_cast<double>(universe) / (rank + 1.0),
         .features = featurizer.Featurize(TextOf(rank))});
  }

  core::OptHashConfig config;
  config.total_buckets = 1'650;
  config.id_ratio = 0.1;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;
  config.cart.max_depth = 12;
  auto trained = core::OptHashEstimator::Train(config, prefix);
  if (!trained.ok()) {
    std::fprintf(stderr, "error: %s\n", trained.status().ToString().c_str());
    return 1;
  }
  io::ModelBundle bundle;
  bundle.featurizer = featurizer;
  bundle.estimator = std::move(trained).value();

  // Queries: rank = floor(U^u) for uniform u — a log-uniform draw whose
  // density is proportional to 1/rank, i.e. Zipf(1): popular elements are
  // queried more, so a fat slice of the query volume hits stored ids.
  Rng rng(17);
  std::vector<stream::TraceRecord> queries;
  std::vector<uint64_t> query_ids;
  queries.reserve(options.queries);
  query_ids.reserve(options.queries);
  const double log_universe = std::log(static_cast<double>(universe));
  size_t stored_hits = 0;
  const auto& table = bundle.estimator->table();
  for (size_t q = 0; q < options.queries; ++q) {
    const double u = rng.NextDouble();
    const auto rank = static_cast<uint64_t>(std::exp(u * log_universe)) - 1;
    queries.push_back({rank, TextOf(rank)});
    query_ids.push_back(rank);
    if (table.find(rank) != table.end()) ++stored_hits;
  }
  const double hit_fraction =
      static_cast<double>(stored_hits) / static_cast<double>(options.queries);

  // Mapped artifacts.
  const std::string bundle_path = "/tmp/bench_query_bundle.bin";
  const std::string cms_path = "/tmp/bench_query_cms.bin";
  {
    const Status saved =
        io::SaveModelBundle(bundle_path, bundle, io::SnapshotFormat::kBinary);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
  }
  sketch::CountMinSketch cms(16'384, 4, 23);
  cms.UpdateBatch(query_ids);
  {
    const Status saved = io::SaveSketchSnapshot(cms_path, cms);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
  }
  auto mapped_bundle = io::MappedEstimatorView::Open(bundle_path);
  if (!mapped_bundle.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 mapped_bundle.status().ToString().c_str());
    return 1;
  }
  auto mapped_cms = io::MappedCountMinView::Open(cms_path);
  if (!mapped_cms.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 mapped_cms.status().ToString().c_str());
    return 1;
  }

  const core::OptHashEstimator& estimator = *bundle.estimator;
  const size_t n = queries.size();
  std::vector<double> scalar_answers(n);
  std::vector<double> batch_answers(n);
  // volatile sink so the optimizer cannot drop any measured loop.
  volatile double sink = 0.0;

  // ---- Correctness gate: batch == scalar before anything is timed. ----
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> features =
        bundle.featurizer.Featurize(queries[i].text);
    scalar_answers[i] = estimator.Estimate({queries[i].id, &features});
  }
  {
    io::BundleQueryEngine engine(bundle);
    for (size_t base = 0; base < n; base += options.block) {
      const size_t block = std::min(options.block, n - base);
      engine.EstimateBlock(
          Span<const stream::TraceRecord>(queries.data() + base, block),
          Span<double>(batch_answers.data() + base, block));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (scalar_answers[i] != batch_answers[i]) {
      std::fprintf(stderr,
                   "error: batch/scalar mismatch at %zu (%f vs %f)\n", i,
                   batch_answers[i], scalar_answers[i]);
      return 1;
    }
  }

  // Per-tier correctness gate for the sketch kernel layer: every
  // available tier's batched CMS answers must equal the per-key path
  // bit-for-bit before that tier is timed. An OPTHASH_SIMD pin narrows
  // both the gate and the timed rows to the pinned tier.
  std::vector<sketch::kernels::KernelTier> tiers =
      sketch::kernels::AvailableKernelTiers();
  if (const char* pin = std::getenv("OPTHASH_SIMD");
      pin != nullptr && pin[0] != '\0' &&
      sketch::kernels::KernelEnvStatus().ok()) {
    tiers = {sketch::kernels::ActiveKernelTier()};
  }
  std::vector<uint64_t> cms_reference(n);
  std::vector<uint64_t> cms_answers(n);
  for (size_t i = 0; i < n; ++i) cms_reference[i] = cms.Estimate(query_ids[i]);
  for (const sketch::kernels::KernelTier tier : tiers) {
    const Status forced = sketch::kernels::ForceKernelTier(tier);
    if (!forced.ok()) {
      std::fprintf(stderr, "error: %s\n", forced.ToString().c_str());
      return 1;
    }
    cms.EstimateBatch(Span<const uint64_t>(query_ids.data(), n),
                      Span<uint64_t>(cms_answers.data(), n));
    for (size_t i = 0; i < n; ++i) {
      if (cms_answers[i] != cms_reference[i]) {
        std::fprintf(stderr,
                     "error: tier %s batch/per-key mismatch at %zu "
                     "(%llu vs %llu)\n",
                     std::string(sketch::kernels::KernelTierName(tier))
                         .c_str(),
                     i, static_cast<unsigned long long>(cms_answers[i]),
                     static_cast<unsigned long long>(cms_reference[i]));
        return 1;
      }
    }
  }
  sketch::kernels::ResetKernelTierForTest();

  // ---- Timed runs. -----------------------------------------------------
  std::vector<ResultRow> rows;
  // tier is "none" for paths that never enter the kernel layer (per-key
  // loops and the learned engine); batched sketch rows are repeated once
  // per available kernel tier.
  const auto add_row = [&](const char* path, const char* storage,
                           const char* mode, const std::string& tier,
                           double seconds) {
    rows.push_back({path, storage, mode, tier, seconds,
                    static_cast<double>(n) / seconds});
  };

  add_row("learned", "owned", "scalar", "none", BestOf(options.reps, [&] {
            double total = 0.0;
            for (size_t i = 0; i < n; ++i) {
              const std::vector<double> features =
                  bundle.featurizer.Featurize(queries[i].text);
              total += estimator.Estimate({queries[i].id, &features});
            }
            sink = sink + total;
          }));
  {
    io::BundleQueryEngine engine(bundle);
    add_row("learned", "owned", "batch", "none", BestOf(options.reps, [&] {
              double total = 0.0;
              for (size_t base = 0; base < n; base += options.block) {
                const size_t block = std::min(options.block, n - base);
                engine.EstimateBlock(
                    Span<const stream::TraceRecord>(queries.data() + base,
                                                    block),
                    Span<double>(batch_answers.data() + base, block));
              }
              for (size_t i = 0; i < n; ++i) total += batch_answers[i];
              sink = sink + total;
            }));
  }
  add_row("learned", "mmap", "scalar", "none", BestOf(options.reps, [&] {
            double total = 0.0;
            for (size_t i = 0; i < n; ++i) {
              total += mapped_bundle.value().Estimate(query_ids[i]);
            }
            sink = sink + total;
          }));
  add_row("learned", "mmap", "batch", "none", BestOf(options.reps, [&] {
            double total = 0.0;
            for (size_t base = 0; base < n; base += options.block) {
              const size_t block = std::min(options.block, n - base);
              mapped_bundle.value().EstimateBatch(
                  Span<const uint64_t>(query_ids.data() + base, block),
                  Span<double>(batch_answers.data() + base, block));
            }
            for (size_t i = 0; i < n; ++i) total += batch_answers[i];
            sink = sink + total;
          }));

  add_row("cms", "owned", "scalar", "none", BestOf(options.reps, [&] {
            uint64_t total = 0;
            for (size_t i = 0; i < n; ++i) total += cms.Estimate(query_ids[i]);
            sink = sink + static_cast<double>(total);
          }));
  add_row("cms", "mmap", "scalar", "none", BestOf(options.reps, [&] {
            uint64_t total = 0;
            for (size_t i = 0; i < n; ++i) {
              total += mapped_cms.value().Estimate(query_ids[i]);
            }
            sink = sink + static_cast<double>(total);
          }));
  // The batched sketch paths once per kernel tier: the per-tier rows are
  // what CI archives so a tier regression (or a host losing AVX2) shows
  // up as a throughput step in the trajectory.
  for (const sketch::kernels::KernelTier tier : tiers) {
    const std::string tier_name(sketch::kernels::KernelTierName(tier));
    if (!sketch::kernels::ForceKernelTier(tier).ok()) continue;
    add_row("cms", "owned", "batch", tier_name, BestOf(options.reps, [&] {
              uint64_t total = 0;
              for (size_t base = 0; base < n; base += options.block) {
                const size_t block = std::min(options.block, n - base);
                cms.EstimateBatch(
                    Span<const uint64_t>(query_ids.data() + base, block),
                    Span<uint64_t>(cms_answers.data() + base, block));
              }
              for (size_t i = 0; i < n; ++i) total += cms_answers[i];
              sink = sink + static_cast<double>(total);
            }));
    add_row("cms", "mmap", "batch", tier_name, BestOf(options.reps, [&] {
              uint64_t total = 0;
              for (size_t base = 0; base < n; base += options.block) {
                const size_t block = std::min(options.block, n - base);
                mapped_cms.value().EstimateBatch(
                    Span<const uint64_t>(query_ids.data() + base, block),
                    Span<uint64_t>(cms_answers.data() + base, block));
              }
              for (size_t i = 0; i < n; ++i) total += cms_answers[i];
              sink = sink + static_cast<double>(total);
            }));
  }
  sketch::kernels::ResetKernelTierForTest();

  // ---- Report. --------------------------------------------------------
  double scalar_qps = 0.0;
  double batch_qps = 0.0;
  double cms_scalar_qps = 0.0;
  double cms_best_batch_qps = 0.0;
  std::string cms_best_tier;
  for (const ResultRow& row : rows) {
    std::fprintf(stderr,
                 "%-8s %-6s %-7s %-7s %10.3f ms  %12.0f queries/sec\n",
                 row.path.c_str(), row.storage.c_str(), row.mode.c_str(),
                 row.tier.c_str(), row.seconds * 1e3, row.queries_per_sec);
    if (row.path == "learned" && row.storage == "owned") {
      if (row.mode == "scalar") scalar_qps = row.queries_per_sec;
      if (row.mode == "batch") batch_qps = row.queries_per_sec;
    }
    if (row.path == "cms" && row.storage == "owned") {
      if (row.mode == "scalar") cms_scalar_qps = row.queries_per_sec;
      if (row.mode == "batch" &&
          row.queries_per_sec > cms_best_batch_qps) {
        cms_best_batch_qps = row.queries_per_sec;
        cms_best_tier = row.tier;
      }
    }
  }
  std::fprintf(stderr,
               "stored-id hit fraction: %.1f%%\n"
               "learned owned batch speedup over scalar: %.2fx\n"
               "cms owned batch (%s kernels) speedup over per-key: %.2fx\n",
               hit_fraction * 100.0, batch_qps / scalar_qps,
               cms_best_tier.c_str(), cms_best_batch_qps / cms_scalar_qps);

  if (options.out.empty()) {
    PrintJson(stdout, options, hit_fraction, rows);
  } else {
    std::FILE* file = std::fopen(options.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    PrintJson(file, options, hit_fraction, rows);
    std::fclose(file);
    std::fprintf(stderr, "json written to %s\n", options.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace opthash

int main(int argc, char** argv) { return opthash::Main(argc, argv); }

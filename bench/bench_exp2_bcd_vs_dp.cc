// Experiment 2 (paper Fig. 3): bcd vs dp in the lambda = 1 case for
// increasing problem sizes G. dp finds the optimal hashing scheme; the
// experiment shows bcd staying near-optimal for moderate G and degrading
// as G grows. Errors are reported in the per-element / per-pair scale, as
// in the paper ("we convert the errors in a per element / per pair of
// elements scale").
//
// Scale note: for G <= 9 the certified-exact DP (quadratic layers, mean
// centers) runs in seconds; for larger G we switch to the O(nb) SMAWK
// k-median path — exactly the Ckmeans.1d.dp/Wu tooling the paper used —
// which the test suite shows within ~3% of the certified optimum.

#include <cstdio>

#include "common/running_stats.h"
#include "common/table_printer.h"
#include "experiment_util.h"
#include "opt/bcd.h"
#include "opt/dp.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumBuckets = 10;
constexpr size_t kRepeats = 3;

void Run() {
  std::printf(
      "Experiment 2 (Fig. 3): bcd vs dp, lambda = 1, b = %zu, %zu repeats\n\n",
      kNumBuckets, kRepeats);
  TablePrinter table({"num_groups", "solver", "prefix_estimation_error",
                      "prefix_similarity_error", "prefix_overall_error",
                      "elapsed_sec"});

  for (size_t groups = 4; groups <= 11; ++groups) {
    for (const std::string solver_name : {"bcd", "dp"}) {
      RunningStats estimation;
      RunningStats similarity;
      RunningStats overall;
      RunningStats seconds;
      for (size_t repeat = 0; repeat < kRepeats; ++repeat) {
        stream::SyntheticConfig world_config;
        world_config.num_groups = groups;
        world_config.fraction_seen = 0.5;
        world_config.seed = 10 * groups + repeat;
        stream::SyntheticWorld world(world_config);
        Rng rng(77 + repeat);
        const PrefixSummary summary = SummarizePrefix(
            world.GeneratePrefix(world.DefaultPrefixLength(), rng));
        const opt::HashingProblem problem =
            BuildProblem(world, summary, kNumBuckets, /*lambda=*/1.0);

        opt::SolveResult result;
        if (solver_name == "bcd") {
          opt::BcdConfig config;
          config.seed = 1000 + repeat;
          config.num_restarts = 3;
          result = opt::BcdSolver(config).Solve(problem);
        } else {
          opt::DpConfig config;
          if (groups >= 10) {
            config.algorithm = opt::DpAlgorithm::kSmawk;
            config.center = opt::DpCostCenter::kMedian;
          }
          result = opt::DpSolver(config).Solve(problem);
        }
        const opt::NormalizedObjective normalized =
            opt::NormalizeObjective(problem, result.assignment);
        estimation.Add(normalized.estimation_error_per_element);
        similarity.Add(normalized.similarity_error_per_pair);
        overall.Add(normalized.overall);
        seconds.Add(result.elapsed_seconds);
      }
      table.AddRow({std::to_string(groups), solver_name,
                    TablePrinter::Num(estimation.mean(), 3) + " +/- " +
                        TablePrinter::Num(estimation.stddev(), 3),
                    TablePrinter::Num(similarity.mean(), 3),
                    TablePrinter::Num(overall.mean(), 3),
                    TablePrinter::Num(seconds.mean(), 3)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 3): dp's estimation error lower-bounds "
      "bcd's at every G;\nthe bcd gap is negligible for G <= 10 and grows "
      "with G; dp stays fast throughout.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

// Experiment 4 (paper Fig. 5): impact of the fraction g0 of elements that
// may appear in the prefix, for G = 10. Two schemes are compared: bcd with
// lambda = 0.5 and dp (lambda = 1). Panels (a)-(b) report per-element /
// per-pair errors on S0 ("epoch 0"); panels (c)-(d) report errors on
// elements that did NOT appear in S0 but arrived within |S| = 10|S0|
// subsequent arrivals ("epoch 10"), with the bucket assignment of unseen
// elements predicted by a cart classifier (§5.2).

#include <cstdio>

#include "common/running_stats.h"
#include "common/table_printer.h"
#include "experiment_util.h"
#include "ml/decision_tree.h"
#include "opt/bcd.h"
#include "opt/dp.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumGroups = 10;
constexpr size_t kNumBuckets = 10;
constexpr size_t kRepeats = 3;

void Run() {
  std::printf(
      "Experiment 4 (Fig. 5): impact of fraction seen g0, G = %zu, b = %zu, "
      "%zu repeats\n\n",
      kNumGroups, kNumBuckets, kRepeats);
  TablePrinter table({"fraction_seen", "solver", "prefix_est_err",
                      "prefix_sim_err", "unseen_est_err", "unseen_sim_err",
                      "num_unseen"});

  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (const std::string solver_name : {"bcd", "dp"}) {
      RunningStats prefix_est;
      RunningStats prefix_sim;
      RunningStats unseen_est;
      RunningStats unseen_sim;
      RunningStats unseen_count;
      for (size_t repeat = 0; repeat < kRepeats; ++repeat) {
        stream::SyntheticConfig world_config;
        world_config.num_groups = kNumGroups;
        world_config.fraction_seen = fraction;
        world_config.seed = 50 + repeat;
        stream::SyntheticWorld world(world_config);
        Rng rng(60 + repeat);
        const std::vector<size_t> prefix =
            world.GeneratePrefix(world.DefaultPrefixLength(), rng);
        const PrefixSummary summary = SummarizePrefix(prefix);

        // Both rows are *evaluated* at lambda = 0.5 so the similarity term
        // is reported for dp too (DpSolver ignores it while optimizing, as
        // the paper's dp does regardless of lambda).
        const double lambda = 0.5;
        const opt::HashingProblem problem =
            BuildProblem(world, summary, kNumBuckets, lambda);
        opt::SolveResult result;
        if (solver_name == "bcd") {
          opt::BcdConfig config;
          config.seed = 70 + repeat;
          result = opt::BcdSolver(config).Solve(problem);
        } else {
          opt::DpConfig config;
          config.algorithm = opt::DpAlgorithm::kSmawk;
          config.center = opt::DpCostCenter::kMedian;
          result = opt::DpSolver(config).Solve(problem);
        }
        const opt::NormalizedObjective normalized =
            opt::NormalizeObjective(problem, result.assignment);
        prefix_est.Add(normalized.estimation_error_per_element);
        prefix_sim.Add(normalized.similarity_error_per_pair);

        // Classifier for unseen elements (cart, as in §6.2's default).
        ml::Dataset train(world.config().feature_dim);
        for (size_t t = 0; t < summary.elements.size(); ++t) {
          train.Add(world.FeaturesOf(summary.elements[t]),
                    result.assignment[t]);
        }
        ml::DecisionTree cart;
        cart.Fit(train);

        const std::vector<size_t> window =
            world.GenerateStream(10 * prefix.size(), rng);
        const UnseenErrors unseen =
            EvaluateUnseen(world, summary, result.assignment, kNumBuckets,
                           lambda, cart, window, /*window_epochs=*/10.0);
        unseen_est.Add(unseen.estimation_per_element);
        unseen_sim.Add(unseen.similarity_per_pair);
        unseen_count.Add(static_cast<double>(unseen.num_unseen));
      }
      table.AddRow({TablePrinter::Num(fraction, 1), solver_name,
                    TablePrinter::Num(prefix_est.mean(), 3),
                    TablePrinter::Num(prefix_sim.mean(), 3),
                    TablePrinter::Num(unseen_est.mean(), 3),
                    TablePrinter::Num(unseen_sim.mean(), 3),
                    TablePrinter::Num(unseen_count.mean(), 0)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 5): increasing g0 decreases the "
      "estimation error on both\nseen and unseen elements (more of the "
      "universe is recorded) while the similarity\nerror grows (buckets "
      "become frequency-pure rather than feature-pure).\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

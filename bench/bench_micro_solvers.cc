// google-benchmark micro-benchmarks for the optimization core: one BCD
// sweep, the three DP layer algorithms (the quadratic / divide-and-conquer
// / SMAWK ladder of §4.4 and refs [39][40]), and the exact solver on tiny
// instances.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "opt/bcd.h"
#include "opt/dp.h"
#include "opt/exact.h"

namespace opthash::opt {
namespace {

HashingProblem MakeProblem(size_t n, size_t b, double lambda, size_t dim) {
  Rng rng(42);
  HashingProblem problem;
  problem.num_buckets = b;
  problem.lambda = lambda;
  problem.frequencies.resize(n);
  for (double& f : problem.frequencies) {
    f = static_cast<double>(rng.NextBounded(1000));
  }
  problem.features.resize(n);
  for (auto& x : problem.features) {
    x.resize(dim);
    for (double& v : x) v = rng.NextGaussian();
  }
  return problem;
}

void BM_BcdSolveLambda1(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const HashingProblem problem = MakeProblem(n, 10, 1.0, 0);
  BcdConfig config;
  config.max_sweeps = 5;
  for (auto _ : state) {
    BcdSolver solver(config);
    benchmark::DoNotOptimize(solver.Solve(problem).objective.overall);
  }
  state.SetItemsProcessed(state.iterations() * n * 5);
}
BENCHMARK(BM_BcdSolveLambda1)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BcdSolveMixedLambda(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const HashingProblem problem = MakeProblem(n, 10, 0.5, 2);
  BcdConfig config;
  config.max_sweeps = 5;
  for (auto _ : state) {
    BcdSolver solver(config);
    benchmark::DoNotOptimize(solver.Solve(problem).objective.overall);
  }
  state.SetItemsProcessed(state.iterations() * n * 5);
}
BENCHMARK(BM_BcdSolveMixedLambda)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DpQuadraticMean(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const HashingProblem problem = MakeProblem(n, 10, 1.0, 0);
  DpSolver solver(DpConfig{DpAlgorithm::kQuadratic, DpCostCenter::kMean});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem).objective.overall);
  }
}
BENCHMARK(BM_DpQuadraticMean)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DpDivideConquerMedian(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const HashingProblem problem = MakeProblem(n, 10, 1.0, 0);
  DpSolver solver(
      DpConfig{DpAlgorithm::kDivideConquer, DpCostCenter::kMedian});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem).objective.overall);
  }
}
BENCHMARK(BM_DpDivideConquerMedian)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DpSmawkMedian(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const HashingProblem problem = MakeProblem(n, 10, 1.0, 0);
  DpSolver solver(DpConfig{DpAlgorithm::kSmawk, DpCostCenter::kMedian});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem).objective.overall);
  }
}
BENCHMARK(BM_DpSmawkMedian)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ExactSolveTiny(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const HashingProblem problem = MakeProblem(n, 3, 1.0, 0);
  ExactConfig config;
  config.time_limit_seconds = 5.0;
  for (auto _ : state) {
    ExactSolver solver(config);
    benchmark::DoNotOptimize(solver.Solve(problem).iterations);
  }
}
BENCHMARK(BM_ExactSolveTiny)->Arg(8)->Arg(10)->Arg(12);

}  // namespace
}  // namespace opthash::opt

BENCHMARK_MAIN();

// Experiment 5 (paper Fig. 6): comparison between classification methods
// (logreg / cart / rf) for hashing unseen elements; g0 = 0.33, lambda =
// 0.5, G in {4..10}. Reports the unseen-element estimation / similarity /
// overall errors after |S| = 10|S0| arrivals, plus per-model training time.

#include <cstdio>
#include <memory>

#include "common/running_stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "experiment_util.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "opt/bcd.h"

namespace opthash::bench {
namespace {

constexpr size_t kNumBuckets = 10;
constexpr double kLambda = 0.5;
constexpr size_t kRepeats = 3;

std::unique_ptr<ml::Classifier> MakeClassifier(const std::string& name,
                                               uint64_t seed) {
  if (name == "logreg") {
    ml::LogisticRegressionConfig config;
    config.max_iters = 120;
    return std::make_unique<ml::LogisticRegression>(config);
  }
  if (name == "cart") {
    ml::DecisionTreeConfig config;
    config.seed = seed;
    return std::make_unique<ml::DecisionTree>(config);
  }
  ml::RandomForestConfig config;
  config.num_trees = 20;
  config.seed = seed;
  return std::make_unique<ml::RandomForest>(config);
}

void Run() {
  std::printf(
      "Experiment 5 (Fig. 6): classifier comparison, g0 = 0.33, lambda = "
      "%.1f, b = %zu, %zu repeats\n\n",
      kLambda, kNumBuckets, kRepeats);
  TablePrinter table({"num_groups", "classifier", "unseen_est_err",
                      "unseen_sim_err", "unseen_overall_err",
                      "train_time_sec"});

  for (size_t groups = 4; groups <= 10; groups += 2) {
    for (const std::string classifier_name : {"logreg", "cart", "rf"}) {
      RunningStats est;
      RunningStats sim;
      RunningStats overall;
      RunningStats train_time;
      for (size_t repeat = 0; repeat < kRepeats; ++repeat) {
        stream::SyntheticConfig world_config;
        world_config.num_groups = groups;
        world_config.fraction_seen = 0.33;
        world_config.seed = 7 * groups + repeat;
        stream::SyntheticWorld world(world_config);
        Rng rng(90 + repeat);
        const std::vector<size_t> prefix =
            world.GeneratePrefix(world.DefaultPrefixLength(), rng);
        const PrefixSummary summary = SummarizePrefix(prefix);
        const opt::HashingProblem problem =
            BuildProblem(world, summary, kNumBuckets, kLambda);
        opt::BcdConfig bcd_config;
        bcd_config.seed = 95 + repeat;
        const opt::SolveResult solved =
            opt::BcdSolver(bcd_config).Solve(problem);

        ml::Dataset train(world.config().feature_dim);
        for (size_t t = 0; t < summary.elements.size(); ++t) {
          train.Add(world.FeaturesOf(summary.elements[t]),
                    solved.assignment[t]);
        }
        auto classifier = MakeClassifier(classifier_name, 40 + repeat);
        Timer timer;
        classifier->Fit(train);
        train_time.Add(timer.ElapsedSeconds());

        const std::vector<size_t> window =
            world.GenerateStream(10 * prefix.size(), rng);
        const UnseenErrors unseen =
            EvaluateUnseen(world, summary, solved.assignment, kNumBuckets,
                           kLambda, *classifier, window, 10.0);
        est.Add(unseen.estimation_per_element);
        sim.Add(unseen.similarity_per_pair);
        overall.Add(unseen.overall);
      }
      table.AddRow({std::to_string(groups), classifier_name,
                    TablePrinter::Num(est.mean(), 3) + " +/- " +
                        TablePrinter::Num(est.stddev(), 3),
                    TablePrinter::Num(sim.mean(), 3),
                    TablePrinter::Num(overall.mean(), 3),
                    TablePrinter::Num(train_time.mean(), 3)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 6): \"there is indeed merit in using "
      "non-linear classifiers\" —\ncart/rf win on the similarity error "
      "(bucket geometry is not linearly separable) — but, as the\npaper "
      "remarks, \"the results heavily depend on the data generating "
      "process\"; logreg's training\ntime grows fastest with G.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

// bench_throughput — items/sec of the sharded ingestion engine
// (stream/sharded_ingest.h) on a synthetic Zipf trace, with merged-vs-
// sequential estimate deltas. Unlike the paper-figure drivers this one
// emits machine-readable JSON so CI can archive the perf trajectory.
//
//   bench_throughput [--quick] [--items N] [--universe N] [--zipf-s S]
//                    [--threads 1,2,4] [--block-size B] [--out path.json]
//
// Defaults: a 10M-arrival / 1M-key Zipf(1.05) trace swept over 1, 2 and 4
// threads for Count-Min (replicated), Count-Sketch (replicated) and
// Misra-Gries (key-partitioned). --quick shrinks the trace to 1M arrivals
// for CI smoke runs. JSON goes to --out (stdout when omitted); a human
// summary always goes to stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/span.h"
#include "common/timer.h"
#include "hashing/hash_functions.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/kernels/simd_dispatch.h"
#include "sketch/misra_gries.h"
#include "stream/sharded_ingest.h"

namespace opthash {
namespace {

struct Options {
  size_t items = 10'000'000;
  size_t universe = 1'000'000;
  double zipf_s = 1.05;
  size_t block_size = 1 << 16;
  std::vector<size_t> threads = {1, 2, 4};
  std::string out;  // Empty = stdout.
  bool quick = false;
};

struct ResultRow {
  std::string sketch;
  std::string mode;
  std::string tier;  // kernel tier the row ran on ("none" for misra-gries)
  size_t threads = 0;
  double seconds = 0.0;
  double items_per_sec = 0.0;
  double speedup_vs_1t = 0.0;
  double max_abs_estimate_delta = 0.0;
  double mean_abs_estimate_delta = 0.0;
  bool identical_to_sequential = false;
};

const char* ModeName(stream::ShardMode mode) {
  return mode == stream::ShardMode::kReplicated ? "replicated"
                                                : "key-partitioned";
}

// Digit-only tokens (the opthash_cli convention): a malformed list returns
// empty, which Main rejects, rather than silently becoming 0 (= "use all
// hardware threads").
std::vector<size_t> ParseThreadList(const std::string& csv) {
  std::vector<size_t> threads;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos) {
      return {};
    }
    threads.push_back(std::strtoull(token.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return threads;
}

std::vector<uint64_t> GenerateTrace(const Options& opt) {
  Rng rng(7);
  ZipfSampler zipf(opt.universe, opt.zipf_s);
  std::vector<uint64_t> trace(opt.items);
  for (auto& key : trace) {
    // Mix64 is a bijection: ranks stay distinct but ids are not trivially
    // ordered, matching real key spaces.
    key = hashing::Mix64(zipf.Sample(rng));
  }
  return trace;
}

std::vector<uint64_t> SampleQueryKeys(const Options& opt) {
  std::vector<uint64_t> queries;
  // The 100 heaviest ranks plus 1000 uniform ranks cover both tails.
  for (size_t rank = 1; rank <= 100 && rank <= opt.universe; ++rank) {
    queries.push_back(hashing::Mix64(rank));
  }
  Rng rng(11);
  for (size_t draw = 0; draw < 1000; ++draw) {
    queries.push_back(hashing::Mix64(1 + rng.NextBounded(opt.universe)));
  }
  return queries;
}

/// Sweeps `prototype` over the configured thread counts in `mode`,
/// comparing every merged result against a sequentially ingested
/// reference on the sampled query keys.
template <typename Sketch, typename EstimateFn>
void BenchSketch(const std::string& name, stream::ShardMode mode,
                 const std::string& tier,
                 const std::vector<uint64_t>& trace,
                 const std::vector<uint64_t>& queries, const Options& opt,
                 const Sketch& prototype, EstimateFn estimate,
                 std::vector<ResultRow>& rows) {
  Sketch reference = prototype.EmptyClone();
  reference.UpdateBatch(Span<const uint64_t>(trace));

  std::vector<ResultRow> sweep;
  for (size_t threads : opt.threads) {
    Sketch sketch = prototype.EmptyClone();
    stream::ShardedIngestConfig config;
    config.num_threads = threads;
    config.block_size = opt.block_size;
    config.mode = mode;
    auto stats = stream::ShardedIngest(Span<const uint64_t>(trace), config,
                                       sketch);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s @ %zu threads failed: %s\n", name.c_str(),
                   threads, stats.status().ToString().c_str());
      continue;
    }

    ResultRow row;
    row.sketch = name;
    row.mode = ModeName(mode);
    row.tier = tier;
    row.threads = stats.value().threads_used;
    row.seconds = stats.value().seconds;
    row.items_per_sec = stats.value().ItemsPerSecond();

    double max_delta = 0.0;
    double sum_delta = 0.0;
    for (uint64_t key : queries) {
      const double delta =
          std::fabs(estimate(sketch, key) - estimate(reference, key));
      max_delta = std::max(max_delta, delta);
      sum_delta += delta;
    }
    row.max_abs_estimate_delta = max_delta;
    row.mean_abs_estimate_delta =
        queries.empty() ? 0.0 : sum_delta / static_cast<double>(queries.size());
    row.identical_to_sequential = max_delta == 0.0;
    sweep.push_back(row);
  }

  // Speedups are relative to the 1-thread row regardless of where it sits
  // in the sweep order (first row as fallback when 1 wasn't requested).
  double base_ips = sweep.empty() ? 0.0 : sweep.front().items_per_sec;
  for (const ResultRow& row : sweep) {
    if (row.threads == 1) base_ips = row.items_per_sec;
  }
  for (ResultRow& row : sweep) {
    row.speedup_vs_1t = base_ips > 0.0 ? row.items_per_sec / base_ips : 0.0;
    std::fprintf(stderr,
                 "%-12s %-16s threads=%zu  %8.3fs  %12.0f items/sec  "
                 "speedup %.2fx  max|Δest| %.1f\n",
                 name.c_str(), row.mode.c_str(), row.threads, row.seconds,
                 row.items_per_sec, row.speedup_vs_1t,
                 row.max_abs_estimate_delta);
    rows.push_back(row);
  }
}

/// Single-thread UpdateBatch once per available kernel tier: isolates
/// what the kernel layer itself buys on ingest, with a bit-identity gate
/// (every tier must produce the same estimates as the first one) before
/// the row counts. Scatters are sequential in every tier, so counters
/// match exactly.
template <typename Sketch, typename EstimateFn>
void BenchKernelTiers(const std::string& name,
                      const std::vector<uint64_t>& trace,
                      const std::vector<uint64_t>& queries,
                      const Sketch& prototype, EstimateFn estimate,
                      std::vector<ResultRow>& rows) {
  std::vector<double> reference;
  double scalar_ips = 0.0;
  std::vector<ResultRow> sweep;
  for (const sketch::kernels::KernelTier tier :
       sketch::kernels::AvailableKernelTiers()) {
    if (!sketch::kernels::ForceKernelTier(tier).ok()) continue;
    Sketch sketch = prototype.EmptyClone();
    Timer timer;
    sketch.UpdateBatch(Span<const uint64_t>(trace));
    const double seconds = timer.ElapsedSeconds();

    double max_delta = 0.0;
    std::vector<double> answers;
    answers.reserve(queries.size());
    for (uint64_t key : queries) answers.push_back(estimate(sketch, key));
    if (reference.empty()) {
      reference = answers;
    } else {
      for (size_t i = 0; i < answers.size(); ++i) {
        max_delta = std::max(max_delta,
                             std::fabs(answers[i] - reference[i]));
      }
    }

    ResultRow row;
    row.sketch = name;
    row.mode = "update-batch";
    row.tier = std::string(sketch::kernels::KernelTierName(tier));
    row.threads = 1;
    row.seconds = seconds;
    row.items_per_sec = static_cast<double>(trace.size()) / seconds;
    row.max_abs_estimate_delta = max_delta;
    row.mean_abs_estimate_delta = 0.0;
    row.identical_to_sequential = max_delta == 0.0;
    if (tier == sketch::kernels::KernelTier::kScalar) {
      scalar_ips = row.items_per_sec;
    }
    sweep.push_back(row);
  }
  sketch::kernels::ResetKernelTierForTest();
  for (ResultRow& row : sweep) {
    row.speedup_vs_1t =
        scalar_ips > 0.0 ? row.items_per_sec / scalar_ips : 0.0;
    std::fprintf(stderr,
                 "%-12s %-16s tier=%-7s %8.3fs  %12.0f items/sec  "
                 "vs-scalar %.2fx  max|Δest| %.1f\n",
                 name.c_str(), row.mode.c_str(), row.tier.c_str(),
                 row.seconds, row.items_per_sec, row.speedup_vs_1t,
                 row.max_abs_estimate_delta);
    rows.push_back(row);
  }
}

void WriteJson(std::FILE* out, const Options& opt,
               const std::vector<ResultRow>& rows) {
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"config\": {\"items\": %zu, \"universe\": %zu, "
               "\"zipf_s\": %.3f, \"block_size\": %zu, \"quick\": %s},\n",
               opt.items, opt.universe, opt.zipf_s, opt.block_size,
               opt.quick ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"sketch\": \"%s\", \"mode\": \"%s\", \"tier\": \"%s\", "
        "\"threads\": %zu, "
        "\"seconds\": %.6f, \"items_per_sec\": %.1f, "
        "\"speedup_vs_1t\": %.3f, \"max_abs_estimate_delta\": %.3f, "
        "\"mean_abs_estimate_delta\": %.4f, "
        "\"identical_to_sequential\": %s}%s\n",
        row.sketch.c_str(), row.mode.c_str(), row.tier.c_str(),
        row.threads, row.seconds,
        row.items_per_sec, row.speedup_vs_1t, row.max_abs_estimate_delta,
        row.mean_abs_estimate_delta,
        row.identical_to_sequential ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: bench_throughput [--quick] [--items N] [--universe N]\n"
      "                        [--zipf-s S] [--threads 1,2,4]\n"
      "                        [--block-size B] [--out path.json]\n");
  return out == stdout ? 0 : 2;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
      opt.items = 1'000'000;
      opt.universe = 200'000;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else if (i + 1 < argc && arg == "--items") {
      opt.items = std::strtoull(argv[++i], nullptr, 10);
    } else if (i + 1 < argc && arg == "--universe") {
      opt.universe = std::strtoull(argv[++i], nullptr, 10);
    } else if (i + 1 < argc && arg == "--zipf-s") {
      opt.zipf_s = std::strtod(argv[++i], nullptr);
    } else if (i + 1 < argc && arg == "--threads") {
      opt.threads = ParseThreadList(argv[++i]);
    } else if (i + 1 < argc && arg == "--block-size") {
      opt.block_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (i + 1 < argc && arg == "--out") {
      opt.out = argv[++i];
    } else {
      return Usage(stderr);
    }
  }
  if (opt.items == 0 || opt.universe == 0 || opt.block_size == 0 ||
      opt.threads.empty()) {
    return Usage(stderr);
  }

  std::fprintf(stderr,
               "generating %zu-arrival Zipf(%.2f) trace over %zu keys...\n",
               opt.items, opt.zipf_s, opt.universe);
  const std::vector<uint64_t> trace = GenerateTrace(opt);
  const std::vector<uint64_t> queries = SampleQueryKeys(opt);

  // Sharded rows run on whatever tier the dispatcher picked at startup
  // (or OPTHASH_SIMD forced); the per-tier single-thread sweep below is
  // the controlled comparison.
  const std::string active_tier(
      sketch::kernels::KernelTierName(sketch::kernels::ActiveKernelTier()));
  std::vector<ResultRow> rows;
  BenchSketch(
      "count-min", stream::ShardMode::kReplicated, active_tier, trace,
      queries, opt, sketch::CountMinSketch(1 << 13, 4, /*seed=*/21),
      [](const sketch::CountMinSketch& s, uint64_t key) {
        return static_cast<double>(s.Estimate(key));
      },
      rows);
  BenchSketch(
      "count-sketch", stream::ShardMode::kReplicated, active_tier, trace,
      queries, opt, sketch::CountSketch(1 << 13, 5, /*seed=*/22),
      [](const sketch::CountSketch& s, uint64_t key) {
        return static_cast<double>(s.Estimate(key));
      },
      rows);
  BenchSketch(
      "misra-gries", stream::ShardMode::kKeyPartitioned, "none", trace,
      queries, opt, sketch::MisraGries(1 << 10),
      [](const sketch::MisraGries& s, uint64_t key) {
        return static_cast<double>(s.Estimate(key));
      },
      rows);
  BenchKernelTiers(
      "count-min", trace, queries,
      sketch::CountMinSketch(1 << 13, 4, /*seed=*/21),
      [](const sketch::CountMinSketch& s, uint64_t key) {
        return static_cast<double>(s.Estimate(key));
      },
      rows);
  BenchKernelTiers(
      "count-sketch", trace, queries,
      sketch::CountSketch(1 << 13, 5, /*seed=*/22),
      [](const sketch::CountSketch& s, uint64_t key) {
        return static_cast<double>(s.Estimate(key));
      },
      rows);

  if (opt.out.empty()) {
    WriteJson(stdout, opt, rows);
  } else {
    std::FILE* file = std::fopen(opt.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    WriteJson(file, opt, rows);
    std::fclose(file);
    std::fprintf(stderr, "JSON written to %s\n", opt.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace opthash

int main(int argc, char** argv) { return opthash::Main(argc, argv); }

// Table 1: average (per element) error of the 120 KB opt-hash estimator as
// a percentage of the query's true frequency, for the queries of ranks
// 1, 10, 100, 1,000 and 10,000, measured after the full 90-day period
// (averaged over independent repetitions as in §7.4).

#include <cstdio>

#include "aol_harness.h"
#include "common/running_stats.h"
#include "common/table_printer.h"

namespace opthash::bench {
namespace {

void Run() {
  std::printf(
      "Table 1: opt-hash (120 KB) average error as %% of query frequency "
      "by rank, after 90 days.\n\n");

  constexpr size_t kRanks[] = {1, 10, 100, 1000, 10000};
  constexpr size_t kRepeats = 3;
  std::vector<RunningStats> percent_error(std::size(kRanks));
  std::vector<double> frequencies(std::size(kRanks), 0.0);

  for (size_t repeat = 0; repeat < kRepeats; ++repeat) {
    stream::QueryLogConfig config;
    config.num_queries = 300000;
    config.arrivals_per_day = 30000;
    config.num_days = 90;
    config.seed = 2006 + repeat;
    AolHarness harness(config);

    const auto buckets = static_cast<size_t>(120.0 * 1000.0 / 4.0);
    auto opt_hash = harness.TrainOptHash(buckets, /*ratio=*/0.3,
                                         /*seed=*/11 + repeat);
    OPTHASH_CHECK(opt_hash != nullptr);

    stream::ExactCounter truth;
    for (size_t rank : harness.log().GenerateDay(0)) {
      truth.Add(harness.log().QueryId(rank));
    }
    for (size_t day = 1; day < config.num_days; ++day) {
      for (size_t rank : harness.log().GenerateDay(day)) {
        const uint64_t id = harness.log().QueryId(rank);
        truth.Add(id);
        opt_hash->Update({id, nullptr});
      }
    }

    for (size_t r = 0; r < std::size(kRanks); ++r) {
      const size_t rank = kRanks[r];
      const uint64_t id = harness.log().QueryId(rank);
      const auto truth_count = static_cast<double>(truth.Count(id));
      if (truth_count <= 0.0) continue;
      const double estimate = opt_hash->Estimate({id, nullptr});
      percent_error[r].Add(100.0 * std::abs(estimate - truth_count) /
                           truth_count);
      frequencies[r] = truth_count;
    }
  }

  TablePrinter table({"query_rank", "query_frequency",
                      "avg_error_percentage"});
  for (size_t r = 0; r < std::size(kRanks); ++r) {
    table.AddRow({std::to_string(kRanks[r]),
                  TablePrinter::Num(frequencies[r], 0),
                  TablePrinter::Num(percent_error[r].mean(), 2) + " +/- " +
                      TablePrinter::Num(percent_error[r].stddev(), 2)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table 1): percentage error grows as rank "
      "deepens (0.01%% at rank 1\nup to ~20%% at rank 10,000 in the paper) "
      "— head queries are stored exactly, tail queries\nshare buckets.\n");
}

}  // namespace
}  // namespace opthash::bench

int main() {
  opthash::bench::Run();
  return 0;
}

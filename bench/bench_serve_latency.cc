// bench_serve_latency — closed-loop serving throughput/latency: an
// in-process opthash daemon on a real Unix-domain socket, driven by a
// real protocol client issuing back-to-back batched query requests (plus
// an ingest phase), reporting queries/sec and client-observed p50/p99
// request latency as JSON (like the other bench drivers, so CI archives
// the serving trajectory per commit).
//
//   bench_serve_latency [--quick] [--queries N] [--batch B] [--out path]
//                       [--topk-out path]
//
// Four serving setups are measured with the same workload:
//   1. a count-min sketch (the mutable serving path, after ingesting a
//      Zipf-shaped stream through the wire protocol),
//   2. the same checkpoint mmap-mapped (the zero-copy read-only path),
//   3. the TCP event-loop plane under concurrency: the same sketch
//      served over --listen, driven by 1..256 simultaneous closed-loop
//      clients — the latency-vs-connection-count curve that shows the
//      per-core loop pool absorbing connections without a per-session
//      thread (docs/OPERATIONS.md reproduces this table),
//   4. the top-k analytics path: a space-saving summary ingested over
//      the wire, then hammered with closed-loop kTopK requests (each
//      answer re-ranks every tracked counter under the model read lock).
//      Reported separately via --topk-out so CI can archive the top-k
//      trajectory without disturbing the query-latency JSON schema.
//
// Latency is measured around each request round-trip on the client
// thread (encode + socket + server decode/estimate/encode + decode), so
// the numbers are what a co-located client actually observes.
// --quick shrinks the workload for the CI bench-smoke job.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "io/sketch_snapshot.h"
#include "server/client.h"
#include "server/served_model.h"
#include "server/server.h"
#include "sketch/top_k.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace opthash {
namespace {

struct Options {
  size_t queries = 200'000;   // Total keys queried per served artifact.
  size_t batch = 512;         // Keys per request frame.
  size_t ingest_items = 500'000;
  size_t topk_requests = 20'000;  // Closed-loop kTopK round-trips.
  bool quick = false;
  std::string out;       // Empty = stdout.
  std::string topk_out;  // Empty = skip writing the top-k JSON.
};

struct ResultRow {
  std::string artifact;
  size_t connections = 1;
  double seconds = 0.0;
  size_t requests = 0;
  size_t keys = 0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;

  double KeysPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(keys) / seconds : 0.0;
  }
  double RequestsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

std::vector<uint64_t> ZipfishKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto r = static_cast<uint64_t>(rng.NextUint64());
    keys.push_back(r % ((r % 11 == 0) ? 100'000 : 200));
  }
  return keys;
}

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

// Closed loop: one request in flight at a time, every round-trip timed.
ResultRow DriveQueries(server::Client& client, const std::string& artifact,
                       const std::vector<uint64_t>& keys, size_t batch) {
  ResultRow row;
  row.artifact = artifact;
  std::vector<double> estimates;
  std::vector<double> latencies;
  latencies.reserve((keys.size() + batch - 1) / batch);
  Timer wall;
  for (size_t base = 0; base < keys.size(); base += batch) {
    const size_t block = std::min(batch, keys.size() - base);
    Timer request;
    const Status status = client.Query(
        Span<const uint64_t>(keys.data() + base, block), estimates);
    if (!status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    latencies.push_back(request.ElapsedSeconds() * 1e6);
    ++row.requests;
    row.keys += block;
  }
  row.seconds = wall.ElapsedSeconds();
  std::sort(latencies.begin(), latencies.end());
  row.p50_micros = PercentileOfSorted(latencies, 0.50);
  row.p99_micros = PercentileOfSorted(latencies, 0.99);
  return row;
}

// Closed loop over the top-k verb: every round-trip re-ranks the whole
// summary server-side; `keys` counts hitters returned.
ResultRow DriveTopK(server::Client& client, const std::string& artifact,
                    size_t requests, uint32_t k) {
  ResultRow row;
  row.artifact = artifact;
  std::vector<sketch::HeavyHitter> hitters;
  std::vector<double> latencies;
  latencies.reserve(requests);
  Timer wall;
  for (size_t i = 0; i < requests; ++i) {
    Timer request;
    const Status status = client.TopK(k, hitters);
    if (!status.ok()) {
      std::fprintf(stderr, "topk failed: %s\n", status.ToString().c_str());
      std::abort();
    }
    latencies.push_back(request.ElapsedSeconds() * 1e6);
    ++row.requests;
    row.keys += hitters.size();
  }
  row.seconds = wall.ElapsedSeconds();
  std::sort(latencies.begin(), latencies.end());
  row.p50_micros = PercentileOfSorted(latencies, 0.50);
  row.p99_micros = PercentileOfSorted(latencies, 0.99);
  return row;
}

void PrintJson(std::FILE* out, const Options& options,
               const std::vector<ResultRow>& rows) {
  std::fprintf(out, "{\n  \"benchmark\": \"serve_latency\",\n");
  std::fprintf(out,
               "  \"queries\": %zu,\n  \"batch\": %zu,\n"
               "  \"ingest_items\": %zu,\n",
               options.queries, options.batch, options.ingest_items);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"artifact\": \"%s\", \"connections\": %zu, "
                 "\"seconds\": %.6f, "
                 "\"requests\": %zu, \"keys\": %zu, "
                 "\"queries_per_sec\": %.0f, \"requests_per_sec\": %.0f, "
                 "\"p50_micros\": %.1f, \"p99_micros\": %.1f}%s\n",
                 rows[i].artifact.c_str(), rows[i].connections,
                 rows[i].seconds,
                 rows[i].requests, rows[i].keys, rows[i].KeysPerSecond(),
                 rows[i].RequestsPerSecond(), rows[i].p50_micros,
                 rows[i].p99_micros, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void PrintTopKJson(std::FILE* out, const Options& options, uint32_t k,
                   const std::vector<ResultRow>& rows) {
  std::fprintf(out, "{\n  \"benchmark\": \"serve_topk_latency\",\n");
  std::fprintf(out,
               "  \"topk_requests\": %zu,\n  \"k\": %u,\n"
               "  \"ingest_items\": %zu,\n",
               options.topk_requests, k, options.ingest_items);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"artifact\": \"%s\", \"seconds\": %.6f, "
                 "\"requests\": %zu, \"hitters\": %zu, "
                 "\"requests_per_sec\": %.0f, "
                 "\"p50_micros\": %.1f, \"p99_micros\": %.1f}%s\n",
                 rows[i].artifact.c_str(), rows[i].seconds,
                 rows[i].requests, rows[i].keys,
                 rows[i].RequestsPerSecond(), rows[i].p50_micros,
                 rows[i].p99_micros, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

std::string SocketPath() {
  return "/tmp/opthash_bench_" + std::to_string(::getpid()) + ".sock";
}

// C closed-loop clients on their own threads, each its own connection,
// splitting the key workload evenly; latencies are pooled across
// clients, so percentiles describe what any one request experienced at
// that connection count.
ResultRow DriveConcurrentTcp(const std::string& target,
                             const std::vector<uint64_t>& keys,
                             size_t batch, size_t connections) {
  ResultRow row;
  row.artifact = "cms_tcp";
  row.connections = connections;
  const size_t shard = keys.size() / connections;
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  Timer wall;
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto client = server::Client::Connect(target);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      const size_t begin = c * shard;
      const size_t end = c + 1 == connections ? keys.size() : begin + shard;
      std::vector<double> estimates;
      for (size_t base = begin; base < end; base += batch) {
        const size_t block = std::min(batch, end - base);
        Timer request;
        const Status status = client.value().Query(
            Span<const uint64_t>(keys.data() + base, block), estimates);
        if (!status.ok()) {
          failed.store(true);
          return;
        }
        latencies[c].push_back(request.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  row.seconds = wall.ElapsedSeconds();
  if (failed.load()) {
    std::fprintf(stderr, "tcp concurrency drive failed at %zu clients\n",
                 connections);
    std::abort();
  }
  std::vector<double> pooled;
  for (const std::vector<double>& per_client : latencies) {
    pooled.insert(pooled.end(), per_client.begin(), per_client.end());
    row.requests += per_client.size();
  }
  row.keys = keys.size();
  std::sort(pooled.begin(), pooled.end());
  row.p50_micros = PercentileOfSorted(pooled, 0.50);
  row.p99_micros = PercentileOfSorted(pooled, 0.99);
  return row;
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.queries = 20'000;
      options.ingest_items = 50'000;
      options.topk_requests = 2'000;
    } else if (arg == "--queries" && i + 1 < argc) {
      options.queries = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && i + 1 < argc) {
      options.batch = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else if (arg == "--topk-out" && i + 1 < argc) {
      options.topk_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_latency [--quick] [--queries N] "
                   "[--batch B] [--out path.json] [--topk-out path.json]\n");
      return 2;
    }
  }
  if (options.batch == 0) options.batch = 1;

  const std::vector<uint64_t> stream =
      ZipfishKeys(options.ingest_items, 31);
  const std::vector<uint64_t> queries = ZipfishKeys(options.queries, 87);
  std::vector<ResultRow> rows;
  const std::string checkpoint = "/tmp/opthash_bench_serve_ckpt.bin";

  // ---- Served artifact 1: mutable count-min (ingest via protocol). ----
  {
    server::FreshSketchSpec spec;
    spec.width = 1 << 15;
    spec.depth = 4;
    spec.seed = 7;
    auto model = server::CreateServedSketch(spec);
    if (!model.ok()) std::abort();
    server::ServerConfig config;
    config.socket_path = SocketPath();
    server::Server daemon(config, std::move(model).value());
    if (!daemon.Start().ok()) std::abort();
    auto client = server::Client::Connect(config.socket_path);
    if (!client.ok()) std::abort();

    Timer ingest_wall;
    for (size_t base = 0; base < stream.size(); base += 8192) {
      const size_t block = std::min<size_t>(8192, stream.size() - base);
      auto acked = client.value().Ingest(
          Span<const uint64_t>(stream.data() + base, block));
      if (!acked.ok()) std::abort();
    }
    const double ingest_seconds = ingest_wall.ElapsedSeconds();
    std::fprintf(stderr, "ingest: %zu items in %.3fs (%.0f items/sec)\n",
                 stream.size(), ingest_seconds,
                 static_cast<double>(stream.size()) / ingest_seconds);

    rows.push_back(
        DriveQueries(client.value(), "cms_owned", queries, options.batch));
    // Keep the state for the mapped phase.
    if (!io::SaveSketchSnapshot(
             checkpoint,
             // Reach the sketch through a fresh offline build: the
             // daemon owns its model, so rebuild the identical sketch.
             [&] {
               sketch::CountMinSketch cms(1 << 15, 4, 7);
               cms.UpdateBatch(stream);
               return cms;
             }())
             .ok()) {
      std::abort();
    }
    if (!client.value().Shutdown().ok()) std::abort();
    daemon.Wait();
    daemon.RequestShutdown();
  }

  // ---- Served artifact 2: the same checkpoint, mmap read-only. --------
  {
    auto opened = server::OpenServedModel(checkpoint, /*use_mmap=*/true);
    if (!opened.ok() || !opened.value().mmap_used) std::abort();
    server::ServerConfig config;
    config.socket_path = SocketPath();
    server::Server daemon(config, std::move(opened.value().model));
    if (!daemon.Start().ok()) std::abort();
    auto client = server::Client::Connect(config.socket_path);
    if (!client.ok()) std::abort();
    rows.push_back(
        DriveQueries(client.value(), "cms_mmap", queries, options.batch));
    if (!client.value().Shutdown().ok()) std::abort();
    daemon.Wait();
    daemon.RequestShutdown();
  }

  // ---- Serving setup 3: the TCP event-loop plane vs connection count. --
  {
    auto opened = server::OpenServedModel(checkpoint, /*use_mmap=*/false);
    if (!opened.ok()) std::abort();
    server::ServerConfig config;
    config.listen_address = "127.0.0.1:0";
    config.max_connections = 1024;
    server::Server daemon(config, std::move(opened.value().model));
    if (!daemon.Start().ok()) std::abort();
    const std::string target =
        "127.0.0.1:" + std::to_string(daemon.tcp_port());
    const std::vector<size_t> sweep =
        options.quick ? std::vector<size_t>{1, 8, 32}
                      : std::vector<size_t>{1, 8, 64, 256};
    for (size_t connections : sweep) {
      rows.push_back(DriveConcurrentTcp(target, queries, options.batch,
                                        connections));
    }
    daemon.RequestShutdown();
  }

  // ---- Serving setup 4: top-k over a space-saving summary. ------------
  constexpr uint32_t kTopKSize = 32;
  std::vector<ResultRow> topk_rows;
  {
    server::FreshSketchSpec spec;
    spec.kind = "ss";
    spec.capacity = 4096;
    auto model = server::CreateServedSketch(spec);
    if (!model.ok()) std::abort();
    server::ServerConfig config;
    config.socket_path = SocketPath();
    server::Server daemon(config, std::move(model).value());
    if (!daemon.Start().ok()) std::abort();
    auto client = server::Client::Connect(config.socket_path);
    if (!client.ok()) std::abort();
    for (size_t base = 0; base < stream.size(); base += 8192) {
      const size_t block = std::min<size_t>(8192, stream.size() - base);
      auto acked = client.value().Ingest(
          Span<const uint64_t>(stream.data() + base, block));
      if (!acked.ok()) std::abort();
    }
    topk_rows.push_back(DriveTopK(client.value(), "ss_topk",
                                  options.topk_requests, kTopKSize));
    if (!client.value().Shutdown().ok()) std::abort();
    daemon.Wait();
    daemon.RequestShutdown();
  }

  for (const ResultRow& row : topk_rows) {
    std::fprintf(stderr,
                 "%-10s k=%-3u %9.0f req/s  p50 %7.1f us  p99 %7.1f us\n",
                 row.artifact.c_str(), kTopKSize, row.RequestsPerSecond(),
                 row.p50_micros, row.p99_micros);
  }
  if (!options.topk_out.empty()) {
    std::FILE* file = std::fopen(options.topk_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.topk_out.c_str());
      return 1;
    }
    PrintTopKJson(file, options, kTopKSize, topk_rows);
    std::fclose(file);
    std::fprintf(stderr, "top-k json written to %s\n",
                 options.topk_out.c_str());
  }

  for (const ResultRow& row : rows) {
    std::fprintf(stderr,
                 "%-10s c=%-3zu %9.0f q/s  %7.0f req/s  p50 %7.1f us  "
                 "p99 %7.1f us\n",
                 row.artifact.c_str(), row.connections,
                 row.KeysPerSecond(),
                 row.RequestsPerSecond(), row.p50_micros, row.p99_micros);
  }
  if (options.out.empty()) {
    PrintJson(stdout, options, rows);
  } else {
    std::FILE* file = std::fopen(options.out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", options.out.c_str());
      return 1;
    }
    PrintJson(file, options, rows);
    std::fclose(file);
    std::fprintf(stderr, "json written to %s\n", options.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace opthash

int main(int argc, char** argv) { return opthash::Main(argc, argv); }

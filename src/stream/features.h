#ifndef OPTHASH_STREAM_FEATURES_H_
#define OPTHASH_STREAM_FEATURES_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "io/bytes.h"

namespace opthash::stream {

/// \brief The paper's §7.3 query featurization: "a simple bag-of-words
/// approach [keeping] the 500 most common words in the training queries",
/// plus four counts — ASCII characters, punctuation marks, dots, and
/// whitespaces.
class BagOfWordsFeaturizer {
 public:
  /// \param vocabulary_size number of most-common tokens to keep.
  explicit BagOfWordsFeaturizer(size_t vocabulary_size = 500);

  /// Learns the vocabulary from weighted training texts (weight = observed
  /// query frequency, so "most common words" is frequency-weighted).
  void Fit(const std::vector<std::pair<std::string, double>>& weighted_texts);

  /// vocabulary token counts followed by the four count features.
  std::vector<double> Featurize(const std::string& text) const;

  /// Out-parameter overload for the batched/hot query path: fills `out`
  /// (resized to FeatureDim() on first use, reused afterwards) instead of
  /// returning a fresh dense vector. Tokenization happens inline against
  /// a small stack buffer rather than through Tokenize's vector of
  /// strings, so a warm call performs no heap allocation for any token
  /// that fits the small-string optimization (all Tokenize output is
  /// lowercase alphanumeric; natural-language tokens virtually always
  /// fit). Results are identical to the returning overload.
  void Featurize(const std::string& text, std::vector<double>& out) const;

  /// Raw-row overload: writes exactly FeatureDim() doubles into `out`
  /// (which must have that size), e.g. one scratch-matrix row of the
  /// estimator's lazy-featurizing batch path. Never allocates beyond the
  /// tokenizer's small-string buffer.
  void Featurize(const std::string& text, Span<double> out) const;

  /// Feature dimension = |vocabulary| + 4.
  size_t FeatureDim() const { return vocabulary_.size() + 4; }

  /// Human-readable name of feature `index` ("word:<token>" or a count).
  std::string FeatureName(size_t index) const;

  bool fitted() const { return fitted_; }
  size_t VocabularySize() const { return vocabulary_.size(); }

  /// Lowercased alphanumeric tokens of a text.
  static std::vector<std::string> Tokenize(const std::string& text);

  /// Portable text serialization of the fitted vocabulary, so a deployed
  /// estimator can featurize queries identically to training time.
  std::string Serialize() const;
  void SerializeTo(std::ostream& out) const;
  static Result<BagOfWordsFeaturizer> Deserialize(const std::string& blob);
  static Result<BagOfWordsFeaturizer> DeserializeFrom(std::istream& in);

  /// Binary snapshot payload (docs/FORMATS.md, section type 33): cap,
  /// token count, then length-prefixed tokens in index order. Tokens are
  /// raw bytes, so unlike the whitespace-delimited text format this path
  /// round-trips any future tokenizer output unambiguously.
  void SerializeBinary(io::ByteWriter& out) const;

  /// Rebuilds a featurizer from a SerializeBinary payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes.
  static Result<BagOfWordsFeaturizer> DeserializeBinary(io::ByteReader& in);

 private:
  size_t vocabulary_size_;
  std::vector<std::string> vocabulary_;               // Index -> token.
  std::unordered_map<std::string, size_t> token_index_;
  bool fitted_ = false;
};

}  // namespace opthash::stream

#endif  // OPTHASH_STREAM_FEATURES_H_

#ifndef OPTHASH_STREAM_SHARDED_INGEST_H_
#define OPTHASH_STREAM_SHARDED_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/timer.h"

namespace opthash::stream {

/// \brief How the sharded ingestion engine distributes a trace across its
/// worker threads.
enum class ShardMode {
  /// Every worker owns a full sketch replica and ingests a round-robin
  /// subset of the trace blocks. Correct for the *linear* sketches
  /// (Count-Min, Count-Sketch, AMS, Learned Count-Min), whose Merge is
  /// counter addition: the merged replicas are bit-identical to
  /// sequential ingestion regardless of how blocks were distributed.
  kReplicated,
  /// Worker w only ingests keys with KeyShardOf(key, threads) == w, so
  /// replicas see disjoint key sets. Preferred for the counter-based
  /// summaries (Misra-Gries, Space-Saving), where replicated ingestion
  /// would track popular keys redundantly in every replica and the merge
  /// is lossy; disjoint key sets keep each capacity-k replica focused on
  /// its own shard's heavy hitters. Every worker scans all blocks and
  /// filters — cheap relative to a hash-table update.
  kKeyPartitioned,
};

/// \brief Configuration of one sharded ingestion run.
struct ShardedIngestConfig {
  /// Worker threads; 0 means "use the hardware concurrency". With 1 the
  /// engine runs entirely on the calling thread with no replicas, making
  /// results bit-reproducible against plain sequential ingestion.
  size_t num_threads = 1;
  /// Trace items per dispatch block (replicated mode's unit of work).
  size_t block_size = 1 << 16;
  ShardMode mode = ShardMode::kReplicated;

  Status Validate() const;
};

/// \brief What one ingestion run did, for throughput reporting.
struct IngestStats {
  size_t num_items = 0;
  size_t num_blocks = 0;
  size_t threads_used = 0;
  double seconds = 0.0;

  double ItemsPerSecond() const;
};

/// Resolves the configured thread count: 0 becomes the hardware
/// concurrency (at least 1).
size_t ResolveThreadCount(size_t requested);

/// Number of block_size-sized blocks covering `num_items` (last may be
/// short).
size_t NumBlocks(size_t num_items, size_t block_size);

/// Deterministic key → shard assignment used by kKeyPartitioned (Mix64 of
/// the key modulo `num_shards`), stable across runs and thread counts.
size_t KeyShardOf(uint64_t key, size_t num_shards);

/// Runs `body(worker)` for worker in [0, threads): worker 0 on the calling
/// thread, the rest on freshly spawned std::threads; joins them all before
/// returning. With threads == 1 no thread is spawned at all.
void RunOnWorkers(size_t threads, const std::function<void(size_t)>& body);

/// \brief Core engine: partitions `keys` into blocks, fans them out to N
/// workers that each own one replica produced by `make_replica(worker)`,
/// and folds every replica into the caller's estimator via
/// `merge_replica`, in worker order (deterministic).
///
/// Callable contracts:
///   make_replica(size_t worker) -> Replica        (any movable type)
///   ingest_block(Replica&, size_t worker, Span<const uint64_t> block)
///   merge_replica(Replica&) -> Status
///
/// In kReplicated mode worker w receives blocks w, w+T, w+2T, ... — a
/// static round-robin assignment, so which replica ingested which block
/// never depends on thread scheduling. In kKeyPartitioned mode every
/// worker receives every block and `ingest_block` is expected to filter by
/// worker (see ShardedIngest for the canonical filter).
template <typename Make, typename Ingest, typename MergeFn>
Result<IngestStats> ShardedIngestCustom(Span<const uint64_t> keys,
                                        const ShardedIngestConfig& config,
                                        Make make_replica, Ingest ingest_block,
                                        MergeFn merge_replica) {
  const Status valid = config.Validate();
  if (!valid.ok()) return valid;
  const size_t threads = ResolveThreadCount(config.num_threads);
  const size_t num_blocks = NumBlocks(keys.size(), config.block_size);
  using Replica = decltype(make_replica(size_t{0}));

  Timer timer;
  std::vector<Replica> replicas;
  replicas.reserve(threads);
  for (size_t worker = 0; worker < threads; ++worker) {
    replicas.push_back(make_replica(worker));
  }

  const bool every_block = config.mode == ShardMode::kKeyPartitioned;
  const size_t stride = every_block ? 1 : threads;
  RunOnWorkers(threads, [&](size_t worker) {
    for (size_t block = every_block ? 0 : worker; block < num_blocks;
         block += stride) {
      ingest_block(replicas[worker], worker,
                   keys.subspan(block * config.block_size, config.block_size));
    }
  });

  for (Replica& replica : replicas) {
    const Status merged = merge_replica(replica);
    if (!merged.ok()) return merged;
  }

  IngestStats stats;
  stats.num_items = keys.size();
  stats.num_blocks = num_blocks;
  stats.threads_used = threads;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

/// \brief Sketch-level entry point: ingests `keys` (unit increments) into
/// `sketch` using N worker-owned replicas merged back at the end.
///
/// Requires the mergeable-sketch interface every sketch in src/sketch/
/// implements: `EmptyClone() const`, `UpdateBatch(Span<const uint64_t>)`
/// and `Status Merge(const Self&)`.
///
/// With a resolved thread count of 1 this is exactly
/// `sketch.UpdateBatch(keys)` — no replicas, no merge — so single-threaded
/// results are bit-identical to sequential ingestion for *every* sketch,
/// including the order-sensitive ones (conservative-update CMS,
/// Misra-Gries, Space-Saving). For linear sketches in kReplicated mode the
/// multi-threaded result is also exactly the sequential one; for the
/// counter-based summaries it is within the documented merge bounds.
template <typename Sketch>
Result<IngestStats> ShardedIngest(Span<const uint64_t> keys,
                                  const ShardedIngestConfig& config,
                                  Sketch& sketch) {
  const Status valid = config.Validate();
  if (!valid.ok()) return valid;
  const size_t threads = ResolveThreadCount(config.num_threads);
  if (threads <= 1) {
    Timer timer;
    sketch.UpdateBatch(keys);
    IngestStats stats;
    stats.num_items = keys.size();
    stats.num_blocks = NumBlocks(keys.size(), config.block_size);
    stats.threads_used = 1;
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }
  auto make = [&sketch](size_t) { return sketch.EmptyClone(); };
  auto merge = [&sketch](Sketch& replica) { return sketch.Merge(replica); };
  if (config.mode == ShardMode::kKeyPartitioned) {
    return ShardedIngestCustom(
        keys, config, make,
        [threads](Sketch& replica, size_t worker, Span<const uint64_t> block) {
          for (uint64_t key : block) {
            if (KeyShardOf(key, threads) == worker) replica.Update(key);
          }
        },
        merge);
  }
  return ShardedIngestCustom(
      keys, config, make,
      [](Sketch& replica, size_t /*worker*/, Span<const uint64_t> block) {
        replica.UpdateBatch(block);
      },
      merge);
}

}  // namespace opthash::stream

#endif  // OPTHASH_STREAM_SHARDED_INGEST_H_

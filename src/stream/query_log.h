#ifndef OPTHASH_STREAM_QUERY_LOG_H_
#define OPTHASH_STREAM_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace opthash::stream {

/// \brief Parameters of the synthetic search-query log.
struct QueryLogConfig {
  /// Universe of unique queries (the AOL log has 3.8M; we default to a
  /// 50k-query scale-down that keeps every code path hot in CI time).
  size_t num_queries = 50000;
  /// Arrivals per simulated day (AOL: ~230k/day).
  size_t arrivals_per_day = 4000;
  /// Days in the log (AOL: 90).
  size_t num_days = 90;
  /// Zipf exponent. Calibrated from the paper's reported rank/frequency
  /// anchors (rank 1 = 251,463; 10 = 37,436; 100 = 5,237; 1,000 = 926;
  /// 10,000 = 146), which fit f(r) ∝ r^-s with s ≈ 0.82.
  double zipf_s = 0.82;
  uint64_t seed = 2006;

  Status Validate() const;
};

/// \brief AOL-query-log substitute (see DESIGN.md §1 for the substitution
/// rationale).
///
/// Queries are identified by rank (1 = most frequent); arrivals are i.i.d.
/// Zipf(s) draws, which automatically makes head queries persist across
/// days — the temporal property §7 relies on ("popular search queries tend
/// to appear consistently across multiple days"). Query *text* is generated
/// deterministically per rank with a shape that correlates with frequency:
/// head ranks are navigational ("google", "www.ebay.com"), mid ranks are
/// 1-3 keyword queries, tail ranks are long multi-word phrases. This
/// reproduces the feature/frequency association the paper's classifier
/// exploits (its top importances: char/dot/punct/space counts and the
/// tokens "com", "www", "google", "yahoo").
class QueryLog {
 public:
  explicit QueryLog(const QueryLogConfig& config);

  size_t NumQueries() const { return config_.num_queries; }
  size_t NumDays() const { return config_.num_days; }

  /// Query text for a rank in [1, NumQueries()].
  const std::string& QueryText(size_t rank) const;

  /// Stable unique ID of a query (its rank).
  uint64_t QueryId(size_t rank) const { return rank; }

  /// Arrival probability of a rank under the Zipf law.
  double Probability(size_t rank) const;

  /// The arrivals (query ranks) of one day; deterministic given the seed
  /// and the day index. Day 0 is the observed prefix in §7.
  std::vector<size_t> GenerateDay(size_t day) const;

  const QueryLogConfig& config() const { return config_; }

 private:
  std::string GenerateText(size_t rank, Rng& rng) const;

  QueryLogConfig config_;
  ZipfSampler sampler_;
  std::vector<std::string> texts_;  // texts_[rank - 1]
};

}  // namespace opthash::stream

#endif  // OPTHASH_STREAM_QUERY_LOG_H_

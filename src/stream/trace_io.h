#ifndef OPTHASH_STREAM_TRACE_IO_H_
#define OPTHASH_STREAM_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace opthash::stream {

/// \brief One arrival in an on-disk stream trace: an element key and the
/// free-text payload its features are derived from (e.g. the query text).
/// An empty text is allowed for key-only workloads.
struct TraceRecord {
  uint64_t id = 0;
  std::string text;

  bool operator==(const TraceRecord& other) const {
    return id == other.id && text == other.text;
  }
};

/// \brief Reads a trace from a CSV file with header `id,text` (the text
/// column may be omitted for key-only traces). Lets users run the
/// estimators and the CLI on their own data.
Result<std::vector<TraceRecord>> ReadTraceCsv(const std::string& path);

/// \brief Writes a trace as CSV (`id,text` header).
Status WriteTraceCsv(const std::string& path,
                     const std::vector<TraceRecord>& records);

}  // namespace opthash::stream

#endif  // OPTHASH_STREAM_TRACE_IO_H_

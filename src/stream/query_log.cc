#include "stream/query_log.h"

#include <array>

#include "common/check.h"

namespace opthash::stream {

namespace {

// Navigational destinations: over-represented among head queries, exactly
// as in the AOL log ("google" is rank 1, "www.yahoo.com" rank 10, ...).
constexpr std::array<const char*, 24> kNavDomains = {
    "google",   "yahoo",    "myspace",  "ebay",     "mapquest", "msn",
    "aol",      "amazon",   "hotmail",  "craigslist", "bankofamerica",
    "weather",  "ask",      "walmart",  "target",   "expedia",  "irs",
    "monster",  "netflix",  "verizon",  "espn",     "cnn",      "imdb",
    "webmd"};

// Common query keywords for mid-frequency queries.
constexpr std::array<const char*, 48> kCommonWords = {
    "free",     "new",     "home",     "county",   "pictures", "lyrics",
    "games",    "music",   "school",   "city",     "hotel",    "sale",
    "real",     "estate",  "jobs",     "car",      "insurance", "phone",
    "number",   "recipes", "dog",      "baby",     "wedding",  "online",
    "casino",   "stone",   "sharon",   "high",     "best",     "cheap",
    "movie",    "video",   "photo",    "news",     "sports",   "health",
    "travel",   "bank",    "credit",   "card",     "college",  "university",
    "florida",  "texas",   "york",     "beach",    "park",     "store"};

constexpr std::array<const char*, 4> kTlds = {"com", "net", "org", "com"};

}  // namespace

Status QueryLogConfig::Validate() const {
  if (num_queries == 0) return Status::InvalidArgument("num_queries >= 1");
  if (arrivals_per_day == 0) {
    return Status::InvalidArgument("arrivals_per_day >= 1");
  }
  if (num_days == 0) return Status::InvalidArgument("num_days >= 1");
  if (zipf_s < 0.0) return Status::InvalidArgument("zipf_s >= 0");
  return Status::OK();
}

QueryLog::QueryLog(const QueryLogConfig& config)
    : config_(config), sampler_(config.num_queries, config.zipf_s) {
  OPTHASH_CHECK_MSG(config.Validate().ok(), "invalid query log config");
  texts_.resize(config_.num_queries);
  for (size_t rank = 1; rank <= config_.num_queries; ++rank) {
    // Per-rank RNG: the text of a rank is independent of the universe size.
    Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * rank));
    texts_[rank - 1] = GenerateText(rank, rng);
  }
}

std::string QueryLog::GenerateText(size_t rank, Rng& rng) const {
  auto tail_word = [&rng]() {
    // Synthetic long-tail vocabulary ("w" + number) — stands in for the
    // unbounded vocabulary of real queries.
    return "w" + std::to_string(rng.NextBounded(4000));
  };
  auto common_word = [&rng]() {
    return std::string(kCommonWords[rng.NextBounded(kCommonWords.size())]);
  };

  if (rank <= 2 * kNavDomains.size()) {
    // Head: navigational. Even sub-ranks get the bare brand, odd get the
    // full www.<domain>.<tld> form.
    const char* domain = kNavDomains[(rank - 1) / 2];
    if (rank % 2 == 1) return domain;
    return "www." + std::string(domain) + "." +
           kTlds[rng.NextBounded(kTlds.size())];
  }
  if (rank <= 600) {
    // Upper-mid: either a domain query or one/two common keywords.
    if (rng.NextBernoulli(0.4)) {
      return "www." + common_word() + "." +
             kTlds[rng.NextBounded(kTlds.size())];
    }
    std::string text = common_word();
    if (rng.NextBernoulli(0.5)) text += " " + common_word();
    return text;
  }
  if (rank <= 6000) {
    // Mid: two-to-three keyword queries.
    std::string text = common_word();
    const size_t extra = 1 + rng.NextBounded(2);
    for (size_t w = 0; w < extra; ++w) {
      text += " " + (rng.NextBernoulli(0.7) ? common_word() : tail_word());
    }
    return text;
  }
  // Tail: long multi-word phrases, occasionally with punctuation.
  const size_t words = 3 + rng.NextBounded(4);
  std::string text;
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) text += " ";
    text += rng.NextBernoulli(0.35) ? common_word() : tail_word();
  }
  if (rng.NextBernoulli(0.15)) text += "?";
  if (rng.NextBernoulli(0.1)) text += ".";
  return text;
}

const std::string& QueryLog::QueryText(size_t rank) const {
  OPTHASH_CHECK_GE(rank, 1u);
  OPTHASH_CHECK_LE(rank, config_.num_queries);
  return texts_[rank - 1];
}

double QueryLog::Probability(size_t rank) const {
  return sampler_.Probability(rank);
}

std::vector<size_t> QueryLog::GenerateDay(size_t day) const {
  OPTHASH_CHECK_LT(day, config_.num_days);
  Rng rng(config_.seed + 0x517CC1B727220A95ULL * (day + 1));
  std::vector<size_t> arrivals(config_.arrivals_per_day);
  for (size_t t = 0; t < arrivals.size(); ++t) {
    arrivals[t] = sampler_.Sample(rng);
  }
  return arrivals;
}

}  // namespace opthash::stream

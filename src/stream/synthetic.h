#ifndef OPTHASH_STREAM_SYNTHETIC_H_
#define OPTHASH_STREAM_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace opthash::stream {

/// \brief Parameters of the paper's synthetic generator (§6.1).
struct SyntheticConfig {
  /// G: number of element groups; group g has 2^(G0+g) elements.
  size_t num_groups = 6;
  /// G0: exponent offset of the smallest group (the paper uses 2).
  size_t min_group_exponent = 2;
  /// p: feature dimension (the paper uses 2 to enable visualization).
  size_t feature_dim = 2;
  /// g0: fraction of each group's elements eligible to appear in the prefix.
  double fraction_seen = 0.5;
  /// Group means are drawn uniformly from [-coord_range, coord_range]^p.
  double coord_range = 10.0;
  uint64_t seed = 42;

  Status Validate() const;
};

/// \brief The synthetic universe + stream process of §6.1.
///
/// Elements are partitioned into G groups of exponentially increasing sizes
/// 2^(G0+1), ..., 2^(G0+G). Each group g carries a p-dimensional Gaussian
/// N(mu_g, I); element features are i.i.d. draws from their group's
/// Gaussian. Arrivals first pick a group with probability proportional to
/// 1/g, then an element uniformly within the group — so small groups hold
/// the heavy hitters. Prefix arrivals are restricted to the first
/// g0-fraction of each group (chosen uniformly within the group with
/// probability 1/(g0 |G_g|)), modelling elements that only start appearing
/// later in the stream.
class SyntheticWorld {
 public:
  explicit SyntheticWorld(const SyntheticConfig& config);

  /// Total universe size sum_g 2^(G0+g).
  size_t NumElements() const { return group_of_.size(); }
  size_t NumGroups() const { return config_.num_groups; }

  /// Paper's default prefix length |S0| = 10 * 2^G.
  size_t DefaultPrefixLength() const {
    return 10 * (size_t{1} << config_.num_groups);
  }

  /// 1-indexed group of an element.
  size_t GroupOf(size_t element) const { return group_of_[element]; }
  const std::vector<double>& FeaturesOf(size_t element) const {
    return features_[element];
  }
  /// True if the element may appear in the prefix.
  bool PrefixEligible(size_t element) const {
    return prefix_eligible_[element];
  }

  /// Draws `length` arrivals from the full stream distribution.
  std::vector<size_t> GenerateStream(size_t length, Rng& rng) const;

  /// Draws `length` arrivals restricted to prefix-eligible elements.
  std::vector<size_t> GeneratePrefix(size_t length, Rng& rng) const;

  /// True arrival probability of an element under the full distribution.
  double ArrivalProbability(size_t element) const;

  const SyntheticConfig& config() const { return config_; }

 private:
  size_t SampleElement(Rng& rng, bool prefix_only) const;

  SyntheticConfig config_;
  std::vector<size_t> group_of_;               // 1-indexed group per element.
  std::vector<std::vector<double>> features_;  // Per element.
  std::vector<bool> prefix_eligible_;
  std::vector<size_t> group_start_;   // First element index of each group.
  std::vector<size_t> group_size_;    // |G_g| per group (index 0 = group 1).
  std::vector<size_t> eligible_size_; // Eligible count per group.
  std::vector<double> group_weights_; // Arrival weight 1/g, normalized.
};

}  // namespace opthash::stream

#endif  // OPTHASH_STREAM_SYNTHETIC_H_

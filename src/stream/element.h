#ifndef OPTHASH_STREAM_ELEMENT_H_
#define OPTHASH_STREAM_ELEMENT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace opthash::stream {

/// \brief One stream arrival: the element's unique key plus (optionally) a
/// pointer to its feature vector. Matches the paper's u = (k, x) model.
struct StreamItem {
  uint64_t id = 0;
  const std::vector<double>* features = nullptr;
};

/// \brief Exact ground-truth frequency oracle (the "trivial" counter the
/// paper contrasts against). Used to score every estimator.
class ExactCounter {
 public:
  void Add(uint64_t id, uint64_t count = 1) {
    counts_[id] += count;
    total_ += count;
  }

  uint64_t Count(uint64_t id) const {
    auto it = counts_.find(id);
    return it == counts_.end() ? 0 : it->second;
  }

  uint64_t total() const { return total_; }
  size_t NumDistinct() const { return counts_.size(); }
  const std::unordered_map<uint64_t, uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace opthash::stream

#endif  // OPTHASH_STREAM_ELEMENT_H_

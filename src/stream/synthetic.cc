#include "stream/synthetic.h"

#include <cmath>

#include "common/check.h"

namespace opthash::stream {

Status SyntheticConfig::Validate() const {
  if (num_groups == 0) {
    return Status::InvalidArgument("num_groups must be >= 1");
  }
  if (feature_dim == 0) {
    return Status::InvalidArgument("feature_dim must be >= 1");
  }
  if (fraction_seen <= 0.0 || fraction_seen > 1.0) {
    return Status::InvalidArgument("fraction_seen must lie in (0, 1]");
  }
  if (coord_range <= 0.0) {
    return Status::InvalidArgument("coord_range must be positive");
  }
  return Status::OK();
}

SyntheticWorld::SyntheticWorld(const SyntheticConfig& config)
    : config_(config) {
  OPTHASH_CHECK_MSG(config.Validate().ok(), "invalid synthetic config");
  Rng rng(config_.seed);

  const size_t g_count = config_.num_groups;
  group_size_.resize(g_count);
  group_start_.resize(g_count);
  eligible_size_.resize(g_count);
  group_weights_.resize(g_count);

  size_t total = 0;
  double weight_sum = 0.0;
  for (size_t g = 1; g <= g_count; ++g) {
    group_start_[g - 1] = total;
    group_size_[g - 1] = size_t{1} << (config_.min_group_exponent + g);
    total += group_size_[g - 1];
    group_weights_[g - 1] = 1.0 / static_cast<double>(g);
    weight_sum += group_weights_[g - 1];
    // At least one eligible element per group.
    eligible_size_[g - 1] = static_cast<size_t>(std::max(
        1.0, std::floor(config_.fraction_seen *
                        static_cast<double>(group_size_[g - 1]))));
  }
  for (double& w : group_weights_) w /= weight_sum;

  group_of_.resize(total);
  features_.resize(total);
  prefix_eligible_.assign(total, false);

  for (size_t g = 1; g <= g_count; ++g) {
    // Group mean drawn uniformly from the coordinate box.
    std::vector<double> mean(config_.feature_dim);
    for (double& m : mean) {
      m = rng.NextDouble(-config_.coord_range, config_.coord_range);
    }
    const size_t start = group_start_[g - 1];
    for (size_t offset = 0; offset < group_size_[g - 1]; ++offset) {
      const size_t element = start + offset;
      group_of_[element] = g;
      features_[element].resize(config_.feature_dim);
      for (size_t d = 0; d < config_.feature_dim; ++d) {
        features_[element][d] = mean[d] + rng.NextGaussian();
      }
      prefix_eligible_[element] = offset < eligible_size_[g - 1];
    }
  }
}

size_t SyntheticWorld::SampleElement(Rng& rng, bool prefix_only) const {
  const size_t g = rng.SampleDiscrete(group_weights_);  // 0-indexed group.
  const size_t pool =
      prefix_only ? eligible_size_[g] : group_size_[g];
  return group_start_[g] + rng.NextBounded(pool);
}

std::vector<size_t> SyntheticWorld::GenerateStream(size_t length,
                                                   Rng& rng) const {
  std::vector<size_t> arrivals(length);
  for (size_t t = 0; t < length; ++t) {
    arrivals[t] = SampleElement(rng, /*prefix_only=*/false);
  }
  return arrivals;
}

std::vector<size_t> SyntheticWorld::GeneratePrefix(size_t length,
                                                   Rng& rng) const {
  std::vector<size_t> arrivals(length);
  for (size_t t = 0; t < length; ++t) {
    arrivals[t] = SampleElement(rng, /*prefix_only=*/true);
  }
  return arrivals;
}

double SyntheticWorld::ArrivalProbability(size_t element) const {
  OPTHASH_CHECK_LT(element, NumElements());
  const size_t g = group_of_[element];  // 1-indexed.
  return group_weights_[g - 1] / static_cast<double>(group_size_[g - 1]);
}

}  // namespace opthash::stream

#include "stream/trace_io.h"

#include <cerrno>
#include <cstdlib>

#include "common/csv_reader.h"
#include "common/csv_writer.h"

namespace opthash::stream {

Result<std::vector<TraceRecord>> ReadTraceCsv(const std::string& path) {
  auto parsed = ReadCsvFile(path);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty()) {
    return Status::InvalidArgument("trace file is empty: " + path);
  }
  const auto& header = rows.front();
  if (header.empty() || header[0] != "id") {
    return Status::InvalidArgument(
        "trace header must start with an 'id' column");
  }
  const bool has_text = header.size() >= 2 && header[1] == "text";

  std::vector<TraceRecord> records;
  records.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.empty() || (row.size() == 1 && row[0].empty())) continue;
    TraceRecord record;
    errno = 0;
    char* end = nullptr;
    record.id = std::strtoull(row[0].c_str(), &end, 10);
    if (errno != 0 || end == row[0].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad id at trace row " +
                                     std::to_string(r) + ": '" + row[0] + "'");
    }
    if (has_text && row.size() >= 2) record.text = row[1];
    records.push_back(std::move(record));
  }
  return records;
}

Status WriteTraceCsv(const std::string& path,
                     const std::vector<TraceRecord>& records) {
  CsvWriter csv({"id", "text"});
  for (const TraceRecord& record : records) {
    csv.AddRow({std::to_string(record.id), record.text});
  }
  return csv.WriteFile(path);
}

}  // namespace opthash::stream

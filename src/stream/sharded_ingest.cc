#include "stream/sharded_ingest.h"

#include <algorithm>
#include <thread>

#include "hashing/hash_functions.h"

namespace opthash::stream {

namespace {

// Backstop against pathological configs (e.g. --threads 10^9 from a CLI):
// more workers than this cannot help and each costs a replica + a stack.
constexpr size_t kMaxThreads = 256;

}  // namespace

Status ShardedIngestConfig::Validate() const {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be >= 1");
  }
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument("num_threads must be <= 256 (0 = auto)");
  }
  return Status::OK();
}

double IngestStats::ItemsPerSecond() const {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(num_items) / seconds;
}

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<size_t>(hardware, kMaxThreads));
}

size_t NumBlocks(size_t num_items, size_t block_size) {
  if (block_size == 0) return 0;
  return (num_items + block_size - 1) / block_size;
}

size_t KeyShardOf(uint64_t key, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Mix64 decorrelates the shard from the sketches' own Carter-Wegman
  // draws, so partitioning never aligns with any sketch's bucket hash.
  return static_cast<size_t>(hashing::Mix64(key) % num_shards);
}

void RunOnWorkers(size_t threads, const std::function<void(size_t)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  // Join before propagating any exception from the spawn loop or the
  // calling thread's own share: destroying a joinable std::thread calls
  // std::terminate. (An exception escaping `body` *inside a spawned
  // worker* still terminates — std::thread semantics — so worker bodies
  // must report failures through their replica state, not by throwing.)
  try {
    for (size_t worker = 1; worker < threads; ++worker) {
      pool.emplace_back(body, worker);
    }
    body(0);
  } catch (...) {
    for (std::thread& thread : pool) thread.join();
    throw;
  }
  for (std::thread& thread : pool) thread.join();
}

}  // namespace opthash::stream

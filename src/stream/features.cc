#include "stream/features.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/check.h"

namespace opthash::stream {

BagOfWordsFeaturizer::BagOfWordsFeaturizer(size_t vocabulary_size)
    : vocabulary_size_(vocabulary_size) {}

std::vector<std::string> BagOfWordsFeaturizer::Tokenize(
    const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void BagOfWordsFeaturizer::Fit(
    const std::vector<std::pair<std::string, double>>& weighted_texts) {
  std::unordered_map<std::string, double> token_weight;
  for (const auto& [text, weight] : weighted_texts) {
    for (const std::string& token : Tokenize(text)) {
      token_weight[token] += weight;
    }
  }
  std::vector<std::pair<std::string, double>> ranked(token_weight.begin(),
                                                     token_weight.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // Deterministic tie-break.
  });
  if (ranked.size() > vocabulary_size_) ranked.resize(vocabulary_size_);

  vocabulary_.clear();
  token_index_.clear();
  vocabulary_.reserve(ranked.size());
  for (const auto& [token, weight] : ranked) {
    token_index_.emplace(token, vocabulary_.size());
    vocabulary_.push_back(token);
  }
  fitted_ = true;
}

std::vector<double> BagOfWordsFeaturizer::Featurize(
    const std::string& text) const {
  std::vector<double> features;
  Featurize(text, features);
  return features;
}

void BagOfWordsFeaturizer::Featurize(const std::string& text,
                                     std::vector<double>& out) const {
  // Reuse the caller's buffer: resize only when the dimension changes
  // (first call) — no per-query allocation afterwards.
  if (out.size() != FeatureDim()) out.resize(FeatureDim());
  Featurize(text, Span<double>(out.data(), out.size()));
}

void BagOfWordsFeaturizer::Featurize(const std::string& text,
                                     Span<double> out) const {
  OPTHASH_CHECK_MSG(fitted_, "Featurize before Fit");
  OPTHASH_CHECK_EQ(out.size(), FeatureDim());
  std::fill(out.begin(), out.end(), 0.0);
  // Inline tokenization: identical token stream to Tokenize(), but the
  // token lives in one reused local buffer instead of a heap-allocated
  // vector of strings.
  std::string token;
  const auto flush_token = [&] {
    if (token.empty()) return;
    auto it = token_index_.find(token);
    if (it != token_index_.end()) out[it->second] += 1.0;
    token.clear();
  };
  // The four §7.3 count features, folded into the same character pass.
  double chars = 0.0;
  double punctuation = 0.0;
  double dots = 0.0;
  double spaces = 0.0;
  for (char ch : text) {
    const auto uch = static_cast<unsigned char>(ch);
    if (std::isalnum(uch)) {
      token += static_cast<char>(std::tolower(uch));
    } else {
      flush_token();
    }
    if (uch < 128) chars += 1.0;
    if (std::ispunct(uch)) punctuation += 1.0;
    if (ch == '.') dots += 1.0;
    if (std::isspace(uch)) spaces += 1.0;
  }
  flush_token();
  const size_t base = vocabulary_.size();
  out[base + 0] = chars;
  out[base + 1] = punctuation;
  out[base + 2] = dots;
  out[base + 3] = spaces;
}

namespace {
constexpr const char* kFeaturizerMagic = "opthash.bow.v1";
}  // namespace

void BagOfWordsFeaturizer::SerializeTo(std::ostream& out) const {
  OPTHASH_CHECK_MSG(fitted_, "Serialize before Fit");
  out << kFeaturizerMagic << ' ' << vocabulary_size_ << ' '
      << vocabulary_.size() << '\n';
  // Tokens are lowercased alphanumerics (Tokenize output), so plain
  // whitespace separation is unambiguous.
  for (const std::string& token : vocabulary_) out << token << '\n';
}

std::string BagOfWordsFeaturizer::Serialize() const {
  std::ostringstream out;
  SerializeTo(out);
  return out.str();
}

Result<BagOfWordsFeaturizer> BagOfWordsFeaturizer::DeserializeFrom(
    std::istream& in) {
  std::string magic;
  size_t cap = 0;
  size_t count = 0;
  if (!(in >> magic >> cap >> count)) {
    return Status::InvalidArgument("truncated featurizer header");
  }
  if (magic != kFeaturizerMagic) {
    return Status::InvalidArgument("bad featurizer magic: " + magic);
  }
  if (count > cap) {
    return Status::InvalidArgument("featurizer vocabulary exceeds its cap");
  }
  BagOfWordsFeaturizer featurizer(cap);
  featurizer.vocabulary_.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    std::string token;
    if (!(in >> token)) {
      return Status::InvalidArgument("truncated featurizer vocabulary");
    }
    featurizer.token_index_.emplace(token, featurizer.vocabulary_.size());
    featurizer.vocabulary_.push_back(std::move(token));
  }
  featurizer.fitted_ = true;
  return featurizer;
}

Result<BagOfWordsFeaturizer> BagOfWordsFeaturizer::Deserialize(
    const std::string& blob) {
  std::istringstream in(blob);
  return DeserializeFrom(in);
}

namespace {
constexpr uint32_t kFeaturizerPayloadVersion = 1;
}  // namespace

void BagOfWordsFeaturizer::SerializeBinary(io::ByteWriter& out) const {
  OPTHASH_CHECK_MSG(fitted_, "SerializeBinary before Fit");
  out.WriteU32(kFeaturizerPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(vocabulary_size_);
  out.WriteU64(vocabulary_.size());
  for (const std::string& token : vocabulary_) out.WriteString(token);
}

Result<BagOfWordsFeaturizer> BagOfWordsFeaturizer::DeserializeBinary(
    io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kFeaturizerPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported featurizer payload version " + std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero featurizer reserved field");
  }
  OPTHASH_IO_ASSIGN(cap, in.ReadU64());
  OPTHASH_IO_ASSIGN(count, in.ReadU64());
  if (count > cap) {
    return Status::InvalidArgument("featurizer vocabulary exceeds its cap");
  }
  // Every token costs at least its 4-byte length prefix.
  if (count > in.remaining() / sizeof(uint32_t)) {
    return Status::InvalidArgument("featurizer token count exceeds payload");
  }
  BagOfWordsFeaturizer featurizer(cap);
  featurizer.vocabulary_.reserve(count);
  for (uint64_t t = 0; t < count; ++t) {
    auto token = in.ReadString();
    if (!token.ok()) return token.status();
    featurizer.token_index_.emplace(token.value(),
                                    featurizer.vocabulary_.size());
    featurizer.vocabulary_.push_back(std::move(token).value());
  }
  featurizer.fitted_ = true;
  return featurizer;
}

std::string BagOfWordsFeaturizer::FeatureName(size_t index) const {
  OPTHASH_CHECK_LT(index, FeatureDim());
  if (index < vocabulary_.size()) return "word:" + vocabulary_[index];
  switch (index - vocabulary_.size()) {
    case 0:
      return "num_ascii_chars";
    case 1:
      return "num_punctuation";
    case 2:
      return "num_dots";
    default:
      return "num_whitespaces";
  }
}

}  // namespace opthash::stream

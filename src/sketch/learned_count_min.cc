#include "sketch/learned_count_min.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::sketch {

LearnedCountMinSketch::LearnedCountMinSketch(
    size_t total_buckets, CountMinSketch remainder,
    std::unordered_map<uint64_t, uint64_t> heavy_counts)
    : total_buckets_(total_buckets),
      remainder_(std::move(remainder)),
      heavy_counts_(std::move(heavy_counts)) {}

Result<LearnedCountMinSketch> LearnedCountMinSketch::Create(
    size_t total_buckets, size_t depth, const std::vector<uint64_t>& heavy_keys,
    uint64_t seed) {
  if (depth == 0) return Status::InvalidArgument("depth must be >= 1");
  if (2 * heavy_keys.size() >= total_buckets) {
    return Status::InvalidArgument(
        "heavy buckets (2 units each) must leave room for the CMS "
        "remainder: need 2*|heavy| < total_buckets");
  }
  const size_t remainder_buckets = total_buckets - 2 * heavy_keys.size();
  const size_t width = std::max<size_t>(1, remainder_buckets / depth);
  CountMinSketch remainder(width, depth, seed);
  std::unordered_map<uint64_t, uint64_t> heavy_counts;
  heavy_counts.reserve(heavy_keys.size());
  for (uint64_t key : heavy_keys) heavy_counts.emplace(key, 0);
  return LearnedCountMinSketch(total_buckets, std::move(remainder),
                               std::move(heavy_counts));
}

void LearnedCountMinSketch::Update(uint64_t key, uint64_t count) {
  auto it = heavy_counts_.find(key);
  if (it != heavy_counts_.end()) {
    it->second += count;
    return;
  }
  remainder_.Update(key, count);
}

void LearnedCountMinSketch::UpdateBatch(Span<const uint64_t> keys) {
  for (uint64_t key : keys) Update(key);
}

Status LearnedCountMinSketch::Merge(const LearnedCountMinSketch& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (heavy_counts_.size() != other.heavy_counts_.size()) {
    return Status::InvalidArgument(
        "LearnedCountMinSketch::Merge needs identical heavy-key sets");
  }
  for (const auto& [key, count] : other.heavy_counts_) {
    if (heavy_counts_.find(key) == heavy_counts_.end()) {
      return Status::InvalidArgument(
          "LearnedCountMinSketch::Merge needs identical heavy-key sets");
    }
    (void)count;
  }
  const Status remainder_merged = remainder_.Merge(other.remainder_);
  if (!remainder_merged.ok()) return remainder_merged;
  for (const auto& [key, count] : other.heavy_counts_) {
    heavy_counts_[key] += count;
  }
  return Status::OK();
}

LearnedCountMinSketch LearnedCountMinSketch::EmptyClone() const {
  std::unordered_map<uint64_t, uint64_t> heavy_counts;
  heavy_counts.reserve(heavy_counts_.size());
  for (const auto& [key, count] : heavy_counts_) heavy_counts.emplace(key, 0);
  return LearnedCountMinSketch(total_buckets_, remainder_.EmptyClone(),
                               std::move(heavy_counts));
}

uint64_t LearnedCountMinSketch::Estimate(uint64_t key) const {
  auto it = heavy_counts_.find(key);
  if (it != heavy_counts_.end()) return it->second;
  return remainder_.Estimate(key);
}

void LearnedCountMinSketch::EstimateBatch(Span<const uint64_t> keys,
                                          Span<uint64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
  // Chunked two-pass with stack scratch: exact heavy answers first, then
  // the chunk's misses go through the remainder CMS in one batch — which
  // is where this path inherits the SIMD kernel tier (sketch/kernels/):
  // the heavy probe is a hash-map lookup with nothing to vectorize, and
  // the remainder batch runs the dispatched hash + gather-min kernels.
  constexpr size_t kChunk = 256;
  uint64_t miss_keys[kChunk];
  uint64_t miss_estimates[kChunk];
  size_t miss_positions[kChunk];
  for (size_t base = 0; base < keys.size(); base += kChunk) {
    const size_t chunk = std::min(kChunk, keys.size() - base);
    size_t misses = 0;
    for (size_t i = 0; i < chunk; ++i) {
      auto it = heavy_counts_.find(keys[base + i]);
      if (it != heavy_counts_.end()) {
        out[base + i] = it->second;
      } else {
        miss_keys[misses] = keys[base + i];
        miss_positions[misses] = base + i;
        ++misses;
      }
    }
    if (misses == 0) continue;
    remainder_.EstimateBatch(Span<const uint64_t>(miss_keys, misses),
                             Span<uint64_t>(miss_estimates, misses));
    for (size_t m = 0; m < misses; ++m) {
      out[miss_positions[m]] = miss_estimates[m];
    }
  }
}

namespace {
constexpr uint32_t kLcmsPayloadVersion = 1;
}  // namespace

void LearnedCountMinSketch::Serialize(io::ByteWriter& out) const {
  out.WriteU32(kLcmsPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(total_buckets_);
  out.WriteU64(heavy_counts_.size());
  // Ascending key order: deterministic bytes for a given sketch state.
  std::vector<std::pair<uint64_t, uint64_t>> heavy(heavy_counts_.begin(),
                                                   heavy_counts_.end());
  std::sort(heavy.begin(), heavy.end());
  for (const auto& [key, count] : heavy) {
    out.WriteU64(key);
    out.WriteU64(count);
  }
  remainder_.Serialize(out);
}

Result<LearnedCountMinSketch> LearnedCountMinSketch::Deserialize(
    io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kLcmsPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported learned-count-min payload version " +
        std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument(
        "non-zero learned-count-min reserved field");
  }
  OPTHASH_IO_ASSIGN(total_buckets, in.ReadU64());
  OPTHASH_IO_ASSIGN(heavy_count, in.ReadU64());
  if (heavy_count > in.remaining() / (2 * sizeof(uint64_t))) {
    return Status::InvalidArgument("heavy-key count exceeds payload");
  }
  if (2 * heavy_count >= total_buckets) {
    return Status::InvalidArgument(
        "heavy buckets must leave room for the CMS remainder");
  }
  std::unordered_map<uint64_t, uint64_t> heavy_counts;
  heavy_counts.reserve(heavy_count);
  uint64_t previous_key = 0;
  for (uint64_t i = 0; i < heavy_count; ++i) {
    OPTHASH_IO_ASSIGN(key, in.ReadU64());
    OPTHASH_IO_ASSIGN(count, in.ReadU64());
    if (i > 0 && key <= previous_key) {
      return Status::InvalidArgument(
          "heavy keys must be strictly ascending");
    }
    previous_key = key;
    heavy_counts.emplace(key, count);
  }
  auto remainder = CountMinSketch::Deserialize(in);
  if (!remainder.ok()) return remainder.status();
  return LearnedCountMinSketch(total_buckets, std::move(remainder).value(),
                               std::move(heavy_counts));
}

std::vector<uint64_t> SelectTopKeys(
    const std::unordered_map<uint64_t, uint64_t>& true_frequencies,
    size_t count) {
  std::vector<std::pair<uint64_t, uint64_t>> items(true_frequencies.begin(),
                                                   true_frequencies.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (items.size() > count) items.resize(count);
  std::vector<uint64_t> keys;
  keys.reserve(items.size());
  for (const auto& [key, freq] : items) keys.push_back(key);
  return keys;
}

}  // namespace opthash::sketch

#include "sketch/windowed_sketch.h"

#include <string>

namespace opthash::sketch {

Status ValidateWindowedConfig(size_t num_windows, double decay) {
  if (num_windows == 0) {
    return Status::InvalidArgument(
        "a windowed sketch needs at least one window");
  }
  // NaN fails both comparisons' complements, so it is rejected too.
  if (!(decay > 0.0) || !(decay <= 1.0)) {
    return Status::InvalidArgument(
        "decay must be in (0, 1]; got " + std::to_string(decay));
  }
  return Status::OK();
}

Status ValidateWindowedParts(size_t num_windows, size_t num_counts,
                             size_t head, double decay) {
  Status config = ValidateWindowedConfig(num_windows, decay);
  if (!config.ok()) return config;
  if (num_counts != num_windows) {
    return Status::InvalidArgument(
        "windowed ring carries " + std::to_string(num_counts) +
        " window counts for " + std::to_string(num_windows) + " windows");
  }
  if (head >= num_windows) {
    return Status::InvalidArgument(
        "windowed ring head " + std::to_string(head) +
        " out of range for " + std::to_string(num_windows) + " windows");
  }
  return Status::OK();
}

double WindowDecayWeight(double decay, size_t age) {
  // Iterated product, not std::pow: ages are at most W-1 and the repeated
  // multiply is reproducible bit-for-bit on every platform, which the
  // snapshot-equivalence tests assert.
  double weight = 1.0;
  for (size_t i = 0; i < age; ++i) weight *= decay;
  return weight;
}

}  // namespace opthash::sketch

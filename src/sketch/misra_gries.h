#ifndef OPTHASH_SKETCH_MISRA_GRIES_H_
#define OPTHASH_SKETCH_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "io/bytes.h"

namespace opthash::sketch {

/// \brief The Misra-Gries frequent-elements summary (Misra & Gries 1982,
/// "Finding repeated elements" — the paper's ref [6], one of the first
/// streaming algorithms).
///
/// Maintains at most `capacity` (key, counter) pairs. On an arrival of a
/// tracked key its counter grows; an untracked key either claims a free
/// slot or decrements every counter (evicting zeros). The resulting
/// counter is a *lower* bound on the true count with
///
///     f_key - Estimate(key) <= total / (capacity + 1),
///
/// so every element with frequency above total/(capacity+1) is guaranteed
/// to be tracked — the deterministic heavy-hitter guarantee. Used here as
/// a realizable (non-ideal) heavy-hitter oracle for the Learned Count-Min
/// Sketch baseline.
class MisraGries {
 public:
  explicit MisraGries(size_t capacity);

  void Update(uint64_t key, uint64_t count = 1);

  /// Batched unit-increment hot path; equivalent to Update(key) per key.
  void UpdateBatch(Span<const uint64_t> keys);

  /// Folds `other` into this summary. Unlike the linear sketches, a
  /// counter-based summary cannot merge by counter addition alone: the
  /// union of two capacity-k summaries can track up to 2k keys. We use the
  /// Agarwal et al. ("Mergeable Summaries", PODS 2012) merge: add counters
  /// over the key union, then subtract the (k+1)-th largest counter value
  /// from every counter and drop the non-positive ones. The result is a
  /// valid capacity-k summary whose error bound is the *sum* of the input
  /// bounds — (n1 + n2)/(k + 1) — so merged estimates stay within the
  /// standard deterministic guarantee but are generally not identical to
  /// single-stream ingestion. Estimates remain lower bounds throughout.
  ///
  /// Fails with InvalidArgument unless both summaries have equal capacity
  /// (the k in the guarantee); self-merge is rejected.
  Status Merge(const MisraGries& other);

  /// A fresh empty summary with the same capacity.
  MisraGries EmptyClone() const { return MisraGries(capacity_); }

  /// Lower-bound estimate: the tracked counter, or 0 if untracked.
  uint64_t Estimate(uint64_t key) const;

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free
  /// (back-to-back table probes). keys.size() must equal out.size().
  void EstimateBatch(Span<const uint64_t> keys, Span<uint64_t> out) const;

  /// True iff the key currently owns a counter.
  bool IsTracked(uint64_t key) const { return counters_.count(key) > 0; }

  /// Keys whose counter is at least `threshold`, heaviest first.
  std::vector<std::pair<uint64_t, uint64_t>> HeavyEntries(
      uint64_t threshold = 1) const;

  /// All currently tracked keys (unordered).
  std::vector<uint64_t> TrackedKeys() const;

  size_t capacity() const { return capacity_; }
  size_t size() const { return counters_.size(); }
  uint64_t total_count() const { return total_count_; }

  /// Deterministic error bound: total / (capacity + 1).
  double ErrorBound() const {
    return static_cast<double>(total_count_) /
           static_cast<double>(capacity_ + 1);
  }

  /// Memory in the paper's 4-byte-bucket unit: each tracked entry stores a
  /// key and a counter (2 buckets), mirroring the LCMS unique-bucket cost.
  size_t MemoryBuckets() const { return 2 * capacity_; }

  /// Binary snapshot payload (docs/FORMATS.md, section type 5): capacity,
  /// total count, then tracked (key, counter) pairs in ascending key order
  /// — deterministic bytes for a given summary state.
  void Serialize(io::ByteWriter& out) const;

  /// Rebuilds a summary from a Serialize payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes or more
  /// tracked entries than the stated capacity.
  static Result<MisraGries> Deserialize(io::ByteReader& in);

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, uint64_t> counters_;
  uint64_t total_count_ = 0;
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_MISRA_GRIES_H_

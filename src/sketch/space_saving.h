#ifndef OPTHASH_SKETCH_SPACE_SAVING_H_
#define OPTHASH_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "io/bytes.h"

namespace opthash::sketch {

/// \brief The Space-Saving summary (Metwally, Agrawal, El Abbadi 2005) —
/// the other classic deterministic heavy-hitters structure, complementary
/// to Misra-Gries: its per-key estimate *over*estimates (like the CMS) and
/// it additionally tracks a per-key error bound.
///
/// Maintains exactly `capacity` counters once warm. An untracked arrival
/// evicts the key with the smallest counter and inherits that counter as
/// its initial (over)estimate; the inherited amount is remembered as the
/// key's maximum overestimation. Guarantees:
///
///   Estimate(k) - error(k) <= f_k <= Estimate(k),
///   Estimate(k) - f_k      <= total / capacity,
///
/// and any key with f_k > total/capacity is guaranteed tracked.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity);

  void Update(uint64_t key, uint64_t count = 1);

  /// Batched unit-increment hot path; equivalent to Update(key) per key.
  void UpdateBatch(Span<const uint64_t> keys);

  /// Folds `other` into this summary. Like Misra-Gries, Space-Saving is a
  /// counter-based summary and merges through its heap of (key, counter)
  /// entries rather than by plain addition (the union of two capacity-m
  /// tables can hold 2m keys). We use the combine step of Cafaro et al.'s
  /// parallel Space-Saving: every key in the union gets the sum of its
  /// per-summary upper bounds (a summary where the key is untracked
  /// contributes its minimum counter once warm, 0 otherwise, with the same
  /// amount added to the key's error), and the top `capacity` keys by
  /// combined counter survive, ties broken toward smaller keys for
  /// determinism. Estimates stay upper bounds with error at most the sum
  /// of the input bounds, (n1 + n2)/capacity, but are generally not
  /// identical to single-stream ingestion.
  ///
  /// Fails with InvalidArgument unless both summaries have equal capacity;
  /// self-merge is rejected.
  Status Merge(const SpaceSaving& other);

  /// A fresh empty summary with the same capacity.
  SpaceSaving EmptyClone() const { return SpaceSaving(capacity_); }

  /// Upper-bound estimate: the tracked counter, or the current minimum
  /// counter (the tightest valid upper bound) if untracked.
  uint64_t Estimate(uint64_t key) const;

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free
  /// (back-to-back table probes). keys.size() must equal out.size().
  void EstimateBatch(Span<const uint64_t> keys, Span<uint64_t> out) const;

  /// Maximum possible overestimation of a tracked key (0 if it never
  /// inherited a counter); 0 for untracked keys.
  uint64_t ErrorOf(uint64_t key) const;

  bool IsTracked(uint64_t key) const { return counters_.count(key) > 0; }

  /// All currently tracked keys (unordered).
  std::vector<uint64_t> TrackedKeys() const;

  /// Tracked keys with guaranteed count (counter - error) >= threshold,
  /// heaviest first.
  std::vector<std::pair<uint64_t, uint64_t>> GuaranteedHeavy(
      uint64_t threshold) const;

  size_t capacity() const { return capacity_; }
  size_t size() const { return counters_.size(); }
  uint64_t total_count() const { return total_count_; }

  /// Deterministic bound total / capacity.
  double ErrorBound() const {
    return static_cast<double>(total_count_) / static_cast<double>(capacity_);
  }

  /// 2 units per entry (key + counter), plus 1 for the error field.
  size_t MemoryBuckets() const { return 3 * capacity_; }

  /// Binary snapshot payload (docs/FORMATS.md, section type 6): capacity,
  /// total count, then tracked (key, counter, error) triples in ascending
  /// key order. The count-ordered eviction index is rebuilt on load, not
  /// stored.
  void Serialize(io::ByteWriter& out) const;

  /// Rebuilds a summary from a Serialize payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes, more
  /// entries than capacity, or an error field exceeding its counter.
  static Result<SpaceSaving> Deserialize(io::ByteReader& in);

 private:
  struct Entry {
    uint64_t count = 0;
    uint64_t error = 0;
  };

  void EraseFromOrder(uint64_t key, uint64_t count);

  size_t capacity_;
  std::unordered_map<uint64_t, Entry> counters_;
  // count -> keys at that count; supports O(log) min-eviction.
  std::map<uint64_t, std::vector<uint64_t>> by_count_;
  uint64_t total_count_ = 0;
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_SPACE_SAVING_H_

#include "sketch/kernels/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/status.h"

namespace opthash::sketch::kernels {
namespace {

const KernelOps* OpsForTier(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return &ScalarKernels();
    case KernelTier::kAvx2:
      return Avx2KernelsOrNull();
    case KernelTier::kNeon:
      return NeonKernelsOrNull();
  }
  return nullptr;
}

std::string AvailableTierNames() {
  std::string names;
  for (KernelTier tier : AvailableKernelTiers()) {
    if (!names.empty()) names += ", ";
    names += KernelTierName(tier);
  }
  return names;
}

// The process-global selection. `ops` and `tier` are written together
// under no lock — readers may briefly see a mixed pair during a forced
// swap, but every (ops, tier) value each is individually valid and
// bit-identical in output, so the race is benign by the kernel
// contract. The initial selection happens once, in the constructor of
// the function-local static (thread-safe by the standard).
struct DispatchState {
  std::atomic<const KernelOps*> ops;
  std::atomic<KernelTier> tier;
  Status env_status = Status::OK();

  DispatchState() { SelectDefault(); }

  // Best available tier, then the OPTHASH_SIMD override if present.
  void SelectDefault() {
    KernelTier selected = BestAvailableKernelTier();
    Status status = Status::OK();
    if (const char* env = std::getenv("OPTHASH_SIMD");
        env != nullptr && env[0] != '\0') {
      status = ParseTierName(env, &selected);
      if (!status.ok()) selected = BestAvailableKernelTier();
    }
    env_status = std::move(status);
    ops.store(OpsForTier(selected), std::memory_order_release);
    tier.store(selected, std::memory_order_release);
  }

  static Status ParseTierName(std::string_view name, KernelTier* out) {
    KernelTier parsed;
    if (name == "scalar") {
      parsed = KernelTier::kScalar;
    } else if (name == "avx2") {
      parsed = KernelTier::kAvx2;
    } else if (name == "neon") {
      parsed = KernelTier::kNeon;
    } else {
      return Status::InvalidArgument(
          "unknown SIMD tier '" + std::string(name) +
          "' (valid: scalar, avx2, neon)");
    }
    if (!KernelTierAvailable(parsed)) {
      return Status::InvalidArgument(
          "SIMD tier '" + std::string(name) +
          "' is not available on this host (available: " +
          AvailableTierNames() + ")");
    }
    *out = parsed;
    return Status::OK();
  }
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

}  // namespace

std::string_view KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kNeon:
      return "neon";
  }
  return "unknown";
}

bool KernelTierAvailable(KernelTier tier) {
  return OpsForTier(tier) != nullptr;
}

std::vector<KernelTier> AvailableKernelTiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier tier :
       {KernelTier::kAvx2, KernelTier::kNeon, KernelTier::kScalar}) {
    if (KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

KernelTier BestAvailableKernelTier() {
  if (KernelTierAvailable(KernelTier::kAvx2)) return KernelTier::kAvx2;
  if (KernelTierAvailable(KernelTier::kNeon)) return KernelTier::kNeon;
  return KernelTier::kScalar;
}

KernelTier ActiveKernelTier() {
  return State().tier.load(std::memory_order_acquire);
}

const KernelOps& ActiveKernels() {
  return *State().ops.load(std::memory_order_acquire);
}

Status ForceKernelTier(KernelTier tier) {
  const KernelOps* ops = OpsForTier(tier);
  if (ops == nullptr) {
    return Status::InvalidArgument(
        "SIMD tier '" + std::string(KernelTierName(tier)) +
        "' is not available on this host (available: " +
        AvailableTierNames() + ")");
  }
  DispatchState& state = State();
  state.ops.store(ops, std::memory_order_release);
  state.tier.store(tier, std::memory_order_release);
  return Status::OK();
}

Status ForceKernelTierByName(std::string_view name) {
  KernelTier tier;
  Status status = DispatchState::ParseTierName(name, &tier);
  if (!status.ok()) return status;
  return ForceKernelTier(tier);
}

Status KernelEnvStatus() { return State().env_status; }

void ResetKernelTierForTest() { State().SelectDefault(); }

}  // namespace opthash::sketch::kernels

#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OPTHASH_KERNELS_AVX2_TU 1
#include <immintrin.h>
#endif

namespace opthash::sketch::kernels {

#ifdef OPTHASH_KERNELS_AVX2_TU

// Every function carrying AVX2 instructions is annotated with a
// function-level target attribute instead of compiling the whole file
// with -mavx2, so nothing here can leak vector instructions into code
// that runs before the runtime CPU check in Avx2KernelsOrNull().
#define OPTHASH_AVX2_FN __attribute__((target("avx2")))

namespace {

constexpr size_t kPrefetchDistance = 16;

OPTHASH_AVX2_FN inline __m256i Splat64(uint64_t value) {
  return _mm256_set1_epi64x(static_cast<long long>(value));
}

// Canonicalizes t < 2^62 into [0, 2^61 - 1): one conditional subtract.
// The signed compare is safe because both operands are < 2^62.
OPTHASH_AVX2_FN inline __m256i CanonicalSub61(__m256i t) {
  const __m256i p = Splat64(kMersenne61);
  const __m256i p_minus_1 = Splat64(kMersenne61 - 1);
  const __m256i ge = _mm256_cmpgt_epi64(t, p_minus_1);
  return _mm256_sub_epi64(t, _mm256_and_si256(ge, p));
}

// key mod (2^61 - 1), canonical, for arbitrary u64 lanes (the fold of a
// u64 is < 2^61 + 8, so one conditional subtract suffices).
OPTHASH_AVX2_FN inline __m256i Mod61Vec(__m256i x) {
  const __m256i p = Splat64(kMersenne61);
  const __m256i folded =
      _mm256_add_epi64(_mm256_and_si256(x, p), _mm256_srli_epi64(x, 61));
  return CanonicalSub61(folded);
}

// The vector twin of KernelHashOne. AVX2 has no 64x64 multiply, so both
// products are built from 32-bit limbs via _mm256_mul_epu32:
//
//   a*x = p0 + (p1 + p2)*2^32 + p3*2^64   (pK = limb cross products)
//
// reduced mod 2^61-1 by weight folding (2^61 = 1, 2^64 = 8), and the
// magic-multiply quotient from an emulated 128-bit product with explicit
// carry. All intermediate sums are bounded < 2^63 + 2^34, so nothing
// wraps; the final residues are canonical and therefore bit-identical
// to the scalar path.
OPTHASH_AVX2_FN void HashBucketsAvx2(const HashKernelParams& h,
                                     const uint64_t* keys, size_t n,
                                     uint64_t* out) {
  if (h.mod == ModKind::kZero) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const size_t vec_n = n & ~size_t{3};
  const __m256i p = Splat64(kMersenne61);
  const __m256i m29 = Splat64((1ULL << 29) - 1);
  const __m256i m32 = Splat64(0xffffffffULL);
  const __m256i a_lo = Splat64(h.a & 0xffffffffULL);
  const __m256i a_hi = Splat64(h.a >> 32);
  const __m256i b = Splat64(h.b);
  const bool magic = h.mod == ModKind::kMagic;
  const __m256i m_lo = Splat64(h.magic & 0xffffffffULL);
  const __m256i m_hi = Splat64(h.magic >> 32);
  const __m256i d = Splat64(h.range);
  const __m256i d_hi = _mm256_srli_epi64(d, 32);
  const bool wide_shift = h.shift >= 64;
  const __m128i shift_hi = _mm_cvtsi32_si128(
      static_cast<int>(wide_shift ? h.shift - 64 : 64 - h.shift));
  const __m128i shift_lo =
      _mm_cvtsi32_si128(static_cast<int>(wide_shift ? 0 : h.shift));
  for (size_t i = 0; i < vec_n; i += 4) {
    __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    x = Mod61Vec(x);
    const __m256i x_hi = _mm256_srli_epi64(x, 32);
    const __m256i p0 = _mm256_mul_epu32(a_lo, x);
    const __m256i p1 = _mm256_mul_epu32(a_lo, x_hi);
    const __m256i p2 = _mm256_mul_epu32(a_hi, x);
    const __m256i p3 = _mm256_mul_epu32(a_hi, x_hi);
    const __m256i mid = _mm256_add_epi64(p1, p2);
    const __m256i sum = _mm256_add_epi64(
        _mm256_add_epi64(
            _mm256_slli_epi64(p3, 3),
            _mm256_add_epi64(
                _mm256_srli_epi64(mid, 29),
                _mm256_slli_epi64(_mm256_and_si256(mid, m29), 32))),
        _mm256_add_epi64(
            _mm256_add_epi64(_mm256_and_si256(p0, p),
                             _mm256_srli_epi64(p0, 61)),
            b));
    const __m256i folded = _mm256_add_epi64(_mm256_and_si256(sum, p),
                                            _mm256_srli_epi64(sum, 61));
    __m256i r = CanonicalSub61(folded);
    if (magic) {
      const __m256i n_hi = _mm256_srli_epi64(r, 32);
      const __m256i q0 = _mm256_mul_epu32(m_lo, r);
      const __m256i q1 = _mm256_mul_epu32(m_lo, n_hi);
      const __m256i q2 = _mm256_mul_epu32(m_hi, r);
      const __m256i q3 = _mm256_mul_epu32(m_hi, n_hi);
      const __m256i mid_lo = _mm256_add_epi64(_mm256_and_si256(q1, m32),
                                              _mm256_and_si256(q2, m32));
      const __m256i carry = _mm256_srli_epi64(
          _mm256_add_epi64(_mm256_srli_epi64(q0, 32), mid_lo), 32);
      const __m256i hi = _mm256_add_epi64(
          _mm256_add_epi64(q3, carry),
          _mm256_add_epi64(_mm256_srli_epi64(q1, 32),
                           _mm256_srli_epi64(q2, 32)));
      __m256i q;
      if (wide_shift) {
        q = _mm256_srl_epi64(hi, shift_hi);
      } else {
        const __m256i lo = _mm256_add_epi64(
            q0, _mm256_slli_epi64(_mm256_add_epi64(q1, q2), 32));
        q = _mm256_or_si256(_mm256_srl_epi64(lo, shift_lo),
                            _mm256_sll_epi64(hi, shift_hi));
      }
      const __m256i q_times_d = _mm256_add_epi64(
          _mm256_mul_epu32(q, d),
          _mm256_slli_epi64(
              _mm256_add_epi64(_mm256_mul_epu32(q, d_hi),
                               _mm256_mul_epu32(_mm256_srli_epi64(q, 32),
                                                d)),
              32));
      r = _mm256_sub_epi64(r, q_times_d);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  for (size_t i = vec_n; i < n; ++i) {
    out[i] = KernelHashOne(h, keys[i]);
  }
}

OPTHASH_AVX2_FN void MinGatherU64Avx2(const uint64_t* row,
                                      const uint64_t* idx, size_t n,
                                      uint64_t* inout_min) {
  const size_t vec_n = n & ~size_t{3};
  const __m256i top = Splat64(0x8000000000000000ULL);
  for (size_t i = 0; i < vec_n; i += 4) {
    for (size_t j = i + kPrefetchDistance;
         j < i + kPrefetchDistance + 4 && j < n; ++j) {
      PrefetchRead(row + idx[j]);
    }
    const __m256i vidx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + i));
    const __m256i value = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(row), vidx, 8);
    const __m256i current = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(inout_min + i));
    // Unsigned 64-bit min: bias both sides by the top bit so the signed
    // compare orders them as unsigned, then keep the smaller.
    const __m256i current_gt =
        _mm256_cmpgt_epi64(_mm256_xor_si256(current, top),
                           _mm256_xor_si256(value, top));
    const __m256i lower = _mm256_blendv_epi8(current, value, current_gt);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(inout_min + i), lower);
  }
  for (size_t i = vec_n; i < n; ++i) {
    const uint64_t value = row[idx[i]];
    if (value < inout_min[i]) inout_min[i] = value;
  }
}

OPTHASH_AVX2_FN void GatherSignedI64Avx2(const int64_t* row,
                                         const uint64_t* idx,
                                         const uint64_t* sign_bucket,
                                         size_t n, int64_t* out) {
  const size_t vec_n = n & ~size_t{3};
  const __m256i zero = _mm256_setzero_si256();
  for (size_t i = 0; i < vec_n; i += 4) {
    for (size_t j = i + kPrefetchDistance;
         j < i + kPrefetchDistance + 4 && j < n; ++j) {
      PrefetchRead(row + idx[j]);
    }
    const __m256i vidx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + i));
    const __m256i value = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(row), vidx, 8);
    const __m256i sign = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sign_bucket + i));
    const __m256i negated = _mm256_sub_epi64(zero, value);
    const __m256i is_minus = _mm256_cmpeq_epi64(sign, zero);
    const __m256i signed_value =
        _mm256_blendv_epi8(value, negated, is_minus);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), signed_value);
  }
  for (size_t i = vec_n; i < n; ++i) {
    const int64_t value = row[idx[i]];
    out[i] = sign_bucket[i] == 0 ? -value : value;
  }
}

}  // namespace

const KernelOps* Avx2KernelsOrNull() {
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  // Scatters stay on the shared scalar loops per the KernelOps contract
  // (duplicate keys in one batch make a parallel scatter unsound).
  static const KernelOps kOps = {
      HashBucketsAvx2, MinGatherU64Avx2, GatherSignedI64Avx2,
      ScalarKernels().scatter_add_u64,
      ScalarKernels().scatter_add_signed_i64};
  return &kOps;
}

#else  // !OPTHASH_KERNELS_AVX2_TU

const KernelOps* Avx2KernelsOrNull() { return nullptr; }

#endif  // OPTHASH_KERNELS_AVX2_TU

}  // namespace opthash::sketch::kernels

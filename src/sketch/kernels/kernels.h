#ifndef OPTHASH_SKETCH_KERNELS_KERNELS_H_
#define OPTHASH_SKETCH_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "hashing/hash_functions.h"

/// \file
/// \brief The sketch kernel layer: batch primitives behind the sketches'
/// `UpdateBatch`/`EstimateBatch` hot loops, with scalar / AVX2 / NEON
/// implementations selected at runtime (sketch/kernels/simd_dispatch.h).
///
/// Contract (the differential suite in tests/kernel_differential_test.cc
/// holds every tier to it):
///
///  * Bit-identity. Every tier computes exactly the same values as the
///    reference scalar path — `((a*x + b) mod (2^61-1)) mod range` for
///    hashing (the 2-universal hashing::LinearHash), plain u64/i64
///    arithmetic for gathers and scatters. No tier is allowed to trade
///    accuracy for speed: estimates AND counter tables must match the
///    scalar tier byte for byte on every input.
///
///  * Layout. Counter tables are flat row-major `depth x width` arrays
///    (one contiguous row per level), exactly as the sketches and the
///    zero-copy mapped views already store them; a batch probe walks one
///    row at a time so a (depth x key-block) probe group touches each
///    row's cachelines in one run.
///
///  * Alignment. Rows must be 8-byte aligned (natural u64/i64 alignment:
///    std::vector storage and the 8-aligned snapshot payloads both
///    qualify). No tier requires 32-byte alignment — the vector paths
///    use unaligned loads and element gathers.
///
///  * Scatters are sequential in every tier. Updates can carry duplicate
///    keys in one batch; a parallel scatter would have to resolve
///    intra-batch index collisions. All tiers share the scalar scatter
///    loops (the vector win on the update path is the hashing), which
///    also keeps counter tables bit-identical by construction.
///
/// The `% range` step is the scalar path's bottleneck (a 64-bit hardware
/// divide per probe). The kernels replace it with an exact
/// multiply-shift: for divisor d and dividend n < 2^61 (every reduced
/// hash value), q = (m*n) >> F with F = 61 + ceil(log2 d) and
/// m = floor(2^F / d) + 1 gives q = floor(n/d) exactly — the classic
/// Granlund-Montgomery/Lemire bound, valid here because
/// e*n <= d*(2^61-1) < 2^F for e = d - (2^F mod d). Exactness is what
/// keeps vector tiers bit-identical to `LinearHash::operator()`, and is
/// re-proven against it on random draws by the differential suite.
namespace opthash::sketch::kernels {

/// 2^61 - 1, the Mersenne prime the 2-universal hashes reduce over.
constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// How a HashKernelParams maps the reduced value into [0, range).
enum class ModKind : uint8_t {
  kZero = 0,      ///< range == 1: every key lands in bucket 0.
  kMagic = 1,     ///< 2 <= range < 2^61: exact multiply-shift remainder.
  kIdentity = 2,  ///< range >= 2^61 > max reduced value: no-op.
};

/// Precomputed per-hash-function constants for the kernel hash path: the
/// LinearHash coefficients plus the exact magic-multiply replacement for
/// `% range`. Built once per sketch level at construction time.
struct HashKernelParams {
  uint64_t a = 1;      ///< Multiplier in [1, 2^61-2].
  uint64_t b = 0;      ///< Offset in [0, 2^61-2].
  uint64_t range = 1;  ///< Bucket count.
  uint64_t magic = 0;  ///< m = floor(2^shift / range) + 1 (kMagic only).
  uint32_t shift = 0;  ///< F = 61 + ceil(log2 range), in [62, 122].
  ModKind mod = ModKind::kZero;

  /// Derives the kernel constants from a drawn LinearHash. The kernels
  /// then compute exactly `hash(key)` for every key.
  static HashKernelParams From(const hashing::LinearHash& hash);
};

/// key mod (2^61-1), canonical in [0, 2^61-2]: Mersenne fold + one
/// conditional subtract (the fold of a u64 is < 2^61 + 8 < 2p).
inline uint64_t Mod61(uint64_t key) {
  uint64_t folded = (key & kMersenne61) + (key >> 61);
  if (folded >= kMersenne61) folded -= kMersenne61;
  return folded;
}

/// (a*x + b) mod (2^61-1), canonical, for a, x, b < 2^61 — identical to
/// the LinearHash Mersenne reduction.
inline uint64_t MulAddMod61(uint64_t a, uint64_t x, uint64_t b) {
  const __uint128_t product = static_cast<__uint128_t>(a) * x + b;
  const uint64_t lo = static_cast<uint64_t>(product) & kMersenne61;
  const uint64_t hi = static_cast<uint64_t>(product >> 61);
  uint64_t result = lo + hi;
  if (result >= kMersenne61) result -= kMersenne61;
  return result;
}

/// value mod range via the precomputed magic constants; exact for every
/// value < 2^61 (see the file header for the bound).
inline uint64_t MagicMod(const HashKernelParams& h, uint64_t value) {
  switch (h.mod) {
    case ModKind::kZero:
      return 0;
    case ModKind::kIdentity:
      return value;
    case ModKind::kMagic:
      break;
  }
  const uint64_t quotient = static_cast<uint64_t>(
      (static_cast<__uint128_t>(h.magic) * value) >> h.shift);
  return value - quotient * h.range;
}

/// The full scalar kernel hash — bit-identical to `LinearHash(key)` for
/// the LinearHash the params were built from. Shared by the scalar tier
/// and every vector tier's unaligned tail.
inline uint64_t KernelHashOne(const HashKernelParams& h, uint64_t key) {
  return MagicMod(h, MulAddMod61(h.a, Mod61(key), h.b));
}

/// Read-prefetch hint; no-op where unsupported. The gather kernels issue
/// it a fixed distance ahead of the consuming loads so row misses overlap
/// instead of serializing.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, 0, 2);
#else
  (void)address;
#endif
}

/// One tier's implementation set. Each function pointer is a kernel
/// entry point: tools/lint/opthash_lint.py requires a named case for
/// every field in tests/kernel_differential_test.cc, so no entry point
/// can gain a vector variant without differential coverage.
struct KernelOps {
  /// out[i] = hash(keys[i]) for the hash described by `h` — the batch
  /// bucket-index computation every probe and update pass starts with.
  void (*hash_buckets)(const HashKernelParams& h, const uint64_t* keys,
                       size_t n, uint64_t* out);

  /// inout_min[i] = min(inout_min[i], row[idx[i]]) — the CMS min-fold
  /// over one counter row (values are arbitrary u64; the comparison is
  /// unsigned even in the vector tiers).
  void (*min_gather_u64)(const uint64_t* row, const uint64_t* idx, size_t n,
                         uint64_t* inout_min);

  /// out[i] = sign_bucket[i] == 0 ? -row[idx[i]] : row[idx[i]] — the
  /// CountSketch per-level signed gather (a range-2 LinearHash bucket of
  /// 0 means sign -1, matching hashing::SignHash).
  void (*gather_signed_i64)(const int64_t* row, const uint64_t* idx,
                            const uint64_t* sign_bucket, size_t n,
                            int64_t* out);

  /// row[idx[i]] += 1 for each i in order (sequential in every tier; see
  /// the scatter contract above).
  void (*scatter_add_u64)(uint64_t* row, const uint64_t* idx, size_t n);

  /// row[idx[i]] += sign_bucket[i] == 0 ? -1 : +1, in order.
  void (*scatter_add_signed_i64)(int64_t* row, const uint64_t* idx,
                                 const uint64_t* sign_bucket, size_t n);
};

/// The always-available reference tier (plain loops + prefetch, exact
/// magic-mod hashing).
const KernelOps& ScalarKernels();

/// The AVX2 tier, or nullptr when the build target or the running CPU
/// lacks AVX2. Compiled via function-level target("avx2") attributes, so
/// no translation unit needs special flags and calling this probe is
/// always safe.
const KernelOps* Avx2KernelsOrNull();

/// The NEON tier, or nullptr off AArch64.
const KernelOps* NeonKernelsOrNull();

}  // namespace opthash::sketch::kernels

#endif  // OPTHASH_SKETCH_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "hashing/hash_functions.h"
#include "sketch/kernels/kernels.h"

namespace opthash::sketch::kernels {
namespace {

// How many elements ahead of the consuming load the gather loops issue a
// prefetch. Covers roughly one L2 miss at typical probe rates without
// running past the batch for the block sizes the sketches use.
constexpr size_t kPrefetchDistance = 16;

void HashBucketsScalar(const HashKernelParams& h, const uint64_t* keys,
                       size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = KernelHashOne(h, keys[i]);
  }
}

void MinGatherU64Scalar(const uint64_t* row, const uint64_t* idx, size_t n,
                        uint64_t* inout_min) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row + idx[i + kPrefetchDistance]);
    }
    const uint64_t value = row[idx[i]];
    if (value < inout_min[i]) inout_min[i] = value;
  }
}

void GatherSignedI64Scalar(const int64_t* row, const uint64_t* idx,
                           const uint64_t* sign_bucket, size_t n,
                           int64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row + idx[i + kPrefetchDistance]);
    }
    const int64_t value = row[idx[i]];
    out[i] = sign_bucket[i] == 0 ? -value : value;
  }
}

void ScatterAddU64Scalar(uint64_t* row, const uint64_t* idx, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row + idx[i + kPrefetchDistance]);
    }
    ++row[idx[i]];
  }
}

void ScatterAddSignedI64Scalar(int64_t* row, const uint64_t* idx,
                               const uint64_t* sign_bucket, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row + idx[i + kPrefetchDistance]);
    }
    row[idx[i]] += sign_bucket[i] == 0 ? -1 : 1;
  }
}

}  // namespace

HashKernelParams HashKernelParams::From(const hashing::LinearHash& hash) {
  HashKernelParams params;
  params.a = hash.a();
  params.b = hash.b();
  params.range = hash.range();
  if (params.range <= 1) {
    params.mod = ModKind::kZero;
  } else if (params.range >= (1ULL << 61)) {
    // Reduced values are < 2^61 - 1, so `% range` cannot change them.
    params.mod = ModKind::kIdentity;
  } else {
    // Exact multiply-shift: shift = 61 + ceil(log2 range) and
    // magic = floor(2^shift / range) + 1 make (magic * value) >> shift
    // equal floor(value / range) for every value < 2^61. magic fits in
    // 64 bits because shift - ceil(log2 range) = 61 keeps it <= 2^62.
    const uint32_t ceil_log2 =
        64 - static_cast<uint32_t>(__builtin_clzll(params.range - 1));
    params.shift = 61 + ceil_log2;
    const __uint128_t numerator = static_cast<__uint128_t>(1)
                                  << params.shift;
    params.magic = static_cast<uint64_t>(numerator / params.range) + 1;
    params.mod = ModKind::kMagic;
  }
  return params;
}

const KernelOps& ScalarKernels() {
  static const KernelOps kOps = {
      HashBucketsScalar,   MinGatherU64Scalar,       GatherSignedI64Scalar,
      ScatterAddU64Scalar, ScatterAddSignedI64Scalar};
  return kOps;
}

}  // namespace opthash::sketch::kernels

#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

#if defined(__aarch64__)
#define OPTHASH_KERNELS_NEON_TU 1
#include <arm_neon.h>
#endif

namespace opthash::sketch::kernels {

#ifdef OPTHASH_KERNELS_NEON_TU

namespace {

constexpr size_t kPrefetchDistance = 16;

// Canonicalizes t < 2^62 into [0, 2^61 - 1): one conditional subtract.
inline uint64x2_t CanonicalSub61(uint64x2_t t) {
  const uint64x2_t p = vdupq_n_u64(kMersenne61);
  const uint64x2_t ge = vcgeq_u64(t, p);
  return vsubq_u64(t, vandq_u64(ge, p));
}

// key mod (2^61 - 1), canonical, for arbitrary u64 lanes.
inline uint64x2_t Mod61Vec(uint64x2_t x) {
  const uint64x2_t p = vdupq_n_u64(kMersenne61);
  const uint64x2_t folded =
      vaddq_u64(vandq_u64(x, p), vshrq_n_u64(x, 61));
  return CanonicalSub61(folded);
}

// The NEON twin of the AVX2 limb construction: 64x64 products built from
// vmull_u32 (32x32 -> 64 widening multiply), the same weight folding mod
// 2^61 - 1, and the same emulated-128-bit magic quotient. Identical
// algebra, identical bounds, so residues stay canonical and the tier
// stays bit-identical to scalar. Gathers and scatters remain scalar —
// AArch64 has no gather instruction, and the update-path win is the
// hashing anyway.
void HashBucketsNeon(const HashKernelParams& h, const uint64_t* keys,
                     size_t n, uint64_t* out) {
  if (h.mod == ModKind::kZero) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const size_t vec_n = n & ~size_t{1};
  const uint64x2_t p = vdupq_n_u64(kMersenne61);
  const uint64x2_t m29 = vdupq_n_u64((1ULL << 29) - 1);
  const uint64x2_t m32 = vdupq_n_u64(0xffffffffULL);
  const uint32x2_t a_lo = vdup_n_u32(static_cast<uint32_t>(h.a));
  const uint32x2_t a_hi = vdup_n_u32(static_cast<uint32_t>(h.a >> 32));
  const uint64x2_t b = vdupq_n_u64(h.b);
  const bool magic = h.mod == ModKind::kMagic;
  const uint32x2_t m_lo = vdup_n_u32(static_cast<uint32_t>(h.magic));
  const uint32x2_t m_hi = vdup_n_u32(static_cast<uint32_t>(h.magic >> 32));
  const uint32x2_t d_lo = vdup_n_u32(static_cast<uint32_t>(h.range));
  const uint32x2_t d_hi = vdup_n_u32(static_cast<uint32_t>(h.range >> 32));
  const bool wide_shift = h.shift >= 64;
  const int64x2_t shift_hi_right =
      vdupq_n_s64(wide_shift ? -static_cast<int64_t>(h.shift - 64) : 0);
  const int64x2_t shift_hi_left =
      vdupq_n_s64(wide_shift ? 0 : static_cast<int64_t>(64 - h.shift));
  const int64x2_t shift_lo_right =
      vdupq_n_s64(wide_shift ? 0 : -static_cast<int64_t>(h.shift));
  for (size_t i = 0; i < vec_n; i += 2) {
    uint64x2_t x = vld1q_u64(keys + i);
    x = Mod61Vec(x);
    const uint32x2_t x_lo = vmovn_u64(x);
    const uint32x2_t x_hi = vshrn_n_u64(x, 32);
    const uint64x2_t p0 = vmull_u32(a_lo, x_lo);
    const uint64x2_t p1 = vmull_u32(a_lo, x_hi);
    const uint64x2_t p2 = vmull_u32(a_hi, x_lo);
    const uint64x2_t p3 = vmull_u32(a_hi, x_hi);
    const uint64x2_t mid = vaddq_u64(p1, p2);
    const uint64x2_t sum = vaddq_u64(
        vaddq_u64(vshlq_n_u64(p3, 3),
                  vaddq_u64(vshrq_n_u64(mid, 29),
                            vshlq_n_u64(vandq_u64(mid, m29), 32))),
        vaddq_u64(vaddq_u64(vandq_u64(p0, p), vshrq_n_u64(p0, 61)), b));
    const uint64x2_t folded =
        vaddq_u64(vandq_u64(sum, p), vshrq_n_u64(sum, 61));
    uint64x2_t r = CanonicalSub61(folded);
    if (magic) {
      const uint32x2_t n_lo = vmovn_u64(r);
      const uint32x2_t n_hi = vshrn_n_u64(r, 32);
      const uint64x2_t q0 = vmull_u32(m_lo, n_lo);
      const uint64x2_t q1 = vmull_u32(m_lo, n_hi);
      const uint64x2_t q2 = vmull_u32(m_hi, n_lo);
      const uint64x2_t q3 = vmull_u32(m_hi, n_hi);
      const uint64x2_t mid_lo =
          vaddq_u64(vandq_u64(q1, m32), vandq_u64(q2, m32));
      const uint64x2_t carry =
          vshrq_n_u64(vaddq_u64(vshrq_n_u64(q0, 32), mid_lo), 32);
      const uint64x2_t hi = vaddq_u64(
          vaddq_u64(q3, carry),
          vaddq_u64(vshrq_n_u64(q1, 32), vshrq_n_u64(q2, 32)));
      uint64x2_t q;
      if (wide_shift) {
        q = vshlq_u64(hi, shift_hi_right);
      } else {
        const uint64x2_t lo =
            vaddq_u64(q0, vshlq_n_u64(vaddq_u64(q1, q2), 32));
        q = vorrq_u64(vshlq_u64(lo, shift_lo_right),
                      vshlq_u64(hi, shift_hi_left));
      }
      const uint32x2_t q_lo = vmovn_u64(q);
      const uint32x2_t q_hi = vshrn_n_u64(q, 32);
      const uint64x2_t q_times_d = vaddq_u64(
          vmull_u32(q_lo, d_lo),
          vshlq_n_u64(
              vaddq_u64(vmull_u32(q_lo, d_hi), vmull_u32(q_hi, d_lo)),
              32));
      r = vsubq_u64(r, q_times_d);
    }
    vst1q_u64(out + i, r);
  }
  for (size_t i = vec_n; i < n; ++i) {
    out[i] = KernelHashOne(h, keys[i]);
  }
}

void MinGatherU64Neon(const uint64_t* row, const uint64_t* idx, size_t n,
                      uint64_t* inout_min) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row + idx[i + kPrefetchDistance]);
    }
    const uint64_t value = row[idx[i]];
    if (value < inout_min[i]) inout_min[i] = value;
  }
}

void GatherSignedI64Neon(const int64_t* row, const uint64_t* idx,
                         const uint64_t* sign_bucket, size_t n,
                         int64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row + idx[i + kPrefetchDistance]);
    }
    const int64_t value = row[idx[i]];
    out[i] = sign_bucket[i] == 0 ? -value : value;
  }
}

}  // namespace

const KernelOps* NeonKernelsOrNull() {
  static const KernelOps kOps = {
      HashBucketsNeon, MinGatherU64Neon, GatherSignedI64Neon,
      ScalarKernels().scatter_add_u64,
      ScalarKernels().scatter_add_signed_i64};
  return &kOps;
}

#else  // !OPTHASH_KERNELS_NEON_TU

const KernelOps* NeonKernelsOrNull() { return nullptr; }

#endif  // OPTHASH_KERNELS_NEON_TU

}  // namespace opthash::sketch::kernels

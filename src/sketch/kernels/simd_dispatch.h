#ifndef OPTHASH_SKETCH_KERNELS_SIMD_DISPATCH_H_
#define OPTHASH_SKETCH_KERNELS_SIMD_DISPATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sketch/kernels/kernels.h"

/// \file
/// \brief Runtime selection of the sketch kernel tier.
///
/// On first use the dispatcher picks the best tier the running CPU
/// supports (AVX2 on capable x86-64, NEON on AArch64, scalar otherwise)
/// and honors an `OPTHASH_SIMD=scalar|avx2|neon` environment override.
/// Tools expose the same override as a `--simd` flag via
/// ForceKernelTierByName. The selection is process-global and
/// atomically swappable, so tests and benchmarks can pin a tier, run,
/// and restore — every sketch batch path reads ActiveKernels() at call
/// time and follows along.
namespace opthash::sketch::kernels {

enum class KernelTier {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Lowercase tier name as accepted by OPTHASH_SIMD ("scalar", "avx2",
/// "neon").
std::string_view KernelTierName(KernelTier tier);

/// Whether `tier` can run on this build and CPU.
bool KernelTierAvailable(KernelTier tier);

/// Every tier that can run here, best first.
std::vector<KernelTier> AvailableKernelTiers();

/// The tier the dispatcher would pick with no override.
KernelTier BestAvailableKernelTier();

/// The currently selected tier.
KernelTier ActiveKernelTier();

/// The currently selected implementation set.
const KernelOps& ActiveKernels();

/// Pins the active tier. Fails with a readable InvalidArgument when the
/// tier cannot run on this host; the selection is unchanged on failure.
Status ForceKernelTier(KernelTier tier);

/// ForceKernelTier by OPTHASH_SIMD-style name; rejects unknown names
/// with the list of valid ones.
Status ForceKernelTierByName(std::string_view name);

/// The result of applying the OPTHASH_SIMD environment variable at
/// first use: OK when unset or honored, an error describing the bad
/// value otherwise. Serving tools check this at startup so a typo'd
/// override fails loudly instead of silently running the default tier.
Status KernelEnvStatus();

/// Re-runs default selection (environment override included), undoing
/// any ForceKernelTier. For tests and benchmarks.
void ResetKernelTierForTest();

}  // namespace opthash::sketch::kernels

#endif  // OPTHASH_SKETCH_KERNELS_SIMD_DISPATCH_H_

#ifndef OPTHASH_SKETCH_COUNT_MIN_SKETCH_H_
#define OPTHASH_SKETCH_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/span.h"
#include "common/status.h"
#include "hashing/hash_functions.h"
#include "io/bytes.h"
#include "sketch/kernels/kernels.h"

namespace opthash::sketch {

/// \brief The Count-Min Sketch (Cormode & Muthukrishnan 2005, ref [11]).
///
/// Maintains d arrays ("levels") of w counters each. Every update increments
/// one counter per level through an independent 2-universal hash; a point
/// query returns the minimum over levels, which always overestimates the
/// true count. With w = ceil(e/eps) and d = ceil(ln(1/delta)),
/// |estimate - f_u| <= eps * ||f||_1 with probability at least 1 - delta.
///
/// This is the paper's `count-min` baseline (§2.1 / §7.2).
class CountMinSketch {
 public:
  /// \param width   counters per level (w >= 1)
  /// \param depth   number of levels (d >= 1)
  /// \param seed    seed for the level hash functions
  /// \param conservative_update if true, an update only raises the counters
  ///        that equal the current minimum (Estan-Varghese conservative
  ///        update), which never increases estimates and is an upper bound
  ///        preserving optimization.
  CountMinSketch(size_t width, size_t depth, uint64_t seed,
                 bool conservative_update = false);

  /// Sizes the sketch from accuracy targets: w = ceil(e/eps),
  /// d = ceil(ln(1/delta)).
  static Result<CountMinSketch> FromErrorBounds(double epsilon, double delta,
                                                uint64_t seed);

  /// Adds `count` occurrences of `key`.
  void Update(uint64_t key, uint64_t count = 1);

  /// Batched unit-increment hot path: one arrival per key in `keys`.
  /// Equivalent to calling Update(key) for each key in order; exists so
  /// the sharded ingestion engine (stream/sharded_ingest.h) amortizes the
  /// per-call overhead over whole trace blocks.
  void UpdateBatch(Span<const uint64_t> keys);

  /// Folds `other` into this sketch. The CMS is a linear sketch: with
  /// identical hash functions the counters of two half-stream sketches add
  /// to exactly the full-stream counters, so for plain updates
  /// Merge(A, B) is bit-identical to ingesting A's and B's streams
  /// sequentially.
  ///
  /// Conservative-update semantics (order-sensitivity): Merge itself is
  /// plain counter addition, which commutes — merging frozen shards in
  /// any order yields identical counters. What is order-sensitive is the
  /// conservative *ingestion* around the merges: a conservative update
  /// raises only the counters at the current minimum, so the counter
  /// state depends on how the stream was partitioned across shards and
  /// on whether updates happen before or after a merge. Consequently a
  /// merged conservative sketch is generally NOT identical to
  /// single-stream conservative ingestion, and two shard/merge/ingest
  /// interleavings of the same arrivals may disagree. What every
  /// interleaving preserves is the CMS contract: each shard's per-level
  /// minimum dominates its substream count, and
  /// min_i(a_i + b_i) >= min_i a_i + min_i b_i, so estimates remain upper
  /// bounds on the true counts under any merge order (regression-tested
  /// in tests/sketch_merge_test.cc).
  ///
  /// Fails with InvalidArgument unless both sketches share width, depth,
  /// seed and the conservative flag (same geometry + same hash draws);
  /// merging a sketch into itself is rejected.
  Status Merge(const CountMinSketch& other);

  /// A fresh all-zero sketch with the same geometry and hash functions —
  /// the worker-replica factory of the sharded ingestion engine.
  CountMinSketch EmptyClone() const {
    return CountMinSketch(width_, depth_, seed_, conservative_update_);
  }

  /// Point query: min over levels, never below the true count.
  uint64_t Estimate(uint64_t key) const;

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free.
  /// Walks the counter matrix level-major, so each level's row is
  /// traversed once per block instead of the scalar path's per-key level
  /// hopping — the counter reads batch cache-friendly. keys.size() must
  /// equal out.size().
  void EstimateBatch(Span<const uint64_t> keys, Span<uint64_t> out) const;

  /// Total updates seen (= ||f||_1 for unit increments).
  uint64_t total_count() const { return total_count_; }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  bool conservative_update() const { return conservative_update_; }

  /// Number of buckets (w*d); each bucket costs 4 bytes in the paper's
  /// memory accounting.
  size_t TotalBuckets() const { return width_ * depth_; }
  size_t MemoryBytes() const { return TotalBuckets() * sizeof(uint32_t); }

  /// Guarantee parameters implied by the current geometry.
  double Epsilon() const;
  double Delta() const;

  /// Appends the binary snapshot payload (docs/FORMATS.md, section type 1)
  /// to `out`: geometry + seed + counters, all little-endian. Hash
  /// functions are not stored — they are redrawn deterministically from
  /// the seed on load, so the payload is portable across hosts of either
  /// endianness. Counter bytes are written so the array sits 8-aligned
  /// when the payload itself starts 8-aligned (every snapshot section
  /// does), which is what the zero-copy mapped reader relies on.
  void Serialize(io::ByteWriter& out) const;

  /// Rebuilds a sketch from a Serialize payload. `in` must be positioned
  /// at the payload start; on success exactly the payload bytes are
  /// consumed. Fails with InvalidArgument on truncation, a bad payload
  /// version, or impossible geometry — never crashes on corrupt input.
  static Result<CountMinSketch> Deserialize(io::ByteReader& in);

 private:
  size_t width_;
  size_t depth_;
  uint64_t seed_;
  bool conservative_update_;
  std::vector<hashing::LinearHash> hashes_;
  // Per-level kernel constants mirroring hashes_ (sketch/kernels/) so the
  // batch paths hash through the runtime-dispatched SIMD tiers.
  std::vector<kernels::HashKernelParams> kernel_params_;
  std::vector<uint64_t> counters_;  // depth_ x width_, row-major.
  uint64_t total_count_ = 0;
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_COUNT_MIN_SKETCH_H_

#ifndef OPTHASH_SKETCH_COUNT_MIN_SKETCH_H_
#define OPTHASH_SKETCH_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "hashing/hash_functions.h"

namespace opthash::sketch {

/// \brief The Count-Min Sketch (Cormode & Muthukrishnan 2005, ref [11]).
///
/// Maintains d arrays ("levels") of w counters each. Every update increments
/// one counter per level through an independent 2-universal hash; a point
/// query returns the minimum over levels, which always overestimates the
/// true count. With w = ceil(e/eps) and d = ceil(ln(1/delta)),
/// |estimate - f_u| <= eps * ||f||_1 with probability at least 1 - delta.
///
/// This is the paper's `count-min` baseline (§2.1 / §7.2).
class CountMinSketch {
 public:
  /// \param width   counters per level (w >= 1)
  /// \param depth   number of levels (d >= 1)
  /// \param seed    seed for the level hash functions
  /// \param conservative_update if true, an update only raises the counters
  ///        that equal the current minimum (Estan-Varghese conservative
  ///        update), which never increases estimates and is an upper bound
  ///        preserving optimization.
  CountMinSketch(size_t width, size_t depth, uint64_t seed,
                 bool conservative_update = false);

  /// Sizes the sketch from accuracy targets: w = ceil(e/eps),
  /// d = ceil(ln(1/delta)).
  static Result<CountMinSketch> FromErrorBounds(double epsilon, double delta,
                                                uint64_t seed);

  /// Adds `count` occurrences of `key`.
  void Update(uint64_t key, uint64_t count = 1);

  /// Point query: min over levels, never below the true count.
  uint64_t Estimate(uint64_t key) const;

  /// Total updates seen (= ||f||_1 for unit increments).
  uint64_t total_count() const { return total_count_; }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  bool conservative_update() const { return conservative_update_; }

  /// Number of buckets (w*d); each bucket costs 4 bytes in the paper's
  /// memory accounting.
  size_t TotalBuckets() const { return width_ * depth_; }
  size_t MemoryBytes() const { return TotalBuckets() * sizeof(uint32_t); }

  /// Guarantee parameters implied by the current geometry.
  double Epsilon() const;
  double Delta() const;

 private:
  size_t width_;
  size_t depth_;
  bool conservative_update_;
  std::vector<hashing::LinearHash> hashes_;
  std::vector<uint64_t> counters_;  // depth_ x width_, row-major.
  uint64_t total_count_ = 0;
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_COUNT_MIN_SKETCH_H_

#ifndef OPTHASH_SKETCH_LEARNED_COUNT_MIN_H_
#define OPTHASH_SKETCH_LEARNED_COUNT_MIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "io/bytes.h"
#include "sketch/count_min_sketch.h"

namespace opthash::sketch {

/// \brief The Learned Count-Min Sketch / "heavy-hitter" baseline
/// (Hsu, Indyk, Katabi, Vakilian, ICLR 2019 — ref [8]; paper §2.2).
///
/// A heavy-hitter oracle flags a subset of keys; each flagged key gets a
/// *unique* bucket that counts it exactly, and everything else goes to a
/// standard Count-Min Sketch. Following the paper's memory accounting, a
/// unique bucket stores both the counter and the (open-addressed) ID and
/// therefore costs twice the space of a normal bucket:
///
///     b_random = b_total - 2 * b_heavy.
///
/// The paper evaluates the *ideal* oracle (true top-frequency IDs known in
/// hindsight), which upper-bounds every realizable learned oracle; we do the
/// same by passing the true heavy keys to the constructor.
class LearnedCountMinSketch {
 public:
  /// \param total_buckets  overall budget b_total (4 bytes per bucket)
  /// \param depth          CMS depth for the non-heavy remainder
  /// \param heavy_keys     keys flagged by the oracle; must satisfy
  ///                       2*|heavy_keys| < total_buckets so that at least
  ///                       one bucket remains for the CMS
  static Result<LearnedCountMinSketch> Create(
      size_t total_buckets, size_t depth,
      const std::vector<uint64_t>& heavy_keys, uint64_t seed);

  void Update(uint64_t key, uint64_t count = 1);

  /// Batched unit-increment hot path; equivalent to Update(key) per key.
  void UpdateBatch(Span<const uint64_t> keys);

  /// Folds `other` into this sketch. The LCMS is linear end to end: heavy
  /// keys are counted exactly (sums add) and the remainder is a plain CMS,
  /// so merging two half-stream sketches built from the same oracle is
  /// bit-identical to one full-stream sketch. Fails with InvalidArgument
  /// unless both sketches share the heavy-key set and the remainder
  /// geometry/seed; self-merge is rejected.
  Status Merge(const LearnedCountMinSketch& other);

  /// A fresh all-zero sketch with the same oracle set and remainder hashes.
  LearnedCountMinSketch EmptyClone() const;

  uint64_t Estimate(uint64_t key) const;

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free.
  /// Two-pass per fixed-size chunk: the heavy-table probes run back to
  /// back, then the misses are forwarded to the remainder CMS's
  /// level-major batch path. keys.size() must equal out.size().
  void EstimateBatch(Span<const uint64_t> keys, Span<uint64_t> out) const;

  size_t heavy_bucket_count() const { return heavy_counts_.size(); }

  /// The exact per-key counts of the oracle (heavy-table) keys — the
  /// sketch's internal candidate set for heavy-hitter reporting.
  const std::unordered_map<uint64_t, uint64_t>& heavy_counts() const {
    return heavy_counts_;
  }

  size_t TotalBuckets() const { return total_buckets_; }
  size_t MemoryBytes() const { return total_buckets_ * sizeof(uint32_t); }
  const CountMinSketch& remainder_sketch() const { return remainder_; }

  /// Binary snapshot payload (docs/FORMATS.md, section type 4): budget,
  /// heavy (key, count) pairs in ascending key order, then the embedded
  /// remainder Count-Min payload. Deterministic for a given state.
  void Serialize(io::ByteWriter& out) const;

  /// Rebuilds a sketch from a Serialize payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes or a heavy
  /// set that violates 2*|heavy| < total_buckets.
  static Result<LearnedCountMinSketch> Deserialize(io::ByteReader& in);

 private:
  LearnedCountMinSketch(size_t total_buckets, CountMinSketch remainder,
                        std::unordered_map<uint64_t, uint64_t> heavy_counts);

  size_t total_buckets_;
  CountMinSketch remainder_;
  std::unordered_map<uint64_t, uint64_t> heavy_counts_;
};

/// \brief Selects the ideal heavy-hitter set: the `count` keys with the
/// highest true frequencies. Ties are broken by key for determinism.
std::vector<uint64_t> SelectTopKeys(
    const std::unordered_map<uint64_t, uint64_t>& true_frequencies,
    size_t count);

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_LEARNED_COUNT_MIN_H_

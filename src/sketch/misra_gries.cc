#include "sketch/misra_gries.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::sketch {

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  OPTHASH_CHECK_GE(capacity, 1u);
  counters_.reserve(capacity);
}

void MisraGries::Update(uint64_t key, uint64_t count) {
  total_count_ += count;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second += count;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, count);
    return;
  }
  // Decrement phase: subtract the largest amount that keeps every counter
  // (and the incoming count) non-negative, evicting exhausted entries. A
  // batched version of the classic decrement-all step.
  uint64_t min_counter = count;
  for (const auto& [tracked, counter] : counters_) {
    min_counter = std::min(min_counter, counter);
  }
  for (auto entry = counters_.begin(); entry != counters_.end();) {
    entry->second -= min_counter;
    if (entry->second == 0) {
      entry = counters_.erase(entry);
    } else {
      ++entry;
    }
  }
  const uint64_t remaining = count - min_counter;
  if (remaining > 0 && counters_.size() < capacity_) {
    counters_.emplace(key, remaining);
  }
}

uint64_t MisraGries::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::HeavyEntries(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (const auto& [key, counter] : counters_) {
    if (counter >= threshold) entries.push_back({key, counter});
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return entries;
}

std::vector<uint64_t> MisraGries::TrackedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) keys.push_back(key);
  return keys;
}

}  // namespace opthash::sketch

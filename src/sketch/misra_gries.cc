#include "sketch/misra_gries.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace opthash::sketch {

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  OPTHASH_CHECK_GE(capacity, 1u);
  counters_.reserve(capacity);
}

void MisraGries::Update(uint64_t key, uint64_t count) {
  total_count_ += count;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second += count;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, count);
    return;
  }
  // Decrement phase: subtract the largest amount that keeps every counter
  // (and the incoming count) non-negative, evicting exhausted entries. A
  // batched version of the classic decrement-all step.
  uint64_t min_counter = count;
  for (const auto& [tracked, counter] : counters_) {
    min_counter = std::min(min_counter, counter);
  }
  for (auto entry = counters_.begin(); entry != counters_.end();) {
    entry->second -= min_counter;
    if (entry->second == 0) {
      entry = counters_.erase(entry);
    } else {
      ++entry;
    }
  }
  const uint64_t remaining = count - min_counter;
  if (remaining > 0 && counters_.size() < capacity_) {
    counters_.emplace(key, remaining);
  }
}

void MisraGries::UpdateBatch(Span<const uint64_t> keys) {
  for (uint64_t key : keys) Update(key);
}

Status MisraGries::Merge(const MisraGries& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a summary into itself");
  }
  if (capacity_ != other.capacity_) {
    return Status::InvalidArgument(
        "MisraGries::Merge needs equal capacities");
  }
  for (const auto& [key, counter] : other.counters_) {
    counters_[key] += counter;
  }
  total_count_ += other.total_count_;
  if (counters_.size() <= capacity_) return Status::OK();
  // Subtract the (capacity+1)-th largest counter from every counter and
  // evict the non-positive ones: the batched equivalent of running the
  // decrement phase until at most `capacity` counters survive.
  std::vector<uint64_t> values;
  values.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) values.push_back(counter);
  std::nth_element(values.begin(), values.begin() + capacity_, values.end(),
                   std::greater<uint64_t>());
  const uint64_t pivot = values[capacity_];
  for (auto entry = counters_.begin(); entry != counters_.end();) {
    if (entry->second <= pivot) {
      entry = counters_.erase(entry);
    } else {
      entry->second -= pivot;
      ++entry;
    }
  }
  return Status::OK();
}

uint64_t MisraGries::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

void MisraGries::EstimateBatch(Span<const uint64_t> keys,
                               Span<uint64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
  for (size_t i = 0; i < keys.size(); ++i) out[i] = Estimate(keys[i]);
}

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::HeavyEntries(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (const auto& [key, counter] : counters_) {
    if (counter >= threshold) entries.push_back({key, counter});
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return entries;
}

std::vector<uint64_t> MisraGries::TrackedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) keys.push_back(key);
  return keys;
}

namespace {
constexpr uint32_t kMisraGriesPayloadVersion = 1;
}  // namespace

void MisraGries::Serialize(io::ByteWriter& out) const {
  out.WriteU32(kMisraGriesPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(capacity_);
  out.WriteU64(total_count_);
  out.WriteU64(counters_.size());
  // Ascending key order: deterministic bytes for a given summary state.
  std::vector<std::pair<uint64_t, uint64_t>> entries(counters_.begin(),
                                                     counters_.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [key, count] : entries) {
    out.WriteU64(key);
    out.WriteU64(count);
  }
}

Result<MisraGries> MisraGries::Deserialize(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kMisraGriesPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported misra-gries payload version " +
        std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero misra-gries reserved field");
  }
  OPTHASH_IO_ASSIGN(capacity, in.ReadU64());
  OPTHASH_IO_ASSIGN(total_count, in.ReadU64());
  OPTHASH_IO_ASSIGN(size, in.ReadU64());
  if (capacity == 0) {
    return Status::InvalidArgument("misra-gries capacity must be >= 1");
  }
  if (size > capacity) {
    return Status::InvalidArgument(
        "misra-gries tracks more entries than its capacity");
  }
  if (size > in.remaining() / (2 * sizeof(uint64_t))) {
    return Status::InvalidArgument("misra-gries entry count exceeds payload");
  }
  MisraGries summary(capacity);
  uint64_t previous_key = 0;
  for (uint64_t i = 0; i < size; ++i) {
    OPTHASH_IO_ASSIGN(key, in.ReadU64());
    OPTHASH_IO_ASSIGN(count, in.ReadU64());
    if (i > 0 && key <= previous_key) {
      return Status::InvalidArgument(
          "misra-gries keys must be strictly ascending");
    }
    if (count == 0) {
      return Status::InvalidArgument(
          "misra-gries counters must be positive (zeros are evicted)");
    }
    previous_key = key;
    summary.counters_.emplace(key, count);
  }
  summary.total_count_ = total_count;
  return summary;
}

}  // namespace opthash::sketch

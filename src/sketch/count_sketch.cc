#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::sketch {

CountSketch::CountSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  OPTHASH_CHECK_GE(width, 1u);
  OPTHASH_CHECK_GE(depth, 1u);
  Rng rng(seed);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (size_t level = 0; level < depth; ++level) {
    bucket_hashes_.emplace_back(width, rng);
    sign_hashes_.emplace_back(rng);
  }
  counters_.assign(width * depth, 0);
}

void CountSketch::Update(uint64_t key, int64_t count) {
  for (size_t level = 0; level < depth_; ++level) {
    const int sign = sign_hashes_[level](key);
    counters_[level * width_ + bucket_hashes_[level](key)] += sign * count;
  }
}

void CountSketch::UpdateBatch(Span<const uint64_t> keys) {
  for (uint64_t key : keys) {
    for (size_t level = 0; level < depth_; ++level) {
      const int sign = sign_hashes_[level](key);
      counters_[level * width_ + bucket_hashes_[level](key)] += sign;
    }
  }
}

Status CountSketch::Merge(const CountSketch& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "CountSketch::Merge needs identical geometry and seed");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  return Status::OK();
}

int64_t CountSketch::Estimate(uint64_t key) const {
  std::vector<int64_t> level_estimates(depth_);
  for (size_t level = 0; level < depth_; ++level) {
    const int sign = sign_hashes_[level](key);
    level_estimates[level] =
        sign * counters_[level * width_ + bucket_hashes_[level](key)];
  }
  std::sort(level_estimates.begin(), level_estimates.end());
  const size_t mid = depth_ / 2;
  if (depth_ % 2 == 1) return level_estimates[mid];
  // Even depth: average of the two central values, rounded toward zero.
  return (level_estimates[mid - 1] + level_estimates[mid]) / 2;
}

uint64_t CountSketch::EstimateNonNegative(uint64_t key) const {
  const int64_t estimate = Estimate(key);
  return estimate < 0 ? 0 : static_cast<uint64_t>(estimate);
}

}  // namespace opthash::sketch

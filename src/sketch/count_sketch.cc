#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "sketch/kernels/simd_dispatch.h"

namespace opthash::sketch {

namespace {
// Keys per kernel block in the batch paths. The estimate path keeps a
// (depth x block) level-estimate scratch on the stack, so the block is
// smaller than the CMS one to bound the frame at 32 KiB.
constexpr size_t kBatchChunk = 64;
}  // namespace

CountSketch::CountSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  OPTHASH_CHECK_GE(width, 1u);
  OPTHASH_CHECK_GE(depth, 1u);
  Rng rng(seed);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (size_t level = 0; level < depth; ++level) {
    bucket_hashes_.emplace_back(width, rng);
    sign_hashes_.emplace_back(rng);
    bucket_params_.push_back(
        kernels::HashKernelParams::From(bucket_hashes_.back()));
    sign_params_.push_back(
        kernels::HashKernelParams::From(sign_hashes_.back().linear()));
  }
  counters_.assign(width * depth, 0);
}

void CountSketch::Update(uint64_t key, int64_t count) {
  for (size_t level = 0; level < depth_; ++level) {
    const int sign = sign_hashes_[level](key);
    counters_[level * width_ + bucket_hashes_[level](key)] += sign * count;
  }
}

void CountSketch::UpdateBatch(Span<const uint64_t> keys) {
  // Signed unit increments commute, so hashing a block per level through
  // the kernel tier and scatter-adding is bit-identical to the per-key
  // loop.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  uint64_t idx[kBatchChunk];
  uint64_t sign[kBatchChunk];
  for (size_t begin = 0; begin < keys.size(); begin += kBatchChunk) {
    const size_t block = std::min(kBatchChunk, keys.size() - begin);
    for (size_t level = 0; level < depth_; ++level) {
      ops.hash_buckets(bucket_params_[level], keys.data() + begin, block,
                       idx);
      ops.hash_buckets(sign_params_[level], keys.data() + begin, block,
                       sign);
      ops.scatter_add_signed_i64(counters_.data() + level * width_, idx,
                                 sign, block);
    }
  }
}

Status CountSketch::Merge(const CountSketch& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "CountSketch::Merge needs identical geometry and seed");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  return Status::OK();
}

namespace {

// Median of the first `depth` entries of `level_estimates` (sorts them in
// place): the middle value for odd depth, the truncated mean of the two
// central values for even depth.
int64_t MedianOfLevels(int64_t* level_estimates, size_t depth) {
  std::sort(level_estimates, level_estimates + depth);
  const size_t mid = depth / 2;
  if (depth % 2 == 1) return level_estimates[mid];
  // Even depth: average of the two central values, rounded toward zero.
  return (level_estimates[mid - 1] + level_estimates[mid]) / 2;
}

// Practical depth ceiling for the stack scratch; d = ceil(ln(1/delta))
// never approaches it (64 levels ~= delta 1e-28).
constexpr size_t kMaxStackDepth = 64;

}  // namespace

int64_t CountSketch::Estimate(uint64_t key) const {
  int64_t stack_scratch[kMaxStackDepth];
  thread_local std::vector<int64_t> heap_scratch;
  int64_t* level_estimates = stack_scratch;
  if (depth_ > kMaxStackDepth) {
    heap_scratch.resize(depth_);
    level_estimates = heap_scratch.data();
  }
  for (size_t level = 0; level < depth_; ++level) {
    const int sign = sign_hashes_[level](key);
    level_estimates[level] =
        sign * counters_[level * width_ + bucket_hashes_[level](key)];
  }
  return MedianOfLevels(level_estimates, depth_);
}

uint64_t CountSketch::EstimateNonNegative(uint64_t key) const {
  const int64_t estimate = Estimate(key);
  return estimate < 0 ? 0 : static_cast<uint64_t>(estimate);
}

void CountSketch::EstimateBatch(Span<const uint64_t> keys,
                                Span<int64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
  if (depth_ > kMaxStackDepth) {
    // Degenerate geometry: keep the allocation-free per-key path rather
    // than sizing the block scratch for it.
    for (size_t i = 0; i < keys.size(); ++i) out[i] = Estimate(keys[i]);
    return;
  }
  // Level-major per block: signed gathers fill a (depth x block) scratch
  // row by row through the kernel tier, then the per-key median runs over
  // each column. Bit-identical to the per-key Estimate on every tier.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  uint64_t idx[kBatchChunk];
  uint64_t sign[kBatchChunk];
  int64_t level_scratch[kMaxStackDepth * kBatchChunk];
  int64_t key_scratch[kMaxStackDepth];
  for (size_t begin = 0; begin < keys.size(); begin += kBatchChunk) {
    const size_t block = std::min(kBatchChunk, keys.size() - begin);
    for (size_t level = 0; level < depth_; ++level) {
      ops.hash_buckets(bucket_params_[level], keys.data() + begin, block,
                       idx);
      ops.hash_buckets(sign_params_[level], keys.data() + begin, block,
                       sign);
      ops.gather_signed_i64(counters_.data() + level * width_, idx, sign,
                            block, level_scratch + level * block);
    }
    for (size_t i = 0; i < block; ++i) {
      for (size_t level = 0; level < depth_; ++level) {
        key_scratch[level] = level_scratch[level * block + i];
      }
      out[begin + i] = MedianOfLevels(key_scratch, depth_);
    }
  }
}

void CountSketch::EstimateNonNegativeBatch(Span<const uint64_t> keys,
                                           Span<uint64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
  int64_t signed_block[kBatchChunk];
  for (size_t begin = 0; begin < keys.size(); begin += kBatchChunk) {
    const size_t block = std::min(kBatchChunk, keys.size() - begin);
    EstimateBatch(Span<const uint64_t>(keys.data() + begin, block),
                  Span<int64_t>(signed_block, block));
    for (size_t i = 0; i < block; ++i) {
      const int64_t estimate = signed_block[i];
      out[begin + i] = estimate < 0 ? 0 : static_cast<uint64_t>(estimate);
    }
  }
}

namespace {
constexpr uint32_t kCountSketchPayloadVersion = 1;
}  // namespace

void CountSketch::Serialize(io::ByteWriter& out) const {
  out.WriteU32(kCountSketchPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(width_);
  out.WriteU64(depth_);
  out.WriteU64(seed_);
  out.WriteI64Array(counters_);
}

Result<CountSketch> CountSketch::Deserialize(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kCountSketchPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported count-sketch payload version " +
        std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero count-sketch reserved field");
  }
  OPTHASH_IO_ASSIGN(width, in.ReadU64());
  OPTHASH_IO_ASSIGN(depth, in.ReadU64());
  OPTHASH_IO_ASSIGN(seed, in.ReadU64());
  if (width == 0 || depth == 0 ||
      width > in.remaining() / sizeof(int64_t) / depth) {
    return Status::InvalidArgument("count-sketch geometry exceeds payload");
  }
  CountSketch sketch(width, depth, seed);
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadI64Array(sketch.counters_, width * depth));
  return sketch;
}

}  // namespace opthash::sketch

#include "sketch/space_saving.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::sketch {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  OPTHASH_CHECK_GE(capacity, 1u);
  counters_.reserve(capacity);
}

void SpaceSaving::EraseFromOrder(uint64_t key, uint64_t count) {
  auto it = by_count_.find(count);
  OPTHASH_CHECK(it != by_count_.end());
  auto& keys = it->second;
  auto pos = std::find(keys.begin(), keys.end(), key);
  OPTHASH_CHECK(pos != keys.end());
  keys.erase(pos);
  if (keys.empty()) by_count_.erase(it);
}

void SpaceSaving::Update(uint64_t key, uint64_t count) {
  total_count_ += count;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    EraseFromOrder(key, it->second.count);
    it->second.count += count;
    by_count_[it->second.count].push_back(key);
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Entry{count, 0});
    by_count_[count].push_back(key);
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its counter as
  // the overestimation error.
  auto min_it = by_count_.begin();
  const uint64_t min_count = min_it->first;
  const uint64_t victim = min_it->second.back();
  min_it->second.pop_back();
  if (min_it->second.empty()) by_count_.erase(min_it);
  counters_.erase(victim);

  Entry entry;
  entry.count = min_count + count;
  entry.error = min_count;
  counters_.emplace(key, entry);
  by_count_[entry.count].push_back(key);
}

void SpaceSaving::UpdateBatch(Span<const uint64_t> keys) {
  for (uint64_t key : keys) Update(key);
}

Status SpaceSaving::Merge(const SpaceSaving& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a summary into itself");
  }
  if (capacity_ != other.capacity_) {
    return Status::InvalidArgument("SpaceSaving::Merge needs equal capacities");
  }
  // A summary's contribution for an untracked key is its tightest upper
  // bound: the minimum counter once the table is warm, 0 before that. The
  // full contribution is also added to the key's error term, since none of
  // it is a witnessed arrival.
  const uint64_t min_this =
      counters_.size() < capacity_ ? 0 : by_count_.begin()->first;
  const uint64_t min_other =
      other.counters_.size() < other.capacity_
          ? 0
          : other.by_count_.begin()->first;

  std::vector<std::pair<uint64_t, Entry>> combined;
  combined.reserve(counters_.size() + other.counters_.size());
  for (const auto& [key, entry] : counters_) {
    Entry merged = entry;
    auto it = other.counters_.find(key);
    if (it != other.counters_.end()) {
      merged.count += it->second.count;
      merged.error += it->second.error;
    } else {
      merged.count += min_other;
      merged.error += min_other;
    }
    combined.push_back({key, merged});
  }
  for (const auto& [key, entry] : other.counters_) {
    if (counters_.find(key) != counters_.end()) continue;
    Entry merged = entry;
    merged.count += min_this;
    merged.error += min_this;
    combined.push_back({key, merged});
  }

  std::sort(combined.begin(), combined.end(),
            [](const auto& a, const auto& b) {
              if (a.second.count != b.second.count) {
                return a.second.count > b.second.count;
              }
              return a.first < b.first;
            });
  if (combined.size() > capacity_) combined.resize(capacity_);

  counters_.clear();
  by_count_.clear();
  for (const auto& [key, entry] : combined) {
    counters_.emplace(key, entry);
    by_count_[entry.count].push_back(key);
  }
  total_count_ += other.total_count_;
  return Status::OK();
}

uint64_t SpaceSaving::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second.count;
  // Untracked key: while the table has free slots every arrival is
  // tracked, so an untracked key has never arrived; once warm, its true
  // count cannot exceed the minimum counter.
  if (counters_.size() < capacity_) return 0;
  return by_count_.begin()->first;
}

void SpaceSaving::EstimateBatch(Span<const uint64_t> keys,
                                Span<uint64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
  for (size_t i = 0; i < keys.size(); ++i) out[i] = Estimate(keys[i]);
}

uint64_t SpaceSaving::ErrorOf(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.error;
}

std::vector<std::pair<uint64_t, uint64_t>> SpaceSaving::GuaranteedHeavy(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> heavy;
  for (const auto& [key, entry] : counters_) {
    if (entry.count - entry.error >= threshold) {
      heavy.push_back({key, entry.count});
    }
  }
  std::sort(heavy.begin(), heavy.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return heavy;
}

std::vector<uint64_t> SpaceSaving::TrackedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) keys.push_back(key);
  return keys;
}

namespace {
constexpr uint32_t kSpaceSavingPayloadVersion = 1;
}  // namespace

void SpaceSaving::Serialize(io::ByteWriter& out) const {
  out.WriteU32(kSpaceSavingPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(capacity_);
  out.WriteU64(total_count_);
  out.WriteU64(counters_.size());
  // Ascending key order: deterministic bytes for a given summary state.
  // The count-ordered eviction index is derived state and not stored.
  std::vector<std::pair<uint64_t, Entry>> entries(counters_.begin(),
                                                  counters_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, entry] : entries) {
    out.WriteU64(key);
    out.WriteU64(entry.count);
    out.WriteU64(entry.error);
  }
}

Result<SpaceSaving> SpaceSaving::Deserialize(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kSpaceSavingPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported space-saving payload version " +
        std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero space-saving reserved field");
  }
  OPTHASH_IO_ASSIGN(capacity, in.ReadU64());
  OPTHASH_IO_ASSIGN(total_count, in.ReadU64());
  OPTHASH_IO_ASSIGN(size, in.ReadU64());
  if (capacity == 0) {
    return Status::InvalidArgument("space-saving capacity must be >= 1");
  }
  if (size > capacity) {
    return Status::InvalidArgument(
        "space-saving tracks more entries than its capacity");
  }
  if (size > in.remaining() / (3 * sizeof(uint64_t))) {
    return Status::InvalidArgument(
        "space-saving entry count exceeds payload");
  }
  SpaceSaving summary(capacity);
  uint64_t previous_key = 0;
  for (uint64_t i = 0; i < size; ++i) {
    OPTHASH_IO_ASSIGN(key, in.ReadU64());
    OPTHASH_IO_ASSIGN(count, in.ReadU64());
    OPTHASH_IO_ASSIGN(error, in.ReadU64());
    if (i > 0 && key <= previous_key) {
      return Status::InvalidArgument(
          "space-saving keys must be strictly ascending");
    }
    if (error > count) {
      return Status::InvalidArgument(
          "space-saving error bound exceeds its counter");
    }
    previous_key = key;
    summary.counters_.emplace(key, Entry{count, error});
    summary.by_count_[count].push_back(key);
  }
  summary.total_count_ = total_count;
  return summary;
}

}  // namespace opthash::sketch

#include "sketch/count_min_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace opthash::sketch {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed,
                               bool conservative_update)
    : width_(width), depth_(depth), conservative_update_(conservative_update) {
  OPTHASH_CHECK_GE(width, 1u);
  OPTHASH_CHECK_GE(depth, 1u);
  Rng rng(seed);
  hashes_.reserve(depth);
  for (size_t level = 0; level < depth; ++level) {
    hashes_.emplace_back(width, rng);
  }
  counters_.assign(width * depth, 0);
}

Result<CountMinSketch> CountMinSketch::FromErrorBounds(double epsilon,
                                                       double delta,
                                                       uint64_t seed) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  const auto width =
      static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  const auto depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<size_t>(depth, 1), seed);
}

void CountMinSketch::Update(uint64_t key, uint64_t count) {
  total_count_ += count;
  if (!conservative_update_) {
    for (size_t level = 0; level < depth_; ++level) {
      counters_[level * width_ + hashes_[level](key)] += count;
    }
    return;
  }
  // Conservative update: new value for every level is
  // max(counter, current_estimate + count).
  uint64_t current = std::numeric_limits<uint64_t>::max();
  for (size_t level = 0; level < depth_; ++level) {
    current = std::min(current, counters_[level * width_ + hashes_[level](key)]);
  }
  const uint64_t target = current + count;
  for (size_t level = 0; level < depth_; ++level) {
    uint64_t& counter = counters_[level * width_ + hashes_[level](key)];
    counter = std::max(counter, target);
  }
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (size_t level = 0; level < depth_; ++level) {
    best = std::min(best, counters_[level * width_ + hashes_[level](key)]);
  }
  return best;
}

double CountMinSketch::Epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

double CountMinSketch::Delta() const {
  return std::exp(-static_cast<double>(depth_));
}

}  // namespace opthash::sketch

#include "sketch/count_min_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "sketch/kernels/simd_dispatch.h"

namespace opthash::sketch {

namespace {
// Batch paths hash one key block per level into this much stack scratch,
// keeping the hot loops allocation-free (tests/query_alloc_test.cc).
constexpr size_t kKernelChunk = 256;
}  // namespace

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed,
                               bool conservative_update)
    : width_(width),
      depth_(depth),
      seed_(seed),
      conservative_update_(conservative_update) {
  OPTHASH_CHECK_GE(width, 1u);
  OPTHASH_CHECK_GE(depth, 1u);
  Rng rng(seed);
  hashes_.reserve(depth);
  kernel_params_.reserve(depth);
  for (size_t level = 0; level < depth; ++level) {
    hashes_.emplace_back(width, rng);
    kernel_params_.push_back(kernels::HashKernelParams::From(hashes_.back()));
  }
  counters_.assign(width * depth, 0);
}

Result<CountMinSketch> CountMinSketch::FromErrorBounds(double epsilon,
                                                       double delta,
                                                       uint64_t seed) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  const auto width =
      static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  const auto depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<size_t>(depth, 1), seed);
}

void CountMinSketch::Update(uint64_t key, uint64_t count) {
  total_count_ += count;
  if (!conservative_update_) {
    for (size_t level = 0; level < depth_; ++level) {
      counters_[level * width_ + hashes_[level](key)] += count;
    }
    return;
  }
  // Conservative update: new value for every level is
  // max(counter, current_estimate + count).
  uint64_t current = std::numeric_limits<uint64_t>::max();
  for (size_t level = 0; level < depth_; ++level) {
    current =
        std::min(current, counters_[level * width_ + hashes_[level](key)]);
  }
  const uint64_t target = current + count;
  for (size_t level = 0; level < depth_; ++level) {
    uint64_t& counter = counters_[level * width_ + hashes_[level](key)];
    counter = std::max(counter, target);
  }
}

void CountMinSketch::UpdateBatch(Span<const uint64_t> keys) {
  if (conservative_update_) {
    for (uint64_t key : keys) Update(key);
    return;
  }
  total_count_ += keys.size();
  // Plain unit increments commute, so hashing a whole block per level
  // through the kernel tier and scatter-adding is bit-identical to the
  // per-key loop.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  uint64_t idx[kKernelChunk];
  for (size_t begin = 0; begin < keys.size(); begin += kKernelChunk) {
    const size_t block = std::min(kKernelChunk, keys.size() - begin);
    for (size_t level = 0; level < depth_; ++level) {
      ops.hash_buckets(kernel_params_[level], keys.data() + begin, block,
                       idx);
      ops.scatter_add_u64(counters_.data() + level * width_, idx, block);
    }
  }
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_ ||
      conservative_update_ != other.conservative_update_) {
    return Status::InvalidArgument(
        "CountMinSketch::Merge needs identical geometry, seed and "
        "conservative flag");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_count_ += other.total_count_;
  return Status::OK();
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (size_t level = 0; level < depth_; ++level) {
    best = std::min(best, counters_[level * width_ + hashes_[level](key)]);
  }
  return best;
}

void CountMinSketch::EstimateBatch(Span<const uint64_t> keys,
                                   Span<uint64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
  // Level-major per block: one counter row at a time, min-folding into
  // out, so the row's cache lines are touched together. Hashing and the
  // gather-min run through the dispatched kernel tier; results are
  // bit-identical to the per-key Estimate loop on every tier.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  uint64_t idx[kKernelChunk];
  for (size_t begin = 0; begin < keys.size(); begin += kKernelChunk) {
    const size_t block = std::min(kKernelChunk, keys.size() - begin);
    uint64_t* out_block = out.data() + begin;
    for (size_t i = 0; i < block; ++i) {
      out_block[i] = std::numeric_limits<uint64_t>::max();
    }
    for (size_t level = 0; level < depth_; ++level) {
      ops.hash_buckets(kernel_params_[level], keys.data() + begin, block,
                       idx);
      ops.min_gather_u64(counters_.data() + level * width_, idx, block,
                         out_block);
    }
  }
}

double CountMinSketch::Epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

double CountMinSketch::Delta() const {
  return std::exp(-static_cast<double>(depth_));
}

namespace {
constexpr uint32_t kCmsPayloadVersion = 1;
constexpr uint32_t kCmsFlagConservative = 1u << 0;
}  // namespace

void CountMinSketch::Serialize(io::ByteWriter& out) const {
  out.WriteU32(kCmsPayloadVersion);
  out.WriteU32(conservative_update_ ? kCmsFlagConservative : 0u);
  out.WriteU64(width_);
  out.WriteU64(depth_);
  out.WriteU64(seed_);
  out.WriteU64(total_count_);
  out.WriteU64Array(counters_);
}

Result<CountMinSketch> CountMinSketch::Deserialize(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kCmsPayloadVersion) {
    return Status::InvalidArgument("unsupported count-min payload version " +
                                   std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(flags, in.ReadU32());
  if ((flags & ~kCmsFlagConservative) != 0) {
    return Status::InvalidArgument("unknown count-min payload flags");
  }
  OPTHASH_IO_ASSIGN(width, in.ReadU64());
  OPTHASH_IO_ASSIGN(depth, in.ReadU64());
  OPTHASH_IO_ASSIGN(seed, in.ReadU64());
  OPTHASH_IO_ASSIGN(total_count, in.ReadU64());
  if (width == 0 || depth == 0 ||
      width > in.remaining() / sizeof(uint64_t) / depth) {
    return Status::InvalidArgument("count-min geometry exceeds payload");
  }
  CountMinSketch sketch(width, depth, seed,
                        (flags & kCmsFlagConservative) != 0);
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadU64Array(sketch.counters_, width * depth));
  sketch.total_count_ = total_count;
  return sketch;
}

}  // namespace opthash::sketch

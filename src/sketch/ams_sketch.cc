#include "sketch/ams_sketch.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::sketch {

AmsSketch::AmsSketch(size_t groups, size_t estimators_per_group, uint64_t seed)
    : groups_(groups), per_group_(estimators_per_group), seed_(seed) {
  OPTHASH_CHECK_GE(groups, 1u);
  OPTHASH_CHECK_GE(estimators_per_group, 1u);
  Rng rng(seed);
  const size_t total = groups * estimators_per_group;
  sign_sources_.reserve(total);
  for (size_t a = 0; a < total; ++a) sign_sources_.emplace_back(rng);
  atoms_.assign(total, 0);
}

int AmsSketch::Sign(size_t atom, uint64_t key) const {
  return (sign_sources_[atom](key) & 1) == 0 ? -1 : 1;
}

void AmsSketch::Update(uint64_t key, int64_t count) {
  for (size_t a = 0; a < atoms_.size(); ++a) {
    atoms_[a] += Sign(a, key) * count;
  }
}

void AmsSketch::UpdateBatch(Span<const uint64_t> keys) {
  for (uint64_t key : keys) {
    for (size_t a = 0; a < atoms_.size(); ++a) {
      atoms_[a] += Sign(a, key);
    }
  }
}

Status AmsSketch::Merge(const AmsSketch& other) {
  if (this == &other) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (groups_ != other.groups_ || per_group_ != other.per_group_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "AmsSketch::Merge needs identical geometry and seed");
  }
  for (size_t a = 0; a < atoms_.size(); ++a) {
    atoms_[a] += other.atoms_[a];
  }
  return Status::OK();
}

double AmsSketch::EstimateF2() const {
  std::vector<double> group_means(groups_);
  for (size_t g = 0; g < groups_; ++g) {
    double mean = 0.0;
    for (size_t e = 0; e < per_group_; ++e) {
      const double z = static_cast<double>(atoms_[g * per_group_ + e]);
      mean += z * z;
    }
    group_means[g] = mean / static_cast<double>(per_group_);
  }
  std::sort(group_means.begin(), group_means.end());
  const size_t mid = groups_ / 2;
  if (groups_ % 2 == 1) return group_means[mid];
  return 0.5 * (group_means[mid - 1] + group_means[mid]);
}

namespace {
constexpr uint32_t kAmsPayloadVersion = 1;
}  // namespace

void AmsSketch::Serialize(io::ByteWriter& out) const {
  out.WriteU32(kAmsPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(groups_);
  out.WriteU64(per_group_);
  out.WriteU64(seed_);
  out.WriteI64Array(atoms_);
}

Result<AmsSketch> AmsSketch::Deserialize(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kAmsPayloadVersion) {
    return Status::InvalidArgument("unsupported ams payload version " +
                                   std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero ams reserved field");
  }
  OPTHASH_IO_ASSIGN(groups, in.ReadU64());
  OPTHASH_IO_ASSIGN(per_group, in.ReadU64());
  OPTHASH_IO_ASSIGN(seed, in.ReadU64());
  if (groups == 0 || per_group == 0 ||
      groups > in.remaining() / sizeof(int64_t) / per_group) {
    return Status::InvalidArgument("ams geometry exceeds payload");
  }
  AmsSketch sketch(groups, per_group, seed);
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadI64Array(sketch.atoms_, groups * per_group));
  return sketch;
}

}  // namespace opthash::sketch

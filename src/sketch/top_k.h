#ifndef OPTHASH_SKETCH_TOP_K_H_
#define OPTHASH_SKETCH_TOP_K_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"

namespace opthash::sketch {

/// \brief One reported heavy hitter — the unit of the top-k API that runs
/// from the sketches through ServedModel, the wire protocol, the client
/// and both CLIs (all layers speak this exact record).
///
/// `estimate` is the reporting structure's frequency estimate and keeps
/// that structure's bias direction: a lower bound from Misra-Gries, an
/// upper bound from Space-Saving and Count-Min, exact for Learned
/// Count-Min oracle keys. `error_bound` is a sound deterministic bound on
/// |estimate - f| where the structure has one, with the convention that
/// `error_bound == 0 && !guaranteed` means "no deterministic bound
/// available" (Count-Sketch, model bundles). `guaranteed` is set only
/// when estimate == f exactly.
struct HeavyHitter {
  uint64_t id = 0;
  double estimate = 0.0;
  double error_bound = 0.0;
  bool guaranteed = false;
};

inline bool operator==(const HeavyHitter& a, const HeavyHitter& b) {
  return a.id == b.id && a.estimate == b.estimate &&
         a.error_bound == b.error_bound && a.guaranteed == b.guaranteed;
}

/// Canonical result order everywhere in the stack: estimate descending,
/// id ascending on ties — deterministic for a given summary state.
void SortHeavyHitters(std::vector<HeavyHitter>& hitters);

/// The CSV contract shared by `opthash_cli topk` and `opthash_client
/// topk` (one printer, so served and offline answers diff byte-identical).
inline constexpr const char* kHeavyHitterCsvHeader =
    "id,estimate,error_bound,guaranteed";
std::string HeavyHitterCsvRow(const HeavyHitter& hitter);

/// The k heaviest tracked keys of a Misra-Gries summary, heaviest first.
/// Estimates are lower bounds; every hitter shares the summary-wide
/// deficit bound D = (total - sum of counters) / (capacity + 1), the
/// tightened form of the classic total/(capacity+1) guarantee (each
/// decrement round retires at least capacity+1 arrivals from the tracked
/// sum), so f is in [estimate, estimate + D]. D == 0 means no decrement
/// ever ran and every counter is exact (guaranteed).
std::vector<HeavyHitter> TopK(const MisraGries& summary, size_t k);

/// The k heaviest tracked keys of a Space-Saving summary, heaviest first.
/// Estimates are upper bounds with the summary's per-key tracked error:
/// f is in [estimate - error_bound, estimate]; error_bound == 0 means the
/// key never inherited an evicted counter and its count is exact
/// (guaranteed).
std::vector<HeavyHitter> TopK(const SpaceSaving& summary, size_t k);

/// The k heaviest oracle (heavy-table) keys of a Learned Count-Min
/// sketch. The unique buckets count their keys exactly, so every hitter
/// is guaranteed with error_bound 0; keys outside the oracle set are not
/// candidates (the sketch stores no other ids to scan).
std::vector<HeavyHitter> TopK(const LearnedCountMinSketch& sketch, size_t k);

/// Threshold-scan fallback for sketches with no internal candidate
/// table: the k heaviest of `candidates` (duplicates ignored) under the
/// sketch's batched EstimateBatch machinery. Count-Min estimates are
/// upper bounds carrying the sketch-wide epsilon * total bound.
std::vector<HeavyHitter> TopKOverCandidates(const CountMinSketch& sketch,
                                            Span<const uint64_t> candidates,
                                            size_t k);

/// Count-Sketch variant (non-negative clamped estimates). The median
/// bound is probabilistic, not deterministic, so error_bound is 0 with
/// guaranteed == false ("no deterministic bound").
std::vector<HeavyHitter> TopKOverCandidates(const CountSketch& sketch,
                                            Span<const uint64_t> candidates,
                                            size_t k);

/// Folds per-shard top-k lists into one: ids appearing in several lists
/// sum their estimates and error bounds (guaranteed only when guaranteed
/// everywhere), then the k heaviest survive in canonical order. Exact
/// composition for the sharded-ingest kKeyPartitioned layout, where
/// every key lives in exactly one shard (an id absent from a shard's
/// list truly has count 0 there); for overlapping shards the result
/// keeps each hitter's bias direction only if every shard reported it.
std::vector<HeavyHitter> MergeTopK(
    Span<const std::vector<HeavyHitter>> shards, size_t k);

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_TOP_K_H_

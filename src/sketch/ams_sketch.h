#ifndef OPTHASH_SKETCH_AMS_SKETCH_H_
#define OPTHASH_SKETCH_AMS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "hashing/hash_functions.h"

namespace opthash::sketch {

/// \brief The AMS "tug-of-war" sketch (Alon, Matias, Szegedy 1999 — the
/// paper's ref [13], "among the first sketching algorithms that have been
/// proposed"). Estimates the second frequency moment F2 = Σ f_i².
///
/// Each atomic estimator keeps Z = Σ s(i)·f_i for a random ±1 sign
/// function s; E[Z²] = F2. Accuracy comes from median-of-means:
/// `groups` groups of `estimators_per_group` atomics, mean within a group,
/// median across groups. Signs come from tabulation hashing (3-wise
/// independent — a documented simplification of the 4-wise independence
/// assumed by the classical variance bound; empirically indistinguishable
/// on our workloads, and validated by the test suite).
class AmsSketch {
 public:
  AmsSketch(size_t groups, size_t estimators_per_group, uint64_t seed);

  void Update(uint64_t key, int64_t count = 1);

  /// Median-of-means estimate of F2.
  double EstimateF2() const;

  size_t groups() const { return groups_; }
  size_t estimators_per_group() const { return per_group_; }
  size_t TotalCounters() const { return atoms_.size(); }
  size_t MemoryBuckets() const { return atoms_.size() * 2; }  // 8B counters.

 private:
  int Sign(size_t atom, uint64_t key) const;

  size_t groups_;
  size_t per_group_;
  std::vector<hashing::TabulationHash> sign_sources_;
  std::vector<int64_t> atoms_;  // groups_ x per_group_, row-major.
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_AMS_SKETCH_H_

#ifndef OPTHASH_SKETCH_AMS_SKETCH_H_
#define OPTHASH_SKETCH_AMS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/span.h"
#include "common/status.h"
#include "hashing/hash_functions.h"
#include "io/bytes.h"

namespace opthash::sketch {

/// \brief The AMS "tug-of-war" sketch (Alon, Matias, Szegedy 1999 — the
/// paper's ref [13], "among the first sketching algorithms that have been
/// proposed"). Estimates the second frequency moment F2 = Σ f_i².
///
/// Each atomic estimator keeps Z = Σ s(i)·f_i for a random ±1 sign
/// function s; E[Z²] = F2. Accuracy comes from median-of-means:
/// `groups` groups of `estimators_per_group` atomics, mean within a group,
/// median across groups. Signs come from tabulation hashing (3-wise
/// independent — a documented simplification of the 4-wise independence
/// assumed by the classical variance bound; empirically indistinguishable
/// on our workloads, and validated by the test suite).
class AmsSketch {
 public:
  AmsSketch(size_t groups, size_t estimators_per_group, uint64_t seed);

  void Update(uint64_t key, int64_t count = 1);

  /// Batched unit-increment hot path; equivalent to Update(key) per key.
  void UpdateBatch(Span<const uint64_t> keys);

  /// Folds `other` into this sketch. Each atom Z = Σ s(i)·f_i is linear in
  /// the frequency vector, so with identical sign sources atom-wise
  /// addition of two half-stream sketches is bit-identical to one
  /// full-stream sketch. Fails with InvalidArgument unless both sketches
  /// share geometry and seed; self-merge is rejected.
  Status Merge(const AmsSketch& other);

  /// A fresh all-zero sketch with the same geometry and sign sources.
  AmsSketch EmptyClone() const { return AmsSketch(groups_, per_group_, seed_); }

  /// Median-of-means estimate of F2.
  double EstimateF2() const;

  uint64_t seed() const { return seed_; }
  size_t groups() const { return groups_; }
  size_t estimators_per_group() const { return per_group_; }
  size_t TotalCounters() const { return atoms_.size(); }
  size_t MemoryBuckets() const { return atoms_.size() * 2; }  // 8B counters.

  /// Binary snapshot payload (docs/FORMATS.md, section type 3):
  /// little-endian geometry + seed + atom counters. The tabulation sign
  /// sources are redrawn from the seed on load, not stored.
  void Serialize(io::ByteWriter& out) const;

  /// Rebuilds a sketch from a Serialize payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes.
  static Result<AmsSketch> Deserialize(io::ByteReader& in);

 private:
  int Sign(size_t atom, uint64_t key) const;

  size_t groups_;
  size_t per_group_;
  uint64_t seed_;
  std::vector<hashing::TabulationHash> sign_sources_;
  std::vector<int64_t> atoms_;  // groups_ x per_group_, row-major.
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_AMS_SKETCH_H_

#include "sketch/top_k.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace opthash::sketch {

namespace {

// Batch width of the candidate scans, matching the EstimateBatch chunk
// size used throughout the read path.
constexpr size_t kScanChunk = 256;

void SortAndTruncate(std::vector<HeavyHitter>& hitters, size_t k) {
  SortHeavyHitters(hitters);
  if (hitters.size() > k) hitters.resize(k);
}

std::vector<uint64_t> DistinctCandidates(Span<const uint64_t> candidates) {
  std::vector<uint64_t> distinct;
  distinct.reserve(candidates.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(candidates.size());
  for (uint64_t id : candidates) {
    if (seen.insert(id).second) distinct.push_back(id);
  }
  return distinct;
}

}  // namespace

void SortHeavyHitters(std::vector<HeavyHitter>& hitters) {
  std::sort(hitters.begin(), hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.id < b.id;
            });
}

std::string HeavyHitterCsvRow(const HeavyHitter& hitter) {
  char row[96];
  std::snprintf(row, sizeof(row), "%llu,%.2f,%.2f,%d",
                static_cast<unsigned long long>(hitter.id), hitter.estimate,
                hitter.error_bound, hitter.guaranteed ? 1 : 0);
  return std::string(row);
}

std::vector<HeavyHitter> TopK(const MisraGries& summary, size_t k) {
  const auto entries = summary.HeavyEntries(1);
  // Every decrement round removes capacity+1 arrivals from the tracked
  // sum (one incoming plus one per counter) while lowering any single
  // key's counter by at most one per round, so the per-key deficit is at
  // most (total - tracked_sum) / (capacity + 1).
  uint64_t tracked_sum = 0;
  for (const auto& [id, counter] : entries) tracked_sum += counter;
  const uint64_t deficit =
      (summary.total_count() - tracked_sum) / (summary.capacity() + 1);
  std::vector<HeavyHitter> hitters;
  hitters.reserve(std::min(k, entries.size()));
  for (const auto& [id, counter] : entries) {
    if (hitters.size() == k) break;
    hitters.push_back({id, static_cast<double>(counter),
                       static_cast<double>(deficit), deficit == 0});
  }
  return hitters;  // HeavyEntries is already in canonical order.
}

std::vector<HeavyHitter> TopK(const SpaceSaving& summary, size_t k) {
  std::vector<HeavyHitter> hitters;
  hitters.reserve(summary.size());
  for (uint64_t id : summary.TrackedKeys()) {
    const uint64_t error = summary.ErrorOf(id);
    hitters.push_back({id, static_cast<double>(summary.Estimate(id)),
                       static_cast<double>(error), error == 0});
  }
  SortAndTruncate(hitters, k);
  return hitters;
}

std::vector<HeavyHitter> TopK(const LearnedCountMinSketch& sketch, size_t k) {
  std::vector<HeavyHitter> hitters;
  hitters.reserve(sketch.heavy_counts().size());
  for (const auto& [id, count] : sketch.heavy_counts()) {
    hitters.push_back({id, static_cast<double>(count), 0.0, true});
  }
  SortAndTruncate(hitters, k);
  return hitters;
}

std::vector<HeavyHitter> TopKOverCandidates(const CountMinSketch& sketch,
                                            Span<const uint64_t> candidates,
                                            size_t k) {
  const std::vector<uint64_t> distinct = DistinctCandidates(candidates);
  const double bound =
      sketch.Epsilon() * static_cast<double>(sketch.total_count());
  std::vector<HeavyHitter> hitters;
  hitters.reserve(distinct.size());
  uint64_t estimates[kScanChunk];
  for (size_t base = 0; base < distinct.size(); base += kScanChunk) {
    const size_t n = std::min(kScanChunk, distinct.size() - base);
    sketch.EstimateBatch(Span<const uint64_t>(distinct.data() + base, n),
                         Span<uint64_t>(estimates, n));
    for (size_t i = 0; i < n; ++i) {
      hitters.push_back(
          {distinct[base + i], static_cast<double>(estimates[i]), bound,
           false});
    }
  }
  SortAndTruncate(hitters, k);
  return hitters;
}

std::vector<HeavyHitter> TopKOverCandidates(const CountSketch& sketch,
                                            Span<const uint64_t> candidates,
                                            size_t k) {
  const std::vector<uint64_t> distinct = DistinctCandidates(candidates);
  std::vector<HeavyHitter> hitters;
  hitters.reserve(distinct.size());
  uint64_t estimates[kScanChunk];
  for (size_t base = 0; base < distinct.size(); base += kScanChunk) {
    const size_t n = std::min(kScanChunk, distinct.size() - base);
    sketch.EstimateNonNegativeBatch(
        Span<const uint64_t>(distinct.data() + base, n),
        Span<uint64_t>(estimates, n));
    for (size_t i = 0; i < n; ++i) {
      // Count-Sketch's median guarantee is probabilistic: no deterministic
      // bound to report (error_bound 0, guaranteed false by convention).
      hitters.push_back(
          {distinct[base + i], static_cast<double>(estimates[i]), 0.0, false});
    }
  }
  SortAndTruncate(hitters, k);
  return hitters;
}

std::vector<HeavyHitter> MergeTopK(Span<const std::vector<HeavyHitter>> shards,
                                   size_t k) {
  struct Folded {
    double estimate = 0.0;
    double error_bound = 0.0;
    bool guaranteed = true;
  };
  std::unordered_map<uint64_t, Folded> by_id;
  for (const std::vector<HeavyHitter>& shard : shards) {
    for (const HeavyHitter& hitter : shard) {
      Folded& folded = by_id[hitter.id];
      folded.estimate += hitter.estimate;
      folded.error_bound += hitter.error_bound;
      folded.guaranteed = folded.guaranteed && hitter.guaranteed;
    }
  }
  std::vector<HeavyHitter> hitters;
  hitters.reserve(by_id.size());
  for (const auto& [id, folded] : by_id) {
    hitters.push_back({id, folded.estimate, folded.error_bound,
                       folded.guaranteed});
  }
  SortAndTruncate(hitters, k);
  return hitters;
}

}  // namespace opthash::sketch

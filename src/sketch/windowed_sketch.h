#ifndef OPTHASH_SKETCH_WINDOWED_SKETCH_H_
#define OPTHASH_SKETCH_WINDOWED_SKETCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/span.h"
#include "common/status.h"
#include "sketch/top_k.h"
#include "stream/sharded_ingest.h"

namespace opthash::sketch {

/// Shared parameter checks for every WindowedSketch instantiation (also
/// used by the snapshot deserializer, so hostile files fail with the same
/// readable messages as bad constructor arguments).
Status ValidateWindowedConfig(size_t num_windows, double decay);
Status ValidateWindowedParts(size_t num_windows, size_t num_counts,
                             size_t head, double decay);

/// decay^age without std::pow: bit-reproducible across libm versions,
/// which the snapshot/restore equivalence tests rely on.
double WindowDecayWeight(double decay, size_t age);

namespace internal {
template <typename Sketch, typename = void>
struct HasNativeTopK : std::false_type {};
template <typename Sketch>
struct HasNativeTopK<Sketch,
                     std::void_t<decltype(TopK(std::declval<const Sketch&>(),
                                               size_t{}))>> : std::true_type {
};
}  // namespace internal

/// \brief Sliding-window counting over a ring of W mergeable sub-sketches.
///
/// Each window is an independent sub-sketch (same geometry and seed as the
/// prototype); arrivals land in the current window and the ring advances
/// either every `window_items` arrivals or on an explicit AdvanceWindow()
/// tick (window_items == 0 = tick-only mode, the wall-clock driver).
/// Advancing evicts the oldest window, so queries always cover the last
/// W windows of the stream — the smooth-histogram construction over the
/// Merge machinery every sketch kind already proves correct.
///
/// Queries:
///  - decay == 1.0 (default): answers come from a single merged view of
///    all live windows, rebuilt eagerly after every mutating call. For
///    linear sketches (plain count-min, count-sketch) this is bit-identical
///    to a fresh sketch fed only the live arrivals.
///  - decay < 1.0: exponential decay. Estimates are per-window estimates
///    combined with geometric weights decay^age (current window has age 0),
///    so old traffic fades instead of falling off a cliff.
///
/// W == 1 with window_items == 0 never advances and degenerates exactly to
/// the plain sketch. Mutation is single-writer, like the underlying
/// sketches; const queries are safe concurrently because the merged view
/// is maintained eagerly rather than on demand.
template <typename Sketch>
class WindowedSketch {
 public:
  /// What the inner sketch's Estimate returns (int64_t for count-sketch,
  /// uint64_t everywhere else).
  using RawEstimate =
      decltype(std::declval<const Sketch&>().Estimate(uint64_t{0}));

  static constexpr bool kHasNativeTopK = internal::HasNativeTopK<Sketch>::value;

  /// The prototype contributes geometry and seed only (via EmptyClone);
  /// any counts it holds are ignored. decay must be in (0, 1].
  static Result<WindowedSketch> Create(const Sketch& prototype,
                                       size_t num_windows,
                                       uint64_t window_items,
                                       double decay = 1.0) {
    Status valid = ValidateWindowedConfig(num_windows, decay);
    if (!valid.ok()) return valid;
    return WindowedSketch(prototype, num_windows, window_items, decay);
  }

  /// Reassembles a ring from snapshot parts: `windows`/`counts` are in
  /// slot (storage) order and `head` indexes the current window, so a
  /// restored ring resumes mid-window exactly where the save left off.
  static Result<WindowedSketch> FromParts(std::vector<Sketch> windows,
                                          std::vector<uint64_t> counts,
                                          size_t head, uint64_t window_items,
                                          uint64_t window_sequence,
                                          double decay) {
    Status valid =
        ValidateWindowedParts(windows.size(), counts.size(), head, decay);
    if (!valid.ok()) return valid;
    WindowedSketch ring(windows.front(), windows.size(), window_items, decay);
    ring.windows_ = std::move(windows);
    ring.window_counts_ = std::move(counts);
    ring.head_ = head;
    ring.window_sequence_ = window_sequence;
    Status merged = ring.TryRebuildMerged();
    if (!merged.ok()) return merged;
    return ring;
  }

  /// One arrival of `key` (or `count` arrivals at once — a multi-count
  /// update is atomic and never split across a window boundary, so the
  /// current window may overshoot window_items before advancing).
  void Update(uint64_t key, uint64_t count = 1) {
    windows_[head_].Update(key, count);
    window_counts_[head_] += count;
    if (window_items_ > 0 && window_counts_[head_] >= window_items_) {
      AdvanceWindowInternal();
    }
    RebuildMerged();
  }

  /// Unit arrivals in stream order, split deterministically at window
  /// boundaries — equivalent to calling Update(key) per key but with one
  /// merged-view rebuild for the whole batch.
  void UpdateBatch(Span<const uint64_t> keys) {
    const Status done =
        IngestSegmented(keys, [this](Span<const uint64_t> segment) {
          windows_[head_].UpdateBatch(segment);
          return Status::OK();
        });
    OPTHASH_CHECK_MSG(done.ok(), "plain UpdateBatch segments cannot fail");
  }

  /// Sharded ingestion into the current window: each window-bounded
  /// segment runs through stream::ShardedIngest, so the window boundaries
  /// land on the same arrivals regardless of thread count and the
  /// per-window contents obey the same replicated/key-partitioned
  /// equivalence guarantees as un-windowed sharded ingest.
  Status Ingest(Span<const uint64_t> keys,
                const stream::ShardedIngestConfig& config) {
    return IngestSegmented(keys, [&](Span<const uint64_t> segment) {
      auto stats = stream::ShardedIngest(segment, config, windows_[head_]);
      return stats.ok() ? Status::OK() : stats.status();
    });
  }

  /// Manual tick: evict the oldest window and start a fresh one (the
  /// wall-clock advance primitive; also what item-count mode calls
  /// internally).
  void AdvanceWindow() {
    AdvanceWindowInternal();
    RebuildMerged();
  }

  /// Windowed point query; see the class comment for decay semantics.
  double Estimate(uint64_t key) const {
    if (!decayed()) return static_cast<double>(merged_.Estimate(key));
    double sum = 0.0;
    for (size_t slot = 0; slot < windows_.size(); ++slot) {
      if (window_counts_[slot] == 0) continue;
      sum += WindowDecayWeight(decay_, AgeOfSlot(slot)) *
             static_cast<double>(windows_[slot].Estimate(key));
    }
    return sum;
  }

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free.
  void EstimateBatch(Span<const uint64_t> keys, Span<double> out) const {
    OPTHASH_CHECK_EQ(keys.size(), out.size());
    if (decayed()) {
      for (size_t i = 0; i < keys.size(); ++i) out[i] = Estimate(keys[i]);
      return;
    }
    constexpr size_t kChunk = 256;
    RawEstimate raw[kChunk];
    size_t offset = 0;
    while (offset < keys.size()) {
      const size_t n = std::min(kChunk, keys.size() - offset);
      merged_.EstimateBatch(Span<const uint64_t>(keys.data() + offset, n),
                            Span<RawEstimate>(raw, n));
      for (size_t i = 0; i < n; ++i) {
        out[offset + i] = static_cast<double>(raw[i]);
      }
      offset += n;
    }
  }

  /// Top-k over the live windows: per-window candidate lists folded with
  /// MergeTopK; in decay mode each window's estimates and error bounds are
  /// scaled by its geometric weight first. Only instantiable for kinds
  /// with a native TopK (misra-gries, space-saving, learned-count-min).
  std::vector<HeavyHitter> TopK(size_t k) const {
    static_assert(kHasNativeTopK,
                  "TopK needs an inner sketch with candidate ids");
    std::vector<std::vector<HeavyHitter>> per_window;
    for (size_t slot = 0; slot < windows_.size(); ++slot) {
      // Windows that saw no arrivals contribute nothing; including their
      // empty lists would only strip MergeTopK's everywhere-guarantee.
      if (window_counts_[slot] == 0) continue;
      std::vector<HeavyHitter> hitters = sketch::TopK(windows_[slot], k);
      if (decayed()) {
        const double weight = WindowDecayWeight(decay_, AgeOfSlot(slot));
        for (HeavyHitter& hitter : hitters) {
          hitter.estimate *= weight;
          hitter.error_bound *= weight;
        }
      }
      per_window.push_back(std::move(hitters));
    }
    if (per_window.empty()) return {};
    return MergeTopK(
        Span<const std::vector<HeavyHitter>>(per_window.data(),
                                             per_window.size()),
        k);
  }

  size_t num_windows() const { return windows_.size(); }
  uint64_t window_items() const { return window_items_; }
  double decay() const { return decay_; }
  bool decayed() const { return decay_ < 1.0; }
  /// Slot index of the current window (storage order, for serialization).
  size_t head() const { return head_; }
  /// Total ring advances since creation (never wraps back).
  uint64_t window_sequence() const { return window_sequence_; }
  uint64_t items_in_current_window() const { return window_counts_[head_]; }

  /// Live arrivals = sum over all windows still in the ring.
  uint64_t total_items() const {
    uint64_t total = 0;
    for (uint64_t count : window_counts_) total += count;
    return total;
  }

  /// Per-window arrival counts ordered oldest window first (what the
  /// kWindowStats wire reply carries).
  std::vector<uint64_t> WindowCountsOldestFirst() const {
    std::vector<uint64_t> counts;
    counts.reserve(windows_.size());
    for (size_t age = windows_.size(); age-- > 0;) {
      counts.push_back(window_counts_[SlotOfAge(age)]);
    }
    return counts;
  }

  /// Storage-order accessors for the snapshot writer.
  const Sketch& WindowAt(size_t slot) const { return windows_[slot]; }
  uint64_t WindowCountAt(size_t slot) const { return window_counts_[slot]; }

  /// The merged (undecayed) view — what non-decay queries answer from.
  const Sketch& MergedView() const { return merged_; }

 private:
  WindowedSketch(const Sketch& prototype, size_t num_windows,
                 uint64_t window_items, double decay)
      : head_(0),
        window_items_(window_items),
        window_sequence_(0),
        decay_(decay),
        merged_(prototype.EmptyClone()) {
    windows_.reserve(num_windows);
    for (size_t i = 0; i < num_windows; ++i) {
      windows_.push_back(prototype.EmptyClone());
    }
    window_counts_.assign(num_windows, 0);
  }

  size_t AgeOfSlot(size_t slot) const {
    return (head_ + windows_.size() - slot) % windows_.size();
  }
  size_t SlotOfAge(size_t age) const {
    return (head_ + windows_.size() - age) % windows_.size();
  }

  void AdvanceWindowInternal() {
    head_ = (head_ + 1) % windows_.size();
    windows_[head_] = windows_[head_].EmptyClone();
    window_counts_[head_] = 0;
    ++window_sequence_;
  }

  /// Splits `keys` at window boundaries and feeds each segment to
  /// `ingest_segment` (which must append into windows_[head_]). The
  /// merged view is rebuilt exactly once, even on early error, so the
  /// ring never serves stale answers.
  template <typename IngestSegment>
  Status IngestSegmented(Span<const uint64_t> keys,
                         IngestSegment&& ingest_segment) {
    if (keys.empty()) return Status::OK();
    size_t offset = 0;
    Status result = Status::OK();
    while (offset < keys.size()) {
      size_t take = keys.size() - offset;
      if (window_items_ > 0) {
        if (window_counts_[head_] >= window_items_) {
          // Only reachable via a multi-count Update overshoot.
          AdvanceWindowInternal();
        }
        take = std::min<size_t>(
            take, static_cast<size_t>(window_items_ - window_counts_[head_]));
      }
      result = ingest_segment(
          Span<const uint64_t>(keys.data() + offset, take));
      if (!result.ok()) break;
      window_counts_[head_] += take;
      offset += take;
      if (window_items_ > 0 && window_counts_[head_] >= window_items_) {
        AdvanceWindowInternal();
      }
    }
    RebuildMerged();
    return result;
  }

  Status TryRebuildMerged() {
    merged_ = windows_.front().EmptyClone();
    for (const Sketch& window : windows_) {
      Status merged = merged_.Merge(window);
      if (!merged.ok()) return merged;
    }
    return Status::OK();
  }

  void RebuildMerged() {
    const Status merged = TryRebuildMerged();
    OPTHASH_CHECK_MSG(merged.ok(),
                      "ring sub-sketches share geometry by construction");
  }

  std::vector<Sketch> windows_;          // Slot (storage) order.
  std::vector<uint64_t> window_counts_;  // Arrivals per slot.
  size_t head_;                          // Slot of the current window.
  uint64_t window_items_;                // 0 = advance only on explicit tick.
  uint64_t window_sequence_;
  double decay_;
  Sketch merged_;  // Undecayed union of all live windows.
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_WINDOWED_SKETCH_H_

#ifndef OPTHASH_SKETCH_COUNT_SKETCH_H_
#define OPTHASH_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/span.h"
#include "common/status.h"
#include "hashing/hash_functions.h"
#include "io/bytes.h"
#include "sketch/kernels/kernels.h"

namespace opthash::sketch {

/// \brief The Count Sketch (Charikar, Chen, Farach-Colton 2002, ref [12]).
///
/// Like the Count-Min Sketch but every update is multiplied by a
/// pairwise-independent ±1 sign, and a point query returns the *median*
/// over levels. The estimator is unbiased (can under- or over-estimate),
/// trading the CMS one-sided guarantee for tighter errors on skewed data.
/// Included as the second conventional baseline discussed in §1.1/§2.
class CountSketch {
 public:
  CountSketch(size_t width, size_t depth, uint64_t seed);

  void Update(uint64_t key, int64_t count = 1);

  /// Batched unit-increment hot path; equivalent to Update(key) per key.
  void UpdateBatch(Span<const uint64_t> keys);

  /// Folds `other` into this sketch. The Count Sketch is linear: with
  /// identical (bucket, sign) hash draws, counter-wise addition of two
  /// half-stream sketches is bit-identical to one full-stream sketch.
  /// Fails with InvalidArgument unless both sketches share width, depth and
  /// seed; self-merge is rejected.
  Status Merge(const CountSketch& other);

  /// A fresh all-zero sketch with the same geometry and hash functions.
  CountSketch EmptyClone() const { return CountSketch(width_, depth_, seed_); }

  /// Median-of-levels estimate; may be negative on adversarial collisions,
  /// in which case callers typically clamp at zero. Allocation-free: the
  /// median scratch is a stack buffer (thread-local fallback for sketches
  /// deeper than 64 levels).
  int64_t Estimate(uint64_t key) const;

  /// Estimate clamped to be non-negative (frequencies are counts).
  uint64_t EstimateNonNegative(uint64_t key) const;

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free.
  /// keys.size() must equal out.size().
  void EstimateBatch(Span<const uint64_t> keys, Span<int64_t> out) const;

  /// Batched clamped queries: out[i] = EstimateNonNegative(keys[i]).
  void EstimateNonNegativeBatch(Span<const uint64_t> keys,
                                Span<uint64_t> out) const;

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  size_t TotalBuckets() const { return width_ * depth_; }
  size_t MemoryBytes() const { return TotalBuckets() * sizeof(uint32_t); }

  /// Binary snapshot payload (docs/FORMATS.md, section type 2):
  /// little-endian geometry + seed + signed counters. The (bucket, sign)
  /// hash pairs are redrawn from the seed on load, not stored.
  void Serialize(io::ByteWriter& out) const;

  /// Rebuilds a sketch from a Serialize payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes.
  static Result<CountSketch> Deserialize(io::ByteReader& in);

 private:
  size_t width_;
  size_t depth_;
  uint64_t seed_;
  std::vector<hashing::LinearHash> bucket_hashes_;
  std::vector<hashing::SignHash> sign_hashes_;
  // Kernel constants mirroring the (bucket, sign) hash pairs per level
  // (sketch/kernels/); sign params describe the range-2 sign hash, whose
  // bucket 0 means -1.
  std::vector<kernels::HashKernelParams> bucket_params_;
  std::vector<kernels::HashKernelParams> sign_params_;
  std::vector<int64_t> counters_;  // depth_ x width_, row-major.
};

}  // namespace opthash::sketch

#endif  // OPTHASH_SKETCH_COUNT_SKETCH_H_

#include "core/oracle_cms.h"

#include <algorithm>

#include "common/check.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace opthash::core {

OracleLearnedCms::OracleLearnedCms(size_t total_buckets, size_t heavy_capacity,
                                   Oracle oracle,
                                   sketch::CountMinSketch remainder)
    : total_buckets_(total_buckets),
      heavy_capacity_(heavy_capacity),
      oracle_(std::move(oracle)),
      remainder_(std::move(remainder)) {
  heavy_counts_.reserve(heavy_capacity);
}

Result<OracleLearnedCms> OracleLearnedCms::Create(size_t total_buckets,
                                                  size_t depth,
                                                  size_t heavy_capacity,
                                                  Oracle oracle,
                                                  uint64_t seed) {
  if (depth == 0) return Status::InvalidArgument("depth must be >= 1");
  if (oracle == nullptr) return Status::InvalidArgument("oracle is null");
  if (2 * heavy_capacity >= total_buckets) {
    return Status::InvalidArgument(
        "2 * heavy_capacity must be < total_buckets");
  }
  const size_t remainder_buckets = total_buckets - 2 * heavy_capacity;
  sketch::CountMinSketch remainder(
      std::max<size_t>(1, remainder_buckets / depth), depth, seed);
  return OracleLearnedCms(total_buckets, heavy_capacity, std::move(oracle),
                          std::move(remainder));
}

void OracleLearnedCms::Update(const stream::StreamItem& item) {
  auto it = heavy_counts_.find(item.id);
  if (it != heavy_counts_.end()) {
    ++it->second;
    return;
  }
  if (heavy_counts_.size() < heavy_capacity_ && oracle_(item)) {
    heavy_counts_.emplace(item.id, 1);
    return;
  }
  remainder_.Update(item.id);
}

double OracleLearnedCms::Estimate(const stream::StreamItem& item) const {
  auto it = heavy_counts_.find(item.id);
  if (it != heavy_counts_.end()) return static_cast<double>(it->second);
  return static_cast<double>(remainder_.Estimate(item.id));
}

size_t OracleLearnedCms::MemoryBuckets() const { return total_buckets_; }

OracleLearnedCms::Oracle HeavyHitterOracle::AsPredicate() const {
  const ml::Classifier* model = classifier.get();
  return [model](const stream::StreamItem& item) {
    if (item.features == nullptr) return false;
    return model->Predict(*item.features) == 1;
  };
}

Result<HeavyHitterOracle> TrainHeavyHitterOracle(
    const std::vector<PrefixElement>& prefix, double top_fraction,
    uint64_t seed) {
  if (prefix.empty()) {
    return Status::InvalidArgument("prefix must be non-empty");
  }
  if (top_fraction <= 0.0 || top_fraction >= 1.0) {
    return Status::InvalidArgument("top_fraction must lie in (0, 1)");
  }
  if (prefix.front().features.empty()) {
    return Status::InvalidArgument("prefix elements need features");
  }

  // Label the top fraction by prefix frequency as heavy.
  std::vector<size_t> order(prefix.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return prefix[a].frequency > prefix[b].frequency;
  });
  const size_t heavy_count = std::max<size_t>(
      1,
      static_cast<size_t>(top_fraction * static_cast<double>(prefix.size())));

  HeavyHitterOracle oracle;
  oracle.frequency_cutoff = prefix[order[heavy_count - 1]].frequency;

  ml::Dataset train(prefix.front().features.size());
  std::vector<bool> is_heavy(prefix.size(), false);
  for (size_t rank = 0; rank < heavy_count; ++rank) {
    is_heavy[order[rank]] = true;
  }
  for (size_t i = 0; i < prefix.size(); ++i) {
    train.Add(prefix[i].features, is_heavy[i] ? 1 : 0);
  }

  ml::RandomForestConfig config;
  config.num_trees = 15;
  config.max_depth = 12;
  config.seed = seed;
  auto forest = std::make_unique<ml::RandomForest>(config);
  forest->Fit(train);
  oracle.train_accuracy =
      ml::Accuracy(train.labels(), forest->PredictBatch(train));
  oracle.classifier = std::move(forest);
  return oracle;
}

}  // namespace opthash::core

#include "core/baseline_estimators.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::core {
namespace {

// Shared shape of every sketch-backed batch override: ids and raw sketch
// answers staged through fixed-size stack chunks (no heap traffic), the
// sketch's own batch path doing the counter reads, and a caller-supplied
// convert turning the raw answer into the estimator's double semantics.
template <typename Raw, typename BatchFn, typename ConvertFn>
void ChunkedSketchBatch(Span<const stream::StreamItem> items,
                        Span<double> out, BatchFn batch, ConvertFn convert) {
  OPTHASH_CHECK_EQ(items.size(), out.size());
  constexpr size_t kChunk = 256;
  uint64_t keys[kChunk];
  Raw raw[kChunk];
  for (size_t base = 0; base < items.size(); base += kChunk) {
    const size_t chunk = std::min(kChunk, items.size() - base);
    for (size_t i = 0; i < chunk; ++i) keys[i] = items[base + i].id;
    batch(Span<const uint64_t>(keys, chunk), Span<Raw>(raw, chunk));
    for (size_t i = 0; i < chunk; ++i) out[base + i] = convert(raw[i]);
  }
}

}  // namespace

CountMinEstimator::CountMinEstimator(size_t total_buckets, size_t depth,
                                     uint64_t seed, bool conservative_update)
    : sketch_(std::max<size_t>(1, total_buckets / std::max<size_t>(depth, 1)),
              std::max<size_t>(depth, 1), seed, conservative_update) {}

void CountMinEstimator::Update(const stream::StreamItem& item) {
  sketch_.Update(item.id);
}

double CountMinEstimator::Estimate(const stream::StreamItem& item) const {
  return static_cast<double>(sketch_.Estimate(item.id));
}

void CountMinEstimator::EstimateBatch(Span<const stream::StreamItem> items,
                                      Span<double> out) const {
  ChunkedSketchBatch<uint64_t>(
      items, out,
      [this](Span<const uint64_t> keys, Span<uint64_t> raw) {
        sketch_.EstimateBatch(keys, raw);
      },
      [](uint64_t raw) { return static_cast<double>(raw); });
}

size_t CountMinEstimator::MemoryBuckets() const {
  return sketch_.TotalBuckets();
}

CountSketchEstimator::CountSketchEstimator(size_t total_buckets, size_t depth,
                                           uint64_t seed)
    : sketch_(std::max<size_t>(1, total_buckets / std::max<size_t>(depth, 1)),
              std::max<size_t>(depth, 1), seed) {}

void CountSketchEstimator::Update(const stream::StreamItem& item) {
  sketch_.Update(item.id);
}

double CountSketchEstimator::Estimate(const stream::StreamItem& item) const {
  return static_cast<double>(sketch_.EstimateNonNegative(item.id));
}

void CountSketchEstimator::EstimateBatch(Span<const stream::StreamItem> items,
                                         Span<double> out) const {
  ChunkedSketchBatch<uint64_t>(
      items, out,
      [this](Span<const uint64_t> keys, Span<uint64_t> raw) {
        sketch_.EstimateNonNegativeBatch(keys, raw);
      },
      [](uint64_t raw) { return static_cast<double>(raw); });
}

size_t CountSketchEstimator::MemoryBuckets() const {
  return sketch_.TotalBuckets();
}

LearnedCmsEstimator::LearnedCmsEstimator(sketch::LearnedCountMinSketch sketch)
    : sketch_(std::move(sketch)) {}

Result<LearnedCmsEstimator> LearnedCmsEstimator::Create(
    size_t total_buckets, size_t depth, const std::vector<uint64_t>& heavy_keys,
    uint64_t seed) {
  auto sketch = sketch::LearnedCountMinSketch::Create(total_buckets, depth,
                                                      heavy_keys, seed);
  if (!sketch.ok()) return sketch.status();
  return LearnedCmsEstimator(std::move(sketch).value());
}

void LearnedCmsEstimator::Update(const stream::StreamItem& item) {
  sketch_.Update(item.id);
}

double LearnedCmsEstimator::Estimate(const stream::StreamItem& item) const {
  return static_cast<double>(sketch_.Estimate(item.id));
}

void LearnedCmsEstimator::EstimateBatch(Span<const stream::StreamItem> items,
                                        Span<double> out) const {
  ChunkedSketchBatch<uint64_t>(
      items, out,
      [this](Span<const uint64_t> keys, Span<uint64_t> raw) {
        sketch_.EstimateBatch(keys, raw);
      },
      [](uint64_t raw) { return static_cast<double>(raw); });
}

size_t LearnedCmsEstimator::MemoryBuckets() const {
  return sketch_.TotalBuckets();
}

}  // namespace opthash::core

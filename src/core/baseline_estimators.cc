#include "core/baseline_estimators.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::core {

CountMinEstimator::CountMinEstimator(size_t total_buckets, size_t depth,
                                     uint64_t seed, bool conservative_update)
    : sketch_(std::max<size_t>(1, total_buckets / std::max<size_t>(depth, 1)),
              std::max<size_t>(depth, 1), seed, conservative_update) {}

void CountMinEstimator::Update(const stream::StreamItem& item) {
  sketch_.Update(item.id);
}

double CountMinEstimator::Estimate(const stream::StreamItem& item) const {
  return static_cast<double>(sketch_.Estimate(item.id));
}

size_t CountMinEstimator::MemoryBuckets() const {
  return sketch_.TotalBuckets();
}

CountSketchEstimator::CountSketchEstimator(size_t total_buckets, size_t depth,
                                           uint64_t seed)
    : sketch_(std::max<size_t>(1, total_buckets / std::max<size_t>(depth, 1)),
              std::max<size_t>(depth, 1), seed) {}

void CountSketchEstimator::Update(const stream::StreamItem& item) {
  sketch_.Update(item.id);
}

double CountSketchEstimator::Estimate(const stream::StreamItem& item) const {
  return static_cast<double>(sketch_.EstimateNonNegative(item.id));
}

size_t CountSketchEstimator::MemoryBuckets() const {
  return sketch_.TotalBuckets();
}

LearnedCmsEstimator::LearnedCmsEstimator(sketch::LearnedCountMinSketch sketch)
    : sketch_(std::move(sketch)) {}

Result<LearnedCmsEstimator> LearnedCmsEstimator::Create(
    size_t total_buckets, size_t depth, const std::vector<uint64_t>& heavy_keys,
    uint64_t seed) {
  auto sketch = sketch::LearnedCountMinSketch::Create(total_buckets, depth,
                                                      heavy_keys, seed);
  if (!sketch.ok()) return sketch.status();
  return LearnedCmsEstimator(std::move(sketch).value());
}

void LearnedCmsEstimator::Update(const stream::StreamItem& item) {
  sketch_.Update(item.id);
}

double LearnedCmsEstimator::Estimate(const stream::StreamItem& item) const {
  return static_cast<double>(sketch_.Estimate(item.id));
}

size_t LearnedCmsEstimator::MemoryBuckets() const {
  return sketch_.TotalBuckets();
}

}  // namespace opthash::core

#ifndef OPTHASH_CORE_FREQUENCY_ESTIMATOR_H_
#define OPTHASH_CORE_FREQUENCY_ESTIMATOR_H_

#include <cstddef>

#include "common/check.h"
#include "common/span.h"
#include "stream/element.h"

namespace opthash::core {

/// \brief Common interface of every streaming frequency estimator in the
/// library (opt-hash, count-min, heavy-hitter/LCMS, count-sketch).
///
/// The contract mirrors the streaming model of §1: Update must be O(1)-ish
/// per arrival (single pass, fixed order) and Estimate answers point count
/// queries at any time. Memory is reported in *buckets*, the paper's §7.4
/// accounting unit of 4 bytes.
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Processes one stream arrival.
  virtual void Update(const stream::StreamItem& item) = 0;

  /// Estimated frequency of the element.
  virtual double Estimate(const stream::StreamItem& item) const = 0;

  /// Batched point queries: out[i] = Estimate(items[i]). The read-side
  /// analogue of UpdateBatch — serving answers millions of lookups, and
  /// the batch form lets implementations amortize per-call overhead,
  /// batch their table probes cache-friendly, and reuse scratch instead
  /// of allocating per query. This default is a plain loop so external
  /// implementations keep compiling (and keep the exact scalar
  /// semantics); every estimator in this library overrides it.
  /// items.size() must equal out.size(); an empty batch is a no-op.
  virtual void EstimateBatch(Span<const stream::StreamItem> items,
                             Span<double> out) const {
    OPTHASH_CHECK_EQ(items.size(), out.size());
    for (size_t i = 0; i < items.size(); ++i) out[i] = Estimate(items[i]);
  }

  /// Memory footprint in 4-byte buckets (stored IDs count as one bucket,
  /// LCMS unique buckets as two; see DESIGN.md §4).
  virtual size_t MemoryBuckets() const = 0;

  virtual const char* Name() const = 0;

  /// Memory footprint in KB (b = m*10^3/4 per the paper).
  double MemoryKb() const {
    return static_cast<double>(MemoryBuckets()) * 4.0 / 1000.0;
  }
};

}  // namespace opthash::core

#endif  // OPTHASH_CORE_FREQUENCY_ESTIMATOR_H_

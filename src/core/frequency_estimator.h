#ifndef OPTHASH_CORE_FREQUENCY_ESTIMATOR_H_
#define OPTHASH_CORE_FREQUENCY_ESTIMATOR_H_

#include <cstddef>
#include "stream/element.h"

namespace opthash::core {

/// \brief Common interface of every streaming frequency estimator in the
/// library (opt-hash, count-min, heavy-hitter/LCMS, count-sketch).
///
/// The contract mirrors the streaming model of §1: Update must be O(1)-ish
/// per arrival (single pass, fixed order) and Estimate answers point count
/// queries at any time. Memory is reported in *buckets*, the paper's §7.4
/// accounting unit of 4 bytes.
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Processes one stream arrival.
  virtual void Update(const stream::StreamItem& item) = 0;

  /// Estimated frequency of the element.
  virtual double Estimate(const stream::StreamItem& item) const = 0;

  /// Memory footprint in 4-byte buckets (stored IDs count as one bucket,
  /// LCMS unique buckets as two; see DESIGN.md §4).
  virtual size_t MemoryBuckets() const = 0;

  virtual const char* Name() const = 0;

  /// Memory footprint in KB (b = m*10^3/4 per the paper).
  double MemoryKb() const {
    return static_cast<double>(MemoryBuckets()) * 4.0 / 1000.0;
  }
};

}  // namespace opthash::core

#endif  // OPTHASH_CORE_FREQUENCY_ESTIMATOR_H_

#ifndef OPTHASH_CORE_ADAPTIVE_ESTIMATOR_H_
#define OPTHASH_CORE_ADAPTIVE_ESTIMATOR_H_

#include <vector>

#include "core/opt_hash_estimator.h"
#include "hashing/bloom_filter.h"

namespace opthash::core {

/// \brief Options for the adaptive counting extension (§5.3).
struct AdaptiveConfig {
  /// Target false-positive rate of the Bloom filter at its expected load.
  double bloom_fpr = 0.01;
  /// Expected number of distinct elements the filter will hold over the
  /// stream's lifetime (sizing input).
  size_t expected_distinct = 100000;
  uint64_t seed = 5;
};

/// \brief The adaptive counting extension of opt-hash (§5.3 / Fig. 9d).
///
/// Unlike the static estimator — which tracks only elements stored in the
/// learned hash table — the adaptive estimator routes *every* arrival to a
/// bucket (hash table for stored IDs, classifier otherwise), always
/// increments the bucket's aggregate frequency phi_j, and uses a Bloom
/// filter over element IDs to decide whether the arrival is a new distinct
/// element, in which case the bucket's element count c_j also grows.
/// Count queries return (phi_j / c_j) * BF(u): elements never seen get 0.
///
/// Bloom false positives mark unseen elements as seen, so c_j undercounts
/// and the estimator systematically *over*estimates — the bias direction
/// the paper derives (and that the test suite verifies).
class AdaptiveOptHashEstimator : public FrequencyEstimator {
 public:
  /// \param base        a trained static estimator whose scheme is adopted
  /// \param config      Bloom filter sizing
  /// \param prefix_ids  all distinct element IDs observed in the prefix
  ///                    (U0) — they seed the Bloom filter.
  AdaptiveOptHashEstimator(OptHashEstimator base, const AdaptiveConfig& config,
                           const std::vector<uint64_t>& prefix_ids);

  void Update(const stream::StreamItem& item) override;
  double Estimate(const stream::StreamItem& item) const override;

  /// Batched point queries: shares the base estimator's two-pass routing
  /// (table probes + one batched classifier call), then gathers from the
  /// adaptive counters gated by the Bloom filter. Element-wise identical
  /// to a loop of Estimate; allocation-free in steady state.
  void EstimateBatch(Span<const stream::StreamItem> items,
                     Span<double> out) const override;

  size_t MemoryBuckets() const override;
  const char* Name() const override { return "opt-hash-adaptive"; }

  const hashing::BloomFilter& bloom() const { return bloom_; }
  const OptHashEstimator& base() const { return base_; }

 private:
  OptHashEstimator base_;
  hashing::BloomFilter bloom_;
  std::vector<double> bucket_freq_;   // phi_j (adaptive copies).
  std::vector<double> bucket_count_;  // c_j.
};

}  // namespace opthash::core

#endif  // OPTHASH_CORE_ADAPTIVE_ESTIMATOR_H_

#ifndef OPTHASH_CORE_BASELINE_ESTIMATORS_H_
#define OPTHASH_CORE_BASELINE_ESTIMATORS_H_

#include <vector>

#include "common/status.h"
#include "core/frequency_estimator.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"

namespace opthash::core {

/// \brief `count-min` baseline adapter: a CMS with width total_buckets/d.
class CountMinEstimator : public FrequencyEstimator {
 public:
  CountMinEstimator(size_t total_buckets, size_t depth, uint64_t seed,
                    bool conservative_update = false);

  void Update(const stream::StreamItem& item) override;
  double Estimate(const stream::StreamItem& item) const override;

  /// Batched queries through CountMinSketch::EstimateBatch (level-major
  /// counter walk) in fixed-size stack chunks; allocation-free.
  void EstimateBatch(Span<const stream::StreamItem> items,
                     Span<double> out) const override;

  size_t MemoryBuckets() const override;
  const char* Name() const override { return "count-min"; }

  const sketch::CountMinSketch& sketch() const { return sketch_; }

 private:
  sketch::CountMinSketch sketch_;
};

/// \brief `count-sketch` adapter (second conventional baseline).
class CountSketchEstimator : public FrequencyEstimator {
 public:
  CountSketchEstimator(size_t total_buckets, size_t depth, uint64_t seed);

  void Update(const stream::StreamItem& item) override;
  double Estimate(const stream::StreamItem& item) const override;

  /// Batched queries through CountSketch::EstimateNonNegativeBatch in
  /// fixed-size stack chunks; allocation-free.
  void EstimateBatch(Span<const stream::StreamItem> items,
                     Span<double> out) const override;

  size_t MemoryBuckets() const override;
  const char* Name() const override { return "count-sketch"; }

 private:
  sketch::CountSketch sketch_;
};

/// \brief `heavy-hitter` (LCMS with an ideal oracle) adapter.
class LearnedCmsEstimator : public FrequencyEstimator {
 public:
  static Result<LearnedCmsEstimator> Create(
      size_t total_buckets, size_t depth,
      const std::vector<uint64_t>& heavy_keys, uint64_t seed);

  void Update(const stream::StreamItem& item) override;
  double Estimate(const stream::StreamItem& item) const override;

  /// Batched queries through LearnedCountMinSketch::EstimateBatch
  /// (heavy-table probes + level-major remainder) in fixed-size stack
  /// chunks; allocation-free.
  void EstimateBatch(Span<const stream::StreamItem> items,
                     Span<double> out) const override;

  size_t MemoryBuckets() const override;
  const char* Name() const override { return "heavy-hitter"; }

 private:
  explicit LearnedCmsEstimator(sketch::LearnedCountMinSketch sketch);

  sketch::LearnedCountMinSketch sketch_;
};

}  // namespace opthash::core

#endif  // OPTHASH_CORE_BASELINE_ESTIMATORS_H_

#ifndef OPTHASH_CORE_OPT_HASH_ESTIMATOR_H_
#define OPTHASH_CORE_OPT_HASH_ESTIMATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "core/frequency_estimator.h"
#include "io/bytes.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "opt/bcd.h"
#include "opt/dp.h"
#include "opt/exact.h"

namespace opthash::core {

/// \brief Which optimization algorithm learns the hashing scheme (§4).
enum class SolverKind {
  kBcd,    // Algorithm 1 (block coordinate descent).
  kDp,     // §4.4 dynamic programming (lambda = 1).
  kExact,  // Branch-and-bound (the paper's `milp` role).
};

/// \brief Which classifier hashes unseen elements (§5.2).
enum class ClassifierKind {
  kNone,  // Unseen elements estimate 0 (hash-table-only mode).
  kLogisticRegression,
  kCart,
  kRandomForest,
};

const char* SolverKindName(SolverKind kind);
const char* ClassifierKindName(ClassifierKind kind);

/// \brief One element observed in the stream prefix S0: the training input
/// of the two-phase learning procedure (§3).
struct PrefixElement {
  uint64_t id = 0;
  double frequency = 0.0;          // f0_u, occurrences within S0.
  std::vector<double> features;    // x_u.
};

/// \brief Full configuration of the opt-hash estimator.
struct OptHashConfig {
  /// Overall memory budget b_total in 4-byte buckets. Split between b
  /// aggregation buckets and n stored element IDs via §7.3's ratio c = b/n:
  /// n = b_total/(1+c), b = b_total - n.
  size_t total_buckets = 256;
  /// The ratio c (the paper examines c in {0.03, 0.3}).
  double id_ratio = 0.3;
  /// Objective trade-off lambda (§4.1); the real-data experiments use 1.
  double lambda = 1.0;

  SolverKind solver = SolverKind::kBcd;
  opt::BcdConfig bcd;
  opt::DpConfig dp;
  opt::ExactConfig exact;

  ClassifierKind classifier = ClassifierKind::kRandomForest;
  ml::LogisticRegressionConfig logreg;
  ml::DecisionTreeConfig cart;
  ml::RandomForestConfig rf;

  /// Seed for prefix subsampling.
  uint64_t seed = 1;

  Status Validate() const;
};

/// \brief Diagnostics captured while training an OptHashEstimator.
struct OptHashTrainingInfo {
  size_t num_prefix_elements = 0;   // Distinct elements offered.
  size_t num_sampled_elements = 0;  // n: elements whose IDs are stored.
  size_t num_buckets = 0;           // b.
  opt::SolveResult solve_result;    // Learned-scheme optimization outcome.
  double classifier_train_seconds = 0.0;
  double total_train_seconds = 0.0;
};

/// \brief Reusable scratch for the batched query path (two-pass
/// route-then-gather, see OptHashEstimator::EstimateBatch). One workspace
/// per querying thread; every call rewrites the contents, and after a
/// warm-up call with the largest block size the workspace never
/// heap-allocates again.
struct OptHashQueryWorkspace {
  std::vector<int32_t> buckets;  // Routed bucket per item (-1 = untracked).
  std::vector<size_t> pending;   // Item indices routed to the classifier.
  ml::Matrix features;           // Gathered feature rows of pending items.
  std::vector<int> predictions;  // Classifier output for pending items.
};

/// \brief The paper's proposed estimator (`opt-hash`).
///
/// Two-phase learning (§3): (1) the prefix elements — subsampled with
/// probability proportional to frequency when the ID budget is smaller than
/// the prefix support (§7.3) — are near-optimally assigned to buckets by
/// the configured solver; (2) a classifier maps features to buckets for
/// elements that never appeared in the prefix.
///
/// Stream processing (static mode, §5 / Fig. 9c): an arrival whose ID is in
/// the learned hash table increments its bucket's aggregated frequency;
/// other arrivals are ignored. A count query returns the *average*
/// frequency phi_j / c_j of the element's bucket, located via the hash
/// table for stored IDs and via the classifier otherwise.
class OptHashEstimator : public FrequencyEstimator {
 public:
  /// Learns the hashing scheme and classifier from the observed prefix.
  static Result<OptHashEstimator> Train(
      const OptHashConfig& config, const std::vector<PrefixElement>& prefix);

  void Update(const stream::StreamItem& item) override;

  /// Shard-friendly hot path for the sharded ingestion engine
  /// (stream/sharded_ingest.h): routes a block of arrival ids through the
  /// learned table, accumulating the bucket increments into the
  /// caller-owned `bucket_deltas` (size num_buckets()) instead of the
  /// estimator's own counters. Because stream processing only *adds* to
  /// bucket frequencies through a read-only table, per-worker delta
  /// arrays merged via ApplyBucketDeltas are exactly equivalent to
  /// calling Update once per id — this is the key-partitioned/bucketed
  /// analogue of the linear sketches' replica merge.
  void AccumulateUpdates(Span<const uint64_t> ids,
                         std::vector<double>& bucket_deltas) const;

  /// Folds a delta array produced by AccumulateUpdates into the bucket
  /// counters. Fails with InvalidArgument unless deltas.size() ==
  /// num_buckets().
  Status ApplyBucketDeltas(const std::vector<double>& deltas);

  /// Scalar point query. Routes through the batch machinery with
  /// batch = 1 (thread-local workspace), so the learned path performs no
  /// heap allocation per query in steady state.
  double Estimate(const stream::StreamItem& item) const override;

  /// Batched point queries with a thread-local workspace; see the
  /// workspace overload below for the mechanics.
  void EstimateBatch(Span<const stream::StreamItem> items,
                     Span<double> out) const override;

  /// Batched point queries, two passes over the block:
  ///   1. route — every id probes the learned table back to back;
  ///      the misses' feature rows are gathered into ws.features and
  ///      classified in one PredictBatch call (RouteBatch);
  ///   2. gather — bucket counters are read back to back into out.
  /// Element-wise identical to a loop of Estimate; allocation-free once
  /// `ws` has warmed up. items.size() must equal out.size().
  void EstimateBatch(Span<const stream::StreamItem> items, Span<double> out,
                     OptHashQueryWorkspace& ws) const;

  /// Batched point queries with *lazy* featurization, for callers that
  /// derive features from query payloads on demand (io::BundleQueryEngine
  /// featurizes query text): the learned table routes every id first and
  /// `fill_features(i, row)` is invoked exactly once per id the table
  /// cannot resolve — writing that query's `feature_dim` doubles straight
  /// into the workspace's gathered feature matrix — so resolved ids never
  /// pay featurization and each table probe happens once. Without a
  /// classifier, unresolved ids estimate 0 and `fill_features` is never
  /// invoked. Answers are element-wise identical to EstimateBatch over
  /// items carrying the same features.
  template <typename FeatureFn>
  void EstimateBatchLazy(Span<const uint64_t> ids, size_t feature_dim,
                         Span<double> out, OptHashQueryWorkspace& ws,
                         FeatureFn fill_features) const {
    OPTHASH_CHECK_EQ(ids.size(), out.size());
    RouteTableOnly(ids, ws);
    if (!ws.pending.empty()) {
      ws.features.Reshape(ws.pending.size(), feature_dim);
      for (size_t p = 0; p < ws.pending.size(); ++p) {
        fill_features(ws.pending[p],
                      Span<double>(ws.features.Row(p), feature_dim));
      }
      ClassifyPendingRows(ws);
    }
    GatherEstimates(ws, out);
  }

  size_t MemoryBuckets() const override;
  const char* Name() const override { return "opt-hash"; }

  /// Bucket the item routes to: hash table first, classifier fallback;
  /// -1 when neither applies (no classifier and unseen ID).
  int32_t BucketOf(const stream::StreamItem& item) const;

  /// Pass 1 of the batched query path: fills ws.buckets (resized to
  /// items.size()) with BucketOf of every item, batching the table probes
  /// and the classifier predictions. Exposed so the adaptive extension
  /// shares the routing machinery.
  void RouteBatch(Span<const stream::StreamItem> items,
                  OptHashQueryWorkspace& ws) const;

  size_t num_buckets() const { return bucket_freq_.size(); }
  size_t num_stored_ids() const { return table_.size(); }
  const OptHashTrainingInfo& training_info() const { return training_info_; }
  const ml::Classifier* classifier() const { return classifier_.get(); }

  /// Aggregated frequency and element count of a bucket (phi_j, c_j).
  double BucketFrequency(size_t j) const { return bucket_freq_.at(j); }
  double BucketCount(size_t j) const { return bucket_count_.at(j); }

  /// The learned table (id -> bucket) — exposed for the adaptive extension
  /// and for tests.
  const std::unordered_map<uint64_t, int32_t>& table() const { return table_; }

  /// Serializes the deployed state (hash table, bucket counters, fitted
  /// classifier) as a portable text blob — train offline, ship the scheme
  /// to the stream processor, Deserialize there. Training diagnostics are
  /// not preserved.
  std::string Serialize() const;
  static Result<OptHashEstimator> Deserialize(const std::string& blob);

  /// Binary snapshot payload (docs/FORMATS.md, section type 32): bucket
  /// counter arrays and the learned table as ascending-sorted structure-
  /// of-arrays (ids then buckets) at 8-aligned payload offsets — the
  /// layout io::MappedEstimatorView binary-searches in place — followed
  /// by the classifier's length-prefixed binary payload. Bit-exact
  /// round-trip of doubles (the text path goes through decimal).
  /// Must start at an 8-aligned writer offset (a fresh ByteWriter does);
  /// snapshot sections always satisfy this on disk.
  void SerializeBinary(io::ByteWriter& out) const;

  /// Rebuilds an estimator from a SerializeBinary payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes, bucket
  /// indices out of range, or a malformed embedded classifier. Training
  /// diagnostics are not preserved (same contract as the text path).
  static Result<OptHashEstimator> DeserializeBinary(io::ByteReader& in);

 private:
  OptHashEstimator() = default;

  // Shared stages of the batched query paths (see EstimateBatch docs).
  // RouteTableOnly probes the table for every id, recording classifier
  // candidates in ws.pending (only when a classifier exists);
  // ClassifyPendingRows expects ws.features filled with one row per
  // pending index and resolves them through one PredictBatch call;
  // GatherEstimates turns ws.buckets into bucket-average answers.
  void RouteTableOnly(Span<const uint64_t> ids,
                      OptHashQueryWorkspace& ws) const;
  void ClassifyPendingRows(OptHashQueryWorkspace& ws) const;
  void GatherEstimates(const OptHashQueryWorkspace& ws,
                       Span<double> out) const;

  std::unordered_map<uint64_t, int32_t> table_;
  std::vector<double> bucket_freq_;   // phi_j
  std::vector<double> bucket_count_;  // c_j
  std::unique_ptr<ml::Classifier> classifier_;
  ClassifierKind classifier_kind_ = ClassifierKind::kNone;
  OptHashTrainingInfo training_info_;
};

}  // namespace opthash::core

#endif  // OPTHASH_CORE_OPT_HASH_ESTIMATOR_H_

#include "core/adaptive_estimator.h"

#include "common/check.h"

namespace opthash::core {

AdaptiveOptHashEstimator::AdaptiveOptHashEstimator(
    OptHashEstimator base, const AdaptiveConfig& config,
    const std::vector<uint64_t>& prefix_ids)
    : base_(std::move(base)),
      bloom_(hashing::BloomFilter::ForExpectedInsertions(
          std::max<size_t>(config.expected_distinct, 1), config.bloom_fpr,
          config.seed)) {
  const size_t b = base_.num_buckets();
  bucket_freq_.resize(b);
  bucket_count_.resize(b);
  for (size_t j = 0; j < b; ++j) {
    bucket_freq_[j] = base_.BucketFrequency(j);
    bucket_count_[j] = base_.BucketCount(j);
  }
  // Step 3 (§5.3): all prefix elements start out marked as seen.
  for (uint64_t id : prefix_ids) bloom_.Add(id);
}

void AdaptiveOptHashEstimator::Update(const stream::StreamItem& item) {
  const int32_t bucket = base_.BucketOf(item);
  if (bucket < 0) return;  // No classifier and unseen ID: untrackable.
  const auto j = static_cast<size_t>(bucket);
  bucket_freq_[j] += 1.0;
  if (!bloom_.MayContain(item.id)) {
    bucket_count_[j] += 1.0;
    bloom_.Add(item.id);
  }
}

double AdaptiveOptHashEstimator::Estimate(
    const stream::StreamItem& item) const {
  // f~ = (phi_j / c_j) * BF(u).
  if (!bloom_.MayContain(item.id)) return 0.0;
  const int32_t bucket = base_.BucketOf(item);
  if (bucket < 0) return 0.0;
  const auto j = static_cast<size_t>(bucket);
  if (bucket_count_[j] <= 0.0) return 0.0;
  return bucket_freq_[j] / bucket_count_[j];
}

void AdaptiveOptHashEstimator::EstimateBatch(
    Span<const stream::StreamItem> items, Span<double> out) const {
  OPTHASH_CHECK_EQ(items.size(), out.size());
  thread_local OptHashQueryWorkspace workspace;
  thread_local std::vector<stream::StreamItem> filtered;
  thread_local std::vector<uint8_t> may_contain;
  // Bloom prefilter, mirroring the scalar short-circuit: a Bloom-negative
  // item answers 0 no matter where it would route, so strip its features
  // before routing and the classifier never runs for it (the residual
  // table probe is cheap and keeps the routing code shared).
  filtered.resize(items.size());
  may_contain.resize(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    may_contain[i] = bloom_.MayContain(items[i].id) ? 1 : 0;
    filtered[i] = may_contain[i] != 0
                      ? items[i]
                      : stream::StreamItem{items[i].id, nullptr};
  }
  base_.RouteBatch(
      Span<const stream::StreamItem>(filtered.data(), filtered.size()),
      workspace);
  for (size_t i = 0; i < items.size(); ++i) {
    const int32_t bucket = workspace.buckets[i];
    if (may_contain[i] == 0 || bucket < 0) {
      out[i] = 0.0;
      continue;
    }
    const auto j = static_cast<size_t>(bucket);
    out[i] = bucket_count_[j] <= 0.0 ? 0.0 : bucket_freq_[j] / bucket_count_[j];
  }
}

size_t AdaptiveOptHashEstimator::MemoryBuckets() const {
  // Base scheme plus the Bloom filter's bit array (4 bytes per bucket).
  return base_.MemoryBuckets() + (bloom_.MemoryBytes() + 3) / 4;
}

}  // namespace opthash::core

#ifndef OPTHASH_CORE_ORACLE_CMS_H_
#define OPTHASH_CORE_ORACLE_CMS_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/frequency_estimator.h"
#include "core/opt_hash_estimator.h"
#include "ml/dataset.h"
#include "sketch/count_min_sketch.h"

namespace opthash::core {

/// \brief A *realizable* Learned Count-Min Sketch (Hsu et al., ref [8]) —
/// the variant the paper's ideal `heavy-hitter` baseline upper-bounds.
///
/// Instead of being handed the true heavy-hitter IDs in hindsight, this
/// estimator consults a caller-provided oracle predicate on each arrival's
/// *features*. Elements the oracle flags claim one of `heavy_capacity`
/// unique buckets (exact counting, 2 memory units each, first-come
/// first-served); everything else flows into a standard CMS occupying the
/// remaining budget. This is exactly the architecture of ref [8]'s Fig. 1
/// with a pluggable learned oracle.
class OracleLearnedCms : public FrequencyEstimator {
 public:
  using Oracle = std::function<bool(const stream::StreamItem&)>;

  /// \param total_buckets  memory budget (4-byte buckets)
  /// \param depth          CMS depth for the non-heavy remainder
  /// \param heavy_capacity max unique buckets (each costs 2 budget units);
  ///                       must satisfy 2*heavy_capacity < total_buckets
  static Result<OracleLearnedCms> Create(size_t total_buckets, size_t depth,
                                         size_t heavy_capacity, Oracle oracle,
                                         uint64_t seed);

  void Update(const stream::StreamItem& item) override;
  double Estimate(const stream::StreamItem& item) const override;
  size_t MemoryBuckets() const override;
  const char* Name() const override { return "heavy-hitter-learned"; }

  size_t heavy_in_use() const { return heavy_counts_.size(); }
  size_t heavy_capacity() const { return heavy_capacity_; }

 private:
  OracleLearnedCms(size_t total_buckets, size_t heavy_capacity, Oracle oracle,
                   sketch::CountMinSketch remainder);

  size_t total_buckets_;
  size_t heavy_capacity_;
  Oracle oracle_;
  std::unordered_map<uint64_t, uint64_t> heavy_counts_;
  sketch::CountMinSketch remainder_;
};

/// \brief A trained heavy-hitter oracle: classifier + the feature
/// convention to apply it (ref [8]'s footnote: "identify the heavy-hitters
/// by first predicting the element frequencies ... then selecting ... the
/// optimal cutoff threshold"; their experiments predict top-1%).
struct HeavyHitterOracle {
  std::unique_ptr<ml::Classifier> classifier;  // Binary: 1 = heavy.
  double train_accuracy = 0.0;
  double frequency_cutoff = 0.0;  // Prefix frequency at the top-fraction.

  /// Adapts the classifier into an OracleLearnedCms::Oracle. Elements
  /// without features are treated as non-heavy.
  OracleLearnedCms::Oracle AsPredicate() const;
};

/// \brief Trains a binary heavy/not-heavy classifier on prefix elements:
/// the top `top_fraction` of elements by frequency are labelled heavy.
Result<HeavyHitterOracle> TrainHeavyHitterOracle(
    const std::vector<PrefixElement>& prefix, double top_fraction,
    uint64_t seed);

}  // namespace opthash::core

#endif  // OPTHASH_CORE_ORACLE_CMS_H_

#include "core/evaluation.h"

#include <cmath>

#include "common/check.h"

namespace opthash::core {

ErrorMetrics EvaluateEstimator(const FrequencyEstimator& estimator,
                               const std::vector<EvalQuery>& queries) {
  ErrorMetrics metrics;
  metrics.num_queries = queries.size();
  if (queries.empty()) return metrics;

  double absolute_total = 0.0;
  double weighted_total = 0.0;
  double frequency_total = 0.0;
  for (const EvalQuery& query : queries) {
    const double estimate = estimator.Estimate(query.item);
    const double error = std::abs(query.true_frequency - estimate);
    absolute_total += error;
    weighted_total += query.true_frequency * error;
    frequency_total += query.true_frequency;
  }
  metrics.average_absolute_error =
      absolute_total / static_cast<double>(queries.size());
  metrics.expected_magnitude_error =
      frequency_total > 0.0 ? weighted_total / frequency_total : 0.0;
  return metrics;
}

}  // namespace opthash::core

#include "core/opt_hash_estimator.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "common/random.h"
#include "common/timer.h"
#include "sketch/kernels/kernels.h"

namespace opthash::core {

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBcd:
      return "bcd";
    case SolverKind::kDp:
      return "dp";
    case SolverKind::kExact:
      return "milp";
  }
  return "unknown";
}

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kNone:
      return "none";
    case ClassifierKind::kLogisticRegression:
      return "logreg";
    case ClassifierKind::kCart:
      return "cart";
    case ClassifierKind::kRandomForest:
      return "rf";
  }
  return "unknown";
}

Status OptHashConfig::Validate() const {
  if (total_buckets < 2) {
    return Status::InvalidArgument("total_buckets must be >= 2");
  }
  if (id_ratio <= 0.0) {
    return Status::InvalidArgument("id_ratio (c) must be positive");
  }
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  return Status::OK();
}

Result<OptHashEstimator> OptHashEstimator::Train(
    const OptHashConfig& config, const std::vector<PrefixElement>& prefix) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  if (prefix.empty()) {
    return Status::InvalidArgument("prefix must contain at least one element");
  }
  Timer total_timer;

  // Memory split (§7.3): n stored IDs, b = b_total - n buckets.
  const auto id_budget = static_cast<size_t>(
      std::floor(static_cast<double>(config.total_buckets) /
                 (1.0 + config.id_ratio)));
  if (id_budget < 1 || id_budget >= config.total_buckets) {
    return Status::InvalidArgument(
        "id_ratio leaves no room for buckets or no room for IDs");
  }
  const size_t num_buckets = config.total_buckets - id_budget;

  // Subsample the prefix support when it exceeds the ID budget, with
  // probability proportional to observed frequency (§7.3).
  std::vector<size_t> chosen;
  if (prefix.size() > id_budget) {
    std::vector<double> weights(prefix.size());
    for (size_t i = 0; i < prefix.size(); ++i) {
      weights[i] = prefix[i].frequency;
    }
    Rng rng(config.seed);
    chosen = WeightedSampleWithoutReplacement(weights, id_budget, rng);
    std::sort(chosen.begin(), chosen.end());
  } else {
    chosen.resize(prefix.size());
    for (size_t i = 0; i < prefix.size(); ++i) chosen[i] = i;
  }

  // Build the optimization instance over the sampled elements.
  opt::HashingProblem problem;
  problem.num_buckets = num_buckets;
  problem.lambda = config.lambda;
  problem.frequencies.reserve(chosen.size());
  const bool have_features = !prefix.front().features.empty();
  if (have_features) problem.features.reserve(chosen.size());
  for (size_t index : chosen) {
    problem.frequencies.push_back(prefix[index].frequency);
    if (have_features) problem.features.push_back(prefix[index].features);
  }
  if (config.lambda < 1.0 && !have_features) {
    return Status::InvalidArgument(
        "lambda < 1 requires element features in the prefix");
  }

  opt::SolveResult solved;
  switch (config.solver) {
    case SolverKind::kBcd: {
      opt::BcdSolver solver(config.bcd);
      solved = solver.Solve(problem);
      break;
    }
    case SolverKind::kDp: {
      opt::DpSolver solver(config.dp);
      solved = solver.Solve(problem);
      break;
    }
    case SolverKind::kExact: {
      opt::ExactSolver solver(config.exact);
      solved = solver.Solve(problem);
      break;
    }
  }

  OptHashEstimator estimator;
  estimator.bucket_freq_.assign(num_buckets, 0.0);
  estimator.bucket_count_.assign(num_buckets, 0.0);
  estimator.table_.reserve(chosen.size());
  for (size_t t = 0; t < chosen.size(); ++t) {
    const PrefixElement& element = prefix[chosen[t]];
    const auto bucket = static_cast<size_t>(solved.assignment[t]);
    estimator.table_.emplace(element.id, solved.assignment[t]);
    estimator.bucket_freq_[bucket] += element.frequency;
    estimator.bucket_count_[bucket] += 1.0;
  }

  // Phase 2 (§5.2): classifier mapping features to learned buckets.
  Timer classifier_timer;
  if (config.classifier != ClassifierKind::kNone && have_features) {
    ml::Dataset train(prefix.front().features.size());
    for (size_t t = 0; t < chosen.size(); ++t) {
      train.Add(prefix[chosen[t]].features,
                static_cast<int>(solved.assignment[t]));
    }
    switch (config.classifier) {
      case ClassifierKind::kLogisticRegression:
        estimator.classifier_ =
            std::make_unique<ml::LogisticRegression>(config.logreg);
        break;
      case ClassifierKind::kCart:
        estimator.classifier_ = std::make_unique<ml::DecisionTree>(config.cart);
        break;
      case ClassifierKind::kRandomForest:
        estimator.classifier_ = std::make_unique<ml::RandomForest>(config.rf);
        break;
      case ClassifierKind::kNone:
        break;
    }
    if (estimator.classifier_ != nullptr) {
      estimator.classifier_->Fit(train);
      estimator.classifier_kind_ = config.classifier;
    }
  }

  estimator.training_info_.num_prefix_elements = prefix.size();
  estimator.training_info_.num_sampled_elements = chosen.size();
  estimator.training_info_.num_buckets = num_buckets;
  estimator.training_info_.classifier_train_seconds =
      classifier_timer.ElapsedSeconds();
  estimator.training_info_.solve_result = std::move(solved);
  estimator.training_info_.total_train_seconds = total_timer.ElapsedSeconds();
  return estimator;
}

int32_t OptHashEstimator::BucketOf(const stream::StreamItem& item) const {
  auto it = table_.find(item.id);
  if (it != table_.end()) return it->second;
  if (classifier_ != nullptr && item.features != nullptr) {
    const int bucket = classifier_->Predict(*item.features);
    OPTHASH_CHECK_GE(bucket, 0);
    OPTHASH_CHECK_LT(static_cast<size_t>(bucket), bucket_freq_.size());
    return bucket;
  }
  return -1;
}

void OptHashEstimator::Update(const stream::StreamItem& item) {
  // Static mode (Fig. 9c): only elements stored in the learned hash table
  // are tracked during stream processing.
  auto it = table_.find(item.id);
  if (it == table_.end()) return;
  bucket_freq_[static_cast<size_t>(it->second)] += 1.0;
}

void OptHashEstimator::AccumulateUpdates(
    Span<const uint64_t> ids, std::vector<double>& bucket_deltas) const {
  OPTHASH_CHECK_EQ(bucket_deltas.size(), bucket_freq_.size());
  for (uint64_t id : ids) {
    auto it = table_.find(id);
    if (it == table_.end()) continue;
    bucket_deltas[static_cast<size_t>(it->second)] += 1.0;
  }
}

Status OptHashEstimator::ApplyBucketDeltas(const std::vector<double>& deltas) {
  if (deltas.size() != bucket_freq_.size()) {
    return Status::InvalidArgument(
        "bucket delta array size does not match num_buckets()");
  }
  for (size_t j = 0; j < deltas.size(); ++j) {
    bucket_freq_[j] += deltas[j];
  }
  return Status::OK();
}

void OptHashEstimator::RouteTableOnly(Span<const uint64_t> ids,
                                      OptHashQueryWorkspace& ws) const {
  ws.buckets.resize(ids.size());
  ws.pending.clear();
  const bool can_classify = classifier_ != nullptr;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto it = table_.find(ids[i]);
    if (it != table_.end()) {
      ws.buckets[i] = it->second;
    } else {
      ws.buckets[i] = -1;
      if (can_classify) ws.pending.push_back(i);
    }
  }
}

void OptHashEstimator::ClassifyPendingRows(OptHashQueryWorkspace& ws) const {
  // One batch call resolves every pending row — the classifier amortizes
  // its per-call overhead and scratch across the block.
  ws.predictions.resize(ws.pending.size());
  classifier_->PredictBatch(ws.features,
                            Span<int>(ws.predictions.data(),
                                      ws.predictions.size()));
  for (size_t p = 0; p < ws.pending.size(); ++p) {
    const int bucket = ws.predictions[p];
    OPTHASH_CHECK_GE(bucket, 0);
    OPTHASH_CHECK_LT(static_cast<size_t>(bucket), bucket_freq_.size());
    ws.buckets[ws.pending[p]] = bucket;
  }
}

void OptHashEstimator::GatherEstimates(const OptHashQueryWorkspace& ws,
                                       Span<double> out) const {
  // Pass 2: the bucket counter reads run back to back, with the kernel
  // layer's read-prefetch issued a fixed distance ahead so bucket-array
  // misses overlap instead of serializing.
  constexpr size_t kPrefetchDistance = 16;
  for (size_t i = 0; i < out.size(); ++i) {
    if (i + kPrefetchDistance < out.size()) {
      const int32_t ahead = ws.buckets[i + kPrefetchDistance];
      if (ahead >= 0) {
        sketch::kernels::PrefetchRead(bucket_count_.data() + ahead);
        sketch::kernels::PrefetchRead(bucket_freq_.data() + ahead);
      }
    }
    const int32_t bucket = ws.buckets[i];
    if (bucket < 0) {
      out[i] = 0.0;
      continue;
    }
    const auto j = static_cast<size_t>(bucket);
    out[i] = bucket_count_[j] <= 0.0 ? 0.0 : bucket_freq_[j] / bucket_count_[j];
  }
}

void OptHashEstimator::RouteBatch(Span<const stream::StreamItem> items,
                                  OptHashQueryWorkspace& ws) const {
  ws.buckets.resize(items.size());
  ws.pending.clear();
  // Pass 1a: the learned-table probes run back to back; classifier
  // candidates are only recorded, not predicted yet. Featureless misses
  // stay -1 — there is nothing to classify them with.
  for (size_t i = 0; i < items.size(); ++i) {
    auto it = table_.find(items[i].id);
    if (it != table_.end()) {
      ws.buckets[i] = it->second;
    } else if (classifier_ != nullptr && items[i].features != nullptr) {
      ws.buckets[i] = -1;
      ws.pending.push_back(i);
    } else {
      ws.buckets[i] = -1;
    }
  }
  if (ws.pending.empty()) return;
  // Pass 1b: gather the pending feature rows into one matrix (Reshape
  // leaves cells unspecified; every used row is fully copied here).
  const size_t dim = items[ws.pending.front()].features->size();
  ws.features.Reshape(ws.pending.size(), dim);
  for (size_t p = 0; p < ws.pending.size(); ++p) {
    const std::vector<double>& row = *items[ws.pending[p]].features;
    OPTHASH_CHECK_EQ(row.size(), dim);
    std::copy(row.begin(), row.end(), ws.features.Row(p));
  }
  ClassifyPendingRows(ws);
}

void OptHashEstimator::EstimateBatch(Span<const stream::StreamItem> items,
                                     Span<double> out,
                                     OptHashQueryWorkspace& ws) const {
  OPTHASH_CHECK_EQ(items.size(), out.size());
  RouteBatch(items, ws);
  GatherEstimates(ws, out);
}

namespace {
// Per-thread workspace of the workspace-free entry points. Thread-local
// (not per-estimator) so const queries stay thread-safe and the scalar
// Estimate override is allocation-free in steady state.
OptHashQueryWorkspace& ThreadQueryWorkspace() {
  thread_local OptHashQueryWorkspace workspace;
  return workspace;
}
}  // namespace

void OptHashEstimator::EstimateBatch(Span<const stream::StreamItem> items,
                                     Span<double> out) const {
  EstimateBatch(items, out, ThreadQueryWorkspace());
}

double OptHashEstimator::Estimate(const stream::StreamItem& item) const {
  double estimate = 0.0;
  EstimateBatch(Span<const stream::StreamItem>(&item, 1),
                Span<double>(&estimate, 1), ThreadQueryWorkspace());
  return estimate;
}

size_t OptHashEstimator::MemoryBuckets() const {
  // b buckets plus one bucket per stored ID (§7.3: "just storing their IDs
  // would require 200,000 buckets").
  return bucket_freq_.size() + table_.size();
}

namespace {
constexpr const char* kEstimatorMagic = "opthash.estimator.v1";
}  // namespace

std::string OptHashEstimator::Serialize() const {
  std::ostringstream out;
  out << kEstimatorMagic << ' ' << bucket_freq_.size() << ' ' << table_.size()
      << ' ' << ClassifierKindName(classifier_kind_) << '\n';
  out << std::setprecision(17);
  for (double phi : bucket_freq_) out << phi << ' ';
  out << '\n';
  for (double c : bucket_count_) out << c << ' ';
  out << '\n';
  // Table entries in sorted-id order so the blob is deterministic.
  std::vector<std::pair<uint64_t, int32_t>> entries(table_.begin(),
                                                    table_.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [id, bucket] : entries) {
    out << id << ' ' << bucket << '\n';
  }
  if (classifier_ != nullptr) {
    switch (classifier_kind_) {
      case ClassifierKind::kLogisticRegression:
        static_cast<const ml::LogisticRegression*>(classifier_.get())
            ->SerializeTo(out);
        break;
      case ClassifierKind::kCart:
        static_cast<const ml::DecisionTree*>(classifier_.get())
            ->SerializeTo(out);
        break;
      case ClassifierKind::kRandomForest:
        static_cast<const ml::RandomForest*>(classifier_.get())
            ->SerializeTo(out);
        break;
      case ClassifierKind::kNone:
        break;
    }
  }
  return out.str();
}

Result<OptHashEstimator> OptHashEstimator::Deserialize(
    const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  size_t num_buckets = 0;
  size_t table_size = 0;
  std::string classifier_name;
  if (!(in >> magic >> num_buckets >> table_size >> classifier_name)) {
    return Status::InvalidArgument("truncated estimator header");
  }
  if (magic != kEstimatorMagic) {
    return Status::InvalidArgument("bad estimator magic: " + magic);
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("estimator needs at least one bucket");
  }
  OptHashEstimator estimator;
  estimator.bucket_freq_.resize(num_buckets);
  estimator.bucket_count_.resize(num_buckets);
  for (double& phi : estimator.bucket_freq_) {
    if (!(in >> phi)) {
      return Status::InvalidArgument("truncated bucket frequencies");
    }
  }
  for (double& c : estimator.bucket_count_) {
    if (!(in >> c)) return Status::InvalidArgument("truncated bucket counts");
  }
  estimator.table_.reserve(table_size);
  for (size_t t = 0; t < table_size; ++t) {
    uint64_t id = 0;
    int32_t bucket = 0;
    if (!(in >> id >> bucket)) {
      return Status::InvalidArgument("truncated table entries");
    }
    if (bucket < 0 || static_cast<size_t>(bucket) >= num_buckets) {
      return Status::InvalidArgument("table bucket out of range");
    }
    estimator.table_.emplace(id, bucket);
  }

  if (classifier_name == ClassifierKindName(ClassifierKind::kNone)) {
    estimator.classifier_kind_ = ClassifierKind::kNone;
  } else if (classifier_name ==
             ClassifierKindName(ClassifierKind::kLogisticRegression)) {
    auto model = ml::LogisticRegression::DeserializeFrom(in);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::LogisticRegression>(std::move(model).value());
    estimator.classifier_kind_ = ClassifierKind::kLogisticRegression;
  } else if (classifier_name == ClassifierKindName(ClassifierKind::kCart)) {
    auto model = ml::DecisionTree::DeserializeFrom(in);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::DecisionTree>(std::move(model).value());
    estimator.classifier_kind_ = ClassifierKind::kCart;
  } else if (classifier_name ==
             ClassifierKindName(ClassifierKind::kRandomForest)) {
    auto model = ml::RandomForest::DeserializeFrom(in);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::RandomForest>(std::move(model).value());
    estimator.classifier_kind_ = ClassifierKind::kRandomForest;
  } else {
    return Status::InvalidArgument("unknown classifier kind: " +
                                   classifier_name);
  }

  estimator.training_info_.num_sampled_elements = table_size;
  estimator.training_info_.num_buckets = num_buckets;
  return estimator;
}

namespace {
constexpr uint32_t kEstimatorPayloadVersion = 1;
}  // namespace

void OptHashEstimator::SerializeBinary(io::ByteWriter& out) const {
  out.WriteU32(kEstimatorPayloadVersion);
  out.WriteU32(static_cast<uint32_t>(classifier_kind_));
  out.WriteU64(bucket_freq_.size());
  out.WriteU64(table_.size());
  out.WriteDoubleArray(bucket_freq_);
  out.WriteDoubleArray(bucket_count_);
  // Structure-of-arrays table in ascending id order: deterministic bytes,
  // and the mapped view can binary-search the id column in place.
  std::vector<std::pair<uint64_t, int32_t>> entries(table_.begin(),
                                                    table_.end());
  std::sort(entries.begin(), entries.end());
  std::vector<uint64_t> ids;
  std::vector<int32_t> buckets;
  ids.reserve(entries.size());
  buckets.reserve(entries.size());
  for (const auto& [id, bucket] : entries) {
    ids.push_back(id);
    buckets.push_back(bucket);
  }
  out.WriteU64Array(ids);
  out.WriteI32Array(buckets);
  out.AlignTo(8);
  io::ByteWriter classifier;
  if (classifier_ != nullptr) {
    switch (classifier_kind_) {
      case ClassifierKind::kLogisticRegression:
        static_cast<const ml::LogisticRegression*>(classifier_.get())
            ->SerializeBinary(classifier);
        break;
      case ClassifierKind::kCart:
        static_cast<const ml::DecisionTree*>(classifier_.get())
            ->SerializeBinary(classifier);
        break;
      case ClassifierKind::kRandomForest:
        static_cast<const ml::RandomForest*>(classifier_.get())
            ->SerializeBinary(classifier);
        break;
      case ClassifierKind::kNone:
        break;
    }
  }
  out.WriteU64(classifier.size());
  out.WriteBytes(classifier.bytes().data(), classifier.size());
}

Result<OptHashEstimator> OptHashEstimator::DeserializeBinary(
    io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kEstimatorPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported estimator payload version " + std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(kind_raw, in.ReadU32());
  if (kind_raw > static_cast<uint32_t>(ClassifierKind::kRandomForest)) {
    return Status::InvalidArgument("unknown classifier kind " +
                                   std::to_string(kind_raw));
  }
  const auto kind = static_cast<ClassifierKind>(kind_raw);
  OPTHASH_IO_ASSIGN(num_buckets, in.ReadU64());
  OPTHASH_IO_ASSIGN(table_size, in.ReadU64());
  if (num_buckets == 0) {
    return Status::InvalidArgument("estimator needs at least one bucket");
  }
  if (num_buckets > in.remaining() / (2 * sizeof(double))) {
    return Status::InvalidArgument("estimator bucket count exceeds payload");
  }
  OptHashEstimator estimator;
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadDoubleArray(estimator.bucket_freq_, num_buckets));
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadDoubleArray(estimator.bucket_count_, num_buckets));
  std::vector<uint64_t> ids;
  std::vector<int32_t> buckets;
  OPTHASH_IO_RETURN_IF_ERROR(in.ReadU64Array(ids, table_size));
  OPTHASH_IO_RETURN_IF_ERROR(in.ReadI32Array(buckets, table_size));
  OPTHASH_IO_RETURN_IF_ERROR(in.AlignTo(8));
  estimator.table_.reserve(table_size);
  for (size_t t = 0; t < table_size; ++t) {
    if (t > 0 && ids[t] <= ids[t - 1]) {
      return Status::InvalidArgument("table ids must be strictly ascending");
    }
    if (buckets[t] < 0 || static_cast<uint64_t>(buckets[t]) >= num_buckets) {
      return Status::InvalidArgument("table bucket out of range");
    }
    estimator.table_.emplace(ids[t], buckets[t]);
  }
  OPTHASH_IO_ASSIGN(classifier_size, in.ReadU64());
  auto blob = in.ReadSpan(classifier_size);
  if (!blob.ok()) return blob.status();
  io::ByteReader classifier(blob.value());
  if (kind == ClassifierKind::kNone) {
    if (classifier_size != 0) {
      return Status::InvalidArgument(
          "classifier payload present without a classifier");
    }
  } else if (kind == ClassifierKind::kLogisticRegression) {
    auto model = ml::LogisticRegression::DeserializeBinary(classifier);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::LogisticRegression>(std::move(model).value());
  } else if (kind == ClassifierKind::kCart) {
    auto model = ml::DecisionTree::DeserializeBinary(classifier);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::DecisionTree>(std::move(model).value());
  } else {
    auto model = ml::RandomForest::DeserializeBinary(classifier);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::RandomForest>(std::move(model).value());
  }
  if (kind != ClassifierKind::kNone) {
    OPTHASH_IO_RETURN_IF_ERROR(classifier.ExpectFullyConsumed());
  }
  estimator.classifier_kind_ = kind;
  estimator.training_info_.num_sampled_elements = table_size;
  estimator.training_info_.num_buckets = num_buckets;
  return estimator;
}

}  // namespace opthash::core

#include "core/opt_hash_estimator.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "common/random.h"
#include "common/timer.h"

namespace opthash::core {

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBcd:
      return "bcd";
    case SolverKind::kDp:
      return "dp";
    case SolverKind::kExact:
      return "milp";
  }
  return "unknown";
}

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kNone:
      return "none";
    case ClassifierKind::kLogisticRegression:
      return "logreg";
    case ClassifierKind::kCart:
      return "cart";
    case ClassifierKind::kRandomForest:
      return "rf";
  }
  return "unknown";
}

Status OptHashConfig::Validate() const {
  if (total_buckets < 2) {
    return Status::InvalidArgument("total_buckets must be >= 2");
  }
  if (id_ratio <= 0.0) {
    return Status::InvalidArgument("id_ratio (c) must be positive");
  }
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  return Status::OK();
}

Result<OptHashEstimator> OptHashEstimator::Train(
    const OptHashConfig& config, const std::vector<PrefixElement>& prefix) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  if (prefix.empty()) {
    return Status::InvalidArgument("prefix must contain at least one element");
  }
  Timer total_timer;

  // Memory split (§7.3): n stored IDs, b = b_total - n buckets.
  const auto id_budget = static_cast<size_t>(
      std::floor(static_cast<double>(config.total_buckets) /
                 (1.0 + config.id_ratio)));
  if (id_budget < 1 || id_budget >= config.total_buckets) {
    return Status::InvalidArgument(
        "id_ratio leaves no room for buckets or no room for IDs");
  }
  const size_t num_buckets = config.total_buckets - id_budget;

  // Subsample the prefix support when it exceeds the ID budget, with
  // probability proportional to observed frequency (§7.3).
  std::vector<size_t> chosen;
  if (prefix.size() > id_budget) {
    std::vector<double> weights(prefix.size());
    for (size_t i = 0; i < prefix.size(); ++i) {
      weights[i] = prefix[i].frequency;
    }
    Rng rng(config.seed);
    chosen = WeightedSampleWithoutReplacement(weights, id_budget, rng);
    std::sort(chosen.begin(), chosen.end());
  } else {
    chosen.resize(prefix.size());
    for (size_t i = 0; i < prefix.size(); ++i) chosen[i] = i;
  }

  // Build the optimization instance over the sampled elements.
  opt::HashingProblem problem;
  problem.num_buckets = num_buckets;
  problem.lambda = config.lambda;
  problem.frequencies.reserve(chosen.size());
  const bool have_features = !prefix.front().features.empty();
  if (have_features) problem.features.reserve(chosen.size());
  for (size_t index : chosen) {
    problem.frequencies.push_back(prefix[index].frequency);
    if (have_features) problem.features.push_back(prefix[index].features);
  }
  if (config.lambda < 1.0 && !have_features) {
    return Status::InvalidArgument(
        "lambda < 1 requires element features in the prefix");
  }

  opt::SolveResult solved;
  switch (config.solver) {
    case SolverKind::kBcd: {
      opt::BcdSolver solver(config.bcd);
      solved = solver.Solve(problem);
      break;
    }
    case SolverKind::kDp: {
      opt::DpSolver solver(config.dp);
      solved = solver.Solve(problem);
      break;
    }
    case SolverKind::kExact: {
      opt::ExactSolver solver(config.exact);
      solved = solver.Solve(problem);
      break;
    }
  }

  OptHashEstimator estimator;
  estimator.bucket_freq_.assign(num_buckets, 0.0);
  estimator.bucket_count_.assign(num_buckets, 0.0);
  estimator.table_.reserve(chosen.size());
  for (size_t t = 0; t < chosen.size(); ++t) {
    const PrefixElement& element = prefix[chosen[t]];
    const auto bucket = static_cast<size_t>(solved.assignment[t]);
    estimator.table_.emplace(element.id, solved.assignment[t]);
    estimator.bucket_freq_[bucket] += element.frequency;
    estimator.bucket_count_[bucket] += 1.0;
  }

  // Phase 2 (§5.2): classifier mapping features to learned buckets.
  Timer classifier_timer;
  if (config.classifier != ClassifierKind::kNone && have_features) {
    ml::Dataset train(prefix.front().features.size());
    for (size_t t = 0; t < chosen.size(); ++t) {
      train.Add(prefix[chosen[t]].features,
                static_cast<int>(solved.assignment[t]));
    }
    switch (config.classifier) {
      case ClassifierKind::kLogisticRegression:
        estimator.classifier_ =
            std::make_unique<ml::LogisticRegression>(config.logreg);
        break;
      case ClassifierKind::kCart:
        estimator.classifier_ = std::make_unique<ml::DecisionTree>(config.cart);
        break;
      case ClassifierKind::kRandomForest:
        estimator.classifier_ = std::make_unique<ml::RandomForest>(config.rf);
        break;
      case ClassifierKind::kNone:
        break;
    }
    if (estimator.classifier_ != nullptr) {
      estimator.classifier_->Fit(train);
      estimator.classifier_kind_ = config.classifier;
    }
  }

  estimator.training_info_.num_prefix_elements = prefix.size();
  estimator.training_info_.num_sampled_elements = chosen.size();
  estimator.training_info_.num_buckets = num_buckets;
  estimator.training_info_.classifier_train_seconds =
      classifier_timer.ElapsedSeconds();
  estimator.training_info_.solve_result = std::move(solved);
  estimator.training_info_.total_train_seconds = total_timer.ElapsedSeconds();
  return estimator;
}

int32_t OptHashEstimator::BucketOf(const stream::StreamItem& item) const {
  auto it = table_.find(item.id);
  if (it != table_.end()) return it->second;
  if (classifier_ != nullptr && item.features != nullptr) {
    const int bucket = classifier_->Predict(*item.features);
    OPTHASH_CHECK_GE(bucket, 0);
    OPTHASH_CHECK_LT(static_cast<size_t>(bucket), bucket_freq_.size());
    return bucket;
  }
  return -1;
}

void OptHashEstimator::Update(const stream::StreamItem& item) {
  // Static mode (Fig. 9c): only elements stored in the learned hash table
  // are tracked during stream processing.
  auto it = table_.find(item.id);
  if (it == table_.end()) return;
  bucket_freq_[static_cast<size_t>(it->second)] += 1.0;
}

void OptHashEstimator::AccumulateUpdates(
    Span<const uint64_t> ids, std::vector<double>& bucket_deltas) const {
  OPTHASH_CHECK_EQ(bucket_deltas.size(), bucket_freq_.size());
  for (uint64_t id : ids) {
    auto it = table_.find(id);
    if (it == table_.end()) continue;
    bucket_deltas[static_cast<size_t>(it->second)] += 1.0;
  }
}

Status OptHashEstimator::ApplyBucketDeltas(const std::vector<double>& deltas) {
  if (deltas.size() != bucket_freq_.size()) {
    return Status::InvalidArgument(
        "bucket delta array size does not match num_buckets()");
  }
  for (size_t j = 0; j < deltas.size(); ++j) {
    bucket_freq_[j] += deltas[j];
  }
  return Status::OK();
}

double OptHashEstimator::Estimate(const stream::StreamItem& item) const {
  const int32_t bucket = BucketOf(item);
  if (bucket < 0) return 0.0;
  const auto j = static_cast<size_t>(bucket);
  if (bucket_count_[j] <= 0.0) return 0.0;
  return bucket_freq_[j] / bucket_count_[j];
}

size_t OptHashEstimator::MemoryBuckets() const {
  // b buckets plus one bucket per stored ID (§7.3: "just storing their IDs
  // would require 200,000 buckets").
  return bucket_freq_.size() + table_.size();
}

namespace {
constexpr const char* kEstimatorMagic = "opthash.estimator.v1";
}  // namespace

std::string OptHashEstimator::Serialize() const {
  std::ostringstream out;
  out << kEstimatorMagic << ' ' << bucket_freq_.size() << ' ' << table_.size()
      << ' ' << ClassifierKindName(classifier_kind_) << '\n';
  out << std::setprecision(17);
  for (double phi : bucket_freq_) out << phi << ' ';
  out << '\n';
  for (double c : bucket_count_) out << c << ' ';
  out << '\n';
  // Table entries in sorted-id order so the blob is deterministic.
  std::vector<std::pair<uint64_t, int32_t>> entries(table_.begin(),
                                                    table_.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [id, bucket] : entries) {
    out << id << ' ' << bucket << '\n';
  }
  if (classifier_ != nullptr) {
    switch (classifier_kind_) {
      case ClassifierKind::kLogisticRegression:
        static_cast<const ml::LogisticRegression*>(classifier_.get())
            ->SerializeTo(out);
        break;
      case ClassifierKind::kCart:
        static_cast<const ml::DecisionTree*>(classifier_.get())
            ->SerializeTo(out);
        break;
      case ClassifierKind::kRandomForest:
        static_cast<const ml::RandomForest*>(classifier_.get())
            ->SerializeTo(out);
        break;
      case ClassifierKind::kNone:
        break;
    }
  }
  return out.str();
}

Result<OptHashEstimator> OptHashEstimator::Deserialize(
    const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  size_t num_buckets = 0;
  size_t table_size = 0;
  std::string classifier_name;
  if (!(in >> magic >> num_buckets >> table_size >> classifier_name)) {
    return Status::InvalidArgument("truncated estimator header");
  }
  if (magic != kEstimatorMagic) {
    return Status::InvalidArgument("bad estimator magic: " + magic);
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("estimator needs at least one bucket");
  }
  OptHashEstimator estimator;
  estimator.bucket_freq_.resize(num_buckets);
  estimator.bucket_count_.resize(num_buckets);
  for (double& phi : estimator.bucket_freq_) {
    if (!(in >> phi)) {
      return Status::InvalidArgument("truncated bucket frequencies");
    }
  }
  for (double& c : estimator.bucket_count_) {
    if (!(in >> c)) return Status::InvalidArgument("truncated bucket counts");
  }
  estimator.table_.reserve(table_size);
  for (size_t t = 0; t < table_size; ++t) {
    uint64_t id = 0;
    int32_t bucket = 0;
    if (!(in >> id >> bucket)) {
      return Status::InvalidArgument("truncated table entries");
    }
    if (bucket < 0 || static_cast<size_t>(bucket) >= num_buckets) {
      return Status::InvalidArgument("table bucket out of range");
    }
    estimator.table_.emplace(id, bucket);
  }

  if (classifier_name == ClassifierKindName(ClassifierKind::kNone)) {
    estimator.classifier_kind_ = ClassifierKind::kNone;
  } else if (classifier_name ==
             ClassifierKindName(ClassifierKind::kLogisticRegression)) {
    auto model = ml::LogisticRegression::DeserializeFrom(in);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::LogisticRegression>(std::move(model).value());
    estimator.classifier_kind_ = ClassifierKind::kLogisticRegression;
  } else if (classifier_name == ClassifierKindName(ClassifierKind::kCart)) {
    auto model = ml::DecisionTree::DeserializeFrom(in);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::DecisionTree>(std::move(model).value());
    estimator.classifier_kind_ = ClassifierKind::kCart;
  } else if (classifier_name ==
             ClassifierKindName(ClassifierKind::kRandomForest)) {
    auto model = ml::RandomForest::DeserializeFrom(in);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::RandomForest>(std::move(model).value());
    estimator.classifier_kind_ = ClassifierKind::kRandomForest;
  } else {
    return Status::InvalidArgument("unknown classifier kind: " +
                                   classifier_name);
  }

  estimator.training_info_.num_sampled_elements = table_size;
  estimator.training_info_.num_buckets = num_buckets;
  return estimator;
}

namespace {
constexpr uint32_t kEstimatorPayloadVersion = 1;
}  // namespace

void OptHashEstimator::SerializeBinary(io::ByteWriter& out) const {
  out.WriteU32(kEstimatorPayloadVersion);
  out.WriteU32(static_cast<uint32_t>(classifier_kind_));
  out.WriteU64(bucket_freq_.size());
  out.WriteU64(table_.size());
  out.WriteDoubleArray(bucket_freq_);
  out.WriteDoubleArray(bucket_count_);
  // Structure-of-arrays table in ascending id order: deterministic bytes,
  // and the mapped view can binary-search the id column in place.
  std::vector<std::pair<uint64_t, int32_t>> entries(table_.begin(),
                                                    table_.end());
  std::sort(entries.begin(), entries.end());
  std::vector<uint64_t> ids;
  std::vector<int32_t> buckets;
  ids.reserve(entries.size());
  buckets.reserve(entries.size());
  for (const auto& [id, bucket] : entries) {
    ids.push_back(id);
    buckets.push_back(bucket);
  }
  out.WriteU64Array(ids);
  out.WriteI32Array(buckets);
  out.AlignTo(8);
  io::ByteWriter classifier;
  if (classifier_ != nullptr) {
    switch (classifier_kind_) {
      case ClassifierKind::kLogisticRegression:
        static_cast<const ml::LogisticRegression*>(classifier_.get())
            ->SerializeBinary(classifier);
        break;
      case ClassifierKind::kCart:
        static_cast<const ml::DecisionTree*>(classifier_.get())
            ->SerializeBinary(classifier);
        break;
      case ClassifierKind::kRandomForest:
        static_cast<const ml::RandomForest*>(classifier_.get())
            ->SerializeBinary(classifier);
        break;
      case ClassifierKind::kNone:
        break;
    }
  }
  out.WriteU64(classifier.size());
  out.WriteBytes(classifier.bytes().data(), classifier.size());
}

Result<OptHashEstimator> OptHashEstimator::DeserializeBinary(
    io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kEstimatorPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported estimator payload version " + std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(kind_raw, in.ReadU32());
  if (kind_raw > static_cast<uint32_t>(ClassifierKind::kRandomForest)) {
    return Status::InvalidArgument("unknown classifier kind " +
                                   std::to_string(kind_raw));
  }
  const auto kind = static_cast<ClassifierKind>(kind_raw);
  OPTHASH_IO_ASSIGN(num_buckets, in.ReadU64());
  OPTHASH_IO_ASSIGN(table_size, in.ReadU64());
  if (num_buckets == 0) {
    return Status::InvalidArgument("estimator needs at least one bucket");
  }
  if (num_buckets > in.remaining() / (2 * sizeof(double))) {
    return Status::InvalidArgument("estimator bucket count exceeds payload");
  }
  OptHashEstimator estimator;
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadDoubleArray(estimator.bucket_freq_, num_buckets));
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadDoubleArray(estimator.bucket_count_, num_buckets));
  std::vector<uint64_t> ids;
  std::vector<int32_t> buckets;
  OPTHASH_IO_RETURN_IF_ERROR(in.ReadU64Array(ids, table_size));
  OPTHASH_IO_RETURN_IF_ERROR(in.ReadI32Array(buckets, table_size));
  OPTHASH_IO_RETURN_IF_ERROR(in.AlignTo(8));
  estimator.table_.reserve(table_size);
  for (size_t t = 0; t < table_size; ++t) {
    if (t > 0 && ids[t] <= ids[t - 1]) {
      return Status::InvalidArgument("table ids must be strictly ascending");
    }
    if (buckets[t] < 0 || static_cast<uint64_t>(buckets[t]) >= num_buckets) {
      return Status::InvalidArgument("table bucket out of range");
    }
    estimator.table_.emplace(ids[t], buckets[t]);
  }
  OPTHASH_IO_ASSIGN(classifier_size, in.ReadU64());
  auto blob = in.ReadSpan(classifier_size);
  if (!blob.ok()) return blob.status();
  io::ByteReader classifier(blob.value());
  if (kind == ClassifierKind::kNone) {
    if (classifier_size != 0) {
      return Status::InvalidArgument(
          "classifier payload present without a classifier");
    }
  } else if (kind == ClassifierKind::kLogisticRegression) {
    auto model = ml::LogisticRegression::DeserializeBinary(classifier);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::LogisticRegression>(std::move(model).value());
  } else if (kind == ClassifierKind::kCart) {
    auto model = ml::DecisionTree::DeserializeBinary(classifier);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::DecisionTree>(std::move(model).value());
  } else {
    auto model = ml::RandomForest::DeserializeBinary(classifier);
    if (!model.ok()) return model.status();
    estimator.classifier_ =
        std::make_unique<ml::RandomForest>(std::move(model).value());
  }
  if (kind != ClassifierKind::kNone) {
    OPTHASH_IO_RETURN_IF_ERROR(classifier.ExpectFullyConsumed());
  }
  estimator.classifier_kind_ = kind;
  estimator.training_info_.num_sampled_elements = table_size;
  estimator.training_info_.num_buckets = num_buckets;
  return estimator;
}

}  // namespace opthash::core

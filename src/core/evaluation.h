#ifndef OPTHASH_CORE_EVALUATION_H_
#define OPTHASH_CORE_EVALUATION_H_

#include <cstddef>
#include <vector>

#include "core/frequency_estimator.h"
#include "stream/element.h"

namespace opthash::core {

/// \brief The two error metrics of §7.4.
struct ErrorMetrics {
  /// Average (per element) absolute error:  (1/|U|) Σ_u |f_u - f~_u|.
  double average_absolute_error = 0.0;
  /// Expected magnitude of the absolute error:
  ///   (1/Σ f_u) Σ_u f_u · |f_u - f~_u|  — weighs elements by frequency.
  double expected_magnitude_error = 0.0;
  size_t num_queries = 0;
};

/// \brief One query for evaluation: the element plus its true frequency.
struct EvalQuery {
  stream::StreamItem item;
  double true_frequency = 0.0;
};

/// \brief Scores an estimator on a query set under both §7.4 metrics.
ErrorMetrics EvaluateEstimator(const FrequencyEstimator& estimator,
                               const std::vector<EvalQuery>& queries);

}  // namespace opthash::core

#endif  // OPTHASH_CORE_EVALUATION_H_

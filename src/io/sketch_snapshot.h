#ifndef OPTHASH_IO_SKETCH_SNAPSHOT_H_
#define OPTHASH_IO_SKETCH_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hashing/hash_functions.h"
#include "io/bytes.h"
#include "io/snapshot.h"
#include "sketch/ams_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/kernels/kernels.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"

namespace opthash::io {

/// Maps each sketch type to its stable on-disk section id (docs/FORMATS.md).
template <typename Sketch>
struct SectionTypeOf;
template <>
struct SectionTypeOf<sketch::CountMinSketch> {
  static constexpr SectionType value = SectionType::kCountMinSketch;
};
template <>
struct SectionTypeOf<sketch::CountSketch> {
  static constexpr SectionType value = SectionType::kCountSketch;
};
template <>
struct SectionTypeOf<sketch::AmsSketch> {
  static constexpr SectionType value = SectionType::kAmsSketch;
};
template <>
struct SectionTypeOf<sketch::LearnedCountMinSketch> {
  static constexpr SectionType value = SectionType::kLearnedCountMin;
};
template <>
struct SectionTypeOf<sketch::MisraGries> {
  static constexpr SectionType value = SectionType::kMisraGries;
};
template <>
struct SectionTypeOf<sketch::SpaceSaving> {
  static constexpr SectionType value = SectionType::kSpaceSaving;
};

/// Checkpoints one sketch as a single-section snapshot container — the
/// mid-stream durability primitive: serialize, fsync-free atomic-enough
/// write, resume later with LoadSketchSnapshot and keep ingesting.
/// Works for all six sketch types.
template <typename Sketch>
Status SaveSketchSnapshot(const std::string& path, const Sketch& sketch) {
  ByteWriter payload;
  sketch.Serialize(payload);
  SnapshotWriter writer;
  writer.AddSection(SectionTypeOf<Sketch>::value, payload.TakeBytes());
  return writer.WriteToFile(path);
}

/// Restores a sketch checkpointed by SaveSketchSnapshot. Full CRC
/// verification; fails with a clean Status on a missing/mismatched
/// section, corruption, or trailing bytes.
template <typename Sketch>
Result<Sketch> LoadSketchSnapshot(const std::string& path) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();
  const SnapshotSection* section =
      reader.value().view().Find(SectionTypeOf<Sketch>::value);
  if (section == nullptr) {
    return Status::InvalidArgument(
        path + " holds no " +
        SectionTypeName(SectionTypeOf<Sketch>::value) + " section");
  }
  ByteReader in(section->payload);
  auto sketch = Sketch::Deserialize(in);
  if (!sketch.ok()) return sketch.status();
  OPTHASH_IO_RETURN_IF_ERROR(in.ExpectFullyConsumed());
  return sketch;
}

/// Section types present in a snapshot file, in file order — lets callers
/// (the CLI `restore` verb) dispatch without knowing what was saved.
Result<std::vector<SectionType>> ListSnapshotSections(
    const std::string& path);

/// True when the section type has a zero-copy mapped serving view
/// (`restore --mmap`): count-min checkpoints (MappedCountMinView) and
/// model-bundle estimator sections (MappedEstimatorView). Every other
/// sketch kind must be deserialized fully — callers that were asked for
/// mmap should say so explicitly and report the mode they actually used
/// instead of silently downgrading.
bool MmapServingSupported(SectionType type);

/// \brief Zero-copy point-query view over a count-min snapshot.
///
/// Open mmaps the file, validates header + section table (payload CRC only
/// when `verify_crc` — checking it would fault in every counter page,
/// which is exactly what a hot restart wants to avoid), redraws the level
/// hashes from the stored seed, and then answers Estimate straight from
/// the mapped counter array: no allocation proportional to the sketch and
/// no memcpy of counters. Pages fault in lazily as queries touch them.
///
/// The view owns its mapping (move-only); estimates are byte-identical to
/// a fully deserialized CountMinSketch. Use this for read-mostly serving;
/// to keep ingesting, load a mutable sketch with LoadSketchSnapshot.
class MappedCountMinView {
 public:
  static Result<MappedCountMinView> Open(const std::string& path,
                                         bool verify_crc = false);

  /// Point query: min over levels, identical to CountMinSketch::Estimate
  /// on the snapshotted state.
  uint64_t Estimate(uint64_t key) const;

  /// Batched point queries: out[i] = Estimate(keys[i]), allocation-free.
  /// Level-major over the mapped counter rows, mirroring
  /// CountMinSketch::EstimateBatch (and touching each mapped page run
  /// once per block). keys.size() must equal out.size().
  void EstimateBatch(Span<const uint64_t> keys, Span<uint64_t> out) const;

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  uint64_t total_count() const { return total_count_; }
  bool conservative_update() const { return conservative_update_; }

 private:
  MappedCountMinView() = default;

  MappedSnapshot snapshot_;
  const uint8_t* counters_ = nullptr;  // Into the mapping; 8-aligned.
  size_t width_ = 0;
  size_t depth_ = 0;
  uint64_t seed_ = 0;
  uint64_t total_count_ = 0;
  bool conservative_update_ = false;
  std::vector<hashing::LinearHash> hashes_;
  // Kernel constants mirroring hashes_, so batched queries over the
  // mapped rows run through the dispatched SIMD tiers (the payload's
  // 8-byte alignment satisfies the kernel contract).
  std::vector<sketch::kernels::HashKernelParams> kernel_params_;
};

}  // namespace opthash::io

#endif  // OPTHASH_IO_SKETCH_SNAPSHOT_H_

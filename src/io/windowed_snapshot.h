#ifndef OPTHASH_IO_WINDOWED_SNAPSHOT_H_
#define OPTHASH_IO_WINDOWED_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "io/bytes.h"
#include "io/sketch_snapshot.h"
#include "io/snapshot.h"
#include "sketch/windowed_sketch.h"

namespace opthash::io {

/// Byte layout of the kWindowedSketch section payload (docs/FORMATS.md):
///   u8  payload version (currently 1)
///   u32 inner section type (the sub-sketch kind, SectionTypeOf<Sketch>)
///   u32 number of windows W
///   u32 head slot index
///   u64 window_items (0 = tick-only advance)
///   u64 window_sequence
///   f64 decay
///   W x { u64 arrival count, u64 payload length, inner Serialize bytes }
/// Slots are stored in storage order so restore resumes mid-window with
/// the ring position intact.
inline constexpr uint8_t kWindowedSketchPayloadVersion = 1;

/// Sanity cap on W when reading untrusted files: generous for any real
/// deployment, small enough that a hostile count cannot balloon memory.
inline constexpr uint32_t kMaxWindowsInSnapshot = 1u << 20;

/// The sub-sketch kind stored inside a kWindowedSketch payload — the
/// restore-time dispatch probe (cheap: reads the fixed prefix only).
Result<SectionType> PeekWindowedInnerType(Span<const uint8_t> payload);

/// PeekWindowedInnerType for a snapshot file on disk; fails with a
/// readable Status when the file has no windowed-sketch section.
Result<SectionType> WindowedInnerTypeOfFile(const std::string& path);

template <typename Sketch>
void SerializeWindowedSketch(const sketch::WindowedSketch<Sketch>& windowed,
                             ByteWriter& out) {
  out.WriteU8(kWindowedSketchPayloadVersion);
  out.WriteU32(static_cast<uint32_t>(SectionTypeOf<Sketch>::value));
  out.WriteU32(static_cast<uint32_t>(windowed.num_windows()));
  out.WriteU32(static_cast<uint32_t>(windowed.head()));
  out.WriteU64(windowed.window_items());
  out.WriteU64(windowed.window_sequence());
  out.WriteDouble(windowed.decay());
  for (size_t slot = 0; slot < windowed.num_windows(); ++slot) {
    out.WriteU64(windowed.WindowCountAt(slot));
    ByteWriter inner;
    windowed.WindowAt(slot).Serialize(inner);
    const std::vector<uint8_t> inner_bytes = inner.TakeBytes();
    out.WriteU64(inner_bytes.size());
    out.WriteBytes(inner_bytes.data(), inner_bytes.size());
  }
}

template <typename Sketch>
Result<sketch::WindowedSketch<Sketch>> DeserializeWindowedSketch(
    ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU8());
  if (version != kWindowedSketchPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported windowed-sketch payload version " +
        std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(inner_type, in.ReadU32());
  if (inner_type != static_cast<uint32_t>(SectionTypeOf<Sketch>::value)) {
    return Status::InvalidArgument(
        std::string("windowed payload stores ") +
        SectionTypeName(static_cast<SectionType>(inner_type)) +
        " sub-sketches, not " +
        SectionTypeName(SectionTypeOf<Sketch>::value));
  }
  OPTHASH_IO_ASSIGN(num_windows, in.ReadU32());
  OPTHASH_IO_ASSIGN(head, in.ReadU32());
  OPTHASH_IO_ASSIGN(window_items, in.ReadU64());
  OPTHASH_IO_ASSIGN(window_sequence, in.ReadU64());
  OPTHASH_IO_ASSIGN(decay, in.ReadDouble());
  if (num_windows == 0 || num_windows > kMaxWindowsInSnapshot) {
    return Status::InvalidArgument(
        "windowed payload declares " + std::to_string(num_windows) +
        " windows (valid: 1.." + std::to_string(kMaxWindowsInSnapshot) + ")");
  }
  std::vector<Sketch> windows;
  std::vector<uint64_t> counts;
  windows.reserve(num_windows);
  counts.reserve(num_windows);
  for (uint32_t slot = 0; slot < num_windows; ++slot) {
    OPTHASH_IO_ASSIGN(count, in.ReadU64());
    OPTHASH_IO_ASSIGN(payload_len, in.ReadU64());
    if (payload_len > in.remaining()) {
      return Status::InvalidArgument(
          "windowed payload truncated: window " + std::to_string(slot) +
          " declares " + std::to_string(payload_len) + " bytes with " +
          std::to_string(in.remaining()) + " remaining");
    }
    OPTHASH_IO_ASSIGN(payload,
                      in.ReadSpan(static_cast<size_t>(payload_len)));
    ByteReader window_reader(payload);
    auto window = Sketch::Deserialize(window_reader);
    if (!window.ok()) return window.status();
    OPTHASH_IO_RETURN_IF_ERROR(window_reader.ExpectFullyConsumed());
    windows.push_back(std::move(window).value());
    counts.push_back(count);
  }
  return sketch::WindowedSketch<Sketch>::FromParts(
      std::move(windows), std::move(counts), head, window_items,
      window_sequence, decay);
}

/// Checkpoints a windowed ring as a single kWindowedSketch-section
/// snapshot container — the windowed sibling of SaveSketchSnapshot.
template <typename Sketch>
Status SaveWindowedSketchSnapshot(
    const std::string& path, const sketch::WindowedSketch<Sketch>& windowed) {
  ByteWriter payload;
  SerializeWindowedSketch(windowed, payload);
  SnapshotWriter writer;
  writer.AddSection(SectionType::kWindowedSketch, payload.TakeBytes());
  return writer.WriteToFile(path);
}

/// Restores a ring checkpointed by SaveWindowedSketchSnapshot; the caller
/// picks the Sketch type after probing with WindowedInnerTypeOfFile.
template <typename Sketch>
Result<sketch::WindowedSketch<Sketch>> LoadWindowedSketchSnapshot(
    const std::string& path) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();
  const SnapshotSection* section =
      reader.value().view().Find(SectionType::kWindowedSketch);
  if (section == nullptr) {
    return Status::InvalidArgument(
        path + " holds no " +
        SectionTypeName(SectionType::kWindowedSketch) + " section");
  }
  ByteReader in(section->payload);
  auto windowed = DeserializeWindowedSketch<Sketch>(in);
  if (!windowed.ok()) return windowed.status();
  OPTHASH_IO_RETURN_IF_ERROR(in.ExpectFullyConsumed());
  return windowed;
}

}  // namespace opthash::io

#endif  // OPTHASH_IO_WINDOWED_SNAPSHOT_H_

#include "io/model_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "io/bytes.h"

namespace opthash::io {

namespace {
constexpr const char* kTextBundleMagic = "opthash.bundle.v1";

// Byte offsets inside the estimator payload (docs/FORMATS.md §3.7).
constexpr size_t kEstimatorHeaderBytes = 24;
constexpr size_t kEstimatorBucketsOffset = 8;
constexpr size_t kEstimatorTableOffset = 16;
}  // namespace

const char* SnapshotFormatName(SnapshotFormat format) {
  return format == SnapshotFormat::kBinary ? "binary" : "text";
}

Result<SnapshotFormat> ParseSnapshotFormat(const std::string& name) {
  if (name == "text") return SnapshotFormat::kText;
  if (name == "binary") return SnapshotFormat::kBinary;
  return Status::InvalidArgument("unknown format (want text|binary): " +
                                 name);
}

Status SaveModelBundle(const std::string& path, const ModelBundle& bundle,
                       SnapshotFormat format) {
  OPTHASH_CHECK_MSG(bundle.estimator.has_value(),
                    "SaveModelBundle without a trained estimator");
  if (format == SnapshotFormat::kText) {
    std::ostringstream out;
    out << kTextBundleMagic << '\n';
    bundle.featurizer.SerializeTo(out);
    out << bundle.estimator->Serialize();
    // Write-then-rename, matching SnapshotWriter::WriteToFile: the
    // common `apply --model m --out m` cycle must never destroy the
    // previous good model on a crash or full disk.
    const std::string tmp = path + ".tmp";
    {
      std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
      if (!file) return Status::InvalidArgument("cannot write: " + tmp);
      file << out.str();
      file.flush();
      if (!file.good()) {
        std::remove(tmp.c_str());
        return Status::Internal("short write to " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::Internal("cannot rename " + tmp + " over " + path);
    }
    return Status::OK();
  }
  ByteWriter featurizer;
  bundle.featurizer.SerializeBinary(featurizer);
  ByteWriter estimator;
  bundle.estimator->SerializeBinary(estimator);
  SnapshotWriter writer;
  writer.AddSection(SectionType::kFeaturizer, featurizer.TakeBytes());
  writer.AddSection(SectionType::kOptHashEstimator, estimator.TakeBytes());
  return writer.WriteToFile(path);
}

Result<SnapshotFormat> DetectFileFormat(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot read: " + path);
  char magic[sizeof(kSnapshotMagic)] = {};
  file.read(magic, sizeof(magic));
  if (file.gcount() >= static_cast<std::streamsize>(sizeof(magic)) &&
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0) {
    return SnapshotFormat::kBinary;
  }
  const std::string text_magic(kTextBundleMagic);
  if (std::string(magic, static_cast<size_t>(file.gcount())) ==
      text_magic.substr(0, sizeof(magic))) {
    return SnapshotFormat::kText;
  }
  return Status::InvalidArgument("not an opthash model or snapshot: " +
                                 path);
}

namespace {

Result<ModelBundle> LoadTextBundle(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot read: " + path);
  std::string magic;
  file >> magic;
  if (magic != kTextBundleMagic) {
    return Status::InvalidArgument("not an opthash model bundle: " + path);
  }
  auto featurizer = stream::BagOfWordsFeaturizer::DeserializeFrom(file);
  if (!featurizer.ok()) return featurizer.status();
  std::stringstream rest;
  rest << file.rdbuf();
  auto estimator = core::OptHashEstimator::Deserialize(rest.str());
  if (!estimator.ok()) return estimator.status();
  ModelBundle bundle;
  bundle.featurizer = std::move(featurizer).value();
  bundle.estimator = std::move(estimator).value();
  return bundle;
}

Result<ModelBundle> LoadBinaryBundle(const std::string& path) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();
  const SnapshotView& view = reader.value().view();
  const SnapshotSection* featurizer_section =
      view.Find(SectionType::kFeaturizer);
  const SnapshotSection* estimator_section =
      view.Find(SectionType::kOptHashEstimator);
  if (featurizer_section == nullptr || estimator_section == nullptr) {
    return Status::InvalidArgument(
        path +
        " is a snapshot but not a model bundle (featurizer + "
        "estimator sections required)");
  }
  ByteReader featurizer_in(featurizer_section->payload);
  auto featurizer =
      stream::BagOfWordsFeaturizer::DeserializeBinary(featurizer_in);
  if (!featurizer.ok()) return featurizer.status();
  OPTHASH_IO_RETURN_IF_ERROR(featurizer_in.ExpectFullyConsumed());
  ByteReader estimator_in(estimator_section->payload);
  auto estimator = core::OptHashEstimator::DeserializeBinary(estimator_in);
  if (!estimator.ok()) return estimator.status();
  OPTHASH_IO_RETURN_IF_ERROR(estimator_in.ExpectFullyConsumed());
  ModelBundle bundle;
  bundle.featurizer = std::move(featurizer).value();
  bundle.estimator = std::move(estimator).value();
  return bundle;
}

}  // namespace

Result<ModelBundle> LoadModelBundle(const std::string& path) {
  auto format = DetectFileFormat(path);
  if (!format.ok()) return format.status();
  return format.value() == SnapshotFormat::kBinary ? LoadBinaryBundle(path)
                                                   : LoadTextBundle(path);
}

BundleQueryEngine::BundleQueryEngine(const ModelBundle& bundle)
    : bundle_(bundle) {
  OPTHASH_CHECK_MSG(bundle.estimator.has_value(),
                    "BundleQueryEngine needs a bundle with an estimator");
}

void BundleQueryEngine::EstimateBlock(
    Span<const stream::TraceRecord> queries, Span<double> out) {
  OPTHASH_CHECK_EQ(queries.size(), out.size());
  ids_.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) ids_[i] = queries[i].id;
  // The lazy path probes the table once per id and calls back only for
  // the misses, which featurize straight into the workspace's matrix.
  bundle_.estimator->EstimateBatchLazy(
      Span<const uint64_t>(ids_.data(), ids_.size()),
      bundle_.featurizer.FeatureDim(), out, workspace_,
      [this, &queries](size_t i, Span<double> row) {
        bundle_.featurizer.Featurize(queries[i].text, row);
      });
}

Result<MappedEstimatorView> MappedEstimatorView::Open(
    const std::string& path, bool verify_crc) {
  auto snapshot = MappedSnapshot::Open(path, verify_crc);
  if (!snapshot.ok()) return snapshot.status();
  const SnapshotSection* section =
      snapshot.value().view().Find(SectionType::kOptHashEstimator);
  if (section == nullptr) {
    return Status::InvalidArgument(path + " holds no estimator section");
  }
  const Span<const uint8_t> payload = section->payload;
  if (payload.size() < kEstimatorHeaderBytes) {
    return Status::InvalidArgument("estimator payload shorter than header");
  }
  const uint32_t version = LoadLittleU32(payload.data());
  if (version != 1) {
    return Status::InvalidArgument(
        "unsupported estimator payload version " + std::to_string(version));
  }
  const uint64_t num_buckets =
      LoadLittleU64(payload.data() + kEstimatorBucketsOffset);
  const uint64_t table_size =
      LoadLittleU64(payload.data() + kEstimatorTableOffset);
  // Fixed layout: freq[B] f64, count[B] f64, ids[T] u64, buckets[T] i32.
  const size_t body = payload.size() - kEstimatorHeaderBytes;
  if (num_buckets == 0 || num_buckets > body / (2 * sizeof(double)) ||
      table_size > (body - 2 * sizeof(double) * num_buckets) /
                       (sizeof(uint64_t) + sizeof(int32_t))) {
    return Status::InvalidArgument(
        "estimator geometry disagrees with payload size");
  }
  MappedEstimatorView view;
  view.num_buckets_ = static_cast<size_t>(num_buckets);
  view.table_size_ = static_cast<size_t>(table_size);
  const uint8_t* cursor = payload.data() + kEstimatorHeaderBytes;
  view.bucket_freq_ = cursor;
  cursor += num_buckets * sizeof(double);
  view.bucket_count_ = cursor;
  cursor += num_buckets * sizeof(double);
  view.ids_ = cursor;
  cursor += table_size * sizeof(uint64_t);
  view.buckets_ = cursor;
  view.snapshot_ = std::move(snapshot).value();
  return view;
}

int32_t MappedEstimatorView::BucketOf(uint64_t id) const {
  // Binary search over the mapped, ascending-sorted id column.
  size_t lo = 0;
  size_t hi = table_size_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t probe = LoadLittleU64(ids_ + mid * sizeof(uint64_t));
    if (probe == id) {
      return LoadLittleI32(buckets_ + mid * sizeof(int32_t));
    }
    if (probe < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return -1;
}

uint64_t MappedEstimatorView::StoredId(size_t index) const {
  return LoadLittleU64(ids_ + index * sizeof(uint64_t));
}

double MappedEstimatorView::Estimate(uint64_t id) const {
  const int32_t bucket = BucketOf(id);
  if (bucket < 0) return 0.0;
  const auto j = static_cast<size_t>(bucket);
  if (j >= num_buckets_) return 0.0;  // Corrupt entry; fail closed.
  const double count = LoadLittleDouble(bucket_count_ + j * sizeof(double));
  if (count <= 0.0) return 0.0;
  return LoadLittleDouble(bucket_freq_ + j * sizeof(double)) / count;
}

void MappedEstimatorView::EstimateBatch(Span<const uint64_t> ids,
                                        Span<double> out) const {
  OPTHASH_CHECK_EQ(ids.size(), out.size());
  constexpr size_t kChunk = 256;
  int32_t buckets[kChunk];
  for (size_t base = 0; base < ids.size(); base += kChunk) {
    const size_t chunk = std::min(kChunk, ids.size() - base);
    // Pass 1: route — the binary searches probe the mapped id column back
    // to back while its upper levels stay cached.
    for (size_t i = 0; i < chunk; ++i) {
      buckets[i] = BucketOf(ids[base + i]);
    }
    // Pass 2: gather the bucket counter reads.
    for (size_t i = 0; i < chunk; ++i) {
      const int32_t bucket = buckets[i];
      if (bucket < 0 || static_cast<size_t>(bucket) >= num_buckets_) {
        out[base + i] = 0.0;  // Untracked, or corrupt entry; fail closed.
        continue;
      }
      const auto j = static_cast<size_t>(bucket);
      const double count =
          LoadLittleDouble(bucket_count_ + j * sizeof(double));
      out[base + i] =
          count <= 0.0
              ? 0.0
              : LoadLittleDouble(bucket_freq_ + j * sizeof(double)) / count;
    }
  }
}

}  // namespace opthash::io

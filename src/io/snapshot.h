#ifndef OPTHASH_IO_SNAPSHOT_H_
#define OPTHASH_IO_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "io/bytes.h"

namespace opthash::io {

/// On-disk container identity. The full byte-level specification lives in
/// docs/FORMATS.md; the constants here are the single in-code source of
/// truth for it.
inline constexpr char kSnapshotMagic[8] = {'O', 'P', 'T', 'H',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderSize = 32;
inline constexpr size_t kSectionEntrySize = 32;
inline constexpr size_t kSectionAlignment = 8;

/// \brief What a snapshot section contains. Values are stable on-disk
/// identifiers — never renumber; add new types at unused values.
enum class SectionType : uint32_t {
  kCountMinSketch = 1,
  kCountSketch = 2,
  kAmsSketch = 3,
  kLearnedCountMin = 4,
  kMisraGries = 5,
  kSpaceSaving = 6,
  kWindowedSketch = 7,
  kLogisticRegression = 16,
  kDecisionTree = 17,
  kRandomForest = 18,
  kOptHashEstimator = 32,
  kFeaturizer = 33,
};

const char* SectionTypeName(SectionType type);

/// \brief Assembles a versioned snapshot container: 32-byte header
/// (magic, version, section count, file size, CRCs), section table, then
/// 8-aligned payloads. See docs/FORMATS.md for the byte layout.
class SnapshotWriter {
 public:
  /// Appends one section; payload bytes are taken by value and owned by
  /// the writer until Finish.
  void AddSection(SectionType type, std::vector<uint8_t> payload);

  /// Serializes the container. The writer can keep accepting sections and
  /// Finish again (each call re-renders the full container).
  std::vector<uint8_t> Finish() const;

  /// Finish + atomic-ish file write (write then flush; fails with a Status
  /// on any I/O error rather than leaving a silently short file undetected
  /// — a short file also fails the reader's size check).
  Status WriteToFile(const std::string& path) const;

  size_t section_count() const { return sections_.size(); }

 private:
  struct Section {
    SectionType type;
    std::vector<uint8_t> payload;
  };
  std::vector<Section> sections_;
};

/// \brief One parsed section: its type plus a borrowed view of the payload
/// bytes inside the container buffer.
struct SnapshotSection {
  SectionType type;
  Span<const uint8_t> payload;
  uint32_t crc = 0;
};

/// \brief Parsed, validated view over snapshot container bytes the caller
/// keeps alive (an owning reader's buffer or an mmap'd file).
///
/// Parse always validates the header CRC, section-table CRC, magic,
/// version, and that every section lies inside the buffer. Payload CRCs
/// are verified when `verify_payload_crcs` is set; mapped snapshots defer
/// that (it would fault in every page) and can run VerifyPayloadCrcs()
/// explicitly.
class SnapshotView {
 public:
  static Result<SnapshotView> Parse(Span<const uint8_t> bytes,
                                    bool verify_payload_crcs);

  const std::vector<SnapshotSection>& sections() const { return sections_; }

  /// First section of `type`, or nullptr. Pointer is into this view; it
  /// lives as long as the view does.
  const SnapshotSection* Find(SectionType type) const;

  /// Checks every payload against its section-table CRC (reads all bytes).
  Status VerifyPayloadCrcs() const;

 private:
  std::vector<SnapshotSection> sections_;
};

/// \brief Reads only the header and section table of a snapshot file and
/// returns the section types in file order — the cheap "what is this
/// file?" probe. Header and table CRCs are verified; payloads are neither
/// read nor CRC-checked, so dispatching on the result (the CLI restore /
/// resume paths) costs table-size I/O instead of a full-file pass before
/// the real load.
Result<std::vector<SectionType>> PeekSectionTypes(const std::string& path);

/// \brief Owning snapshot reader: slurps the file into memory and parses
/// it with full CRC verification. The straightforward load path; use
/// MappedSnapshot for zero-copy hot restarts.
class SnapshotReader {
 public:
  static Result<SnapshotReader> Open(const std::string& path);
  static Result<SnapshotReader> FromBytes(std::vector<uint8_t> bytes);

  const SnapshotView& view() const { return view_; }

 private:
  SnapshotReader() = default;

  // Note: moving a SnapshotReader is safe because vector moves keep the
  // heap buffer (and thus the view's spans) stable.
  std::vector<uint8_t> bytes_;
  SnapshotView view_;
};

/// \brief mmap-backed snapshot: the file is mapped read-only and section
/// payloads are served directly from the page cache — no memcpy, no
/// up-front parse of counter arrays. Header and section table are always
/// validated on Open; payload CRCs only when `verify_payload_crcs` (off by
/// default: the point of the mapped path is to *not* touch every page on a
/// hot restart).
///
/// Move-only; the mapping is released on destruction. Views handed out by
/// view() are invalidated by destruction — zero-copy readers (e.g.
/// MappedCountMinView) must keep the MappedSnapshot alive.
class MappedSnapshot {
 public:
  static Result<MappedSnapshot> Open(const std::string& path,
                                     bool verify_payload_crcs = false);

  /// An empty snapshot (no mapping, no sections) — the moved-from state,
  /// also usable as a member-default before Open's result is assigned in.
  MappedSnapshot() = default;

  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;
  ~MappedSnapshot();

  const SnapshotView& view() const { return view_; }
  size_t file_size() const { return size_; }

 private:
  void Release();

  void* data_ = nullptr;
  size_t size_ = 0;
  SnapshotView view_;
};

}  // namespace opthash::io

#endif  // OPTHASH_IO_SNAPSHOT_H_

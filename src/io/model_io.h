#ifndef OPTHASH_IO_MODEL_IO_H_
#define OPTHASH_IO_MODEL_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/opt_hash_estimator.h"
#include "io/snapshot.h"
#include "stream/features.h"
#include "stream/trace_io.h"

namespace opthash::io {

/// \brief On-disk encoding of a model bundle.
///
/// kText is the legacy `opthash.bundle.v1` whitespace-token stream (kept
/// readable forever for existing model files); kBinary is the snapshot
/// container of docs/FORMATS.md — versioned, CRC-checked, zero-copy
/// loadable. New deployments should write binary.
enum class SnapshotFormat {
  kText,
  kBinary,
};

const char* SnapshotFormatName(SnapshotFormat format);

/// Parses a `--format` flag value ("text" | "binary").
Result<SnapshotFormat> ParseSnapshotFormat(const std::string& name);

/// \brief The full deployable artifact of the paper's workflow (§3): the
/// featurizer that turns query text into the classifier's feature space,
/// plus the trained estimator. Train once offline, Save, ship the file to
/// every stream processor, Load there.
struct ModelBundle {
  stream::BagOfWordsFeaturizer featurizer{500};
  std::optional<core::OptHashEstimator> estimator;
};

/// Writes the bundle in the requested format. The estimator must be
/// present (a bundle without one is a programming error, not bad input).
Status SaveModelBundle(const std::string& path, const ModelBundle& bundle,
                       SnapshotFormat format);

/// Sniffs the leading magic bytes: "OPTHSNAP" = binary snapshot,
/// "opthash.bundle.v1" = legacy text. Anything else is InvalidArgument.
Result<SnapshotFormat> DetectFileFormat(const std::string& path);

/// Loads a bundle in either format (auto-detected), with full CRC
/// verification on the binary path.
Result<ModelBundle> LoadModelBundle(const std::string& path);

/// \brief Batched query pipeline over a loaded model bundle — the serving
/// read side of the paper's workflow, shared by `opthash_cli query` and
/// bench_query_throughput.
///
/// EstimateBlock answers one block of (id, text) queries through the
/// estimator's lazy batch path (OptHashEstimator::EstimateBatchLazy).
/// Two properties make it fast in steady state: each id probes the
/// learned table exactly once and is featurized only when the table
/// cannot resolve it (a table hit wins before the classifier is
/// consulted, so its features would be dead work — under a skewed query
/// mix most lookups skip the featurizer entirely, and the misses
/// featurize straight into the workspace's feature matrix), and all
/// scratch is reused across blocks, so a warm engine performs no heap
/// allocation per block. Answers are element-wise identical to
/// featurizing every query and calling Estimate one by one.
///
/// Holds a reference to the bundle (which must outlive the engine) and
/// mutable scratch: one engine per querying thread.
class BundleQueryEngine {
 public:
  explicit BundleQueryEngine(const ModelBundle& bundle);

  /// out[i] = estimate of queries[i]. queries.size() must equal
  /// out.size(); an empty block is a no-op.
  void EstimateBlock(Span<const stream::TraceRecord> queries,
                     Span<double> out);

 private:
  const ModelBundle& bundle_;
  std::vector<uint64_t> ids_;
  core::OptHashQueryWorkspace workspace_;
};

/// \brief Zero-copy serving view over a *binary* model bundle.
///
/// Open mmaps the snapshot and binary-searches the estimator's sorted id
/// table and reads its bucket counter arrays directly from the mapping —
/// no hash-table build, no counter memcpy, restart cost independent of
/// model size. The classifier section is NOT materialized, so only
/// stored-id queries are answerable; unseen-element (classifier) queries
/// need the full LoadModelBundle. Estimates for stored ids are
/// bit-identical to OptHashEstimator::Estimate.
///
/// Move-only; owns its mapping.
class MappedEstimatorView {
 public:
  static Result<MappedEstimatorView> Open(const std::string& path,
                                          bool verify_crc = false);

  /// Bucket of a stored id, or -1 when the id is not in the learned
  /// table (this view cannot fall back to the classifier).
  int32_t BucketOf(uint64_t id) const;

  /// Bucket-average estimate phi_j / c_j for a stored id; 0.0 when the id
  /// is untracked — matching OptHashEstimator::Estimate for items queried
  /// without features.
  double Estimate(uint64_t id) const;

  /// Batched point queries: out[i] = Estimate(ids[i]), allocation-free.
  /// Two passes per fixed-size stack chunk: the id-table binary searches
  /// run back to back (keeping the mapped id column hot), then the bucket
  /// counters are gathered back to back. ids.size() must equal
  /// out.size().
  void EstimateBatch(Span<const uint64_t> ids, Span<double> out) const;

  size_t num_buckets() const { return num_buckets_; }
  size_t num_stored_ids() const { return table_size_; }

  /// The index-th stored id, in the on-disk ascending order. Lets callers
  /// enumerate the learned table (e.g. heavy-hitter candidate scans)
  /// without materializing it. index must be < num_stored_ids().
  uint64_t StoredId(size_t index) const;

 private:
  MappedEstimatorView() = default;

  MappedSnapshot snapshot_;
  // All pointers reference the mapping; arrays are 8-aligned on disk by
  // construction (docs/FORMATS.md §3.7).
  const uint8_t* bucket_freq_ = nullptr;
  const uint8_t* bucket_count_ = nullptr;
  const uint8_t* ids_ = nullptr;
  const uint8_t* buckets_ = nullptr;
  size_t num_buckets_ = 0;
  size_t table_size_ = 0;
};

}  // namespace opthash::io

#endif  // OPTHASH_IO_MODEL_IO_H_

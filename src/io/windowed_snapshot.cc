#include "io/windowed_snapshot.h"

namespace opthash::io {

Result<SectionType> PeekWindowedInnerType(Span<const uint8_t> payload) {
  ByteReader in(payload);
  OPTHASH_IO_ASSIGN(version, in.ReadU8());
  if (version != kWindowedSketchPayloadVersion) {
    return Status::InvalidArgument(
        "unsupported windowed-sketch payload version " +
        std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(inner_type, in.ReadU32());
  switch (static_cast<SectionType>(inner_type)) {
    case SectionType::kCountMinSketch:
    case SectionType::kCountSketch:
    case SectionType::kAmsSketch:
    case SectionType::kLearnedCountMin:
    case SectionType::kMisraGries:
    case SectionType::kSpaceSaving:
      return static_cast<SectionType>(inner_type);
    default:
      return Status::InvalidArgument(
          "windowed payload declares unknown sub-sketch section type " +
          std::to_string(inner_type));
  }
}

Result<SectionType> WindowedInnerTypeOfFile(const std::string& path) {
  OPTHASH_IO_ASSIGN(reader, SnapshotReader::Open(path));
  const SnapshotSection* section =
      reader.view().Find(SectionType::kWindowedSketch);
  if (section == nullptr) {
    return Status::InvalidArgument(
        path + " holds no " + SectionTypeName(SectionType::kWindowedSketch) +
        " section");
  }
  return PeekWindowedInnerType(section->payload);
}

}  // namespace opthash::io

#include "io/sketch_snapshot.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/random.h"
#include "sketch/kernels/simd_dispatch.h"

namespace opthash::io {

Result<std::vector<SectionType>> ListSnapshotSections(
    const std::string& path) {
  // Header/table-only probe: dispatching on the result must not cost a
  // full-file read before the real load does its own verified pass.
  return PeekSectionTypes(path);
}

bool MmapServingSupported(SectionType type) {
  return type == SectionType::kCountMinSketch ||
         type == SectionType::kOptHashEstimator;
}

namespace {

// Byte offsets inside the count-min payload (docs/FORMATS.md §3.1).
constexpr size_t kCmsHeaderBytes = 40;
constexpr size_t kCmsFlagsOffset = 4;
constexpr size_t kCmsWidthOffset = 8;
constexpr size_t kCmsDepthOffset = 16;
constexpr size_t kCmsSeedOffset = 24;
constexpr size_t kCmsTotalOffset = 32;

}  // namespace

Result<MappedCountMinView> MappedCountMinView::Open(const std::string& path,
                                                    bool verify_crc) {
  auto snapshot = MappedSnapshot::Open(path, verify_crc);
  if (!snapshot.ok()) return snapshot.status();
  const SnapshotSection* section =
      snapshot.value().view().Find(SectionType::kCountMinSketch);
  if (section == nullptr) {
    return Status::InvalidArgument(path + " holds no count-min section");
  }
  const Span<const uint8_t> payload = section->payload;
  if (payload.size() < kCmsHeaderBytes) {
    return Status::InvalidArgument("count-min payload shorter than header");
  }
  const uint32_t version = LoadLittleU32(payload.data());
  if (version != 1) {
    return Status::InvalidArgument("unsupported count-min payload version " +
                                   std::to_string(version));
  }

  MappedCountMinView view;
  const uint32_t flags = LoadLittleU32(payload.data() + kCmsFlagsOffset);
  if ((flags & ~1u) != 0) {
    // Mirror CountMinSketch::Deserialize: a future flag bit may change
    // counter semantics, and serving under the old ones would silently
    // return wrong counts.
    return Status::InvalidArgument("unknown count-min payload flags");
  }
  view.conservative_update_ = (flags & 1u) != 0;
  const uint64_t width = LoadLittleU64(payload.data() + kCmsWidthOffset);
  const uint64_t depth = LoadLittleU64(payload.data() + kCmsDepthOffset);
  view.seed_ = LoadLittleU64(payload.data() + kCmsSeedOffset);
  view.total_count_ = LoadLittleU64(payload.data() + kCmsTotalOffset);
  const size_t counter_bytes = payload.size() - kCmsHeaderBytes;
  const size_t counter_count = counter_bytes / sizeof(uint64_t);
  if (width == 0 || depth == 0 || counter_bytes % sizeof(uint64_t) != 0 ||
      width > counter_count / depth || width * depth != counter_count) {
    return Status::InvalidArgument(
        "count-min geometry disagrees with payload size");
  }
  view.width_ = static_cast<size_t>(width);
  view.depth_ = static_cast<size_t>(depth);
  view.counters_ = payload.data() + kCmsHeaderBytes;

  // The only materialized state: d LinearHash draws (a few hundred bytes),
  // redrawn exactly as the CountMinSketch constructor draws them.
  Rng rng(view.seed_);
  view.hashes_.reserve(view.depth_);
  view.kernel_params_.reserve(view.depth_);
  for (size_t level = 0; level < view.depth_; ++level) {
    view.hashes_.emplace_back(view.width_, rng);
    view.kernel_params_.push_back(
        sketch::kernels::HashKernelParams::From(view.hashes_.back()));
  }
  view.snapshot_ = std::move(snapshot).value();
  return view;
}

uint64_t MappedCountMinView::Estimate(uint64_t key) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (size_t level = 0; level < depth_; ++level) {
    const size_t index = level * width_ + hashes_[level](key);
    best = std::min(best, LoadLittleU64(counters_ + index * sizeof(uint64_t)));
  }
  return best;
}

void MappedCountMinView::EstimateBatch(Span<const uint64_t> keys,
                                       Span<uint64_t> out) const {
  OPTHASH_CHECK_EQ(keys.size(), out.size());
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Little-endian hosts read the mapped counters natively, so the block
  // path runs through the dispatched kernel tier exactly like
  // CountMinSketch::EstimateBatch — same level-major row walk, same
  // bit-identical results (the snapshot payload is 8-aligned by format).
  if (reinterpret_cast<uintptr_t>(counters_) % alignof(uint64_t) == 0) {
    const auto* counters = reinterpret_cast<const uint64_t*>(counters_);
    const sketch::kernels::KernelOps& ops =
        sketch::kernels::ActiveKernels();
    constexpr size_t kKernelChunk = 256;
    uint64_t idx[kKernelChunk];
    for (size_t begin = 0; begin < keys.size(); begin += kKernelChunk) {
      const size_t block = std::min(kKernelChunk, keys.size() - begin);
      uint64_t* out_block = out.data() + begin;
      for (size_t i = 0; i < block; ++i) {
        out_block[i] = std::numeric_limits<uint64_t>::max();
      }
      for (size_t level = 0; level < depth_; ++level) {
        ops.hash_buckets(kernel_params_[level], keys.data() + begin,
                         block, idx);
        ops.min_gather_u64(counters + level * width_, idx, block,
                           out_block);
      }
    }
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::numeric_limits<uint64_t>::max();
  }
  // Level-major over the mapped rows: the block touches each row's pages
  // in one run instead of hopping across levels per key.
  for (size_t level = 0; level < depth_; ++level) {
    const uint8_t* row = counters_ + level * width_ * sizeof(uint64_t);
    const hashing::LinearHash& hash = hashes_[level];
    for (size_t i = 0; i < keys.size(); ++i) {
      const size_t offset = hash(keys[i]) * sizeof(uint64_t);
      out[i] = std::min(out[i], LoadLittleU64(row + offset));
    }
  }
}

}  // namespace opthash::io

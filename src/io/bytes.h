#ifndef OPTHASH_IO_BYTES_H_
#define OPTHASH_IO_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace opthash::io {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte
/// range — the integrity check of every snapshot section (docs/FORMATS.md).
/// `seed` is the running CRC for incremental computation (0 to start).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// \brief Append-only little-endian encoder backing the binary snapshot
/// format (docs/FORMATS.md).
///
/// All multi-byte scalars are written little-endian regardless of host
/// order; doubles are written as their IEEE-754 bit pattern. The writer
/// owns its buffer; callers take the finished bytes with `bytes()` or
/// `TakeBytes()`. Never fails: the buffer grows as needed.
class ByteWriter {
 public:
  void WriteU8(uint8_t value) { buffer_.push_back(value); }
  void WriteU32(uint32_t value) { WriteLittleEndian(&value, sizeof(value)); }
  void WriteU64(uint64_t value) { WriteLittleEndian(&value, sizeof(value)); }
  void WriteI32(int32_t value) {
    WriteU32(static_cast<uint32_t>(value));
  }
  void WriteI64(int64_t value) {
    WriteU64(static_cast<uint64_t>(value));
  }
  void WriteDouble(double value) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteU64(bits);
  }

  /// Raw bytes, no length prefix.
  void WriteBytes(const void* data, size_t size);

  /// u32 byte length followed by the bytes (the string framing of
  /// docs/FORMATS.md).
  void WriteString(const std::string& text);

  /// Element-wise little-endian vector writes, no length prefix (the
  /// layouts in docs/FORMATS.md carry counts in their fixed headers).
  void WriteU64Array(Span<const uint64_t> values);
  void WriteI64Array(Span<const int64_t> values);
  void WriteI32Array(Span<const int32_t> values);
  void WriteDoubleArray(Span<const double> values);

  /// Zero-pads so the next write lands on a multiple of `alignment` bytes
  /// *relative to the buffer start*. Sections are placed at 8-aligned file
  /// offsets, so 8-alignment here is 8-alignment on disk — what the
  /// zero-copy mapped views require of their counter arrays.
  void AlignTo(size_t alignment);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buffer_); }

 private:
  void WriteLittleEndian(const void* value, size_t size);

  std::vector<uint8_t> buffer_;
};

/// Single source of truth for host byte order, shared by the codec
/// (ByteWriter/ByteReader) and the zero-copy load helpers below so the
/// two paths can never disagree about what the same bytes mean.
/// Detected via __BYTE_ORDER__ (GCC/Clang); every _WIN32 target is
/// little-endian; any other toolchain must extend this before building.
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
#define OPTHASH_IO_HOST_LITTLE_ENDIAN \
  (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
#elif defined(_WIN32)
#define OPTHASH_IO_HOST_LITTLE_ENDIAN 1
#else
#error "opthash io: unknown host byte order; extend HostIsLittleEndian()"
#endif

constexpr bool HostIsLittleEndian() {
  return OPTHASH_IO_HOST_LITTLE_ENDIAN != 0;
}

/// Portable byte reversals (compilers lower these shift patterns to a
/// single bswap); only reached on big-endian hosts.
constexpr uint32_t ByteSwap32(uint32_t v) {
  v = ((v & 0x00FF00FFu) << 8) | ((v >> 8) & 0x00FF00FFu);
  return (v << 16) | (v >> 16);
}

constexpr uint64_t ByteSwap64(uint64_t v) {
  v = ((v & 0x00FF00FF00FF00FFull) << 8) |
      ((v >> 8) & 0x00FF00FF00FF00FFull);
  v = ((v & 0x0000FFFF0000FFFFull) << 16) |
      ((v >> 16) & 0x0000FFFF0000FFFFull);
  return (v << 32) | (v >> 32);
}

/// Unaligned-safe little-endian loads for the zero-copy mapped readers:
/// a single memcpy compiles to one plain load on x86/ARM and stays
/// UBSan-clean regardless of pointer alignment.
inline uint64_t LoadLittleU64(const uint8_t* at) {
  uint64_t value = 0;
  std::memcpy(&value, at, sizeof(value));
  if (!HostIsLittleEndian()) value = ByteSwap64(value);
  return value;
}

inline uint32_t LoadLittleU32(const uint8_t* at) {
  uint32_t value = 0;
  std::memcpy(&value, at, sizeof(value));
  if (!HostIsLittleEndian()) value = ByteSwap32(value);
  return value;
}

inline int32_t LoadLittleI32(const uint8_t* at) {
  return static_cast<int32_t>(LoadLittleU32(at));
}

inline double LoadLittleDouble(const uint8_t* at) {
  const uint64_t bits = LoadLittleU64(at);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// \brief Bounds-checked little-endian decoder over a borrowed byte range.
///
/// The mirror of ByteWriter: every Read* returns a Status-carrying Result
/// (or Status for bulk reads) instead of crashing, so truncated or corrupt
/// snapshots surface as clean InvalidArgument errors. The reader does NOT
/// own the bytes; the caller keeps them alive (snapshot readers hand out
/// ByteReaders over their section payloads).
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(Span<const uint8_t> bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  /// Fills `out` with `count` elements; fails without partial writes
  /// becoming visible guarantees (contents unspecified on error).
  Status ReadU64Array(std::vector<uint64_t>& out, size_t count);
  Status ReadI64Array(std::vector<int64_t>& out, size_t count);
  Status ReadI32Array(std::vector<int32_t>& out, size_t count);
  Status ReadDoubleArray(std::vector<double>& out, size_t count);

  /// Skips pad bytes so the cursor sits at a multiple of `alignment`
  /// relative to the start of this reader's range.
  Status AlignTo(size_t alignment);

  /// Borrowed view of the next `size` bytes; advances the cursor.
  Result<Span<const uint8_t>> ReadSpan(size_t size);

  size_t remaining() const { return size_ - offset_; }
  size_t offset() const { return offset_; }

  /// Fails unless every byte has been consumed — snapshots reject trailing
  /// garbage rather than silently ignoring it.
  Status ExpectFullyConsumed() const;

 private:
  Status Take(void* out, size_t size);

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace opthash::io

/// Binds `var` to the value of a Result-returning expression, or
/// propagates the error Status out of the enclosing function. Used
/// throughout the Deserialize implementations to keep the happy path
/// readable without losing per-field error reporting.
#define OPTHASH_IO_ASSIGN(var, expr)              \
  auto var##_or = (expr);                         \
  if (!var##_or.ok()) return var##_or.status();   \
  const auto var = std::move(var##_or).value()

/// Propagates a non-OK Status out of the enclosing function.
#define OPTHASH_IO_RETURN_IF_ERROR(expr)     \
  do {                                       \
    const ::opthash::Status status = (expr); \
    if (!status.ok()) return status;         \
  } while (0)

#endif  // OPTHASH_IO_BYTES_H_

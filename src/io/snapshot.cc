#include "io/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

namespace opthash::io {

const char* SectionTypeName(SectionType type) {
  switch (type) {
    case SectionType::kCountMinSketch:
      return "count-min";
    case SectionType::kCountSketch:
      return "count-sketch";
    case SectionType::kAmsSketch:
      return "ams";
    case SectionType::kLearnedCountMin:
      return "learned-count-min";
    case SectionType::kMisraGries:
      return "misra-gries";
    case SectionType::kSpaceSaving:
      return "space-saving";
    case SectionType::kWindowedSketch:
      return "windowed-sketch";
    case SectionType::kLogisticRegression:
      return "logreg";
    case SectionType::kDecisionTree:
      return "cart";
    case SectionType::kRandomForest:
      return "rf";
    case SectionType::kOptHashEstimator:
      return "opt-hash-estimator";
    case SectionType::kFeaturizer:
      return "featurizer";
  }
  return "unknown";
}

void SnapshotWriter::AddSection(SectionType type,
                                std::vector<uint8_t> payload) {
  sections_.push_back({type, std::move(payload)});
}

std::vector<uint8_t> SnapshotWriter::Finish() const {
  // Lay out payload offsets first: header, table, then 8-aligned payloads.
  const size_t table_offset = kSnapshotHeaderSize;
  size_t cursor = table_offset + sections_.size() * kSectionEntrySize;
  std::vector<size_t> offsets;
  offsets.reserve(sections_.size());
  for (const Section& section : sections_) {
    cursor = (cursor + kSectionAlignment - 1) / kSectionAlignment *
             kSectionAlignment;
    offsets.push_back(cursor);
    cursor += section.payload.size();
  }
  const size_t file_size = cursor;

  // Section table.
  ByteWriter table;
  for (size_t i = 0; i < sections_.size(); ++i) {
    table.WriteU32(static_cast<uint32_t>(sections_[i].type));
    table.WriteU32(0);  // flags, reserved
    table.WriteU64(offsets[i]);
    table.WriteU64(sections_[i].payload.size());
    table.WriteU32(Crc32(sections_[i].payload.data(),
                         sections_[i].payload.size()));
    table.WriteU32(0);  // reserved
  }

  // Header.
  ByteWriter header;
  header.WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.WriteU32(kSnapshotVersion);
  header.WriteU32(static_cast<uint32_t>(sections_.size()));
  header.WriteU64(file_size);
  header.WriteU32(Crc32(table.bytes().data(), table.size()));
  header.WriteU32(Crc32(header.bytes().data(), header.size()));

  std::vector<uint8_t> out(file_size, 0);
  std::memcpy(out.data(), header.bytes().data(), header.size());
  if (!table.bytes().empty()) {
    std::memcpy(out.data() + table_offset, table.bytes().data(),
                table.size());
  }
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].payload.empty()) continue;
    std::memcpy(out.data() + offsets[i], sections_[i].payload.data(),
                sections_[i].payload.size());
  }
  return out;
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  const std::vector<uint8_t> bytes = Finish();
  // Write-then-rename so the checkpoint cycle `--in ckpt --out ckpt`
  // never destroys the previous good file: a crash or ENOSPC mid-write
  // leaves only the .tmp behind, and rename() replaces atomically.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::InvalidArgument("cannot write: " + tmp);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file.good()) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Result<SnapshotView> SnapshotView::Parse(Span<const uint8_t> bytes,
                                         bool verify_payload_crcs) {
  if (bytes.size() < kSnapshotHeaderSize) {
    return Status::InvalidArgument("snapshot shorter than its header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument("not an opthash snapshot (bad magic)");
  }
  ByteReader header(bytes.data(), kSnapshotHeaderSize);
  (void)header.ReadSpan(sizeof(kSnapshotMagic));  // magic, checked above
  const uint32_t version = header.ReadU32().value();
  const uint32_t section_count = header.ReadU32().value();
  const uint64_t file_size = header.ReadU64().value();
  const uint32_t table_crc = header.ReadU32().value();
  const uint32_t header_crc = header.ReadU32().value();
  if (Crc32(bytes.data(), kSnapshotHeaderSize - sizeof(uint32_t)) !=
      header_crc) {
    return Status::InvalidArgument("snapshot header CRC mismatch");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  if (file_size != bytes.size()) {
    return Status::InvalidArgument(
        "snapshot truncated: header says " + std::to_string(file_size) +
        " bytes, file has " + std::to_string(bytes.size()));
  }
  const size_t table_bytes = section_count * kSectionEntrySize;
  if (kSnapshotHeaderSize + table_bytes > bytes.size()) {
    return Status::InvalidArgument("section table exceeds snapshot size");
  }
  if (Crc32(bytes.data() + kSnapshotHeaderSize, table_bytes) != table_crc) {
    return Status::InvalidArgument("section table CRC mismatch");
  }

  SnapshotView view;
  ByteReader table(bytes.data() + kSnapshotHeaderSize, table_bytes);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint32_t type = table.ReadU32().value();
    (void)table.ReadU32();  // flags
    const uint64_t offset = table.ReadU64().value();
    const uint64_t size = table.ReadU64().value();
    const uint32_t crc = table.ReadU32().value();
    (void)table.ReadU32();  // reserved
    if (offset % kSectionAlignment != 0) {
      return Status::InvalidArgument("section payload is misaligned");
    }
    if (offset > bytes.size() || size > bytes.size() - offset) {
      return Status::InvalidArgument("section payload out of bounds");
    }
    SnapshotSection section;
    section.type = static_cast<SectionType>(type);
    section.payload = Span<const uint8_t>(bytes.data() + offset, size);
    section.crc = crc;
    if (verify_payload_crcs &&
        Crc32(section.payload.data(), section.payload.size()) != crc) {
      return Status::InvalidArgument(
          std::string("payload CRC mismatch in section ") +
          SectionTypeName(section.type));
    }
    view.sections_.push_back(section);
  }
  return view;
}

const SnapshotSection* SnapshotView::Find(SectionType type) const {
  for (const SnapshotSection& section : sections_) {
    if (section.type == type) return &section;
  }
  return nullptr;
}

Status SnapshotView::VerifyPayloadCrcs() const {
  for (const SnapshotSection& section : sections_) {
    if (Crc32(section.payload.data(), section.payload.size()) !=
        section.crc) {
      return Status::InvalidArgument(
          std::string("payload CRC mismatch in section ") +
          SectionTypeName(section.type));
    }
  }
  return Status::OK();
}

Result<std::vector<SectionType>> PeekSectionTypes(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::NotFound("cannot read: " + path);
  const auto actual_size = static_cast<uint64_t>(file.tellg());
  file.seekg(0);
  uint8_t header[kSnapshotHeaderSize] = {};
  if (actual_size < kSnapshotHeaderSize ||
      !file.read(reinterpret_cast<char*>(header), kSnapshotHeaderSize)) {
    return Status::InvalidArgument("snapshot shorter than its header");
  }
  if (std::memcmp(header, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("not an opthash snapshot (bad magic)");
  }
  ByteReader reader(header, kSnapshotHeaderSize);
  (void)reader.ReadSpan(sizeof(kSnapshotMagic));
  const uint32_t version = reader.ReadU32().value();
  const uint32_t section_count = reader.ReadU32().value();
  const uint64_t file_size = reader.ReadU64().value();
  const uint32_t table_crc = reader.ReadU32().value();
  const uint32_t header_crc = reader.ReadU32().value();
  if (Crc32(header, kSnapshotHeaderSize - sizeof(uint32_t)) != header_crc) {
    return Status::InvalidArgument("snapshot header CRC mismatch");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  if (file_size != actual_size) {
    return Status::InvalidArgument(
        "snapshot truncated: header says " + std::to_string(file_size) +
        " bytes, file has " + std::to_string(actual_size));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntrySize;
  if (kSnapshotHeaderSize + table_bytes > actual_size) {
    return Status::InvalidArgument("section table exceeds snapshot size");
  }
  std::vector<uint8_t> table(static_cast<size_t>(table_bytes));
  if (!table.empty() &&
      !file.read(reinterpret_cast<char*>(table.data()),
                 static_cast<std::streamsize>(table.size()))) {
    return Status::Internal("short read from " + path);
  }
  if (Crc32(table.data(), table.size()) != table_crc) {
    return Status::InvalidArgument("section table CRC mismatch");
  }
  std::vector<SectionType> types;
  types.reserve(section_count);
  ByteReader entries(table.data(), table.size());
  for (uint32_t i = 0; i < section_count; ++i) {
    types.push_back(static_cast<SectionType>(entries.ReadU32().value()));
    (void)entries.ReadSpan(kSectionEntrySize - sizeof(uint32_t));
  }
  return types;
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::NotFound("cannot read: " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!file.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::Internal("short read from " + path);
  }
  return FromBytes(std::move(bytes));
}

Result<SnapshotReader> SnapshotReader::FromBytes(std::vector<uint8_t> bytes) {
  SnapshotReader reader;
  reader.bytes_ = std::move(bytes);
  auto view = SnapshotView::Parse(
      Span<const uint8_t>(reader.bytes_.data(), reader.bytes_.size()),
      /*verify_payload_crcs=*/true);
  if (!view.ok()) return view.status();
  reader.view_ = std::move(view).value();
  return reader;
}

Result<MappedSnapshot> MappedSnapshot::Open(const std::string& path,
                                            bool verify_payload_crcs) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT vararg open
  if (fd < 0) {
    return Status::NotFound("cannot open: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed: " + path);
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size < kSnapshotHeaderSize) {
    ::close(fd);
    return Status::InvalidArgument("snapshot shorter than its header: " +
                                   path);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference to the file.
  if (data == MAP_FAILED) {
    return Status::Internal("mmap failed: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  MappedSnapshot snapshot;
  snapshot.data_ = data;
  snapshot.size_ = size;
  auto view = SnapshotView::Parse(
      Span<const uint8_t>(static_cast<const uint8_t*>(data), size),
      verify_payload_crcs);
  if (!view.ok()) return view.status();  // ~MappedSnapshot unmaps.
  snapshot.view_ = std::move(view).value();
  return snapshot;
}

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      view_(std::move(other.view_)) {}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    view_ = std::move(other.view_);
  }
  return *this;
}

MappedSnapshot::~MappedSnapshot() { Release(); }

void MappedSnapshot::Release() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace opthash::io

#include "io/bytes.h"

#include <array>

namespace opthash::io {
namespace {

// Slicing-by-8 CRC-32 tables (Kounavis & Berry): table[0] is the classic
// byte-at-a-time table; table[k][b] pre-folds byte b through k extra zero
// bytes, letting the hot loop consume 8 input bytes per iteration. This
// matters because every snapshot load CRCs the whole counter array — at
// one byte per step the checksum, not the disk, dominated load latency.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t crc = n;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][n] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t n = 0; n < 256; ++n) {
      tables[k][n] =
          (tables[k - 1][n] >> 8) ^ tables[0][tables[k - 1][n] & 0xFFu];
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      BuildCrcTables();
  const auto& t = tables;
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const uint8_t*>(data);
  while (size >= 8) {
    uint64_t chunk = 0;
    std::memcpy(&chunk, bytes, sizeof(chunk));
    if (!HostIsLittleEndian()) chunk = ByteSwap64(chunk);
    chunk ^= crc;  // Fold the running CRC into the low 4 bytes.
    crc = t[7][chunk & 0xFFu] ^ t[6][(chunk >> 8) & 0xFFu] ^
          t[5][(chunk >> 16) & 0xFFu] ^ t[4][(chunk >> 24) & 0xFFu] ^
          t[3][(chunk >> 32) & 0xFFu] ^ t[2][(chunk >> 40) & 0xFFu] ^
          t[1][(chunk >> 48) & 0xFFu] ^ t[0][chunk >> 56];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void ByteWriter::WriteLittleEndian(const void* value, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(value);
  if (HostIsLittleEndian()) {
    buffer_.insert(buffer_.end(), bytes, bytes + size);
    return;
  }
  for (size_t i = 0; i < size; ++i) buffer_.push_back(bytes[size - 1 - i]);
}

void ByteWriter::WriteBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void ByteWriter::WriteString(const std::string& text) {
  WriteU32(static_cast<uint32_t>(text.size()));
  WriteBytes(text.data(), text.size());
}

void ByteWriter::WriteU64Array(Span<const uint64_t> values) {
  if (HostIsLittleEndian()) {
    WriteBytes(values.data(), values.size() * sizeof(uint64_t));
    return;
  }
  for (uint64_t v : values) WriteU64(v);
}

void ByteWriter::WriteI64Array(Span<const int64_t> values) {
  if (HostIsLittleEndian()) {
    WriteBytes(values.data(), values.size() * sizeof(int64_t));
    return;
  }
  for (int64_t v : values) WriteI64(v);
}

void ByteWriter::WriteI32Array(Span<const int32_t> values) {
  if (HostIsLittleEndian()) {
    WriteBytes(values.data(), values.size() * sizeof(int32_t));
    return;
  }
  for (int32_t v : values) WriteI32(v);
}

void ByteWriter::WriteDoubleArray(Span<const double> values) {
  if (HostIsLittleEndian()) {
    WriteBytes(values.data(), values.size() * sizeof(double));
    return;
  }
  for (double v : values) WriteDouble(v);
}

void ByteWriter::AlignTo(size_t alignment) {
  while (buffer_.size() % alignment != 0) buffer_.push_back(0);
}

Status ByteReader::Take(void* out, size_t size) {
  if (size > remaining()) {
    return Status::InvalidArgument(
        "truncated read: need " + std::to_string(size) + " bytes, have " +
        std::to_string(remaining()));
  }
  std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return Status::OK();
}

namespace {

template <typename T>
T FromLittleEndian(T value) {
  if (HostIsLittleEndian()) return value;
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (size_t i = 0; i < sizeof(T) / 2; ++i) {
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  }
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

}  // namespace

Result<uint8_t> ByteReader::ReadU8() {
  uint8_t value = 0;
  Status status = Take(&value, sizeof(value));
  if (!status.ok()) return status;
  return value;
}

Result<uint32_t> ByteReader::ReadU32() {
  uint32_t value = 0;
  Status status = Take(&value, sizeof(value));
  if (!status.ok()) return status;
  return FromLittleEndian(value);
}

Result<uint64_t> ByteReader::ReadU64() {
  uint64_t value = 0;
  Status status = Take(&value, sizeof(value));
  if (!status.ok()) return status;
  return FromLittleEndian(value);
}

Result<int32_t> ByteReader::ReadI32() {
  auto value = ReadU32();
  if (!value.ok()) return value.status();
  return static_cast<int32_t>(value.value());
}

Result<int64_t> ByteReader::ReadI64() {
  auto value = ReadU64();
  if (!value.ok()) return value.status();
  return static_cast<int64_t>(value.value());
}

Result<double> ByteReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double value = 0.0;
  const uint64_t raw = bits.value();
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

Result<std::string> ByteReader::ReadString() {
  auto size = ReadU32();
  if (!size.ok()) return size.status();
  if (size.value() > remaining()) {
    return Status::InvalidArgument("truncated string payload");
  }
  std::string text(reinterpret_cast<const char*>(data_ + offset_),
                   size.value());
  offset_ += size.value();
  return text;
}

namespace {

template <typename T, typename Convert>
Status ReadArrayImpl(ByteReader& reader, std::vector<T>& out, size_t count,
                     Convert convert) {
  // Reject counts that cannot possibly fit before allocating: a corrupt
  // header must not drive a multi-GB resize.
  if (count > reader.remaining() / sizeof(T)) {
    return Status::InvalidArgument("array count exceeds payload size");
  }
  out.resize(count);
  auto span = reader.ReadSpan(count * sizeof(T));
  if (!span.ok()) return span.status();
  std::memcpy(out.data(), span.value().data(), count * sizeof(T));
  if (!HostIsLittleEndian()) {
    for (T& v : out) v = convert(v);
  }
  return Status::OK();
}

}  // namespace

Status ByteReader::ReadU64Array(std::vector<uint64_t>& out, size_t count) {
  return ReadArrayImpl(*this, out, count,
                       [](uint64_t v) { return FromLittleEndian(v); });
}

Status ByteReader::ReadI64Array(std::vector<int64_t>& out, size_t count) {
  return ReadArrayImpl(*this, out, count, [](int64_t v) {
    const auto raw = FromLittleEndian(static_cast<uint64_t>(v));
    return static_cast<int64_t>(raw);
  });
}

Status ByteReader::ReadI32Array(std::vector<int32_t>& out, size_t count) {
  return ReadArrayImpl(*this, out, count, [](int32_t v) {
    const auto raw = FromLittleEndian(static_cast<uint32_t>(v));
    return static_cast<int32_t>(raw);
  });
}

Status ByteReader::ReadDoubleArray(std::vector<double>& out, size_t count) {
  return ReadArrayImpl(*this, out, count, [](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    bits = FromLittleEndian(bits);
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  });
}

Status ByteReader::AlignTo(size_t alignment) {
  while (offset_ % alignment != 0) {
    auto pad = ReadU8();
    if (!pad.ok()) return pad.status();
    if (pad.value() != 0) {
      return Status::InvalidArgument("non-zero padding byte");
    }
  }
  return Status::OK();
}

Result<Span<const uint8_t>> ByteReader::ReadSpan(size_t size) {
  if (size > remaining()) {
    return Status::InvalidArgument("truncated span read");
  }
  Span<const uint8_t> span(data_ + offset_, size);
  offset_ += size;
  return span;
}

Status ByteReader::ExpectFullyConsumed() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        std::to_string(remaining()) + " trailing bytes after payload");
  }
  return Status::OK();
}

}  // namespace opthash::io

#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace opthash::ml {

LogisticRegression::LogisticRegression(LogisticRegressionConfig config)
    : config_(config) {}

std::vector<double> LogisticRegression::Standardize(
    const std::vector<double>& features) const {
  std::vector<double> out(features.size());
  for (size_t f = 0; f < features.size(); ++f) {
    out[f] = (features[f] - feature_means_[f]) / feature_stds_[f];
  }
  return out;
}

void LogisticRegression::ComputeLogits(const std::vector<double>& standardized,
                                       std::vector<double>& logits) const {
  logits.assign(num_classes_, 0.0);
  for (size_t c = 0; c < num_classes_; ++c) {
    const double* weight_row = weights_.Row(c);
    double dot = biases_[c];
    for (size_t f = 0; f < num_features_; ++f) {
      dot += weight_row[f] * standardized[f];
    }
    logits[c] = dot;
  }
}

namespace {

// In-place softmax with max-subtraction for stability.
void Softmax(std::vector<double>& logits) {
  double max_logit = logits[0];
  for (double v : logits) max_logit = std::max(max_logit, v);
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - max_logit);
    total += v;
  }
  for (double& v : logits) v /= total;
}

}  // namespace

void LogisticRegression::Fit(const Dataset& train) {
  OPTHASH_CHECK_GT(train.NumExamples(), 0u);
  num_features_ = train.NumFeatures();
  num_classes_ = std::max<size_t>(train.NumClasses(), 1);
  const size_t n = train.NumExamples();

  // Standardization statistics.
  feature_means_.assign(num_features_, 0.0);
  feature_stds_.assign(num_features_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& x = train.Features(i);
    for (size_t f = 0; f < num_features_; ++f) feature_means_[f] += x[f];
  }
  for (double& m : feature_means_) m /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& x = train.Features(i);
    for (size_t f = 0; f < num_features_; ++f) {
      const double d = x[f] - feature_means_[f];
      feature_stds_[f] += d * d;
    }
  }
  for (double& s : feature_stds_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // Constant feature: leave centered at zero.
  }

  std::vector<std::vector<double>> standardized(n);
  for (size_t i = 0; i < n; ++i) {
    standardized[i] = Standardize(train.Features(i));
  }

  weights_ = Matrix(num_classes_, num_features_, 0.0);
  biases_.assign(num_classes_, 0.0);
  fitted_ = true;

  Matrix gradient(num_classes_, num_features_, 0.0);
  std::vector<double> bias_gradient(num_classes_, 0.0);
  std::vector<double> probs;

  double learning_rate = config_.learning_rate;
  double previous_loss = Loss(train);

  Matrix best_weights = weights_;
  std::vector<double> best_biases = biases_;
  double best_loss = previous_loss;

  for (size_t iter = 0; iter < config_.max_iters; ++iter) {
    gradient.Fill(0.0);
    std::fill(bias_gradient.begin(), bias_gradient.end(), 0.0);

    for (size_t i = 0; i < n; ++i) {
      ComputeLogits(standardized[i], probs);
      Softmax(probs);
      const int label = train.Label(i);
      for (size_t c = 0; c < num_classes_; ++c) {
        const double err =
            probs[c] - (static_cast<int>(c) == label ? 1.0 : 0.0);
        double* grad_row = gradient.Row(c);
        const double* x = standardized[i].data();
        for (size_t f = 0; f < num_features_; ++f) grad_row[f] += err * x[f];
        bias_gradient[c] += err;
      }
    }
    // Scale the data gradient by 1/n and add the ridge gradient l2 * W.
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t c = 0; c < num_classes_; ++c) {
      double* grad_row = gradient.Row(c);
      const double* weight_row = weights_.Row(c);
      for (size_t f = 0; f < num_features_; ++f) {
        grad_row[f] = grad_row[f] * inv_n + config_.l2 * weight_row[f];
      }
      bias_gradient[c] *= inv_n;
    }

    weights_.Axpy(-learning_rate, gradient);
    for (size_t c = 0; c < num_classes_; ++c) {
      biases_[c] -= learning_rate * bias_gradient[c];
    }

    const double loss = Loss(train);
    if (loss < best_loss) {
      best_loss = loss;
      best_weights = weights_;
      best_biases = biases_;
    }
    if (loss > previous_loss) {
      // Overshot: back off the step size and restart from the best point.
      learning_rate *= 0.5;
      weights_ = best_weights;
      biases_ = best_biases;
      previous_loss = best_loss;
      if (learning_rate < 1e-8) break;
      continue;
    }
    if (previous_loss - loss < config_.tolerance * std::abs(previous_loss)) {
      previous_loss = loss;
      break;
    }
    previous_loss = loss;
  }
  weights_ = best_weights;
  biases_ = best_biases;
}

std::vector<double> LogisticRegression::PredictProba(
    const std::vector<double>& features) const {
  OPTHASH_CHECK_MSG(fitted_, "PredictProba before Fit");
  OPTHASH_CHECK_EQ(features.size(), num_features_);
  std::vector<double> probs;
  ComputeLogits(Standardize(features), probs);
  Softmax(probs);
  return probs;
}

int LogisticRegression::Predict(const std::vector<double>& features) const {
  OPTHASH_CHECK_MSG(fitted_, "Predict before Fit");
  OPTHASH_CHECK_EQ(features.size(), num_features_);
  return PredictRow(features.data());
}

int LogisticRegression::PredictRow(const double* features) const {
  // Standardize once into thread-local scratch; the class loop then only
  // reads it. Softmax is monotone, so the argmax is taken over raw logits
  // and neither probabilities nor logits are materialized — the batched
  // query path calls this once per row with zero heap traffic.
  thread_local std::vector<double> standardized;
  standardized.resize(num_features_);
  for (size_t f = 0; f < num_features_; ++f) {
    standardized[f] = (features[f] - feature_means_[f]) / feature_stds_[f];
  }
  int best_class = 0;
  double best_logit = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_classes_; ++c) {
    const double* weight_row = weights_.Row(c);
    double dot = biases_[c];
    for (size_t f = 0; f < num_features_; ++f) {
      dot += weight_row[f] * standardized[f];
    }
    if (dot > best_logit) {
      best_logit = dot;
      best_class = static_cast<int>(c);
    }
  }
  return best_class;
}

void LogisticRegression::PredictBatch(const Matrix& rows,
                                      Span<int> out) const {
  OPTHASH_CHECK_MSG(fitted_, "PredictBatch before Fit");
  OPTHASH_CHECK_EQ(rows.rows(), out.size());
  if (rows.rows() == 0) return;
  OPTHASH_CHECK_EQ(rows.cols(), num_features_);
  for (size_t i = 0; i < rows.rows(); ++i) {
    out[i] = PredictRow(rows.Row(i));
  }
}

namespace {
constexpr const char* kLogRegMagic = "opthash.logreg.v1";
}  // namespace

void LogisticRegression::SerializeTo(std::ostream& out) const {
  OPTHASH_CHECK_MSG(fitted_, "Serialize before Fit");
  out << kLogRegMagic << ' ' << num_classes_ << ' ' << num_features_ << '\n';
  out << std::setprecision(17);
  for (size_t c = 0; c < num_classes_; ++c) {
    for (size_t f = 0; f < num_features_; ++f) {
      out << weights_.At(c, f) << ' ';
    }
  }
  out << '\n';
  for (double b : biases_) out << b << ' ';
  out << '\n';
  for (double m : feature_means_) out << m << ' ';
  out << '\n';
  for (double s : feature_stds_) out << s << ' ';
  out << '\n';
}

std::string LogisticRegression::Serialize() const {
  std::ostringstream out;
  SerializeTo(out);
  return out.str();
}

Result<LogisticRegression> LogisticRegression::DeserializeFrom(
    std::istream& in) {
  std::string magic;
  size_t num_classes = 0;
  size_t num_features = 0;
  if (!(in >> magic >> num_classes >> num_features)) {
    return Status::InvalidArgument("truncated logreg header");
  }
  if (magic != kLogRegMagic) {
    return Status::InvalidArgument("bad logreg magic: " + magic);
  }
  if (num_classes == 0) {
    return Status::InvalidArgument("logreg needs at least one class");
  }
  LogisticRegression model;
  model.num_classes_ = num_classes;
  model.num_features_ = num_features;
  model.weights_ = Matrix(num_classes, num_features);
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t f = 0; f < num_features; ++f) {
      if (!(in >> model.weights_.At(c, f))) {
        return Status::InvalidArgument("truncated logreg weights");
      }
    }
  }
  auto read_vector = [&in](std::vector<double>& values, size_t count,
                           const char* what) {
    values.resize(count);
    for (double& v : values) {
      if (!(in >> v)) {
        return Status::InvalidArgument(std::string("truncated logreg ") +
                                       what);
      }
    }
    return Status::OK();
  };
  Status status = read_vector(model.biases_, num_classes, "biases");
  if (!status.ok()) return status;
  status = read_vector(model.feature_means_, num_features, "means");
  if (!status.ok()) return status;
  status = read_vector(model.feature_stds_, num_features, "stds");
  if (!status.ok()) return status;
  for (double s : model.feature_stds_) {
    if (s <= 0.0) return Status::InvalidArgument("non-positive feature std");
  }
  model.fitted_ = true;
  return model;
}

Result<LogisticRegression> LogisticRegression::Deserialize(
    const std::string& blob) {
  std::istringstream in(blob);
  return DeserializeFrom(in);
}

namespace {
constexpr uint32_t kLogRegPayloadVersion = 1;
}  // namespace

void LogisticRegression::SerializeBinary(io::ByteWriter& out) const {
  OPTHASH_CHECK_MSG(fitted_, "SerializeBinary before Fit");
  out.WriteU32(kLogRegPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(num_classes_);
  out.WriteU64(num_features_);
  for (size_t c = 0; c < num_classes_; ++c) {
    out.WriteDoubleArray(Span<const double>(weights_.Row(c), num_features_));
  }
  out.WriteDoubleArray(biases_);
  out.WriteDoubleArray(feature_means_);
  out.WriteDoubleArray(feature_stds_);
}

Result<LogisticRegression> LogisticRegression::DeserializeBinary(
    io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kLogRegPayloadVersion) {
    return Status::InvalidArgument("unsupported logreg payload version " +
                                   std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero logreg reserved field");
  }
  OPTHASH_IO_ASSIGN(num_classes, in.ReadU64());
  OPTHASH_IO_ASSIGN(num_features, in.ReadU64());
  if (num_classes == 0) {
    return Status::InvalidArgument("logreg needs at least one class");
  }
  // Bound num_classes by the biases array alone so a crafted payload with
  // num_features == 0 cannot drive an effectively unbounded loop, then by
  // the weight matrix.
  if (num_classes > in.remaining() / sizeof(double) ||
      (num_features != 0 &&
       num_classes > in.remaining() / sizeof(double) / num_features)) {
    return Status::InvalidArgument("logreg shape exceeds payload");
  }
  LogisticRegression model;
  model.num_classes_ = num_classes;
  model.num_features_ = num_features;
  model.weights_ = Matrix(num_classes, num_features);
  std::vector<double> row;
  for (size_t c = 0; c < num_classes; ++c) {
    OPTHASH_IO_RETURN_IF_ERROR(in.ReadDoubleArray(row, num_features));
    std::copy(row.begin(), row.end(), model.weights_.Row(c));
  }
  OPTHASH_IO_RETURN_IF_ERROR(in.ReadDoubleArray(model.biases_, num_classes));
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadDoubleArray(model.feature_means_, num_features));
  OPTHASH_IO_RETURN_IF_ERROR(
      in.ReadDoubleArray(model.feature_stds_, num_features));
  for (double s : model.feature_stds_) {
    if (s <= 0.0) return Status::InvalidArgument("non-positive feature std");
  }
  model.fitted_ = true;
  return model;
}

double LogisticRegression::Loss(const Dataset& data) const {
  OPTHASH_CHECK_MSG(fitted_, "Loss before Fit");
  double total = 0.0;
  std::vector<double> probs;
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    ComputeLogits(Standardize(data.Features(i)), probs);
    Softmax(probs);
    const auto label = static_cast<size_t>(data.Label(i));
    total -= std::log(std::max(probs[label], 1e-15));
  }
  total /= static_cast<double>(data.NumExamples());
  total += 0.5 * config_.l2 * weights_.SquaredNorm();
  return total;
}

}  // namespace opthash::ml

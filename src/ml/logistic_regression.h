#ifndef OPTHASH_ML_LOGISTIC_REGRESSION_H_
#define OPTHASH_ML_LOGISTIC_REGRESSION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/bytes.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace opthash::ml {

/// \brief Hyperparameters for multinomial logistic regression.
struct LogisticRegressionConfig {
  /// Weight of the ridge (L2) regularization term — the hyperparameter the
  /// paper tunes by 10-fold cross-validation (§6.2).
  double l2 = 1e-3;
  /// Full-batch gradient descent iterations.
  size_t max_iters = 200;
  /// Initial learning rate; halved whenever the loss fails to improve.
  double learning_rate = 0.5;
  /// Stop when the relative loss improvement drops below this.
  double tolerance = 1e-7;
};

/// \brief Multinomial (softmax) logistic regression — the paper's `logreg`.
///
/// Trained by full-batch gradient descent with backtracking on the learning
/// rate. Features are standardized internally (zero mean, unit variance)
/// which makes the conditioning independent of feature scales.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {});

  void Fit(const Dataset& train) override;
  int Predict(const std::vector<double>& features) const override;

  /// Raw-pointer scalar prediction over num_features doubles — the
  /// allocation-free core Predict and PredictBatch both route through
  /// (standardization scratch is thread-local, logits are never
  /// materialized: argmax of the logits is argmax of the probabilities).
  int PredictRow(const double* features) const;

  /// Allocation-free row loop over the matrix (see Classifier docs).
  void PredictBatch(const Matrix& rows, Span<int> out) const override;
  using Classifier::PredictBatch;

  const char* Name() const override { return "logreg"; }

  /// Class probabilities for one example (softmax outputs).
  std::vector<double> PredictProba(const std::vector<double>& features) const;

  /// Regularized negative log-likelihood on a dataset (for tests).
  double Loss(const Dataset& data) const;

  const LogisticRegressionConfig& config() const { return config_; }

  /// Portable text serialization of the fitted model.
  std::string Serialize() const;
  void SerializeTo(std::ostream& out) const;
  static Result<LogisticRegression> Deserialize(const std::string& blob);
  static Result<LogisticRegression> DeserializeFrom(std::istream& in);

  /// Binary snapshot payload (docs/FORMATS.md, section type 16): weights,
  /// biases and standardization vectors as raw little-endian IEEE-754
  /// doubles — exact bit-level round-trip, unlike the text path's
  /// decimal round-trip through setprecision(17).
  void SerializeBinary(io::ByteWriter& out) const;

  /// Rebuilds a model from a SerializeBinary payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes or
  /// non-positive feature standard deviations.
  static Result<LogisticRegression> DeserializeBinary(io::ByteReader& in);

 private:
  std::vector<double> Standardize(const std::vector<double>& features) const;
  void ComputeLogits(const std::vector<double>& standardized,
                     std::vector<double>& logits) const;

  LogisticRegressionConfig config_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  Matrix weights_;              // num_classes x num_features
  std::vector<double> biases_;  // num_classes
  std::vector<double> feature_means_;
  std::vector<double> feature_stds_;
  bool fitted_ = false;
};

}  // namespace opthash::ml

#endif  // OPTHASH_ML_LOGISTIC_REGRESSION_H_

#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace opthash::ml {

namespace {

// Gini impurity of a label histogram with `total` examples.
double Gini(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int MajorityLabel(const std::vector<size_t>& counts) {
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {
  OPTHASH_CHECK_GE(config_.min_samples_leaf, 1u);
}

void DecisionTree::Fit(const Dataset& train) {
  OPTHASH_CHECK_GT(train.NumExamples(), 0u);
  num_features_ = train.NumFeatures();
  num_classes_ = std::max<size_t>(train.NumClasses(), 1);
  nodes_.clear();
  std::vector<size_t> indices(train.NumExamples());
  std::iota(indices.begin(), indices.end(), size_t{0});
  Rng rng(config_.seed);
  BuildNode(train, indices, /*depth=*/0, rng);
  fitted_ = true;
}

int32_t DecisionTree::BuildNode(const Dataset& train,
                                std::vector<size_t>& indices, size_t depth,
                                Rng& rng) {
  const size_t n = indices.size();
  std::vector<size_t> counts(num_classes_, 0);
  for (size_t index : indices) {
    ++counts[static_cast<size_t>(train.Label(index))];
  }
  const double node_gini = Gini(counts, n);

  const auto node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].label = MajorityLabel(counts);
  nodes_[node_id].num_samples = n;

  const bool pure = node_gini <= 1e-12;
  if (pure || depth >= config_.max_depth || n < 2 * config_.min_samples_leaf) {
    return node_id;
  }

  // Candidate features: all, or a uniform sample of max_features for forests.
  std::vector<size_t> candidate_features;
  if (config_.max_features == 0 || config_.max_features >= num_features_) {
    candidate_features.resize(num_features_);
    std::iota(candidate_features.begin(), candidate_features.end(), size_t{0});
  } else {
    std::vector<size_t> all(num_features_);
    std::iota(all.begin(), all.end(), size_t{0});
    rng.Shuffle(all);
    candidate_features.assign(
        all.begin(), all.begin() + static_cast<long>(config_.max_features));
  }

  // Exhaustive threshold scan per candidate feature.
  double best_decrease = config_.min_impurity_decrease;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  std::vector<std::pair<double, int>> values(n);  // (feature value, label)
  std::vector<size_t> left_counts(num_classes_);
  for (size_t feature : candidate_features) {
    for (size_t i = 0; i < n; ++i) {
      values[i] = {train.Features(indices[i])[feature],
                   train.Label(indices[i])};
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;

    std::fill(left_counts.begin(), left_counts.end(), 0);
    size_t left_total = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      ++left_counts[static_cast<size_t>(values[i].second)];
      ++left_total;
      if (values[i].first == values[i + 1].first) continue;
      const size_t right_total = n - left_total;
      if (left_total < config_.min_samples_leaf ||
          right_total < config_.min_samples_leaf) {
        continue;
      }
      std::vector<size_t> right_counts(num_classes_);
      for (size_t c = 0; c < num_classes_; ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double weighted_child_gini =
          (static_cast<double>(left_total) * Gini(left_counts, left_total) +
           static_cast<double>(right_total) * Gini(right_counts, right_total)) /
          static_cast<double>(n);
      const double decrease = node_gini - weighted_child_gini;
      if (decrease > best_decrease) {
        best_decrease = decrease;
        best_feature = feature;
        best_threshold = 0.5 * (values[i].first + values[i + 1].first);
        found = true;
      }
    }
  }

  if (!found) return node_id;

  std::vector<size_t> left_indices;
  std::vector<size_t> right_indices;
  left_indices.reserve(n);
  right_indices.reserve(n);
  for (size_t index : indices) {
    if (train.Features(index)[best_feature] <= best_threshold) {
      left_indices.push_back(index);
    } else {
      right_indices.push_back(index);
    }
  }
  OPTHASH_CHECK(!left_indices.empty() && !right_indices.empty());
  indices.clear();
  indices.shrink_to_fit();

  const int32_t left_id = BuildNode(train, left_indices, depth + 1, rng);
  const int32_t right_id = BuildNode(train, right_indices, depth + 1, rng);

  Node& node = nodes_[node_id];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_id;
  node.right = right_id;
  node.impurity_decrease = best_decrease * static_cast<double>(n);
  return node_id;
}

int DecisionTree::Predict(const std::vector<double>& features) const {
  OPTHASH_CHECK_MSG(fitted_, "Predict before Fit");
  OPTHASH_CHECK_EQ(features.size(), num_features_);
  return PredictRow(features.data());
}

int DecisionTree::PredictRow(const double* features) const {
  int32_t node_id = 0;
  while (!nodes_[node_id].is_leaf) {
    const Node& node = nodes_[node_id];
    node_id = features[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].label;
}

void DecisionTree::PredictBatch(const Matrix& rows, Span<int> out) const {
  OPTHASH_CHECK_MSG(fitted_, "PredictBatch before Fit");
  OPTHASH_CHECK_EQ(rows.rows(), out.size());
  if (rows.rows() == 0) return;
  OPTHASH_CHECK_EQ(rows.cols(), num_features_);
  for (size_t i = 0; i < rows.rows(); ++i) {
    out[i] = PredictRow(rows.Row(i));
  }
}

size_t DecisionTree::Depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the explicit node array.
  std::vector<std::pair<int32_t, size_t>> stack = {{0, 0}};
  size_t max_depth = 0;
  while (!stack.empty()) {
    auto [node_id, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[node_id];
    if (!node.is_leaf) {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return max_depth;
}

namespace {
constexpr const char* kCartMagic = "opthash.cart.v1";
}  // namespace

void DecisionTree::SerializeTo(std::ostream& out) const {
  OPTHASH_CHECK_MSG(fitted_, "Serialize before Fit");
  out << kCartMagic << ' ' << num_features_ << ' ' << num_classes_ << ' '
      << nodes_.size() << '\n';
  out << std::setprecision(17);
  for (const Node& node : nodes_) {
    out << (node.is_leaf ? 1 : 0) << ' ' << node.feature << ' '
        << node.threshold << ' ' << node.left << ' ' << node.right << ' '
        << node.label << ' ' << node.impurity_decrease << ' '
        << node.num_samples << '\n';
  }
}

std::string DecisionTree::Serialize() const {
  std::ostringstream out;
  SerializeTo(out);
  return out.str();
}

Result<DecisionTree> DecisionTree::DeserializeFrom(std::istream& in) {
  std::string magic;
  size_t num_features = 0;
  size_t num_classes = 0;
  size_t node_count = 0;
  if (!(in >> magic >> num_features >> num_classes >> node_count)) {
    return Status::InvalidArgument("truncated decision tree header");
  }
  if (magic != kCartMagic) {
    return Status::InvalidArgument("bad decision tree magic: " + magic);
  }
  DecisionTree tree;
  tree.num_features_ = num_features;
  tree.num_classes_ = num_classes;
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    int is_leaf = 0;
    if (!(in >> is_leaf >> node.feature >> node.threshold >> node.left >>
          node.right >> node.label >> node.impurity_decrease >>
          node.num_samples)) {
      return Status::InvalidArgument("truncated decision tree nodes");
    }
    node.is_leaf = is_leaf != 0;
    const auto count = static_cast<int32_t>(node_count);
    if (!node.is_leaf &&
        (node.left < 0 || node.right < 0 || node.left >= count ||
         node.right >= count || node.feature >= num_features)) {
      return Status::InvalidArgument("decision tree node out of range");
    }
  }
  if (tree.nodes_.empty()) {
    return Status::InvalidArgument("decision tree has no nodes");
  }
  tree.fitted_ = true;
  return tree;
}

Result<DecisionTree> DecisionTree::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  return DeserializeFrom(in);
}

namespace {
constexpr uint32_t kCartPayloadVersion = 1;
constexpr uint32_t kNodeFlagLeaf = 1u << 0;
constexpr size_t kNodeRecordBytes = 48;
}  // namespace

void DecisionTree::SerializeBinary(io::ByteWriter& out) const {
  OPTHASH_CHECK_MSG(fitted_, "SerializeBinary before Fit");
  out.WriteU32(kCartPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(num_features_);
  out.WriteU64(num_classes_);
  out.WriteU64(nodes_.size());
  for (const Node& node : nodes_) {
    out.WriteU64(node.feature);
    out.WriteDouble(node.threshold);
    out.WriteI32(node.left);
    out.WriteI32(node.right);
    out.WriteI32(node.label);
    out.WriteU32(node.is_leaf ? kNodeFlagLeaf : 0u);
    out.WriteDouble(node.impurity_decrease);
    out.WriteU64(node.num_samples);
  }
}

Result<DecisionTree> DecisionTree::DeserializeBinary(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kCartPayloadVersion) {
    return Status::InvalidArgument("unsupported cart payload version " +
                                   std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero cart reserved field");
  }
  OPTHASH_IO_ASSIGN(num_features, in.ReadU64());
  OPTHASH_IO_ASSIGN(num_classes, in.ReadU64());
  OPTHASH_IO_ASSIGN(node_count, in.ReadU64());
  if (node_count == 0) {
    return Status::InvalidArgument("decision tree has no nodes");
  }
  if (num_classes == 0) {
    return Status::InvalidArgument("decision tree needs at least one class");
  }
  if (node_count > in.remaining() / kNodeRecordBytes) {
    return Status::InvalidArgument("cart node count exceeds payload");
  }
  DecisionTree tree;
  tree.num_features_ = num_features;
  tree.num_classes_ = num_classes;
  tree.nodes_.resize(node_count);
  for (size_t index = 0; index < node_count; ++index) {
    Node& node = tree.nodes_[index];
    OPTHASH_IO_ASSIGN(feature, in.ReadU64());
    OPTHASH_IO_ASSIGN(threshold, in.ReadDouble());
    OPTHASH_IO_ASSIGN(left, in.ReadI32());
    OPTHASH_IO_ASSIGN(right, in.ReadI32());
    OPTHASH_IO_ASSIGN(label, in.ReadI32());
    OPTHASH_IO_ASSIGN(flags, in.ReadU32());
    OPTHASH_IO_ASSIGN(impurity_decrease, in.ReadDouble());
    OPTHASH_IO_ASSIGN(num_samples, in.ReadU64());
    if ((flags & ~kNodeFlagLeaf) != 0) {
      return Status::InvalidArgument("unknown cart node flags");
    }
    node.feature = feature;
    node.threshold = threshold;
    node.left = left;
    node.right = right;
    node.label = label;
    node.is_leaf = (flags & kNodeFlagLeaf) != 0;
    node.impurity_decrease = impurity_decrease;
    node.num_samples = num_samples;
    // Every node carries its majority label; a corrupt one would abort
    // Predict's bounds CHECK later, so reject it here instead.
    if (node.label < 0 ||
        static_cast<uint64_t>(node.label) >= num_classes) {
      return Status::InvalidArgument("decision tree label out of range");
    }
    // The builder appends children after their parent, so child > parent
    // is a format invariant; enforcing it makes cycles (which would hang
    // Predict) unrepresentable.
    const auto self = static_cast<int32_t>(index);
    const auto count = static_cast<int32_t>(node_count);
    if (!node.is_leaf &&
        (node.left <= self || node.right <= self || node.left >= count ||
         node.right >= count || node.feature >= num_features)) {
      return Status::InvalidArgument("decision tree node out of range");
    }
  }
  tree.fitted_ = true;
  return tree;
}

std::vector<double> DecisionTree::FeatureImportances() const {
  std::vector<double> importances(num_features_, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (!node.is_leaf) {
      importances[node.feature] += node.impurity_decrease;
      total += node.impurity_decrease;
    }
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

}  // namespace opthash::ml

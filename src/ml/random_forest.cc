#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/random.h"

namespace opthash::ml {

RandomForest::RandomForest(RandomForestConfig config) : config_(config) {
  OPTHASH_CHECK_GE(config_.num_trees, 1u);
}

void RandomForest::Fit(const Dataset& train) {
  OPTHASH_CHECK_GT(train.NumExamples(), 0u);
  num_classes_ = std::max<size_t>(train.NumClasses(), 1);
  num_features_ = train.NumFeatures();
  const size_t n = train.NumExamples();

  size_t max_features = config_.max_features;
  if (max_features == 0) {
    max_features = static_cast<size_t>(std::max(
        1.0, std::floor(std::sqrt(static_cast<double>(num_features_)))));
  }

  Rng rng(config_.seed);
  trees_.clear();
  trees_.reserve(config_.num_trees);
  std::vector<size_t> bootstrap(n);
  for (size_t t = 0; t < config_.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) bootstrap[i] = rng.NextBounded(n);
    const Dataset sample = train.Subset(bootstrap);
    DecisionTreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.max_features = max_features;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.seed = rng.NextUint64();
    DecisionTree tree(tree_config);
    // Bootstrap samples can miss the highest label; fit against a dataset
    // that remembers the global class count via an appended no-op example
    // would skew training, so instead trees simply vote over their own
    // label space and the argmax below runs over the global class count.
    tree.Fit(sample);
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

int RandomForest::Predict(const std::vector<double>& features) const {
  OPTHASH_CHECK_MSG(fitted_, "Predict before Fit");
  OPTHASH_CHECK_EQ(features.size(), num_features_);
  return PredictRow(features.data());
}

int RandomForest::PredictRow(const double* features) const {
  thread_local std::vector<size_t> votes;
  votes.assign(num_classes_, 0);
  for (const DecisionTree& tree : trees_) {
    const int label = tree.PredictRow(features);
    OPTHASH_CHECK_LT(static_cast<size_t>(label), num_classes_);
    ++votes[static_cast<size_t>(label)];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

void RandomForest::PredictBatch(const Matrix& rows, Span<int> out) const {
  OPTHASH_CHECK_MSG(fitted_, "PredictBatch before Fit");
  OPTHASH_CHECK_EQ(rows.rows(), out.size());
  if (rows.rows() == 0) return;
  OPTHASH_CHECK_EQ(rows.cols(), num_features_);
  for (size_t i = 0; i < rows.rows(); ++i) {
    out[i] = PredictRow(rows.Row(i));
  }
}

namespace {
constexpr const char* kForestMagic = "opthash.rf.v1";
}  // namespace

void RandomForest::SerializeTo(std::ostream& out) const {
  OPTHASH_CHECK_MSG(fitted_, "Serialize before Fit");
  out << kForestMagic << ' ' << num_classes_ << ' ' << num_features_ << ' '
      << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) tree.SerializeTo(out);
}

std::string RandomForest::Serialize() const {
  std::ostringstream out;
  SerializeTo(out);
  return out.str();
}

Result<RandomForest> RandomForest::DeserializeFrom(std::istream& in) {
  std::string magic;
  size_t num_classes = 0;
  size_t num_features = 0;
  size_t num_trees = 0;
  if (!(in >> magic >> num_classes >> num_features >> num_trees)) {
    return Status::InvalidArgument("truncated random forest header");
  }
  if (magic != kForestMagic) {
    return Status::InvalidArgument("bad random forest magic: " + magic);
  }
  if (num_trees == 0) {
    return Status::InvalidArgument("random forest has no trees");
  }
  RandomForest forest;
  forest.num_classes_ = num_classes;
  forest.num_features_ = num_features;
  forest.trees_.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    Result<DecisionTree> tree = DecisionTree::DeserializeFrom(in);
    if (!tree.ok()) return tree.status();
    forest.trees_.push_back(std::move(tree).value());
  }
  forest.fitted_ = true;
  return forest;
}

Result<RandomForest> RandomForest::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  return DeserializeFrom(in);
}

namespace {
constexpr uint32_t kForestPayloadVersion = 1;
}  // namespace

void RandomForest::SerializeBinary(io::ByteWriter& out) const {
  OPTHASH_CHECK_MSG(fitted_, "SerializeBinary before Fit");
  out.WriteU32(kForestPayloadVersion);
  out.WriteU32(0);  // reserved
  out.WriteU64(num_classes_);
  out.WriteU64(num_features_);
  out.WriteU64(trees_.size());
  for (const DecisionTree& tree : trees_) tree.SerializeBinary(out);
}

Result<RandomForest> RandomForest::DeserializeBinary(io::ByteReader& in) {
  OPTHASH_IO_ASSIGN(version, in.ReadU32());
  if (version != kForestPayloadVersion) {
    return Status::InvalidArgument("unsupported rf payload version " +
                                   std::to_string(version));
  }
  OPTHASH_IO_ASSIGN(reserved, in.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("non-zero rf reserved field");
  }
  OPTHASH_IO_ASSIGN(num_classes, in.ReadU64());
  OPTHASH_IO_ASSIGN(num_features, in.ReadU64());
  OPTHASH_IO_ASSIGN(num_trees, in.ReadU64());
  if (num_trees == 0) {
    return Status::InvalidArgument("random forest has no trees");
  }
  // Each tree payload is at least its 32-byte header plus one 48-byte
  // node; cheap sanity bound before reserving.
  if (num_trees > in.remaining() / 80) {
    return Status::InvalidArgument("rf tree count exceeds payload");
  }
  RandomForest forest;
  forest.num_classes_ = num_classes;
  forest.num_features_ = num_features;
  forest.trees_.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    auto tree = DecisionTree::DeserializeBinary(in);
    if (!tree.ok()) return tree.status();
    forest.trees_.push_back(std::move(tree).value());
  }
  forest.fitted_ = true;
  return forest;
}

std::vector<double> RandomForest::FeatureImportances() const {
  OPTHASH_CHECK_MSG(fitted_, "FeatureImportances before Fit");
  std::vector<double> importances(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> tree_importances = tree.FeatureImportances();
    for (size_t f = 0; f < num_features_; ++f) {
      importances[f] += tree_importances[f];
    }
  }
  for (double& v : importances) v /= static_cast<double>(trees_.size());
  return importances;
}

}  // namespace opthash::ml

#ifndef OPTHASH_ML_METRICS_H_
#define OPTHASH_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace opthash::ml {

/// \brief Fraction of positions where predictions match labels.
double Accuracy(const std::vector<int>& labels,
                const std::vector<int>& predictions);

/// \brief num_classes x num_classes confusion matrix, rows = true label,
/// columns = predicted label.
std::vector<std::vector<size_t>> ConfusionMatrix(
    const std::vector<int>& labels, const std::vector<int>& predictions,
    size_t num_classes);

/// \brief Macro-averaged F1 score (classes absent from both labels and
/// predictions are skipped).
double MacroF1(const std::vector<int>& labels,
               const std::vector<int>& predictions, size_t num_classes);

}  // namespace opthash::ml

#endif  // OPTHASH_ML_METRICS_H_

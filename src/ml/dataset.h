#ifndef OPTHASH_ML_DATASET_H_
#define OPTHASH_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/span.h"
#include "ml/matrix.h"

namespace opthash::ml {

/// \brief In-memory supervised classification dataset.
///
/// Rows are dense feature vectors with integer class labels in
/// [0, num_classes). This is the training-set representation for the
/// bucket classifier of §5.2: one row per prefix element, label = learned
/// bucket index.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  /// Appends one example. The first example fixes the feature width.
  void Add(std::vector<double> features, int label);

  size_t NumExamples() const { return labels_.size(); }
  size_t NumFeatures() const { return num_features_; }

  /// Number of distinct label values = max label + 1.
  size_t NumClasses() const;

  const std::vector<double>& Features(size_t index) const {
    return features_[index];
  }
  int Label(size_t index) const { return labels_[index]; }
  const std::vector<int>& labels() const { return labels_; }

  /// Rows selected by index (with repetition allowed — used for bagging).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Per-class example counts (length NumClasses()).
  std::vector<size_t> ClassCounts() const;

 private:
  size_t num_features_ = 0;
  std::vector<std::vector<double>> features_;
  std::vector<int> labels_;
};

/// \brief Interface implemented by all classifiers in this library.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset; may be called once per instance.
  virtual void Fit(const Dataset& train) = 0;

  /// Predicted class for a feature vector.
  virtual int Predict(const std::vector<double>& features) const = 0;

  /// Batched prediction over a row-major feature matrix:
  /// out[i] = predicted class of row i. Semantically identical to calling
  /// Predict row by row — the base implementation does exactly that
  /// (through a copy into a scratch vector), so external classifiers keep
  /// compiling — while the built-in models override it with
  /// allocation-free row loops for the batched query hot path.
  virtual void PredictBatch(const Matrix& rows, Span<int> out) const;

  /// Human-readable model name (for experiment tables).
  virtual const char* Name() const = 0;

  /// Batch helper.
  std::vector<int> PredictBatch(const Dataset& data) const {
    std::vector<int> predictions(data.NumExamples());
    for (size_t i = 0; i < data.NumExamples(); ++i) {
      predictions[i] = Predict(data.Features(i));
    }
    return predictions;
  }
};

}  // namespace opthash::ml

#endif  // OPTHASH_ML_DATASET_H_

#ifndef OPTHASH_ML_CROSS_VALIDATION_H_
#define OPTHASH_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "ml/dataset.h"

namespace opthash::ml {

/// \brief One train/validation split: indices into the original dataset.
struct Fold {
  std::vector<size_t> train_indices;
  std::vector<size_t> validation_indices;
};

/// \brief Stratified k-fold splits: every fold approximately preserves the
/// class distribution (examples of each class are dealt round-robin after a
/// per-class shuffle). Classes with fewer examples than folds simply appear
/// in fewer validation folds.
std::vector<Fold> StratifiedKFold(const Dataset& data, size_t num_folds,
                                  uint64_t seed);

/// \brief Mean validation accuracy of `factory`-produced classifiers over
/// stratified k-fold CV.
double CrossValAccuracy(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, size_t num_folds, uint64_t seed);

/// \brief One hyperparameter candidate in a grid search.
struct GridCandidate {
  std::string description;
  std::function<std::unique_ptr<Classifier>()> factory;
};

/// \brief Result of GridSearchCV.
struct GridSearchResult {
  size_t best_index = 0;
  double best_accuracy = 0.0;
  std::vector<double> accuracies;  // One per candidate, same order.
};

/// \brief Exhaustive hyperparameter search by k-fold CV — the tuning
/// procedure the paper applies to all three classifiers (§6.2: "All methods
/// are tuned using 10-fold cross validation").
GridSearchResult GridSearchCV(const std::vector<GridCandidate>& candidates,
                              const Dataset& data, size_t num_folds,
                              uint64_t seed);

}  // namespace opthash::ml

#endif  // OPTHASH_ML_CROSS_VALIDATION_H_

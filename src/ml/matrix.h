#ifndef OPTHASH_ML_MATRIX_H_
#define OPTHASH_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace opthash::ml {

/// \brief Minimal dense row-major matrix of doubles.
///
/// Just enough linear algebra for the multinomial logistic regression
/// (weights, gradients); deliberately not a general-purpose BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& At(size_t r, size_t c) {
    OPTHASH_CHECK_LT(r, rows_);
    OPTHASH_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    OPTHASH_CHECK_LT(r, rows_);
    OPTHASH_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked row pointer (hot paths).
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Re-dimensions the matrix to rows x cols, reusing the existing
  /// allocation whenever its capacity suffices — the batched query path
  /// reshapes one scratch matrix per block and must not heap-allocate in
  /// steady state. Cell contents are unspecified after the call (stale
  /// values may survive); callers overwrite every row they read.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// this += alpha * other (shapes must match).
  void Axpy(double alpha, const Matrix& other) {
    OPTHASH_CHECK_EQ(rows_, other.rows_);
    OPTHASH_CHECK_EQ(cols_, other.cols_);
    for (size_t i = 0; i < data_.size(); ++i) {
      data_[i] += alpha * other.data_[i];
    }
  }

  /// Squared Frobenius norm.
  double SquaredNorm() const {
    double total = 0.0;
    for (double v : data_) total += v * v;
    return total;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace opthash::ml

#endif  // OPTHASH_ML_MATRIX_H_

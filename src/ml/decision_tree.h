#ifndef OPTHASH_ML_DECISION_TREE_H_
#define OPTHASH_ML_DECISION_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "io/bytes.h"
#include "ml/dataset.h"

namespace opthash::ml {

/// \brief Hyperparameters for the CART classifier.
struct DecisionTreeConfig {
  /// Maximum tree depth (root = depth 0). The paper tunes this (§6.2).
  size_t max_depth = 16;
  /// A split must reduce weighted gini impurity by at least this much —
  /// the second hyperparameter the paper tunes for `cart`.
  double min_impurity_decrease = 0.0;
  /// Minimum examples required in each child.
  size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 means all features.
  /// Random forests pass sqrt(p) here.
  size_t max_features = 0;
  /// Seed for the feature subsampling (only used when max_features > 0).
  uint64_t seed = 7;
};

/// \brief CART decision tree (Breiman et al. 1984, ref [43]) — the paper's
/// `cart` classifier. Axis-aligned splits chosen by maximal gini impurity
/// decrease, with exhaustive threshold scan over sorted feature values.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  void Fit(const Dataset& train) override;
  int Predict(const std::vector<double>& features) const override;

  /// Raw-pointer scalar prediction over num_features doubles: one root-to-
  /// leaf walk, never allocating. Predict and PredictBatch route through
  /// it; the caller guarantees the row length (unchecked here).
  int PredictRow(const double* features) const;

  /// Allocation-free row loop over the matrix (see Classifier docs).
  void PredictBatch(const Matrix& rows, Span<int> out) const override;
  using Classifier::PredictBatch;

  const char* Name() const override { return "cart"; }

  /// Number of nodes in the fitted tree (leaves + internal).
  size_t NodeCount() const { return nodes_.size(); }

  /// Depth of the fitted tree.
  size_t Depth() const;

  /// Total gini decrease attributed to each feature across all splits —
  /// the impurity-based feature importance (normalized to sum to 1). The
  /// paper uses importances to interpret the search-query model (§7.4).
  std::vector<double> FeatureImportances() const;

  const DecisionTreeConfig& config() const { return config_; }

  /// Serializes the fitted tree as a portable whitespace-token text blob
  /// (train offline, deploy the scheme — see core/serialization docs).
  std::string Serialize() const;
  void SerializeTo(std::ostream& out) const;

  /// Reconstructs a tree from Serialize() output.
  static Result<DecisionTree> Deserialize(const std::string& blob);
  static Result<DecisionTree> DeserializeFrom(std::istream& in);

  /// Binary snapshot payload (docs/FORMATS.md, section type 17): header +
  /// fixed 48-byte little-endian node records. Exactly the state the text
  /// format carries (structure, thresholds at full double precision,
  /// importances bookkeeping); fitted-ness is implied — serializing an
  /// unfitted tree is a programming error, like the text path.
  void SerializeBinary(io::ByteWriter& out) const;

  /// Rebuilds a tree from a SerializeBinary payload; same node-index
  /// range checks as the text reader, returning InvalidArgument (never
  /// crashing) on truncated/corrupt/mis-versioned bytes.
  static Result<DecisionTree> DeserializeBinary(io::ByteReader& in);

 private:
  struct Node {
    // Internal node fields (valid when is_leaf == false).
    size_t feature = 0;
    double threshold = 0.0;   // Goes left if x[feature] <= threshold.
    int32_t left = -1;
    int32_t right = -1;
    // Leaf field.
    int label = 0;
    bool is_leaf = true;
    // Bookkeeping for importances.
    double impurity_decrease = 0.0;
    size_t num_samples = 0;
  };

  int32_t BuildNode(const Dataset& train, std::vector<size_t>& indices,
                    size_t depth, Rng& rng);

  DecisionTreeConfig config_;
  size_t num_features_ = 0;
  size_t num_classes_ = 0;
  std::vector<Node> nodes_;
  bool fitted_ = false;
};

}  // namespace opthash::ml

#endif  // OPTHASH_ML_DECISION_TREE_H_

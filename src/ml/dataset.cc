#include "ml/dataset.h"

#include <algorithm>

#include "common/check.h"

namespace opthash::ml {

void Dataset::Add(std::vector<double> features, int label) {
  OPTHASH_CHECK_GE(label, 0);
  if (features_.empty() && num_features_ == 0) {
    num_features_ = features.size();
  }
  OPTHASH_CHECK_EQ(features.size(), num_features_);
  features_.push_back(std::move(features));
  labels_.push_back(label);
}

size_t Dataset::NumClasses() const {
  int max_label = -1;
  for (int label : labels_) max_label = std::max(max_label, label);
  return static_cast<size_t>(max_label + 1);
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset subset(num_features_);
  for (size_t index : indices) {
    OPTHASH_CHECK_LT(index, NumExamples());
    subset.Add(features_[index], labels_[index]);
  }
  return subset;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(NumClasses(), 0);
  for (int label : labels_) ++counts[static_cast<size_t>(label)];
  return counts;
}

void Classifier::PredictBatch(const Matrix& rows, Span<int> out) const {
  OPTHASH_CHECK_EQ(rows.rows(), out.size());
  std::vector<double> row(rows.cols());
  for (size_t i = 0; i < rows.rows(); ++i) {
    const double* data = rows.Row(i);
    row.assign(data, data + rows.cols());
    out[i] = Predict(row);
  }
}

}  // namespace opthash::ml

#include "ml/cross_validation.h"

#include <algorithm>

#include "common/check.h"
#include "ml/metrics.h"

namespace opthash::ml {

std::vector<Fold> StratifiedKFold(const Dataset& data, size_t num_folds,
                                  uint64_t seed) {
  OPTHASH_CHECK_GE(num_folds, 2u);
  OPTHASH_CHECK_GT(data.NumExamples(), 0u);

  // Group example indices by class, shuffle within each class, then deal
  // them round-robin into folds.
  const size_t num_classes = data.NumClasses();
  std::vector<std::vector<size_t>> by_class(num_classes);
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    by_class[static_cast<size_t>(data.Label(i))].push_back(i);
  }
  Rng rng(seed);
  std::vector<std::vector<size_t>> fold_members(num_folds);
  size_t next_fold = 0;
  for (auto& members : by_class) {
    rng.Shuffle(members);
    for (size_t index : members) {
      fold_members[next_fold].push_back(index);
      next_fold = (next_fold + 1) % num_folds;
    }
  }

  std::vector<Fold> folds(num_folds);
  for (size_t f = 0; f < num_folds; ++f) {
    folds[f].validation_indices = fold_members[f];
    for (size_t other = 0; other < num_folds; ++other) {
      if (other == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    fold_members[other].begin(),
                                    fold_members[other].end());
    }
    std::sort(folds[f].train_indices.begin(), folds[f].train_indices.end());
    std::sort(folds[f].validation_indices.begin(),
              folds[f].validation_indices.end());
  }
  return folds;
}

double CrossValAccuracy(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, size_t num_folds, uint64_t seed) {
  const std::vector<Fold> folds = StratifiedKFold(data, num_folds, seed);
  double total_accuracy = 0.0;
  size_t scored_folds = 0;
  for (const Fold& fold : folds) {
    if (fold.validation_indices.empty() || fold.train_indices.empty()) {
      continue;
    }
    const Dataset train = data.Subset(fold.train_indices);
    const Dataset validation = data.Subset(fold.validation_indices);
    std::unique_ptr<Classifier> model = factory();
    model->Fit(train);
    const std::vector<int> predictions = model->PredictBatch(validation);
    total_accuracy += Accuracy(validation.labels(), predictions);
    ++scored_folds;
  }
  OPTHASH_CHECK_GT(scored_folds, 0u);
  return total_accuracy / static_cast<double>(scored_folds);
}

GridSearchResult GridSearchCV(const std::vector<GridCandidate>& candidates,
                              const Dataset& data, size_t num_folds,
                              uint64_t seed) {
  OPTHASH_CHECK(!candidates.empty());
  GridSearchResult result;
  result.accuracies.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double accuracy =
        CrossValAccuracy(candidates[i].factory, data, num_folds, seed);
    result.accuracies.push_back(accuracy);
    if (i == 0 || accuracy > result.best_accuracy) {
      result.best_accuracy = accuracy;
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace opthash::ml

#ifndef OPTHASH_ML_RANDOM_FOREST_H_
#define OPTHASH_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/bytes.h"
#include "ml/decision_tree.h"

namespace opthash::ml {

/// \brief Hyperparameters for the random forest.
struct RandomForestConfig {
  size_t num_trees = 30;
  /// Per-tree depth cap — tuned by the paper for `rf` (§6.2).
  size_t max_depth = 16;
  /// Features per split — the paper's other tuned `rf` hyperparameter;
  /// 0 means floor(sqrt(p)).
  size_t max_features = 0;
  size_t min_samples_leaf = 1;
  uint64_t seed = 11;
};

/// \brief Random forest (Breiman 2001, ref [44]) — the paper's `rf`.
///
/// Bagging over CART trees with per-split feature subsampling; prediction
/// is the majority vote. The paper found `rf` to give the best accuracy /
/// training-time trade-off on the query-log task (§7.3).
class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {});

  void Fit(const Dataset& train) override;
  int Predict(const std::vector<double>& features) const override;

  /// Raw-pointer scalar prediction over num_features doubles: majority
  /// vote accumulated in thread-local scratch, never allocating in steady
  /// state. Predict and PredictBatch route through it.
  int PredictRow(const double* features) const;

  /// Allocation-free row loop over the matrix (see Classifier docs).
  void PredictBatch(const Matrix& rows, Span<int> out) const override;
  using Classifier::PredictBatch;

  const char* Name() const override { return "rf"; }

  /// Average of per-tree impurity importances.
  std::vector<double> FeatureImportances() const;

  size_t NumTrees() const { return trees_.size(); }
  const RandomForestConfig& config() const { return config_; }

  /// Portable text serialization of the fitted ensemble.
  std::string Serialize() const;
  void SerializeTo(std::ostream& out) const;
  static Result<RandomForest> Deserialize(const std::string& blob);
  static Result<RandomForest> DeserializeFrom(std::istream& in);

  /// Binary snapshot payload (docs/FORMATS.md, section type 18): ensemble
  /// header followed by each tree's SerializeBinary payload inline.
  void SerializeBinary(io::ByteWriter& out) const;

  /// Rebuilds an ensemble from a SerializeBinary payload; fails with
  /// InvalidArgument on truncated/corrupt/mis-versioned bytes.
  static Result<RandomForest> DeserializeBinary(io::ByteReader& in);

 private:
  RandomForestConfig config_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<DecisionTree> trees_;
  bool fitted_ = false;
};

}  // namespace opthash::ml

#endif  // OPTHASH_ML_RANDOM_FOREST_H_

#include "ml/metrics.h"

#include "common/check.h"

namespace opthash::ml {

double Accuracy(const std::vector<int>& labels,
                const std::vector<int>& predictions) {
  OPTHASH_CHECK_EQ(labels.size(), predictions.size());
  OPTHASH_CHECK(!labels.empty());
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == predictions[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::vector<std::vector<size_t>> ConfusionMatrix(
    const std::vector<int>& labels, const std::vector<int>& predictions,
    size_t num_classes) {
  OPTHASH_CHECK_EQ(labels.size(), predictions.size());
  std::vector<std::vector<size_t>> matrix(num_classes,
                                          std::vector<size_t>(num_classes, 0));
  for (size_t i = 0; i < labels.size(); ++i) {
    const auto truth = static_cast<size_t>(labels[i]);
    const auto pred = static_cast<size_t>(predictions[i]);
    OPTHASH_CHECK_LT(truth, num_classes);
    OPTHASH_CHECK_LT(pred, num_classes);
    ++matrix[truth][pred];
  }
  return matrix;
}

double MacroF1(const std::vector<int>& labels,
               const std::vector<int>& predictions, size_t num_classes) {
  const auto matrix = ConfusionMatrix(labels, predictions, num_classes);
  double f1_total = 0.0;
  size_t active_classes = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    size_t tp = matrix[c][c];
    size_t fp = 0;
    size_t fn = 0;
    for (size_t other = 0; other < num_classes; ++other) {
      if (other == c) continue;
      fp += matrix[other][c];
      fn += matrix[c][other];
    }
    if (tp + fp + fn == 0) continue;  // Class absent everywhere.
    ++active_classes;
    if (tp == 0) continue;  // F1 = 0 for this class.
    const double precision =
        static_cast<double>(tp) / static_cast<double>(tp + fp);
    const double recall =
        static_cast<double>(tp) / static_cast<double>(tp + fn);
    f1_total += 2.0 * precision * recall / (precision + recall);
  }
  return active_classes == 0 ? 0.0
                             : f1_total / static_cast<double>(active_classes);
}

}  // namespace opthash::ml

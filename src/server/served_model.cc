#include "server/served_model.h"

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/model_io.h"
#include "io/sketch_snapshot.h"
#include "io/windowed_snapshot.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "sketch/windowed_sketch.h"
#include "stream/trace_io.h"

namespace opthash::server {
namespace {

// ---------------------------------------------------------------------------
// Shared adapters.

// Raw-typed sketch batch queries staged into double answers through
// fixed-size stack chunks (the restore verb's idiom): one chunk loop for
// every counter type, selected by the overloads below.
template <typename Raw, typename Sketch>
void EstimateChunksAsDouble(const Sketch& sketch, Span<const uint64_t> keys,
                            Span<double> out) {
  constexpr size_t kChunk = 256;
  Raw raw[kChunk];
  for (size_t base = 0; base < keys.size(); base += kChunk) {
    const size_t chunk = std::min(kChunk, keys.size() - base);
    sketch.EstimateBatch(keys.subspan(base, chunk), Span<Raw>(raw, chunk));
    for (size_t i = 0; i < chunk; ++i) {
      out[base + i] = static_cast<double>(raw[i]);
    }
  }
}

template <typename Sketch>
void EstimateBlockAsDouble(const Sketch& sketch, Span<const uint64_t> keys,
                           Span<double> out) {
  EstimateChunksAsDouble<uint64_t>(sketch, keys, out);
}

// Count-Sketch keeps its signed median semantics, matching the offline
// restore path (which prints negatives too).
void EstimateBlockAsDouble(const sketch::CountSketch& sketch,
                           Span<const uint64_t> keys, Span<double> out) {
  EstimateChunksAsDouble<int64_t>(sketch, keys, out);
}

// total_count() where the sketch tracks one (count-min, misra-gries,
// space-saving), 0 otherwise — resolved by overload preference.
template <typename Sketch>
auto TotalItemsOf(const Sketch& sketch, int) -> decltype(sketch.total_count()) {
  return sketch.total_count();
}
template <typename Sketch>
uint64_t TotalItemsOf(const Sketch&, long) {  // NOLINT runtime/int
  return 0;
}

class EmptyContext : public ServedModel::QueryContext {};

// Detects a native sketch-layer top-k accessor: the free function
// sketch::TopK(sketch, k) exists for the heavy-hitter summaries
// (misra-gries, space-saving) and the learned count-min's oracle table;
// plain cms/countsketch store no candidate ids and resolve to the base
// class's FailedPrecondition.
template <typename Sketch, typename = void>
struct HasNativeTopK : std::false_type {};
template <typename Sketch>
struct HasNativeTopK<Sketch,
                     std::void_t<decltype(sketch::TopK(
                         std::declval<const Sketch&>(), size_t{0}))>>
    : std::true_type {};

void SortAndTruncateHitters(std::vector<sketch::HeavyHitter>& hitters,
                            size_t k) {
  sketch::SortHeavyHitters(hitters);
  if (hitters.size() > k) hitters.resize(k);
}

// ---------------------------------------------------------------------------
// Mutable sketch models.

template <typename Sketch>
class SketchModel : public ServedModel {
 public:
  SketchModel(Sketch sketch, const char* kind, stream::ShardMode mode)
      : sketch_(std::move(sketch)), kind_(kind), mode_(mode) {}

  const char* Kind() const override { return kind_; }
  bool ReadOnly() const override { return false; }

  Status Ingest(Span<const uint64_t> keys,
                const stream::ShardedIngestConfig& config) override {
    stream::ShardedIngestConfig sharded = config;
    sharded.mode = mode_;
    auto stats = stream::ShardedIngest(keys, sharded, sketch_);
    return stats.ok() ? Status::OK() : stats.status();
  }

  std::unique_ptr<QueryContext> NewQueryContext() const override {
    return std::make_unique<EmptyContext>();
  }

  void EstimateBatch(QueryContext& /*context*/, Span<const uint64_t> keys,
                     Span<double> out) const override {
    EstimateBlockAsDouble(sketch_, keys, out);
  }

  bool SupportsTopK() const override { return HasNativeTopK<Sketch>::value; }

  Status TopK(QueryContext& context, size_t k,
              std::vector<sketch::HeavyHitter>& out) const override {
    if constexpr (HasNativeTopK<Sketch>::value) {
      out = sketch::TopK(sketch_, k);
      return Status::OK();
    } else {
      return ServedModel::TopK(context, k, out);
    }
  }

  Status SaveSnapshot(const std::string& path) const override {
    return io::SaveSketchSnapshot(path, sketch_);
  }

  uint64_t TotalItems() const override { return TotalItemsOf(sketch_, 0); }

 private:
  Sketch sketch_;
  const char* kind_;
  stream::ShardMode mode_;
};

template <typename Sketch>
std::unique_ptr<ServedModel> MakeSketchModel(Sketch sketch, const char* kind,
                                             stream::ShardMode mode) {
  return std::make_unique<SketchModel<Sketch>>(std::move(sketch), kind, mode);
}

// ---------------------------------------------------------------------------
// Windowed sketch rings (sliding-window / decayed counting).

template <typename Sketch>
class WindowedSketchModel : public ServedModel {
 public:
  WindowedSketchModel(sketch::WindowedSketch<Sketch> ring,
                      const char* base_kind, stream::ShardMode mode)
      : ring_(std::move(ring)),
        kind_(std::string("windowed-") + base_kind),
        mode_(mode) {}

  const char* Kind() const override { return kind_.c_str(); }
  bool ReadOnly() const override { return false; }

  Status Ingest(Span<const uint64_t> keys,
                const stream::ShardedIngestConfig& config) override {
    stream::ShardedIngestConfig sharded = config;
    sharded.mode = mode_;
    return ring_.Ingest(keys, sharded);
  }

  std::unique_ptr<QueryContext> NewQueryContext() const override {
    return std::make_unique<EmptyContext>();
  }

  void EstimateBatch(QueryContext& /*context*/, Span<const uint64_t> keys,
                     Span<double> out) const override {
    ring_.EstimateBatch(keys, out);
  }

  bool SupportsTopK() const override {
    return sketch::WindowedSketch<Sketch>::kHasNativeTopK;
  }

  Status TopK(QueryContext& context, size_t k,
              std::vector<sketch::HeavyHitter>& out) const override {
    if constexpr (sketch::WindowedSketch<Sketch>::kHasNativeTopK) {
      out = ring_.TopK(k);
      return Status::OK();
    } else {
      return ServedModel::TopK(context, k, out);
    }
  }

  bool SupportsWindowStats() const override { return true; }

  Status WindowStats(WindowStatsSnapshot& out) const override {
    out.window_items = ring_.window_items();
    out.window_sequence = ring_.window_sequence();
    out.items_in_current_window = ring_.items_in_current_window();
    out.decay = ring_.decay();
    out.window_counts = ring_.WindowCountsOldestFirst();
    return Status::OK();
  }

  Status SaveSnapshot(const std::string& path) const override {
    return io::SaveWindowedSketchSnapshot(path, ring_);
  }

  /// Live arrivals only: evicted windows leave the total, which is the
  /// honest "how much does this model currently count" answer.
  uint64_t TotalItems() const override { return ring_.total_items(); }

 private:
  sketch::WindowedSketch<Sketch> ring_;
  std::string kind_;
  stream::ShardMode mode_;
};

template <typename Sketch>
Result<OpenedModel> LoadWindowedModel(const std::string& path,
                                      const char* base_kind,
                                      stream::ShardMode mode) {
  auto ring = io::LoadWindowedSketchSnapshot<Sketch>(path);
  if (!ring.ok()) return ring.status();
  OpenedModel opened;
  opened.model = std::make_unique<WindowedSketchModel<Sketch>>(
      std::move(ring).value(), base_kind, mode);
  return opened;
}

// ---------------------------------------------------------------------------
// Model bundles (featurizer + OptHashEstimator + classifier).

class BundleModel : public ServedModel {
 public:
  explicit BundleModel(io::ModelBundle bundle)
      : bundle_(std::make_unique<io::ModelBundle>(std::move(bundle))) {}

  const char* Kind() const override { return "model-bundle"; }
  bool ReadOnly() const override { return false; }

  Status Ingest(Span<const uint64_t> keys,
                const stream::ShardedIngestConfig& config) override {
    // Stream processing only adds to bucket counters through the
    // read-only learned table, so per-worker delta arrays folded back at
    // the end are exactly a sequential Update loop (the `apply` verb's
    // engine invocation).
    core::OptHashEstimator& estimator = *bundle_->estimator;
    auto stats = stream::ShardedIngestCustom(
        keys, config,
        [&estimator](size_t) {
          return std::vector<double>(estimator.num_buckets(), 0.0);
        },
        [&estimator](std::vector<double>& deltas, size_t /*worker*/,
                     Span<const uint64_t> block) {
          estimator.AccumulateUpdates(block, deltas);
        },
        [&estimator](std::vector<double>& deltas) {
          return estimator.ApplyBucketDeltas(deltas);
        });
    return stats.ok() ? Status::OK() : stats.status();
  }

  std::unique_ptr<QueryContext> NewQueryContext() const override {
    return std::make_unique<Context>(*bundle_);
  }

  void EstimateBatch(QueryContext& context, Span<const uint64_t> keys,
                     Span<double> out) const override {
    // Key-only serving routes through the same BundleQueryEngine as the
    // offline `query` verb: ids the learned table resolves never touch
    // the featurizer, misses are featurized as blank-text queries. The
    // TraceRecord block reuses its storage (ids overwritten in place,
    // texts stay empty), so a warm session allocates nothing here.
    auto& ctx = static_cast<Context&>(context);
    ctx.block.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) ctx.block[i].id = keys[i];
    ctx.engine.EstimateBlock(
        Span<const stream::TraceRecord>(ctx.block.data(), ctx.block.size()),
        out);
  }

  bool SupportsTopK() const override { return true; }

  Status TopK(QueryContext& context, size_t k,
              std::vector<sketch::HeavyHitter>& out) const override {
    // Candidate set: the learned table's stored ids — the only keys the
    // bundle distinguishes individually (everything else shares classifier
    // buckets). Ascending id order makes the scan deterministic; every
    // candidate resolves in the table, so the classifier never runs. The
    // bucket-average estimates carry no deterministic per-key bound.
    std::vector<uint64_t> ids;
    ids.reserve(bundle_->estimator->table().size());
    for (const auto& [id, bucket] : bundle_->estimator->table()) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    out.clear();
    out.reserve(ids.size());
    constexpr size_t kChunk = 256;
    double estimates[kChunk];
    for (size_t base = 0; base < ids.size(); base += kChunk) {
      const size_t chunk = std::min(kChunk, ids.size() - base);
      EstimateBatch(context,
                    Span<const uint64_t>(ids.data() + base, chunk),
                    Span<double>(estimates, chunk));
      for (size_t i = 0; i < chunk; ++i) {
        out.push_back({ids[base + i], estimates[i], 0.0, false});
      }
    }
    SortAndTruncateHitters(out, k);
    return Status::OK();
  }

  Status SaveSnapshot(const std::string& path) const override {
    return io::SaveModelBundle(path, *bundle_, io::SnapshotFormat::kBinary);
  }

  uint64_t TotalItems() const override { return 0; }

 private:
  struct Context : QueryContext {
    explicit Context(const io::ModelBundle& bundle) : engine(bundle) {}
    io::BundleQueryEngine engine;
    std::vector<stream::TraceRecord> block;
  };

  // unique_ptr keeps the bundle's address stable: every session's
  // BundleQueryEngine holds a reference into it.
  std::unique_ptr<io::ModelBundle> bundle_;
};

// ---------------------------------------------------------------------------
// Zero-copy mmap views (read-only serving).

Status ReadOnlyError(const char* kind, const char* what) {
  return Status::FailedPrecondition(
      std::string(kind) + " is served read-only from the mapped file; " +
      what + " needs a full load (restart without --mmap)");
}

class MappedCountMinModel : public ServedModel {
 public:
  explicit MappedCountMinModel(io::MappedCountMinView view)
      : view_(std::move(view)) {}

  const char* Kind() const override { return "mapped-count-min"; }
  bool ReadOnly() const override { return true; }

  Status Ingest(Span<const uint64_t>,
                const stream::ShardedIngestConfig&) override {
    return ReadOnlyError(Kind(), "ingest");
  }

  std::unique_ptr<QueryContext> NewQueryContext() const override {
    return std::make_unique<EmptyContext>();
  }

  void EstimateBatch(QueryContext& /*context*/, Span<const uint64_t> keys,
                     Span<double> out) const override {
    EstimateChunksAsDouble<uint64_t>(view_, keys, out);
  }

  Status SaveSnapshot(const std::string& path) const override {
    (void)path;
    return ReadOnlyError(Kind(), "snapshot rotation");
  }

  uint64_t TotalItems() const override { return view_.total_count(); }

 private:
  io::MappedCountMinView view_;
};

class MappedBundleModel : public ServedModel {
 public:
  explicit MappedBundleModel(io::MappedEstimatorView view)
      : view_(std::move(view)) {}

  const char* Kind() const override { return "mapped-model-bundle"; }
  bool ReadOnly() const override { return true; }

  Status Ingest(Span<const uint64_t>,
                const stream::ShardedIngestConfig&) override {
    return ReadOnlyError(Kind(), "ingest");
  }

  std::unique_ptr<QueryContext> NewQueryContext() const override {
    return std::make_unique<EmptyContext>();
  }

  void EstimateBatch(QueryContext& /*context*/, Span<const uint64_t> keys,
                     Span<double> out) const override {
    view_.EstimateBatch(keys, out);
  }

  bool SupportsTopK() const override { return true; }

  Status TopK(QueryContext& /*context*/, size_t k,
              std::vector<sketch::HeavyHitter>& out) const override {
    // Same candidate set as BundleModel — the stored-id table, already
    // ascending on disk — through the view's batch path, so the mapped
    // answers are bit-identical to the full-load bundle's.
    const size_t stored = view_.num_stored_ids();
    out.clear();
    out.reserve(stored);
    constexpr size_t kChunk = 256;
    uint64_t ids[kChunk];
    double estimates[kChunk];
    for (size_t base = 0; base < stored; base += kChunk) {
      const size_t chunk = std::min(kChunk, stored - base);
      for (size_t i = 0; i < chunk; ++i) {
        ids[i] = view_.StoredId(base + i);
      }
      view_.EstimateBatch(Span<const uint64_t>(ids, chunk),
                          Span<double>(estimates, chunk));
      for (size_t i = 0; i < chunk; ++i) {
        out.push_back({ids[i], estimates[i], 0.0, false});
      }
    }
    SortAndTruncateHitters(out, k);
    return Status::OK();
  }

  Status SaveSnapshot(const std::string& path) const override {
    (void)path;
    return ReadOnlyError(Kind(), "snapshot rotation");
  }

  uint64_t TotalItems() const override { return 0; }

 private:
  io::MappedEstimatorView view_;
};

Status AmsRejected(const std::string& path) {
  return Status::InvalidArgument(
      path +
      " holds an AMS checkpoint, which answers only the stream-wide F2 "
      "moment — it cannot serve per-key frequency queries (use `restore`)");
}

Result<OpenedModel> OpenWindowedSketch(const std::string& path) {
  auto inner = io::WindowedInnerTypeOfFile(path);
  if (!inner.ok()) return inner.status();
  switch (inner.value()) {
    case io::SectionType::kCountMinSketch:
      return LoadWindowedModel<sketch::CountMinSketch>(
          path, "count-min", stream::ShardMode::kReplicated);
    case io::SectionType::kCountSketch:
      return LoadWindowedModel<sketch::CountSketch>(
          path, "count-sketch", stream::ShardMode::kReplicated);
    case io::SectionType::kAmsSketch:
      return AmsRejected(path);
    case io::SectionType::kLearnedCountMin:
      return LoadWindowedModel<sketch::LearnedCountMinSketch>(
          path, "learned-count-min", stream::ShardMode::kReplicated);
    case io::SectionType::kMisraGries:
      return LoadWindowedModel<sketch::MisraGries>(
          path, "misra-gries", stream::ShardMode::kKeyPartitioned);
    case io::SectionType::kSpaceSaving:
      return LoadWindowedModel<sketch::SpaceSaving>(
          path, "space-saving", stream::ShardMode::kKeyPartitioned);
    default:
      return Status::InvalidArgument(
          path + " holds no servable windowed sub-sketch");
  }
}

Result<OpenedModel> OpenSketch(const std::string& path, io::SectionType type,
                               bool use_mmap) {
  OpenedModel opened;
  switch (type) {
    case io::SectionType::kCountMinSketch: {
      if (use_mmap) {
        auto view = io::MappedCountMinView::Open(path);
        if (!view.ok()) return view.status();
        opened.model = std::make_unique<MappedCountMinModel>(
            std::move(view).value());
        opened.mmap_used = true;
        return opened;
      }
      auto sketch = io::LoadSketchSnapshot<sketch::CountMinSketch>(path);
      if (!sketch.ok()) return sketch.status();
      opened.model =
          MakeSketchModel(std::move(sketch).value(), "count-min",
                          stream::ShardMode::kReplicated);
      return opened;
    }
    case io::SectionType::kCountSketch: {
      auto sketch = io::LoadSketchSnapshot<sketch::CountSketch>(path);
      if (!sketch.ok()) return sketch.status();
      opened.model =
          MakeSketchModel(std::move(sketch).value(), "count-sketch",
                          stream::ShardMode::kReplicated);
      return opened;
    }
    case io::SectionType::kAmsSketch:
      return AmsRejected(path);
    case io::SectionType::kLearnedCountMin: {
      auto sketch =
          io::LoadSketchSnapshot<sketch::LearnedCountMinSketch>(path);
      if (!sketch.ok()) return sketch.status();
      opened.model =
          MakeSketchModel(std::move(sketch).value(), "learned-count-min",
                          stream::ShardMode::kReplicated);
      return opened;
    }
    case io::SectionType::kMisraGries: {
      auto sketch = io::LoadSketchSnapshot<sketch::MisraGries>(path);
      if (!sketch.ok()) return sketch.status();
      opened.model = MakeSketchModel(std::move(sketch).value(), "misra-gries",
                                     stream::ShardMode::kKeyPartitioned);
      return opened;
    }
    case io::SectionType::kSpaceSaving: {
      auto sketch = io::LoadSketchSnapshot<sketch::SpaceSaving>(path);
      if (!sketch.ok()) return sketch.status();
      opened.model =
          MakeSketchModel(std::move(sketch).value(), "space-saving",
                          stream::ShardMode::kKeyPartitioned);
      return opened;
    }
    case io::SectionType::kWindowedSketch:
      // Windowed rings have no mapped view; like every other unsupported
      // kind, an mmap request falls back to a full load (mmap_used stays
      // false) rather than refusing to serve.
      return OpenWindowedSketch(path);
    default:
      return Status::InvalidArgument(
          path + " holds no servable sketch section");
  }
}

}  // namespace

Status ServedModel::TopK(QueryContext& /*context*/, size_t /*k*/,
                         std::vector<sketch::HeavyHitter>& out) const {
  out.clear();
  return Status::FailedPrecondition(
      std::string(Kind()) +
      " stores no candidate ids and cannot answer top-k; supported kinds: "
      "misra-gries, space-saving, learned-count-min, model-bundle, "
      "mapped-model-bundle");
}

Status ServedModel::WindowStats(WindowStatsSnapshot& out) const {
  out = WindowStatsSnapshot();
  return Status::FailedPrecondition(
      std::string(Kind()) +
      " counts over the whole stream, not a sliding window; start the "
      "daemon with --windows W --window N (or serve a windowed checkpoint) "
      "to get window stats");
}

Result<OpenedModel> OpenServedModel(const std::string& path, bool use_mmap) {
  auto format = io::DetectFileFormat(path);
  if (!format.ok()) return format.status();

  if (format.value() == io::SnapshotFormat::kText) {
    // A text bundle has no mappable layout; like every other unsupported
    // kind, an mmap request falls back to a full load (reported via
    // mmap_used) instead of refusing to serve — a daemon that comes up
    // degraded beats one that stays down. (The offline `restore --mmap`
    // verb still errors here; serving favors availability.)
    auto bundle = io::LoadModelBundle(path);
    if (!bundle.ok()) return bundle.status();
    OpenedModel opened;
    opened.model = std::make_unique<BundleModel>(std::move(bundle).value());
    return opened;
  }

  auto sections = io::ListSnapshotSections(path);
  if (!sections.ok()) return sections.status();
  if (sections.value().size() == 1 &&
      sections.value().front() < io::SectionType::kLogisticRegression) {
    return OpenSketch(path, sections.value().front(), use_mmap);
  }

  // Multi-section binary files are model bundles.
  if (use_mmap) {
    auto view = io::MappedEstimatorView::Open(path);
    if (!view.ok()) return view.status();
    OpenedModel opened;
    opened.model =
        std::make_unique<MappedBundleModel>(std::move(view).value());
    opened.mmap_used = true;
    return opened;
  }
  auto bundle = io::LoadModelBundle(path);
  if (!bundle.ok()) return bundle.status();
  OpenedModel opened;
  opened.model = std::make_unique<BundleModel>(std::move(bundle).value());
  return opened;
}

namespace {

// Wraps the freshly built base sketch in a windowed ring when the spec
// asks for one; otherwise serves it as the plain lifetime counter.
template <typename Sketch>
Result<std::unique_ptr<ServedModel>> MakeServedMaybeWindowed(
    Sketch sketch, const char* kind, stream::ShardMode mode,
    const FreshSketchSpec& spec) {
  if (spec.windows == 0) {
    return MakeSketchModel(std::move(sketch), kind, mode);
  }
  auto ring = sketch::WindowedSketch<Sketch>::Create(
      sketch, spec.windows, spec.window_items, spec.decay);
  if (!ring.ok()) return ring.status();
  return std::unique_ptr<ServedModel>(
      std::make_unique<WindowedSketchModel<Sketch>>(std::move(ring).value(),
                                                    kind, mode));
}

}  // namespace

Result<std::unique_ptr<ServedModel>> CreateServedSketch(
    const FreshSketchSpec& spec) {
  if (spec.width == 0 || spec.depth == 0 || spec.capacity == 0 ||
      spec.buckets == 0) {
    return Status::InvalidArgument(
        "--width, --depth, --capacity and --buckets must be >= 1");
  }
  if (spec.windows == 0) {
    if (spec.window_items > 0 || spec.decay != 1.0) {
      return Status::InvalidArgument(
          "--window and --decay configure windowed counting; add "
          "--windows W (>= 1)");
    }
  } else {
    // Serving has no manual-tick driver, so item-count advance is the
    // only mode: a windowed daemon must say how many arrivals one
    // window holds.
    if (spec.window_items == 0) {
      return Status::InvalidArgument(
          "windowed serving advances by item count: --window N must be "
          ">= 1");
    }
    Status valid = sketch::ValidateWindowedConfig(spec.windows, spec.decay);
    if (!valid.ok()) return valid;
  }
  if (spec.kind == "cms") {
    return MakeServedMaybeWindowed(
        sketch::CountMinSketch(spec.width, spec.depth, spec.seed,
                               spec.conservative),
        "count-min", stream::ShardMode::kReplicated, spec);
  }
  if (spec.kind == "countsketch") {
    return MakeServedMaybeWindowed(
        sketch::CountSketch(spec.width, spec.depth, spec.seed),
        "count-sketch", stream::ShardMode::kReplicated, spec);
  }
  if (spec.kind == "lcms") {
    // A fresh daemon has no prefix to rank heavy keys from, so the
    // learned sketch starts with an empty oracle set (pure CMS behavior);
    // serve a checkpoint produced by `snapshot --sketch lcms` to keep a
    // trained oracle.
    auto lcms = sketch::LearnedCountMinSketch::Create(spec.buckets,
                                                      spec.depth, {},
                                                      spec.seed);
    if (!lcms.ok()) return lcms.status();
    return MakeServedMaybeWindowed(std::move(lcms).value(),
                                   "learned-count-min",
                                   stream::ShardMode::kReplicated, spec);
  }
  if (spec.kind == "mg") {
    return MakeServedMaybeWindowed(sketch::MisraGries(spec.capacity),
                                   "misra-gries",
                                   stream::ShardMode::kKeyPartitioned, spec);
  }
  if (spec.kind == "ss") {
    return MakeServedMaybeWindowed(sketch::SpaceSaving(spec.capacity),
                                   "space-saving",
                                   stream::ShardMode::kKeyPartitioned, spec);
  }
  if (spec.kind == "ams") {
    return Status::InvalidArgument(
        "ams answers only the F2 moment and cannot be served");
  }
  return Status::InvalidArgument("unknown sketch kind: " + spec.kind);
}

}  // namespace opthash::server

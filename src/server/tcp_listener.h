#ifndef OPTHASH_SERVER_TCP_LISTENER_H_
#define OPTHASH_SERVER_TCP_LISTENER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace opthash::server {

/// TCP transport for the opthash serving protocol. The framing layer
/// (server/protocol.h) is byte-stream agnostic, so TCP and Unix-domain
/// sessions speak the identical wire format; this header only contributes
/// listening/connecting and the `host:port` address syntax shared by
/// `opthash_serve --listen` and the client tools. Like socket_io.h, every
/// entry point on _WIN32 builds fails with a clean FailedPrecondition.

/// A parsed `host:port` listen/connect target.
struct HostPort {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port" (the split is at the LAST colon, so a ":"-free host
/// is required — numeric IPv6 is out of scope for now). Port 0 is allowed
/// for listeners (the kernel picks; see ListeningTcp::port) but rejected
/// by callers that need a connectable address.
Result<HostPort> ParseHostPort(const std::string& address);

/// True when `target` parses as host:port rather than a socket path —
/// how Client::Connect and the tools route one target string to the
/// right transport. Paths (anything with '/', or no parseable port)
/// stay Unix-domain.
bool LooksLikeHostPort(const std::string& target);

/// ListenTcp's result: the listening fd plus the actually-bound port
/// (interesting when the caller asked for port 0).
struct ListeningTcp {
  int fd = -1;
  uint16_t port = 0;
};

/// Resolves `host`, binds a TCP listener with SO_REUSEADDR and starts
/// listening. `host` may be a numeric address or a name ("localhost");
/// the first resolvable candidate wins.
Result<ListeningTcp> ListenTcp(const HostPort& address, int backlog = 16);

/// Connects a TCP stream to `host:port` with TCP_NODELAY set (the
/// protocol is request/response; Nagle would add 40ms stalls to every
/// small frame).
Result<int> ConnectTcp(const HostPort& address);

/// Best-effort TCP_NODELAY on an accepted connection; harmlessly a no-op
/// on non-TCP fds (Unix-domain sessions share the accept path).
void SetTcpNoDelay(int fd);

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_TCP_LISTENER_H_

#ifndef OPTHASH_SERVER_EVENT_LOOP_H_
#define OPTHASH_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/timer.h"

namespace opthash::server {

/// \brief Readiness-driven connection handling for the serving daemon:
/// one thread per EventLoop (the pool sizes itself to the core count, not
/// the connection count), non-blocking sockets, per-connection read/write
/// buffering of the length-prefixed framing, idle-timeout reaping and
/// write backpressure.
///
/// Each adopted connection belongs to exactly one loop; all its state —
/// buffers, session scratch, the frame parser — is touched only by that
/// loop's thread, so sessions need no locking of their own. The frame
/// handler runs inline on the loop thread: handlers must stay short-ish
/// (the model's batched estimate under a shared lock qualifies; ingest
/// briefly serializes, exactly as it did under thread-per-session).
///
/// Error semantics match the thread-per-session daemon byte for byte:
/// a framing violation (oversized length prefix, peer vanishing
/// mid-frame) answers one kError frame and then hangs up; handler-level
/// protocol errors close after the response; semantic errors keep the
/// session. Backends: epoll on Linux, poll(2) elsewhere; _WIN32 builds
/// fail Start() with FailedPrecondition like the rest of the socket
/// layer.
struct EventLoopConfig {
  /// Wait cap per loop iteration; bounds shutdown latency and the
  /// idle-timeout sweep cadence.
  int poll_millis = 100;
  /// Connections with no read/write progress for this long are closed
  /// (0 = never). Also the slow-reader guillotine: a peer that stops
  /// reading its replies makes no progress and gets reaped.
  double idle_timeout_seconds = 0.0;
  /// Hard cap on bytes buffered for one connection's unread replies;
  /// beyond it the connection is closed (a slow reader must not grow the
  /// daemon's memory without bound).
  size_t max_write_buffer = 32u << 20;
  /// Above this many pending reply bytes the loop stops READING from the
  /// connection until the peer drains (0 = max_write_buffer / 2).
  size_t write_high_watermark = 0;

  Status Validate() const;
};

class EventLoop {
 public:
  /// Per-connection server-side state (query context + scratch); created
  /// by the factory when a connection is adopted, destroyed on close,
  /// only ever touched by the owning loop thread.
  class SessionState {
   public:
    virtual ~SessionState() = default;
  };
  using SessionFactory = std::function<std::unique_ptr<SessionState>()>;

  /// Handles one complete request frame payload; renders one complete
  /// response frame (length prefix included) into `response`. Returning
  /// false closes the connection once the response has flushed.
  using FrameHandler = std::function<bool(
      SessionState& session, Span<const uint8_t> payload,
      std::vector<uint8_t>& response)>;

  EventLoop(EventLoopConfig config, SessionFactory factory,
            FrameHandler handler);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Status Start();
  /// Stops the loop thread and closes every connection (one best-effort
  /// flush of pending replies first). Idempotent.
  void Stop();

  /// Hands a connected socket to this loop (thread-safe; the loop takes
  /// ownership and sets it non-blocking). Fails once Stop() has run.
  Status Adopt(int fd);

  /// Live connections, counting adoptions still in the mailbox — the
  /// accept thread's connection-limit check must see them immediately.
  size_t connections() const {
    return connection_count_.load(std::memory_order_acquire);
  }
  uint64_t closed_idle() const { return closed_idle_.load(); }
  uint64_t closed_backpressure() const {
    return closed_backpressure_.load();
  }

 private:
  struct Connection;
  class Poller;

  void Run();
  void AdoptPending();
  void HandleReadable(Connection& connection);
  void ParseFrames(Connection& connection);
  void FlushWrites(Connection& connection);
  void UpdateInterest(Connection& connection);
  void CloseConnection(int fd);
  void SweepIdle();
  void Wake();

  const EventLoopConfig config_;
  const SessionFactory factory_;
  const FrameHandler handler_;

  std::unique_ptr<Poller> poller_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::mutex pending_mutex_;
  std::vector<int> pending_adopt_;

  // Loop-thread-only state.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::vector<uint8_t> response_scratch_;
  std::vector<int> doomed_scratch_;
  Timer clock_;

  std::atomic<size_t> connection_count_{0};
  std::atomic<uint64_t> closed_idle_{0};
  std::atomic<uint64_t> closed_backpressure_{0};
};

/// N independent loops (default: one per hardware thread) with
/// round-robin connection placement — the serving daemon's replacement
/// for thread-per-session.
class EventLoopPool {
 public:
  EventLoopPool(size_t loops, EventLoopConfig config,
                EventLoop::SessionFactory factory,
                EventLoop::FrameHandler handler);

  Status Start();
  void Stop();

  Status Adopt(int fd);
  size_t connections() const;
  uint64_t closed_idle() const;
  uint64_t closed_backpressure() const;
  size_t size() const { return loops_.size(); }

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_{0};
};

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_EVENT_LOOP_H_

#include "server/tcp_listener.h"

#include <cstring>

#ifndef _WIN32
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace opthash::server {

Result<HostPort> ParseHostPort(const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("expected host:port, got: " + address);
  }
  const std::string port_text = address.substr(colon + 1);
  if (port_text.find_first_not_of("0123456789") != std::string::npos ||
      port_text.size() > 5) {
    return Status::InvalidArgument("port must be 0..65535, got: " +
                                   port_text);
  }
  const unsigned long port = std::stoul(port_text);
  if (port > 65535) {
    return Status::InvalidArgument("port must be 0..65535, got: " +
                                   port_text);
  }
  HostPort parsed;
  parsed.host = address.substr(0, colon);
  parsed.port = static_cast<uint16_t>(port);
  return parsed;
}

bool LooksLikeHostPort(const std::string& target) {
  // A '/' can only mean a filesystem path; otherwise host:port wins when
  // it parses. A bare path like "daemon.sock" has no colon and stays a
  // path; "localhost:9090" parses and goes TCP.
  if (target.find('/') != std::string::npos) return false;
  return ParseHostPort(target).ok();
}

#ifndef _WIN32

namespace {

Result<addrinfo*> ResolveTcp(const HostPort& address, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string port_text = std::to_string(address.port);
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(address.host.c_str(), port_text.c_str(),
                               &hints, &results);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve " + address.host + ":" +
                                   port_text + ": " + ::gai_strerror(rc));
  }
  return results;
}

}  // namespace

Result<ListeningTcp> ListenTcp(const HostPort& address, int backlog) {
  auto resolved = ResolveTcp(address, /*passive=*/true);
  if (!resolved.ok()) return resolved.status();
  Status last_error = Status::Internal("no address candidates for " +
                                       address.host);
  for (addrinfo* candidate = resolved.value(); candidate != nullptr;
       candidate = candidate->ai_next) {
    const int fd = ::socket(candidate->ai_family, candidate->ai_socktype,
                            candidate->ai_protocol);
    if (fd < 0) {
      last_error = Status::Internal(std::string("socket: ") +
                                    std::strerror(errno));
      continue;
    }
    // SO_REUSEADDR: a restarted daemon must not wait out TIME_WAIT of its
    // previous incarnation's connections.
    const int enable = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    if (::bind(fd, candidate->ai_addr, candidate->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last_error = Status::Internal("bind/listen " + address.host + ":" +
                                    std::to_string(address.port) + ": " +
                                    std::strerror(errno));
      ::close(fd);
      continue;
    }
    ListeningTcp listening;
    listening.fd = fd;
    listening.port = address.port;
    if (address.port == 0) {
      // The kernel picked; report the real port so tests and operators
      // can connect to `--listen 127.0.0.1:0` daemons.
      sockaddr_storage bound{};
      socklen_t bound_len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                        &bound_len) == 0) {
        if (bound.ss_family == AF_INET) {
          listening.port = ntohs(
              reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
        } else if (bound.ss_family == AF_INET6) {
          listening.port = ntohs(
              reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
        }
      }
    }
    ::freeaddrinfo(resolved.value());
    return listening;
  }
  ::freeaddrinfo(resolved.value());
  return last_error;
}

Result<int> ConnectTcp(const HostPort& address) {
  if (address.port == 0) {
    return Status::InvalidArgument("cannot connect to port 0");
  }
  auto resolved = ResolveTcp(address, /*passive=*/false);
  if (!resolved.ok()) return resolved.status();
  Status last_error = Status::NotFound("no address candidates for " +
                                       address.host);
  for (addrinfo* candidate = resolved.value(); candidate != nullptr;
       candidate = candidate->ai_next) {
    const int fd = ::socket(candidate->ai_family, candidate->ai_socktype,
                            candidate->ai_protocol);
    if (fd < 0) {
      last_error = Status::Internal(std::string("socket: ") +
                                    std::strerror(errno));
      continue;
    }
    if (::connect(fd, candidate->ai_addr, candidate->ai_addrlen) != 0) {
      last_error = Status::NotFound("connect " + address.host + ":" +
                                    std::to_string(address.port) + ": " +
                                    std::strerror(errno));
      ::close(fd);
      continue;
    }
    SetTcpNoDelay(fd);
    ::freeaddrinfo(resolved.value());
    return fd;
  }
  ::freeaddrinfo(resolved.value());
  return last_error;
}

void SetTcpNoDelay(int fd) {
  const int enable = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

#else  // _WIN32

namespace {
Status Unsupported() {
  return Status::FailedPrecondition(
      "opthash TCP serving requires POSIX sockets, unavailable in this "
      "build");
}
}  // namespace

Result<ListeningTcp> ListenTcp(const HostPort&, int) { return Unsupported(); }
Result<int> ConnectTcp(const HostPort&) { return Unsupported(); }
void SetTcpNoDelay(int) {}

#endif  // _WIN32

}  // namespace opthash::server

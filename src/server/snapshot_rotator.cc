#include "server/snapshot_rotator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "io/bytes.h"

#ifndef _WIN32
#include <dirent.h>
#include <errno.h>
#include <sys/stat.h>
#include <sys/types.h>
#else
#include <direct.h>
#endif

namespace opthash::server {
namespace {

constexpr char kPrefix[] = "snapshot-";
constexpr char kSuffix[] = ".bin";
constexpr size_t kSequenceDigits = 6;

std::string SnapshotFileName(uint64_t sequence) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%0*llu%s", kPrefix,
                static_cast<int>(kSequenceDigits),
                static_cast<unsigned long long>(sequence), kSuffix);
  return name;
}

/// snapshot-NNNNNN.bin -> NNNNNN; nullopt-style via ok flag.
bool ParseSequence(const std::string& name, uint64_t& sequence) {
  const size_t prefix = sizeof(kPrefix) - 1;
  const size_t suffix = sizeof(kSuffix) - 1;
  if (name.size() <= prefix + suffix) return false;
  if (name.compare(0, prefix, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kSuffix) != 0) return false;
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  sequence = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

Status EnsureDirectory(const std::string& dir) {
#ifndef _WIN32
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return Status::OK();
#else
  if (::_mkdir(dir.c_str()) == 0 || errno == EEXIST) return Status::OK();
#endif
  return Status::Internal("mkdir " + dir + ": " + std::strerror(errno));
}

}  // namespace

Status RotationConfig::Validate() const {
  if (!enabled()) {
    if (every_items != 0 || every_seconds != 0.0) {
      return Status::InvalidArgument(
          "snapshot triggers need --snapshot-dir");
    }
    return Status::OK();
  }
  if (keep == 0) {
    return Status::InvalidArgument("--snapshot-keep must be >= 1");
  }
  if (every_seconds < 0.0 || poll_seconds <= 0.0) {
    return Status::InvalidArgument(
        "snapshot intervals must be non-negative");
  }
  return Status::OK();
}

SnapshotRotator::SnapshotRotator(RotationConfig config, ItemsFn items,
                                 SaveFn save)
    : config_(std::move(config)),
      items_(std::move(items)),
      save_(std::move(save)) {}

SnapshotRotator::~SnapshotRotator() { Stop(); }

Result<std::vector<std::pair<uint64_t, std::string>>>
SnapshotRotator::ListRotated(const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> rotated;
#ifndef _WIN32
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::NotFound("opendir " + dir + ": " + std::strerror(errno));
  }
  while (dirent* entry = ::readdir(handle)) {
    uint64_t sequence = 0;
    if (ParseSequence(entry->d_name, sequence)) {
      rotated.emplace_back(sequence, entry->d_name);
    }
  }
  ::closedir(handle);
#else
  return Status::FailedPrecondition(
      "snapshot rotation requires POSIX directory enumeration");
#endif
  std::sort(rotated.begin(), rotated.end());
  return rotated;
}

Result<std::string> SnapshotRotator::FindLatestSnapshot(
    const std::string& dir) {
  auto rotated = ListRotated(dir);
  if (!rotated.ok()) return rotated.status();
  if (rotated.value().empty()) {
    return Status::NotFound("no rotated snapshots in " + dir);
  }
  return dir + "/" + rotated.value().back().second;
}

Status SnapshotRotator::Start() {
  if (!config_.enabled()) return Status::OK();
  OPTHASH_IO_RETURN_IF_ERROR(config_.Validate());
  OPTHASH_IO_RETURN_IF_ERROR(EnsureDirectory(config_.dir));

  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::OK();
  auto rotated = ListRotated(config_.dir);
  if (!rotated.ok()) return rotated.status();
  if (!rotated.value().empty()) {
    next_sequence_ = rotated.value().back().first + 1;
  }
  items_at_last_rotation_ = items_();
  {
    std::lock_guard<std::mutex> age_lock(age_mutex_);
    since_last_rotation_.Restart();
  }
  started_ = true;
  stop_ = false;
  if (config_.every_items != 0 || config_.every_seconds != 0.0) {
    poller_ = std::thread([this] { PollLoop(); });
  }
  return Status::OK();
}

void SnapshotRotator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  if (poller_.joinable()) poller_.join();
}

Result<uint64_t> SnapshotRotator::RotateLocked() {
  const uint64_t sequence = next_sequence_;
  const std::string final_path = config_.dir + "/" + SnapshotFileName(sequence);
  const std::string temp_path = final_path + ".tmp";
  const uint64_t items_now = items_();
  const Status saved = save_(temp_path);
  if (!saved.ok()) {
    failed_rotations_.fetch_add(1);
    std::remove(temp_path.c_str());  // Drop any partial write.
    return saved;
  }
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    failed_rotations_.fetch_add(1);
    const Status status = Status::Internal(
        "rename " + temp_path + " -> " + final_path + ": " +
        std::strerror(errno));
    std::remove(temp_path.c_str());
    return status;
  }
  ++next_sequence_;
  rotations_.fetch_add(1);
  items_at_last_rotation_ = items_now;
  {
    std::lock_guard<std::mutex> age_lock(age_mutex_);
    rotated_once_ = true;
    since_last_rotation_.Restart();
  }

  // Bounded retention: prune oldest beyond `keep`. Prune failures are
  // reported but do not fail the rotation that already succeeded.
  auto rotated = ListRotated(config_.dir);
  if (rotated.ok() && rotated.value().size() > config_.keep) {
    const size_t excess = rotated.value().size() - config_.keep;
    for (size_t i = 0; i < excess; ++i) {
      const std::string stale =
          config_.dir + "/" + rotated.value()[i].second;
      if (std::remove(stale.c_str()) != 0) {
        std::fprintf(stderr, "opthash_serve: cannot prune %s: %s\n",
                     stale.c_str(), std::strerror(errno));
      }
    }
  }
  return sequence;
}

Result<uint64_t> SnapshotRotator::RotateNow() {
  if (!config_.enabled()) {
    return Status::FailedPrecondition(
        "snapshot rotation is disabled (daemon started without "
        "--snapshot-dir)");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return RotateLocked();
}

double SnapshotRotator::LastRotationAgeSeconds() const {
  std::lock_guard<std::mutex> lock(age_mutex_);
  if (!rotated_once_) return -1.0;
  return since_last_rotation_.ElapsedSeconds();
}

uint64_t SnapshotRotator::rotations() const { return rotations_.load(); }

uint64_t SnapshotRotator::failed_rotations() const {
  return failed_rotations_.load();
}

void SnapshotRotator::PollLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    wake_.wait_for(lock, std::chrono::duration<double>(config_.poll_seconds),
                   [this] { return stop_; });
    if (stop_) return;
    const bool item_due =
        config_.every_items != 0 &&
        items_() - items_at_last_rotation_ >= config_.every_items;
    bool time_due = false;
    if (config_.every_seconds != 0.0) {
      // Read the timer under its own mutex; the clock also runs between
      // Start and the first rotation (rotated_once_ only gates the
      // "never rotated" stats answer, not this trigger).
      std::lock_guard<std::mutex> age_lock(age_mutex_);
      time_due =
          since_last_rotation_.ElapsedSeconds() >= config_.every_seconds;
    }
    if (!item_due && !time_due) continue;
    auto rotated = RotateLocked();
    if (!rotated.ok()) {
      std::fprintf(stderr, "opthash_serve: rotation failed: %s\n",
                   rotated.status().ToString().c_str());
    }
  }
}

}  // namespace opthash::server

#ifndef OPTHASH_SERVER_CLIENT_H_
#define OPTHASH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "server/protocol.h"

namespace opthash::server {

/// \brief Synchronous client for the opthash serving protocol: one
/// connection, one outstanding request at a time (the protocol has no
/// request ids — responses arrive in request order). This is the library
/// behind `opthash_client`, the serving tests and the latency benchmark.
///
/// Errors come in two layers and keep their layer: transport/protocol
/// failures surface as this machine's Status (and poison the connection
/// — callers reconnect); errors the *server* sent back are returned as
/// the remote Status, prefixed "server: ", with the connection still
/// usable. Frame buffers are reused across calls, so a warm client
/// allocates only for result vectors the caller keeps.
///
/// Move-only; the destructor closes the connection.
class Client {
 public:
  /// Connects to a serving daemon. `target` is either a Unix-domain
  /// socket path ("/run/opthash.sock") or a TCP "host:port"
  /// ("127.0.0.1:9090") — anything containing '/' or without a parseable
  /// port is treated as a path. Both transports speak the identical
  /// protocol; everything below is transport-blind.
  static Result<Client> Connect(const std::string& target);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Round-trip liveness probe.
  Status Ping();

  /// Batched frequency query: out[i] = estimate of keys[i]. `out` is
  /// cleared and refilled (capacity reused). Key spans larger than one
  /// frame (kMaxKeysPerFrame) are transparently split across requests.
  Status Query(Span<const uint64_t> keys, std::vector<double>& out);

  /// Ingests one block of arrivals; returns the server's total items
  /// ingested this run (after this block). Split across frames like
  /// Query — note each frame is then its own atomicity unit on the
  /// server.
  Result<uint64_t> Ingest(Span<const uint64_t> keys);

  Result<ServerStatsSnapshot> Stats();

  /// The server's k heaviest keys, heaviest first, in the shared
  /// HeavyHitter vocabulary. `out` is cleared and refilled (capacity
  /// reused). Fails with the server's FailedPrecondition when the served
  /// artifact kind cannot answer top-k.
  Status TopK(uint32_t k, std::vector<sketch::HeavyHitter>& out);

  /// The server's Prometheus text-exposition scrape body.
  Status Metrics(std::string& text);

  /// Ring position + per-window arrival counts of a windowed model.
  /// Fails with the server's FailedPrecondition when the served artifact
  /// counts over the whole stream instead of a sliding window.
  Result<WindowStatsSnapshot> WindowStats();

  /// Forces one snapshot rotation; returns the sequence number written.
  Result<uint64_t> Snapshot();

  /// Asks the daemon to shut down cleanly (acknowledged before it does).
  Status Shutdown();

  /// Addresses every subsequent request to this model id by wrapping it
  /// in a kScopedRequest envelope. Id 0 (the default) sends bare frames
  /// — byte-identical to a client predating the envelope. Non-zero ids
  /// are answered NotFound until the multi-bundle registry lands.
  void set_model_id(uint32_t id) { model_id_ = id; }
  uint32_t model_id() const { return model_id_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends request_frame_ and reads one response payload into
  /// response_payload_; decodes a kError response into the remote Status.
  Status RoundTrip();

  /// The single request/reply path every verb funnels through: wraps
  /// request_frame_ in a scoped envelope when model_id_ != 0, round-trips
  /// it, surfaces a kError reply as the remote Status, and returns the
  /// reply payload for the verb to decode.
  Result<Span<const uint8_t>> Call();

  /// Keys per request frame: one fewer than the frame maximum when the
  /// scoped envelope's 6 header bytes ride along.
  size_t MaxKeysPerRequest() const {
    return model_id_ == 0 ? kMaxKeysPerFrame : kMaxKeysPerFrame - 1;
  }

  int fd_ = -1;
  uint32_t model_id_ = 0;
  std::vector<uint8_t> request_frame_;
  std::vector<uint8_t> scoped_frame_;
  std::vector<uint8_t> response_payload_;
};

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_CLIENT_H_

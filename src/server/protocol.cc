#include "server/protocol.h"

#include <cstring>

#include "io/bytes.h"

namespace opthash::server {
namespace {

// Little-endian appenders over a raw byte vector. The protocol reuses the
// io/ byte order helpers but not ByteWriter: a session encodes responses
// into one long-lived vector whose capacity survives across frames, which
// ByteWriter's take-the-buffer idiom would defeat.
void AppendU8(std::vector<uint8_t>& out, uint8_t value) {
  out.push_back(value);
}

void AppendU32(std::vector<uint8_t>& out, uint32_t value) {
  if (!io::HostIsLittleEndian()) value = io::ByteSwap32(value);
  const size_t at = out.size();
  out.resize(at + sizeof(value));
  std::memcpy(out.data() + at, &value, sizeof(value));
}

void AppendU64(std::vector<uint8_t>& out, uint64_t value) {
  if (!io::HostIsLittleEndian()) value = io::ByteSwap64(value);
  const size_t at = out.size();
  out.resize(at + sizeof(value));
  std::memcpy(out.data() + at, &value, sizeof(value));
}

void AppendDouble(std::vector<uint8_t>& out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

// Starts a frame: placeholder length prefix + message type. SealFrame
// patches the prefix once the body is in place.
void BeginFrame(std::vector<uint8_t>& frame, MessageType type) {
  frame.clear();
  AppendU32(frame, 0);
  AppendU8(frame, static_cast<uint8_t>(type));
}

void SealFrame(std::vector<uint8_t>& frame) {
  uint32_t length = static_cast<uint32_t>(frame.size() - kFrameHeaderSize);
  OPTHASH_CHECK_LE(length, kMaxFramePayload);
  if (!io::HostIsLittleEndian()) length = io::ByteSwap32(length);
  std::memcpy(frame.data(), &length, sizeof(length));
}

Status ShortPayload(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " payload");
}

bool IsKeyRequest(MessageType type) {
  return type == MessageType::kQuery || type == MessageType::kIngest;
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kQuery:
      return "query";
    case MessageType::kIngest:
      return "ingest";
    case MessageType::kStats:
      return "stats";
    case MessageType::kPing:
      return "ping";
    case MessageType::kSnapshot:
      return "snapshot";
    case MessageType::kShutdown:
      return "shutdown";
    case MessageType::kTopK:
      return "topk";
    case MessageType::kMetrics:
      return "metrics";
    case MessageType::kScopedRequest:
      return "scoped-request";
    case MessageType::kWindowStats:
      return "window-stats";
    case MessageType::kEstimates:
      return "estimates";
    case MessageType::kAck:
      return "ack";
    case MessageType::kStatsReply:
      return "stats-reply";
    case MessageType::kPong:
      return "pong";
    case MessageType::kTopKReply:
      return "topk-reply";
    case MessageType::kMetricsReply:
      return "metrics-reply";
    case MessageType::kWindowStatsReply:
      return "window-stats-reply";
    case MessageType::kError:
      return "error";
  }
  return "unknown";
}

void EncodeKeyRequest(MessageType type, Span<const uint64_t> keys,
                      std::vector<uint8_t>& frame) {
  OPTHASH_CHECK_MSG(IsKeyRequest(type), "not a key-batch request type");
  BeginFrame(frame, type);
  AppendU32(frame, static_cast<uint32_t>(keys.size()));
  const size_t at = frame.size();
  frame.resize(at + keys.size() * sizeof(uint64_t));
  if (io::HostIsLittleEndian()) {
    if (!keys.empty()) {
      std::memcpy(frame.data() + at, keys.data(),
                  keys.size() * sizeof(uint64_t));
    }
  } else {
    for (size_t i = 0; i < keys.size(); ++i) {
      uint64_t value = io::ByteSwap64(keys[i]);
      std::memcpy(frame.data() + at + i * sizeof(uint64_t), &value,
                  sizeof(value));
    }
  }
  SealFrame(frame);
}

void EncodeEmptyMessage(MessageType type, std::vector<uint8_t>& frame) {
  BeginFrame(frame, type);
  SealFrame(frame);
}

void EncodeEstimatesResponse(Span<const double> estimates,
                             std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kEstimates);
  AppendU32(frame, static_cast<uint32_t>(estimates.size()));
  for (double value : estimates) AppendDouble(frame, value);
  SealFrame(frame);
}

void EncodeAckResponse(uint64_t value, std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kAck);
  AppendU64(frame, value);
  SealFrame(frame);
}

void EncodeStatsResponse(const ServerStatsSnapshot& stats,
                         std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kStatsReply);
  AppendU64(frame, stats.items_ingested);
  AppendU64(frame, stats.queries_served);
  AppendU64(frame, stats.query_requests);
  AppendU64(frame, stats.ingest_requests);
  AppendU64(frame, stats.sessions_accepted);
  AppendU64(frame, stats.snapshots_written);
  AppendU64(frame, stats.model_total_items);
  AppendDouble(frame, stats.uptime_seconds);
  AppendDouble(frame, stats.query_p50_micros);
  AppendDouble(frame, stats.query_p99_micros);
  AppendDouble(frame, stats.snapshot_age_seconds);
  SealFrame(frame);
}

void EncodeErrorResponse(const Status& error, std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kError);
  AppendU8(frame, WireCodeOfStatus(error.code()));
  const std::string& message = error.message();
  // Clamp: an error message must never push the frame past the limit.
  const size_t length =
      std::min(message.size(), kMaxFramePayload - frame.size());
  AppendU32(frame, static_cast<uint32_t>(length));
  frame.insert(frame.end(), message.data(), message.data() + length);
  SealFrame(frame);
}

void EncodeTopKRequest(uint32_t k, std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kTopK);
  AppendU32(frame, k);
  SealFrame(frame);
}

void EncodeTopKReply(Span<const sketch::HeavyHitter> hitters,
                     std::vector<uint8_t>& frame) {
  OPTHASH_CHECK_LE(hitters.size(), kMaxHittersPerFrame);
  BeginFrame(frame, MessageType::kTopKReply);
  AppendU32(frame, static_cast<uint32_t>(hitters.size()));
  for (const sketch::HeavyHitter& hitter : hitters) {
    AppendU64(frame, hitter.id);
    AppendDouble(frame, hitter.estimate);
    AppendDouble(frame, hitter.error_bound);
    AppendU8(frame, hitter.guaranteed ? 1 : 0);
  }
  SealFrame(frame);
}

void EncodeMetricsReply(const std::string& text,
                        std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kMetricsReply);
  // Clamp like error messages: a scrape body must never burst the frame.
  const size_t length =
      std::min(text.size(), kMaxFramePayload - frame.size());
  AppendU32(frame, static_cast<uint32_t>(length));
  frame.insert(frame.end(), text.data(), text.data() + length);
  SealFrame(frame);
}

void EncodeWindowStatsReply(const WindowStatsSnapshot& stats,
                            std::vector<uint8_t>& frame) {
  BeginFrame(frame, MessageType::kWindowStatsReply);
  AppendU64(frame, stats.window_items);
  AppendU64(frame, stats.window_sequence);
  AppendU64(frame, stats.items_in_current_window);
  AppendDouble(frame, stats.decay);
  AppendU32(frame, static_cast<uint32_t>(stats.window_counts.size()));
  for (uint64_t count : stats.window_counts) AppendU64(frame, count);
  SealFrame(frame);
}

void EncodeScopedRequest(const RequestHeader& header,
                         Span<const uint8_t> inner_payload,
                         std::vector<uint8_t>& frame) {
  OPTHASH_CHECK_MSG(!inner_payload.empty(), "empty scoped inner payload");
  BeginFrame(frame, MessageType::kScopedRequest);
  AppendU8(frame, header.version);
  AppendU32(frame, header.model_id);
  frame.insert(frame.end(), inner_payload.begin(), inner_payload.end());
  SealFrame(frame);
}

Result<MessageType> PeekMessageType(Span<const uint8_t> payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty frame payload");
  }
  const auto type = static_cast<MessageType>(payload[0]);
  switch (type) {
    case MessageType::kQuery:
    case MessageType::kIngest:
    case MessageType::kStats:
    case MessageType::kPing:
    case MessageType::kSnapshot:
    case MessageType::kShutdown:
    case MessageType::kTopK:
    case MessageType::kMetrics:
    case MessageType::kScopedRequest:
    case MessageType::kWindowStats:
    case MessageType::kEstimates:
    case MessageType::kAck:
    case MessageType::kStatsReply:
    case MessageType::kPong:
    case MessageType::kTopKReply:
    case MessageType::kMetricsReply:
    case MessageType::kWindowStatsReply:
    case MessageType::kError:
      return type;
  }
  return Status::InvalidArgument("unknown message type byte " +
                                 std::to_string(payload[0]));
}

Status DecodeKeyRequest(Span<const uint8_t> payload, MessageType expected,
                        std::vector<uint64_t>& keys) {
  OPTHASH_CHECK_MSG(IsKeyRequest(expected), "not a key-batch request type");
  keys.clear();
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != expected) {
    return Status::InvalidArgument(
        std::string("expected ") + MessageTypeName(expected) + ", got " +
        MessageTypeName(type));
  }
  if (payload.size() < 1 + sizeof(uint32_t)) {
    return ShortPayload(MessageTypeName(expected));
  }
  const uint32_t count = io::LoadLittleU32(payload.data() + 1);
  const size_t body = payload.size() - 1 - sizeof(uint32_t);
  if (body != static_cast<size_t>(count) * sizeof(uint64_t)) {
    return Status::InvalidArgument(
        std::string(MessageTypeName(expected)) + " declares " +
        std::to_string(count) + " keys but carries " + std::to_string(body) +
        " body bytes");
  }
  keys.reserve(count);
  const uint8_t* at = payload.data() + 1 + sizeof(uint32_t);
  for (uint32_t i = 0; i < count; ++i) {
    keys.push_back(io::LoadLittleU64(at + static_cast<size_t>(i) * 8));
  }
  return Status::OK();
}

Status DecodeEmptyMessage(Span<const uint8_t> payload, MessageType expected) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != expected) {
    return Status::InvalidArgument(
        std::string("expected ") + MessageTypeName(expected) + ", got " +
        MessageTypeName(type));
  }
  if (payload.size() != 1) {
    return Status::InvalidArgument(
        std::string(MessageTypeName(expected)) +
        " carries an unexpected body");
  }
  return Status::OK();
}

Status DecodeEstimatesResponse(Span<const uint8_t> payload,
                               std::vector<double>& estimates) {
  estimates.clear();
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kEstimates) {
    return Status::InvalidArgument(std::string("expected estimates, got ") +
                                   MessageTypeName(type));
  }
  if (payload.size() < 1 + sizeof(uint32_t)) return ShortPayload("estimates");
  const uint32_t count = io::LoadLittleU32(payload.data() + 1);
  const size_t body = payload.size() - 1 - sizeof(uint32_t);
  if (body != static_cast<size_t>(count) * sizeof(double)) {
    return Status::InvalidArgument("estimates declares " +
                                   std::to_string(count) +
                                   " values but carries " +
                                   std::to_string(body) + " body bytes");
  }
  estimates.reserve(count);
  const uint8_t* at = payload.data() + 1 + sizeof(uint32_t);
  for (uint32_t i = 0; i < count; ++i) {
    estimates.push_back(io::LoadLittleDouble(at + static_cast<size_t>(i) * 8));
  }
  return Status::OK();
}

Result<uint64_t> DecodeAckResponse(Span<const uint8_t> payload) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kAck) {
    return Status::InvalidArgument(std::string("expected ack, got ") +
                                   MessageTypeName(type));
  }
  if (payload.size() != 1 + sizeof(uint64_t)) return ShortPayload("ack");
  return io::LoadLittleU64(payload.data() + 1);
}

Result<ServerStatsSnapshot> DecodeStatsResponse(Span<const uint8_t> payload) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kStatsReply) {
    return Status::InvalidArgument(std::string("expected stats-reply, got ") +
                                   MessageTypeName(type));
  }
  constexpr size_t kBody = 7 * sizeof(uint64_t) + 4 * sizeof(double);
  if (payload.size() != 1 + kBody) return ShortPayload("stats-reply");
  const uint8_t* at = payload.data() + 1;
  ServerStatsSnapshot stats;
  stats.items_ingested = io::LoadLittleU64(at);
  stats.queries_served = io::LoadLittleU64(at + 8);
  stats.query_requests = io::LoadLittleU64(at + 16);
  stats.ingest_requests = io::LoadLittleU64(at + 24);
  stats.sessions_accepted = io::LoadLittleU64(at + 32);
  stats.snapshots_written = io::LoadLittleU64(at + 40);
  stats.model_total_items = io::LoadLittleU64(at + 48);
  stats.uptime_seconds = io::LoadLittleDouble(at + 56);
  stats.query_p50_micros = io::LoadLittleDouble(at + 64);
  stats.query_p99_micros = io::LoadLittleDouble(at + 72);
  stats.snapshot_age_seconds = io::LoadLittleDouble(at + 80);
  return stats;
}

Result<uint32_t> DecodeTopKRequest(Span<const uint8_t> payload) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kTopK) {
    return Status::InvalidArgument(std::string("expected topk, got ") +
                                   MessageTypeName(type));
  }
  if (payload.size() != 1 + sizeof(uint32_t)) return ShortPayload("topk");
  const uint32_t k = io::LoadLittleU32(payload.data() + 1);
  if (k == 0) return Status::InvalidArgument("topk k must be positive");
  return k;
}

Status DecodeTopKReply(Span<const uint8_t> payload,
                       std::vector<sketch::HeavyHitter>& hitters) {
  hitters.clear();
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kTopKReply) {
    return Status::InvalidArgument(std::string("expected topk-reply, got ") +
                                   MessageTypeName(type));
  }
  if (payload.size() < 1 + sizeof(uint32_t)) return ShortPayload("topk-reply");
  const uint32_t count = io::LoadLittleU32(payload.data() + 1);
  const size_t body = payload.size() - 1 - sizeof(uint32_t);
  if (body != static_cast<size_t>(count) * kWireHitterSize) {
    return Status::InvalidArgument(
        "topk-reply declares " + std::to_string(count) +
        " hitters but carries " + std::to_string(body) + " body bytes");
  }
  hitters.reserve(count);
  const uint8_t* at = payload.data() + 1 + sizeof(uint32_t);
  for (uint32_t i = 0; i < count; ++i) {
    sketch::HeavyHitter hitter;
    hitter.id = io::LoadLittleU64(at);
    hitter.estimate = io::LoadLittleDouble(at + 8);
    hitter.error_bound = io::LoadLittleDouble(at + 16);
    const uint8_t flag = at[24];
    if (flag > 1) {
      return Status::InvalidArgument(
          "topk-reply guaranteed flag must be 0 or 1, got " +
          std::to_string(flag));
    }
    hitter.guaranteed = flag == 1;
    hitters.push_back(hitter);
    at += kWireHitterSize;
  }
  return Status::OK();
}

Status DecodeMetricsReply(Span<const uint8_t> payload, std::string& text) {
  text.clear();
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kMetricsReply) {
    return Status::InvalidArgument(
        std::string("expected metrics-reply, got ") + MessageTypeName(type));
  }
  if (payload.size() < 1 + sizeof(uint32_t)) {
    return ShortPayload("metrics-reply");
  }
  const uint32_t length = io::LoadLittleU32(payload.data() + 1);
  if (payload.size() != 1 + sizeof(uint32_t) + length) {
    return Status::InvalidArgument("metrics-reply payload length mismatch");
  }
  text.assign(
      reinterpret_cast<const char*>(payload.data() + 1 + sizeof(uint32_t)),
      length);
  return Status::OK();
}

Result<WindowStatsSnapshot> DecodeWindowStatsReply(
    Span<const uint8_t> payload) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kWindowStatsReply) {
    return Status::InvalidArgument(
        std::string("expected window-stats-reply, got ") +
        MessageTypeName(type));
  }
  constexpr size_t kFixed = 3 * sizeof(uint64_t) + sizeof(double) +
                            sizeof(uint32_t);
  if (payload.size() < 1 + kFixed) return ShortPayload("window-stats-reply");
  const uint8_t* at = payload.data() + 1;
  WindowStatsSnapshot stats;
  stats.window_items = io::LoadLittleU64(at);
  stats.window_sequence = io::LoadLittleU64(at + 8);
  stats.items_in_current_window = io::LoadLittleU64(at + 16);
  stats.decay = io::LoadLittleDouble(at + 24);
  const uint32_t count = io::LoadLittleU32(at + 32);
  const size_t body = payload.size() - 1 - kFixed;
  if (body != static_cast<size_t>(count) * sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "window-stats-reply declares " + std::to_string(count) +
        " windows but carries " + std::to_string(body) + " body bytes");
  }
  stats.window_counts.reserve(count);
  const uint8_t* counts = at + kFixed;
  for (uint32_t i = 0; i < count; ++i) {
    stats.window_counts.push_back(
        io::LoadLittleU64(counts + static_cast<size_t>(i) * 8));
  }
  return stats;
}

Status DecodeScopedRequest(Span<const uint8_t> payload, RequestHeader& header,
                           Span<const uint8_t>& inner) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kScopedRequest) {
    return Status::InvalidArgument(
        std::string("expected scoped-request, got ") + MessageTypeName(type));
  }
  constexpr size_t kHeaderBytes = 1 + 1 + sizeof(uint32_t);
  if (payload.size() < kHeaderBytes + 1) {
    return ShortPayload("scoped-request");
  }
  header.version = payload[1];
  if (header.version != kRequestHeaderVersion) {
    return Status::InvalidArgument(
        "unsupported request-header version " +
        std::to_string(header.version));
  }
  header.model_id = io::LoadLittleU32(payload.data() + 2);
  inner = Span<const uint8_t>(payload.data() + kHeaderBytes,
                              payload.size() - kHeaderBytes);
  if (static_cast<MessageType>(inner[0]) == MessageType::kScopedRequest) {
    return Status::InvalidArgument("scoped-request envelopes cannot nest");
  }
  return Status::OK();
}

Status DecodeErrorResponse(Span<const uint8_t> payload, Status& remote) {
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type != MessageType::kError) {
    return Status::InvalidArgument(std::string("expected error, got ") +
                                   MessageTypeName(type));
  }
  if (payload.size() < 2 + sizeof(uint32_t)) return ShortPayload("error");
  const uint8_t wire = payload[1];
  const uint32_t length = io::LoadLittleU32(payload.data() + 2);
  if (payload.size() != 2 + sizeof(uint32_t) + length) {
    return Status::InvalidArgument("error payload length mismatch");
  }
  std::string message(
      reinterpret_cast<const char*>(payload.data() + 2 + sizeof(uint32_t)),
      length);
  switch (StatusCodeOfWire(wire)) {
    case StatusCode::kInvalidArgument:
      remote = Status::InvalidArgument(std::move(message));
      return Status::OK();
    case StatusCode::kOutOfRange:
      remote = Status::OutOfRange(std::move(message));
      return Status::OK();
    case StatusCode::kFailedPrecondition:
      remote = Status::FailedPrecondition(std::move(message));
      return Status::OK();
    case StatusCode::kNotFound:
      remote = Status::NotFound(std::move(message));
      return Status::OK();
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  remote = Status::Internal(std::move(message));
  return Status::OK();
}

uint8_t WireCodeOfStatus(StatusCode code) {
  return static_cast<uint8_t>(code);
}

StatusCode StatusCodeOfWire(uint8_t wire) {
  switch (wire) {
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kOutOfRange;
    case 3:
      return StatusCode::kFailedPrecondition;
    case 4:
      return StatusCode::kNotFound;
    default:
      return StatusCode::kInternal;
  }
}

}  // namespace opthash::server

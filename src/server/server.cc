#include "server/server.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "io/bytes.h"
#include "server/socket_io.h"
#include "server/tcp_listener.h"
#include "sketch/kernels/simd_dispatch.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace opthash::server {

namespace {

/// Per-session server-side state living on the owning event loop: the
/// model's query scratch plus the decode/encode buffers every request
/// reuses (warm sessions allocate nothing).
struct ServingSession : EventLoop::SessionState {
  std::unique_ptr<ServedModel::QueryContext> context;
  std::vector<uint64_t> keys;
  std::vector<double> estimates;
  std::vector<sketch::HeavyHitter> hitters;
};

}  // namespace

Status ServerConfig::Validate() const {
  if (socket_path.empty() && listen_address.empty()) {
    return Status::InvalidArgument(
        "server needs a transport: a Unix socket path and/or a TCP "
        "host:port listen address");
  }
  if (!listen_address.empty()) {
    OPTHASH_IO_RETURN_IF_ERROR(ParseHostPort(listen_address).status());
  }
  OPTHASH_IO_RETURN_IF_ERROR(ingest.Validate());
  OPTHASH_IO_RETURN_IF_ERROR(rotation.Validate());
  if (backlog < 1 || accept_poll_millis < 1) {
    return Status::InvalidArgument(
        "backlog and accept poll must be >= 1");
  }
  if (max_connections < 1) {
    return Status::InvalidArgument("connection limit must be >= 1");
  }
  EventLoopConfig loop;
  loop.poll_millis = accept_poll_millis;
  loop.idle_timeout_seconds = idle_timeout_seconds;
  loop.max_write_buffer = max_write_buffer;
  return loop.Validate();
}

Server::Server(ServerConfig config, std::unique_ptr<ServedModel> model)
    : config_(std::move(config)), model_(std::move(model)) {
  rotator_ = std::make_unique<SnapshotRotator>(
      config_.rotation, [this] { return items_ingested_.load(); },
      [this](const std::string& path) {
        // Serialization shares the read side with queries: rotation never
        // blocks the read path and never observes a half-applied ingest
        // block (ingest holds the lock exclusively).
        std::shared_lock<std::shared_mutex> lock(model_mutex_);
        return model_->SaveSnapshot(path);
      });
}

Server::~Server() { RequestShutdown(); }

Status Server::Start() {
  OPTHASH_CHECK_MSG(!running_.load(), "Server::Start called twice");
  OPTHASH_IO_RETURN_IF_ERROR(config_.Validate());
  if (config_.rotation.enabled() && model_->ReadOnly()) {
    return Status::FailedPrecondition(
        "snapshot rotation requires a mutable model; the mapped view is "
        "read-only (drop --snapshot-dir or --mmap)");
  }
  OPTHASH_IO_RETURN_IF_ERROR(rotator_->Start());

  // Bind whatever transports the config asked for; failure past this
  // point must unwind everything already started.
  auto fail = [this](Status status) {
    if (listen_fd_ >= 0) {
      CloseSocket(listen_fd_);
      listen_fd_ = -1;
#ifndef _WIN32
      ::unlink(config_.socket_path.c_str());
#endif
    }
    if (tcp_listen_fd_ >= 0) {
      CloseSocket(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
    }
    rotator_->Stop();
    return status;
  };
  if (!config_.socket_path.empty()) {
    auto unix_fd = ListenUnix(config_.socket_path, config_.backlog);
    if (!unix_fd.ok()) return fail(unix_fd.status());
    listen_fd_ = unix_fd.value();
  }
  if (!config_.listen_address.empty()) {
    auto address = ParseHostPort(config_.listen_address);
    if (!address.ok()) return fail(address.status());
    auto tcp = ListenTcp(address.value(), config_.backlog);
    if (!tcp.ok()) return fail(tcp.status());
    tcp_listen_fd_ = tcp.value().fd;
    tcp_port_ = tcp.value().port;
  }

  EventLoopConfig loop_config;
  loop_config.poll_millis = config_.accept_poll_millis;
  loop_config.idle_timeout_seconds = config_.idle_timeout_seconds;
  loop_config.max_write_buffer = config_.max_write_buffer;
  pool_ = std::make_unique<EventLoopPool>(
      config_.event_threads, loop_config,
      [this]() -> std::unique_ptr<EventLoop::SessionState> {
        auto session = std::make_unique<ServingSession>();
        session->context = model_->NewQueryContext();
        return session;
      },
      [this](EventLoop::SessionState& state, Span<const uint8_t> payload,
             std::vector<uint8_t>& response) {
        auto& session = static_cast<ServingSession&>(state);
        return HandleRequest(payload, *session.context, session.keys,
                             session.estimates, session.hitters, response);
      });
  const Status pool_started = pool_->Start();
  if (!pool_started.ok()) return fail(pool_started);

  stop_.store(false);
  running_.store(true, std::memory_order_release);
  uptime_.Restart();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return stop_.load(); });
}

void Server::SignalStop() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    stop_.store(true);
  }
  shutdown_cv_.notify_all();
}

void Server::RequestShutdown() {
  // Signal wakers, Wait() callers and the destructor may all race here;
  // the teardown below must run exactly once at a time.
  std::lock_guard<std::mutex> call_lock(shutdown_call_mutex_);
  const bool was_stopped = stop_.load();
  SignalStop();
  if (was_stopped && !accept_thread_.joinable() && listen_fd_ < 0 &&
      tcp_listen_fd_ < 0) {
    return;  // Fully shut down already (or never started).
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Teardown failures are counted (teardown_errors) AND logged: a close
  // that fails leaks the fd, a failed unlink leaves a stale socket file
  // that blocks the next daemon's bind. Neither aborts the shutdown —
  // the rest of the teardown must still run — but neither may vanish.
  if (listen_fd_ >= 0) {
    if (!CloseSocket(listen_fd_)) {
      teardown_errors_.fetch_add(1);
      std::fprintf(stderr, "opthash_serve: close(unix listener): %s\n",
                   std::strerror(errno));
    }
    listen_fd_ = -1;
#ifndef _WIN32
    if (::unlink(config_.socket_path.c_str()) != 0 && errno != ENOENT) {
      teardown_errors_.fetch_add(1);
      std::fprintf(stderr, "opthash_serve: unlink %s: %s\n",
                   config_.socket_path.c_str(), std::strerror(errno));
    }
#endif
  }
  if (tcp_listen_fd_ >= 0) {
    if (!CloseSocket(tcp_listen_fd_)) {
      teardown_errors_.fetch_add(1);
      std::fprintf(stderr, "opthash_serve: close(tcp listener): %s\n",
                   std::strerror(errno));
    }
    tcp_listen_fd_ = -1;
  }
  // The pool flushes pending replies best-effort, closes every session
  // and joins its loop threads.
  if (pool_) pool_->Stop();
  rotator_->Stop();
  running_.store(false, std::memory_order_release);
}

size_t Server::connections() const {
  return pool_ ? pool_->connections() : 0;
}

uint64_t Server::sessions_closed_idle() const {
  return pool_ ? pool_->closed_idle() : 0;
}

uint64_t Server::sessions_closed_backpressure() const {
  return pool_ ? pool_->closed_backpressure() : 0;
}

void Server::AcceptLoop() {
  int listeners[2];
  size_t listener_count = 0;
  if (listen_fd_ >= 0) listeners[listener_count++] = listen_fd_;
  const size_t tcp_index = listener_count;
  if (tcp_listen_fd_ >= 0) listeners[listener_count++] = tcp_listen_fd_;
  std::vector<uint8_t> reject_frame;

  while (!stop_.load(std::memory_order_acquire)) {
    auto accepted = AcceptAnyWithTimeout(
        Span<const int>(listeners, listener_count),
        config_.accept_poll_millis);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) continue;
      if (stop_.load()) return;
      // Transient accept failures (ECONNABORTED on a reset handshake,
      // EMFILE under fd pressure) must not silently retire the accept
      // loop — a deaf daemon that still answers Wait() is the worst
      // failure mode. Log, back off briefly, keep accepting.
      std::fprintf(stderr, "opthash_serve: accept failed: %s\n",
                   accepted.status().ToString().c_str());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.accept_poll_millis));
      continue;
    }
    const int fd = accepted.value().fd;
    if (stop_.load()) {
      CloseSocket(fd);
      return;
    }
    sessions_accepted_.fetch_add(1);
    if (pool_->connections() >= config_.max_connections) {
      // Clean rejection, not a hang: the over-limit client gets one
      // kError frame explaining itself, then the connection closes.
      sessions_rejected_.fetch_add(1);
      EncodeErrorResponse(
          Status::FailedPrecondition(
              "connection limit of " +
              std::to_string(config_.max_connections) + " reached"),
          reject_frame);
      (void)WriteAll(fd, Span<const uint8_t>(reject_frame.data(),
                                             reject_frame.size()));
      CloseSocket(fd);
      continue;
    }
    if (accepted.value().listener_index == tcp_index) SetTcpNoDelay(fd);
    const Status adopted = pool_->Adopt(fd);
    if (!adopted.ok()) CloseSocket(fd);
  }
}

bool Server::HandleRequest(Span<const uint8_t> payload,
                           ServedModel::QueryContext& context,
                           std::vector<uint64_t>& keys,
                           std::vector<double>& estimates,
                           std::vector<sketch::HeavyHitter>& hitters,
                           std::vector<uint8_t>& response) {
  auto type = PeekMessageType(payload);
  if (!type.ok()) {
    EncodeErrorResponse(type.status(), response);
    return false;
  }
  switch (type.value()) {
    case MessageType::kQuery: {
      Timer latency;
      const Status decoded =
          DecodeKeyRequest(payload, MessageType::kQuery, keys);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      estimates.resize(keys.size());
      {
        std::shared_lock<std::shared_mutex> lock(model_mutex_);
        model_->EstimateBatch(
            context, Span<const uint64_t>(keys.data(), keys.size()),
            Span<double>(estimates.data(), estimates.size()));
      }
      EncodeEstimatesResponse(
          Span<const double>(estimates.data(), estimates.size()), response);
      query_requests_.fetch_add(1);
      queries_served_.fetch_add(keys.size());
      {
        std::lock_guard<std::mutex> lock(latency_mutex_);
        query_latency_.Record(latency.ElapsedSeconds() * 1e6);
      }
      return true;
    }
    case MessageType::kIngest: {
      const Status decoded =
          DecodeKeyRequest(payload, MessageType::kIngest, keys);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      Status ingested;
      {
        std::unique_lock<std::shared_mutex> lock(model_mutex_);
        ingested = model_->Ingest(
            Span<const uint64_t>(keys.data(), keys.size()), config_.ingest);
      }
      if (!ingested.ok()) {
        EncodeErrorResponse(ingested, response);
        return true;  // Semantic failure; the session stays usable.
      }
      ingest_requests_.fetch_add(1);
      const uint64_t total =
          items_ingested_.fetch_add(keys.size()) + keys.size();
      EncodeAckResponse(total, response);
      return true;
    }
    case MessageType::kStats: {
      const Status decoded = DecodeEmptyMessage(payload, MessageType::kStats);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeStatsResponse(StatsNow(), response);
      return true;
    }
    case MessageType::kPing: {
      const Status decoded = DecodeEmptyMessage(payload, MessageType::kPing);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeEmptyMessage(MessageType::kPong, response);
      return true;
    }
    case MessageType::kSnapshot: {
      const Status decoded =
          DecodeEmptyMessage(payload, MessageType::kSnapshot);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      auto sequence = rotator_->RotateNow();
      if (!sequence.ok()) {
        EncodeErrorResponse(sequence.status(), response);
        return true;
      }
      EncodeAckResponse(sequence.value(), response);
      return true;
    }
    case MessageType::kTopK: {
      Timer latency;
      auto k = DecodeTopKRequest(payload);
      if (!k.ok()) {
        EncodeErrorResponse(k.status(), response);
        return false;
      }
      // Clamp so the reply always fits one frame; the top of the order
      // is the same either way.
      const size_t want =
          std::min<size_t>(k.value(), kMaxHittersPerFrame);
      Status answered;
      {
        std::shared_lock<std::shared_mutex> lock(model_mutex_);
        answered = model_->TopK(context, want, hitters);
      }
      if (!answered.ok()) {
        // Unsupported artifact kind (or other semantic failure): the
        // session stays usable, exactly like a rejected ingest.
        EncodeErrorResponse(answered, response);
        return true;
      }
      EncodeTopKReply(
          Span<const sketch::HeavyHitter>(hitters.data(), hitters.size()),
          response);
      topk_requests_.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(latency_mutex_);
        query_latency_.Record(latency.ElapsedSeconds() * 1e6);
      }
      return true;
    }
    case MessageType::kMetrics: {
      const Status decoded =
          DecodeEmptyMessage(payload, MessageType::kMetrics);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeMetricsReply(RenderPrometheusMetrics(), response);
      return true;
    }
    case MessageType::kWindowStats: {
      const Status decoded =
          DecodeEmptyMessage(payload, MessageType::kWindowStats);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      WindowStatsSnapshot window_stats;
      Status answered;
      {
        std::shared_lock<std::shared_mutex> lock(model_mutex_);
        answered = model_->WindowStats(window_stats);
      }
      if (!answered.ok()) {
        // Non-windowed artifact kind: clean semantic error, session
        // survives, exactly like an unsupported top-k.
        EncodeErrorResponse(answered, response);
        return true;
      }
      EncodeWindowStatsReply(window_stats, response);
      window_stats_requests_.fetch_add(1);
      return true;
    }
    case MessageType::kScopedRequest: {
      RequestHeader header;
      Span<const uint8_t> inner;
      const Status decoded = DecodeScopedRequest(payload, header, inner);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      if (header.model_id != 0) {
        // The header is the hook for the future multi-bundle registry;
        // until it lands only the default model exists. Clean semantic
        // error, session survives.
        EncodeErrorResponse(
            Status::NotFound(
                "no model with id " + std::to_string(header.model_id) +
                ": this daemon serves a single default model (id 0)"),
            response);
        return true;
      }
      // The decoder rejects nested envelopes, so this recursion is one
      // level deep at most.
      return HandleRequest(inner, context, keys, estimates, hitters,
                           response);
    }
    case MessageType::kShutdown: {
      const Status decoded =
          DecodeEmptyMessage(payload, MessageType::kShutdown);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeAckResponse(0, response);
      // Flag + wake only: the full shutdown (which joins the loop thread
      // this handler runs on) runs on whoever called Wait().
      SignalStop();
      return false;
    }
    default: {
      EncodeErrorResponse(
          Status::InvalidArgument(
              std::string("unexpected ") + MessageTypeName(type.value()) +
              " frame: not a request"),
          response);
      return false;
    }
  }
}

std::string Server::RenderPrometheusMetrics() const {
  std::string out;
  out.reserve(4096);
  const auto counter = [&out](const char* name, const char* help,
                              uint64_t value) {
    out += "# HELP opthash_";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE opthash_";
    out += name;
    out += " counter\nopthash_";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  const auto gauge = [&out](const char* name, const char* help,
                            double value) {
    char number[32];
    std::snprintf(number, sizeof(number), "%.6f", value);
    out += "# HELP opthash_";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE opthash_";
    out += name;
    out += " gauge\nopthash_";
    out += name;
    out += ' ';
    out += number;
    out += '\n';
  };

  counter("items_ingested_total", "Arrivals accepted by this process.",
          items_ingested_.load());
  counter("queries_served_total", "Individual keys answered.",
          queries_served_.load());
  counter("query_requests_total", "Query frames handled.",
          query_requests_.load());
  counter("ingest_requests_total", "Ingest frames handled.",
          ingest_requests_.load());
  counter("topk_requests_total", "Top-k frames handled.",
          topk_requests_.load());
  counter("window_stats_requests_total", "Window-stats frames handled.",
          window_stats_requests_.load());
  counter("sessions_accepted_total", "Connections accepted.",
          sessions_accepted_.load());
  counter("sessions_rejected_total",
          "Connections rejected at the connection limit.",
          sessions_rejected_.load());
  counter("sessions_closed_idle_total",
          "Sessions closed by the idle timeout.", sessions_closed_idle());
  counter("sessions_closed_backpressure_total",
          "Sessions closed for unread reply backpressure.",
          sessions_closed_backpressure());
  counter("snapshots_written_total", "Snapshot rotations this run.",
          rotator_->rotations());
  counter("snapshot_failures_total",
          "Rotations that failed (save or rename error) this run.",
          rotator_->failed_rotations());
  counter("teardown_errors_total",
          "Listener close/unlink failures during shutdown.",
          teardown_errors_.load());

  gauge("connections", "Live sessions across both transports.",
        static_cast<double>(connections()));
  gauge("uptime_seconds", "Seconds since the daemon started.",
        uptime_.ElapsedSeconds());
  {
    std::shared_lock<std::shared_mutex> lock(model_mutex_);
    gauge("model_total_items",
          "Model-lifetime arrivals (0 when the artifact has no counter).",
          static_cast<double>(model_->TotalItems()));
  }
  gauge("snapshot_age_seconds",
        "Seconds since the last rotation (negative: none yet this run).",
        rotator_->LastRotationAgeSeconds());

  // Info-style gauge (constant 1, the state carried by the label): which
  // sketch kernel tier answers this daemon's batched queries. Operators
  // alert on an unexpected "scalar" after a fleet rollout.
  out +=
      "# HELP opthash_simd_tier_info Active sketch kernel tier "
      "(label `tier`: scalar, avx2 or neon).\n"
      "# TYPE opthash_simd_tier_info gauge\n"
      "opthash_simd_tier_info{tier=\"";
  out += sketch::kernels::KernelTierName(sketch::kernels::ActiveKernelTier());
  out += "\"} 1\n";

  double p50 = 0.0;
  double p99 = 0.0;
  uint64_t latency_count = 0;
  uint64_t latency_sum = 0;
  std::array<uint64_t, LatencyHistogram::kNumBuckets> latency_buckets{};
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    p50 = query_latency_.PercentileMicros(0.50);
    p99 = query_latency_.PercentileMicros(0.99);
    latency_count = query_latency_.count();
    latency_sum = query_latency_.sum_micros();
    for (size_t i = 0; i < latency_buckets.size(); ++i) {
      latency_buckets[i] = query_latency_.bucket_count(i);
    }
  }
  char number[32];
  out +=
      "# HELP opthash_query_latency_micros Server-side request latency "
      "(query and top-k frames).\n"
      "# TYPE opthash_query_latency_micros summary\n";
  std::snprintf(number, sizeof(number), "%.6f", p50);
  out += "opthash_query_latency_micros{quantile=\"0.5\"} ";
  out += number;
  out += '\n';
  std::snprintf(number, sizeof(number), "%.6f", p99);
  out += "opthash_query_latency_micros{quantile=\"0.99\"} ";
  out += number;
  out += '\n';
  out += "opthash_query_latency_micros_count ";
  out += std::to_string(latency_count);
  out += '\n';

  // The same log-linear buckets as a full Prometheus histogram, so a
  // scraper can compute any quantile itself instead of trusting the
  // server-side p50/p99 above. Cumulative `le` lines are emitted only
  // for occupied buckets (plus +Inf): `le` values still ascend and the
  // running count is still monotone, which is all the exposition format
  // requires, and it keeps a warm scrape body to a handful of lines
  // instead of 528.
  out +=
      "# HELP opthash_query_latency_histogram_micros Server-side request "
      "latency (query and top-k frames), log-linear buckets.\n"
      "# TYPE opthash_query_latency_histogram_micros histogram\n";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < latency_buckets.size(); ++i) {
    if (latency_buckets[i] == 0) continue;
    cumulative += latency_buckets[i];
    out += "opthash_query_latency_histogram_micros_bucket{le=\"";
    out += std::to_string(LatencyHistogram::BucketUpperBoundMicros(i));
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += "opthash_query_latency_histogram_micros_bucket{le=\"+Inf\"} ";
  out += std::to_string(latency_count);
  out += '\n';
  out += "opthash_query_latency_histogram_micros_sum ";
  out += std::to_string(latency_sum);
  out += '\n';
  out += "opthash_query_latency_histogram_micros_count ";
  out += std::to_string(latency_count);
  out += '\n';
  return out;
}

ServerStatsSnapshot Server::StatsNow() const {
  ServerStatsSnapshot stats;
  stats.items_ingested = items_ingested_.load();
  stats.queries_served = queries_served_.load();
  stats.query_requests = query_requests_.load();
  stats.ingest_requests = ingest_requests_.load();
  stats.sessions_accepted = sessions_accepted_.load();
  stats.snapshots_written = rotator_->rotations();
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    stats.query_p50_micros = query_latency_.PercentileMicros(0.50);
    stats.query_p99_micros = query_latency_.PercentileMicros(0.99);
  }
  stats.snapshot_age_seconds = rotator_->LastRotationAgeSeconds();
  {
    std::shared_lock<std::shared_mutex> lock(model_mutex_);
    stats.model_total_items = model_->TotalItems();
  }
  return stats;
}

}  // namespace opthash::server

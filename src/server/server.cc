#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "io/bytes.h"
#include "server/socket_io.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace opthash::server {

Status ServerConfig::Validate() const {
  if (socket_path.empty()) {
    return Status::InvalidArgument("server needs a socket path");
  }
  OPTHASH_IO_RETURN_IF_ERROR(ingest.Validate());
  OPTHASH_IO_RETURN_IF_ERROR(rotation.Validate());
  if (backlog < 1 || accept_poll_millis < 1) {
    return Status::InvalidArgument(
        "backlog and accept poll must be >= 1");
  }
  return Status::OK();
}

Server::Server(ServerConfig config, std::unique_ptr<ServedModel> model)
    : config_(std::move(config)), model_(std::move(model)) {
  rotator_ = std::make_unique<SnapshotRotator>(
      config_.rotation, [this] { return items_ingested_.load(); },
      [this](const std::string& path) {
        // Serialization shares the read side with queries: rotation never
        // blocks the read path and never observes a half-applied ingest
        // block (ingest holds the lock exclusively).
        std::shared_lock<std::shared_mutex> lock(model_mutex_);
        return model_->SaveSnapshot(path);
      });
}

Server::~Server() { RequestShutdown(); }

Status Server::Start() {
  OPTHASH_CHECK_MSG(!running_.load(), "Server::Start called twice");
  OPTHASH_IO_RETURN_IF_ERROR(config_.Validate());
  if (config_.rotation.enabled() && model_->ReadOnly()) {
    return Status::FailedPrecondition(
        "snapshot rotation requires a mutable model; the mapped view is "
        "read-only (drop --snapshot-dir or --mmap)");
  }
  OPTHASH_IO_RETURN_IF_ERROR(rotator_->Start());
  auto listen_fd = ListenUnix(config_.socket_path, config_.backlog);
  if (!listen_fd.ok()) {
    rotator_->Stop();
    return listen_fd.status();
  }
  listen_fd_ = listen_fd.value();
  stop_.store(false);
  running_.store(true, std::memory_order_release);
  uptime_.Restart();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return stop_.load(); });
}

void Server::SignalStop() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    stop_.store(true);
  }
  shutdown_cv_.notify_all();
}

void Server::RequestShutdown() {
  // Signal wakers, Wait() callers and the destructor may all race here;
  // the teardown below must run exactly once at a time.
  std::lock_guard<std::mutex> call_lock(shutdown_call_mutex_);
  const bool was_stopped = stop_.load();
  SignalStop();
  if (was_stopped && !accept_thread_.joinable() && listen_fd_ < 0) {
    return;  // Fully shut down already (or never started).
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    CloseSocket(listen_fd_);
    listen_fd_ = -1;
#ifndef _WIN32
    ::unlink(config_.socket_path.c_str());
#endif
  }
  // Unblock sessions parked in read, then join them.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (int fd : session_fds_) ShutdownSocket(fd);
  }
  JoinSessions();
  rotator_->Stop();
  running_.store(false, std::memory_order_release);
}

void Server::JoinSessions() {
  std::list<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    threads.swap(session_threads_);
    finished_sessions_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void Server::ReapFinishedSessions() {
  std::vector<std::list<std::thread>::iterator> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    finished.swap(finished_sessions_);
  }
  // The threads announced completion as their last act, so these joins
  // return (almost) immediately.
  for (auto it : finished) {
    if (it->joinable()) it->join();
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session_threads_.erase(it);
  }
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    ReapFinishedSessions();
    auto accepted =
        AcceptWithTimeout(listen_fd_, config_.accept_poll_millis);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) continue;
      if (stop_.load()) return;
      // Transient accept failures (ECONNABORTED on a reset handshake,
      // EMFILE under fd pressure) must not silently retire the accept
      // loop — a deaf daemon that still answers Wait() is the worst
      // failure mode. Log, back off briefly, keep accepting.
      std::fprintf(stderr, "opthash_serve: accept failed: %s\n",
                   accepted.status().ToString().c_str());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.accept_poll_millis));
      continue;
    }
    const int fd = accepted.value();
    sessions_accepted_.fetch_add(1);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stop_.load()) {
      CloseSocket(fd);
      return;
    }
    session_fds_.push_back(fd);
    const auto it = session_threads_.emplace(session_threads_.end());
    *it = std::thread([this, fd, it] {
      SessionLoop(fd);
      std::lock_guard<std::mutex> session_lock(sessions_mutex_);
      finished_sessions_.push_back(it);
    });
  }
}

void Server::SessionLoop(int fd) {
  // Per-session reusable state: after the first few requests the session
  // serves from warmed buffers — the only per-request work proportional
  // to anything is the model's own batched estimate path.
  std::vector<uint8_t> payload;
  std::vector<uint8_t> response;
  std::vector<uint64_t> keys;
  std::vector<double> estimates;
  std::unique_ptr<ServedModel::QueryContext> context =
      model_->NewQueryContext();

  for (;;) {
    const Status read = ReadFramePayload(fd, payload);
    if (!read.ok()) {
      // Clean close (NotFound) ends silently; a malformed frame gets a
      // best-effort error response before the session dies — the stream
      // cannot be trusted to be in sync afterwards.
      if (read.code() != StatusCode::kNotFound && !stop_.load()) {
        EncodeErrorResponse(read, response);
        (void)WriteAll(fd, Span<const uint8_t>(response.data(),
                                               response.size()));
      }
      break;
    }
    const bool keep_session = HandleRequest(
        Span<const uint8_t>(payload.data(), payload.size()), *context, keys,
        estimates, response);
    const Status written =
        WriteAll(fd, Span<const uint8_t>(response.data(), response.size()));
    if (!written.ok() || !keep_session) break;
  }
  // Deregister and close under one lock so the shutdown path can never
  // ShutdownSocket an fd number the kernel has already recycled.
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  session_fds_.erase(
      std::remove(session_fds_.begin(), session_fds_.end(), fd),
      session_fds_.end());
  CloseSocket(fd);
}

bool Server::HandleRequest(Span<const uint8_t> payload,
                           ServedModel::QueryContext& context,
                           std::vector<uint64_t>& keys,
                           std::vector<double>& estimates,
                           std::vector<uint8_t>& response) {
  auto type = PeekMessageType(payload);
  if (!type.ok()) {
    EncodeErrorResponse(type.status(), response);
    return false;
  }
  switch (type.value()) {
    case MessageType::kQuery: {
      Timer latency;
      const Status decoded =
          DecodeKeyRequest(payload, MessageType::kQuery, keys);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      estimates.resize(keys.size());
      {
        std::shared_lock<std::shared_mutex> lock(model_mutex_);
        model_->EstimateBatch(
            context, Span<const uint64_t>(keys.data(), keys.size()),
            Span<double>(estimates.data(), estimates.size()));
      }
      EncodeEstimatesResponse(
          Span<const double>(estimates.data(), estimates.size()), response);
      query_requests_.fetch_add(1);
      queries_served_.fetch_add(keys.size());
      {
        std::lock_guard<std::mutex> lock(latency_mutex_);
        query_latency_.Record(latency.ElapsedSeconds() * 1e6);
      }
      return true;
    }
    case MessageType::kIngest: {
      const Status decoded =
          DecodeKeyRequest(payload, MessageType::kIngest, keys);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      Status ingested;
      {
        std::unique_lock<std::shared_mutex> lock(model_mutex_);
        ingested = model_->Ingest(
            Span<const uint64_t>(keys.data(), keys.size()), config_.ingest);
      }
      if (!ingested.ok()) {
        EncodeErrorResponse(ingested, response);
        return true;  // Semantic failure; the session stays usable.
      }
      ingest_requests_.fetch_add(1);
      const uint64_t total =
          items_ingested_.fetch_add(keys.size()) + keys.size();
      EncodeAckResponse(total, response);
      return true;
    }
    case MessageType::kStats: {
      const Status decoded = DecodeEmptyMessage(payload, MessageType::kStats);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeStatsResponse(StatsNow(), response);
      return true;
    }
    case MessageType::kPing: {
      const Status decoded = DecodeEmptyMessage(payload, MessageType::kPing);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeEmptyMessage(MessageType::kPong, response);
      return true;
    }
    case MessageType::kSnapshot: {
      const Status decoded =
          DecodeEmptyMessage(payload, MessageType::kSnapshot);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      auto sequence = rotator_->RotateNow();
      if (!sequence.ok()) {
        EncodeErrorResponse(sequence.status(), response);
        return true;
      }
      EncodeAckResponse(sequence.value(), response);
      return true;
    }
    case MessageType::kShutdown: {
      const Status decoded =
          DecodeEmptyMessage(payload, MessageType::kShutdown);
      if (!decoded.ok()) {
        EncodeErrorResponse(decoded, response);
        return false;
      }
      EncodeAckResponse(0, response);
      // Flag + wake only: the full shutdown (which joins THIS thread)
      // runs on whoever called Wait().
      SignalStop();
      return false;
    }
    default: {
      EncodeErrorResponse(
          Status::InvalidArgument(
              std::string("unexpected ") + MessageTypeName(type.value()) +
              " frame: not a request"),
          response);
      return false;
    }
  }
}

ServerStatsSnapshot Server::StatsNow() const {
  ServerStatsSnapshot stats;
  stats.items_ingested = items_ingested_.load();
  stats.queries_served = queries_served_.load();
  stats.query_requests = query_requests_.load();
  stats.ingest_requests = ingest_requests_.load();
  stats.sessions_accepted = sessions_accepted_.load();
  stats.snapshots_written = rotator_->rotations();
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    stats.query_p50_micros = query_latency_.PercentileMicros(0.50);
    stats.query_p99_micros = query_latency_.PercentileMicros(0.99);
  }
  stats.snapshot_age_seconds = rotator_->LastRotationAgeSeconds();
  {
    std::shared_lock<std::shared_mutex> lock(model_mutex_);
    stats.model_total_items = model_->TotalItems();
  }
  return stats;
}

}  // namespace opthash::server

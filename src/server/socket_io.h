#ifndef OPTHASH_SERVER_SOCKET_IO_H_
#define OPTHASH_SERVER_SOCKET_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace opthash::server {

/// POSIX Unix-domain stream sockets plus the frame read/write loop shared
/// by the server's session threads and the client library. On platforms
/// without AF_UNIX support (_WIN32 builds) every entry point fails with a
/// clean FailedPrecondition instead of refusing to compile — the rest of
/// the library stays usable there.

/// True when this build can open Unix-domain sockets at all.
bool UnixSocketsSupported();

/// Creates, binds and listens on a Unix-domain stream socket at `path`.
/// A stale socket file from a crashed previous daemon is unlinked first
/// (the snapshot rotation directory, not the socket, is the durable
/// state). Fails if `path` exceeds the platform's sun_path limit.
Result<int> ListenUnix(const std::string& path, int backlog = 16);

/// Connects to a listening Unix-domain socket.
Result<int> ConnectUnix(const std::string& path);

/// accept(2) with a poll timeout so callers can observe a stop flag:
/// returns the accepted fd, NotFound on timeout (no pending connection),
/// or an error Status.
Result<int> AcceptWithTimeout(int listen_fd, int timeout_millis);

/// One accepted connection plus which listener produced it (the daemon
/// polls its Unix and TCP listeners together; the index tells it which
/// transport the session arrived on).
struct AcceptedSocket {
  int fd = -1;
  size_t listener_index = 0;
};

/// accept(2) across several listening sockets with one poll timeout;
/// accept(2) itself is transport-agnostic, so the fds may mix AF_UNIX
/// and AF_INET listeners. NotFound on timeout, like AcceptWithTimeout.
Result<AcceptedSocket> AcceptAnyWithTimeout(Span<const int> listen_fds,
                                            int timeout_millis);

/// O_NONBLOCK via fcntl — the event loop's sockets must never park a
/// loop thread in read(2)/send(2).
Status SetNonBlocking(int fd);

/// close(2); negative fds are a no-op (true). Returns false when the
/// kernel reports a close failure — callers tearing down a daemon count
/// these (Server::teardown_errors) instead of dropping them, because a
/// failed close can leak the fd and, on some filesystems, lose buffered
/// errors. Best-effort callers may still ignore the result (bool is not
/// [[nodiscard]] — discarding it is an explicit local decision).
bool CloseSocket(int fd);

/// shutdown(2) both directions — unblocks a peer thread parked in read.
void ShutdownSocket(int fd);

/// Writes all of `bytes` (a complete frame: length prefix + payload),
/// looping over partial writes and EINTR.
Status WriteAll(int fd, Span<const uint8_t> bytes);

/// Reads one frame's payload into `payload` (cleared; capacity reused).
/// Returns NotFound("connection closed") on clean EOF at a frame
/// boundary, InvalidArgument on a truncated frame or an oversized length
/// prefix (checked BEFORE allocating), Internal on socket errors.
Status ReadFramePayload(int fd, std::vector<uint8_t>& payload);

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_SOCKET_IO_H_

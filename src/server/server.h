#ifndef OPTHASH_SERVER_SERVER_H_
#define OPTHASH_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "server/event_loop.h"
#include "server/latency_histogram.h"
#include "server/protocol.h"
#include "server/served_model.h"
#include "server/snapshot_rotator.h"
#include "stream/sharded_ingest.h"

namespace opthash::server {

/// \brief Everything one daemon instance needs to run.
struct ServerConfig {
  /// Unix-domain socket path (empty = no Unix listener). At least one of
  /// socket_path / listen_address must be set.
  std::string socket_path;
  /// TCP listen target as "host:port" (empty = no TCP listener). Port 0
  /// lets the kernel pick; Server::tcp_port() reports the bound port.
  std::string listen_address;
  /// Sharded-ingest geometry applied to every ingest request block.
  stream::ShardedIngestConfig ingest;
  /// Background snapshot rotation; disabled when `rotation.dir` is empty.
  RotationConfig rotation;
  /// listen(2) backlog (shared by both listeners).
  int backlog = 128;
  /// Accept-loop and event-loop poll cadence; bounds shutdown latency
  /// and the idle-timeout sweep granularity.
  int accept_poll_millis = 100;
  /// Live sessions across both transports; one past the limit is
  /// answered with a kError(FailedPrecondition) frame and closed.
  size_t max_connections = 1024;
  /// Sessions with no read/write progress for this long are closed
  /// (0 = never). Also disconnects peers that stop reading replies.
  double idle_timeout_seconds = 0.0;
  /// Event-loop threads (0 = one per hardware thread). Connections are
  /// spread round-robin; each runs on exactly one loop.
  size_t event_threads = 0;
  /// Per-session cap on buffered unread reply bytes; a session exceeding
  /// it (a reader that stopped reading) is disconnected.
  size_t max_write_buffer = 32u << 20;

  Status Validate() const;
};

/// \brief The opthash serving daemon core: accepts sessions on a
/// Unix-domain socket and/or a TCP listener, answers the wire protocol
/// of server/protocol.h through an epoll-driven event-loop pool (one
/// thread per core, not per connection), and keeps the model durable
/// through background snapshot rotation.
///
/// Concurrency model (one writer, many readers):
///  - sessions are spread over the event-loop pool; each session's
///    buffers and ServedModel::QueryContext belong to one loop thread,
///    so query requests execute concurrently under a shared model lock
///    with zero steady-state allocation;
///  - ingest requests take the model lock exclusively — one request
///    block is the unit of atomicity (a snapshot never splits a block);
///  - snapshot rotation serializes the model under the *shared* lock
///    (rotation runs concurrently with queries, never with ingest).
///
/// Both transports speak the identical framing and error contract: the
/// TCP plane answers byte-identically to Unix-socket mode. The embedded
/// library form (Start/Wait/RequestShutdown) is what the opthash_serve
/// binary, the in-process tests, and the serving benchmarks all drive —
/// the daemon has no behavior the tests cannot reach.
class Server {
 public:
  Server(ServerConfig config, std::unique_ptr<ServedModel> model);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener(s), starts the rotator and the event-loop pool.
  /// Fails (leaving nothing running) on an invalid config, an unbindable
  /// socket, or rotation configured on a read-only model.
  Status Start();

  /// Blocks until shutdown is requested (client `shutdown` request or
  /// RequestShutdown from another thread, e.g. a signal handler's waker).
  void Wait();

  /// Initiates shutdown: stop accepting, flush and close every session,
  /// stop the rotator. Idempotent, callable from any thread; the
  /// destructor runs it too.
  void RequestShutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Port the TCP listener actually bound (0 when TCP is off) — the
  /// connect target when `listen_address` asked for port 0.
  uint16_t tcp_port() const { return tcp_port_; }

  /// Live sessions across both transports.
  size_t connections() const;
  /// Sessions the daemon cut loose: idle past the timeout, or buffering
  /// more than max_write_buffer of unread replies.
  uint64_t sessions_closed_idle() const;
  uint64_t sessions_closed_backpressure() const;
  /// Connections answered with the over-limit error and closed.
  uint64_t sessions_rejected() const { return sessions_rejected_.load(); }
  /// Rotations that failed this run (forwarded from the rotator) — a
  /// daemon that stopped checkpointing must show it in stats, not only
  /// on stderr.
  uint64_t snapshot_failures() const { return rotator_->failed_rotations(); }
  /// Listener close/unlink failures during shutdown. Nonzero means the
  /// teardown leaked an fd or left a stale socket file behind; tests and
  /// the serve binary's exit log check this instead of the errors
  /// vanishing into ignored return values.
  uint64_t teardown_errors() const { return teardown_errors_.load(); }

  /// Current operational counters (the same numbers a kStats request
  /// returns).
  ServerStatsSnapshot StatsNow() const;

  /// The kMetrics scrape body: every operational counter and gauge plus
  /// the query-latency summary (p50/p99) in Prometheus text exposition
  /// format. Also what `opthash_client metrics` prints verbatim.
  std::string RenderPrometheusMetrics() const;

  const ServedModel& model() const { return *model_; }
  SnapshotRotator& rotator() { return *rotator_; }

 private:
  void AcceptLoop();
  /// Decodes and answers one request; fills `response_frame`. Returns
  /// false when the session must end (protocol error or shutdown).
  bool HandleRequest(Span<const uint8_t> payload,
                     ServedModel::QueryContext& context,
                     std::vector<uint64_t>& keys,
                     std::vector<double>& estimates,
                     std::vector<sketch::HeavyHitter>& hitters,
                     std::vector<uint8_t>& response_frame);
  /// Sets stop_ under shutdown_mutex_ and notifies Wait()ers — the store
  /// must happen inside the mutex or a waiter between its predicate
  /// check and re-blocking would miss the notify forever.
  void SignalStop();

  const ServerConfig config_;
  std::unique_ptr<ServedModel> model_;
  std::unique_ptr<SnapshotRotator> rotator_;
  std::unique_ptr<EventLoopPool> pool_;

  // One writer (ingest) / many readers (queries, rotation serialization).
  mutable std::shared_mutex model_mutex_;

  int listen_fd_ = -1;      // Unix transport, -1 when off.
  int tcp_listen_fd_ = -1;  // TCP transport, -1 when off.
  uint16_t tcp_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::mutex shutdown_call_mutex_;  // Serializes RequestShutdown callers.

  // Stats.
  Timer uptime_;
  std::atomic<uint64_t> items_ingested_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> query_requests_{0};
  std::atomic<uint64_t> ingest_requests_{0};
  std::atomic<uint64_t> topk_requests_{0};
  std::atomic<uint64_t> window_stats_requests_{0};
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> teardown_errors_{0};
  mutable std::mutex latency_mutex_;
  LatencyHistogram query_latency_;
};

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_SERVER_H_

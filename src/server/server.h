#ifndef OPTHASH_SERVER_SERVER_H_
#define OPTHASH_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "server/latency_histogram.h"
#include "server/protocol.h"
#include "server/served_model.h"
#include "server/snapshot_rotator.h"
#include "stream/sharded_ingest.h"

namespace opthash::server {

/// \brief Everything one daemon instance needs to run.
struct ServerConfig {
  /// Unix-domain socket path clients connect to (required).
  std::string socket_path;
  /// Sharded-ingest geometry applied to every ingest request block.
  stream::ShardedIngestConfig ingest;
  /// Background snapshot rotation; disabled when `rotation.dir` is empty.
  RotationConfig rotation;
  /// listen(2) backlog.
  int backlog = 16;
  /// Accept-loop poll cadence; bounds shutdown latency.
  int accept_poll_millis = 100;

  Status Validate() const;
};

/// \brief The opthash serving daemon core: accepts sessions on a
/// Unix-domain socket, answers the wire protocol of server/protocol.h,
/// and keeps the model durable through background snapshot rotation.
///
/// Concurrency model (one writer, many readers):
///  - every client session runs on its own thread with its own reusable
///    frame buffers and ServedModel::QueryContext, so query requests from
///    different sessions execute concurrently under a shared model lock
///    with zero steady-state allocation;
///  - ingest requests take the model lock exclusively — one request block
///    is the unit of atomicity (a snapshot never splits a block);
///  - snapshot rotation serializes the model under the *shared* lock
///    (rotation runs concurrently with queries, never with ingest).
///
/// The embedded library form (Start/Wait/RequestShutdown) is what the
/// opthash_serve binary, the in-process tests, and the serving benchmark
/// all drive — the daemon has no behavior the tests cannot reach.
class Server {
 public:
  Server(ServerConfig config, std::unique_ptr<ServedModel> model);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, starts the rotator, accept loop and session
  /// handling. Fails (leaving nothing running) on an invalid config, an
  /// unbindable socket, or rotation configured on a read-only model.
  Status Start();

  /// Blocks until shutdown is requested (client `shutdown` request or
  /// RequestShutdown from another thread, e.g. a signal handler's waker).
  void Wait();

  /// Initiates shutdown: stop accepting, unblock and join every session,
  /// stop the rotator. Idempotent, callable from any thread; the
  /// destructor runs it too.
  void RequestShutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Current operational counters (the same numbers a kStats request
  /// returns).
  ServerStatsSnapshot StatsNow() const;

  const ServedModel& model() const { return *model_; }
  SnapshotRotator& rotator() { return *rotator_; }

 private:
  void AcceptLoop();
  void SessionLoop(int fd);
  /// Decodes and answers one request; fills `response_frame`. Returns
  /// false when the session must end (protocol error or shutdown).
  bool HandleRequest(Span<const uint8_t> payload,
                     ServedModel::QueryContext& context,
                     std::vector<uint64_t>& keys,
                     std::vector<double>& estimates,
                     std::vector<uint8_t>& response_frame);
  /// Sets stop_ under shutdown_mutex_ and notifies Wait()ers — the store
  /// must happen inside the mutex or a waiter between its predicate
  /// check and re-blocking would miss the notify forever.
  void SignalStop();
  /// Joins session threads that announced completion (runs on the accept
  /// thread between accepts, bounding session_threads_ by the number of
  /// LIVE sessions instead of total sessions ever accepted).
  void ReapFinishedSessions();
  void JoinSessions();

  const ServerConfig config_;
  std::unique_ptr<ServedModel> model_;
  std::unique_ptr<SnapshotRotator> rotator_;

  // One writer (ingest) / many readers (queries, rotation serialization).
  mutable std::shared_mutex model_mutex_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::mutex sessions_mutex_;
  std::list<std::thread> session_threads_;
  std::vector<std::list<std::thread>::iterator> finished_sessions_;
  std::vector<int> session_fds_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::mutex shutdown_call_mutex_;  // Serializes RequestShutdown callers.

  // Stats.
  Timer uptime_;
  std::atomic<uint64_t> items_ingested_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> query_requests_{0};
  std::atomic<uint64_t> ingest_requests_{0};
  std::atomic<uint64_t> sessions_accepted_{0};
  mutable std::mutex latency_mutex_;
  LatencyHistogram query_latency_;
};

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_SERVER_H_

#ifndef OPTHASH_SERVER_PROTOCOL_H_
#define OPTHASH_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "sketch/top_k.h"

namespace opthash::server {

/// The opthash serving wire protocol (byte-level spec: docs/OPERATIONS.md).
///
/// Every message travels as one length-prefixed frame:
///
///   u32  payload_length   (little-endian; bytes that follow)
///   u8   message_type     (first payload byte)
///   ...  type-specific body
///
/// All integers are little-endian; doubles are IEEE-754 bit patterns.
/// Frames above kMaxFramePayload are rejected before any allocation
/// proportional to the claimed length, so a hostile 4 GB header cannot
/// balloon the server. Malformed payloads decode to a clean
/// InvalidArgument Status — never a crash — and terminate the session;
/// semantic failures (e.g. ingest into a read-only model) travel back as
/// kError responses and keep the session alive.

/// Upper bound on one frame's payload bytes (4 MiB ≈ 500k keys/frame).
inline constexpr size_t kMaxFramePayload = 4u << 20;
/// Bytes of the length prefix preceding every payload.
inline constexpr size_t kFrameHeaderSize = 4;
/// Keys fitting one query/ingest frame (type byte + u32 count + 8/key).
inline constexpr size_t kMaxKeysPerFrame =
    (kMaxFramePayload - 1 - sizeof(uint32_t)) / sizeof(uint64_t);
/// Bytes of one serialized heavy hitter in a kTopKReply body.
inline constexpr size_t kWireHitterSize =
    sizeof(uint64_t) + 2 * sizeof(double) + 1;
/// Hitters fitting one topk-reply frame (type byte + u32 count + 25/entry).
inline constexpr size_t kMaxHittersPerFrame =
    (kMaxFramePayload - 1 - sizeof(uint32_t)) / kWireHitterSize;

/// Stable on-wire message identifiers — never renumber.
enum class MessageType : uint8_t {
  // Requests.
  kQuery = 1,     // u32 count, count x u64 keys -> kEstimates
  kIngest = 2,    // u32 count, count x u64 keys -> kAck(items this run)
  kStats = 3,     // (empty)                     -> kStats
  kPing = 4,      // (empty)                     -> kPong
  kSnapshot = 5,  // (empty)                     -> kAck(rotation sequence)
  kShutdown = 6,  // (empty)                     -> kAck(0), then shutdown
  kTopK = 7,      // u32 k                       -> kTopKReply
  kMetrics = 8,   // (empty)                     -> kMetricsReply
  // Envelope: u8 header version, u32 model id, then one complete inner
  // request payload (type byte onward). The model-id field is the hook
  // for the future multi-bundle registry; today only id 0 is served.
  kScopedRequest = 9,
  kWindowStats = 10,  // (empty)                   -> kWindowStatsReply
  // Responses.
  kEstimates = 129,  // u32 count, count x f64
  kAck = 130,        // u64 value
  kStatsReply = 131, // ServerStatsSnapshot body
  kPong = 132,       // (empty)
  kTopKReply = 133,    // u32 count, count x (u64 id, f64 est, f64 err, u8 g)
  kMetricsReply = 134, // u32 length + Prometheus text exposition bytes
  kWindowStatsReply = 135,  // WindowStatsSnapshot body
  kError = 255,      // u8 wire code, u32 length + message bytes
};

const char* MessageTypeName(MessageType type);

/// Current (and only) scoped-request header version.
inline constexpr uint8_t kRequestHeaderVersion = 1;

/// The versioned request header carried by a kScopedRequest envelope.
/// PR-5 reserved a model-id request form without defining it; this struct
/// is that definition. The server resolves `model_id` before dispatching
/// the inner request — non-default ids are rejected with kError(NotFound)
/// until the multi-bundle registry lands, at which point the same header
/// routes requests to named bundles without a wire change.
struct RequestHeader {
  uint8_t version = kRequestHeaderVersion;
  uint32_t model_id = 0;
};

/// Operational counters served by the kStats request; also the
/// human-readable output of `opthash_client stats`.
struct ServerStatsSnapshot {
  uint64_t items_ingested = 0;    // Arrivals accepted by this process.
  uint64_t queries_served = 0;    // Individual keys answered.
  uint64_t query_requests = 0;    // kQuery frames handled.
  uint64_t ingest_requests = 0;   // kIngest frames handled.
  uint64_t sessions_accepted = 0;
  uint64_t snapshots_written = 0;      // Rotations this run.
  uint64_t model_total_items = 0;      // Model-lifetime arrivals (0 = n/a).
  double uptime_seconds = 0.0;
  double query_p50_micros = 0.0;       // Server-side request latency.
  double query_p99_micros = 0.0;
  double snapshot_age_seconds = -1.0;  // < 0: no rotation yet this run.
};

/// Ring-position report served by the kWindowStats request — lets clients
/// see window boundaries (and verify crash recovery resumed mid-window).
/// Only windowed models answer it; everything else replies
/// kError(FailedPrecondition) and the session survives.
struct WindowStatsSnapshot {
  uint64_t window_items = 0;             // 0 = tick-only advance.
  uint64_t window_sequence = 0;          // Ring advances since creation.
  uint64_t items_in_current_window = 0;
  double decay = 1.0;                    // 1.0 = plain sliding window.
  std::vector<uint64_t> window_counts;   // Oldest window first.
};

// --------------------------------------------------------------------------
// Encoding. Every Encode* renders one COMPLETE frame (length prefix
// included) into `frame`, clearing it first — callers hand the same vector
// back in so its capacity is reused and a warm session encodes without
// heap allocation.

/// `type` must be kQuery or kIngest.
void EncodeKeyRequest(MessageType type, Span<const uint64_t> keys,
                      std::vector<uint8_t>& frame);
/// For the body-less requests (kStats/kPing/kSnapshot/kShutdown).
void EncodeEmptyMessage(MessageType type, std::vector<uint8_t>& frame);
void EncodeEstimatesResponse(Span<const double> estimates,
                             std::vector<uint8_t>& frame);
void EncodeAckResponse(uint64_t value, std::vector<uint8_t>& frame);
void EncodeStatsResponse(const ServerStatsSnapshot& stats,
                         std::vector<uint8_t>& frame);
void EncodeErrorResponse(const Status& error, std::vector<uint8_t>& frame);

/// kTopK request: ask for the k heaviest keys of the served model.
void EncodeTopKRequest(uint32_t k, std::vector<uint8_t>& frame);

/// kTopKReply: hitters.size() must be <= kMaxHittersPerFrame (the server
/// clamps k before answering, so a reply always fits one frame).
void EncodeTopKReply(Span<const sketch::HeavyHitter> hitters,
                     std::vector<uint8_t>& frame);

/// kMetricsReply: the rendered Prometheus text exposition. Clamped at the
/// frame cap like error messages (a scrape body never comes close).
void EncodeMetricsReply(const std::string& text, std::vector<uint8_t>& frame);

/// kWindowStatsReply: ring metadata + per-window arrival counts.
/// stats.window_counts.size() must fit one frame (a W beyond ~500k
/// windows is rejected long before serving).
void EncodeWindowStatsReply(const WindowStatsSnapshot& stats,
                            std::vector<uint8_t>& frame);

/// kScopedRequest envelope around one complete inner request payload
/// (type byte onward — NOT a length-prefixed frame). The inner payload
/// must itself fit the enveloped frame within kMaxFramePayload.
void EncodeScopedRequest(const RequestHeader& header,
                         Span<const uint8_t> inner_payload,
                         std::vector<uint8_t>& frame);

// --------------------------------------------------------------------------
// Decoding. Input is one frame payload (the bytes after the length
// prefix). Every decoder rejects a short, oversized, or inconsistent body
// with InvalidArgument; none of them crash on garbage.

/// First payload byte as a MessageType; rejects empty payloads and byte
/// values that name no known message.
Result<MessageType> PeekMessageType(Span<const uint8_t> payload);

/// Decodes a kQuery/kIngest body into `keys` (cleared, capacity reused).
/// The declared count must match the payload size exactly.
Status DecodeKeyRequest(Span<const uint8_t> payload, MessageType expected,
                        std::vector<uint64_t>& keys);

/// Accepts only `expected` with an empty body.
Status DecodeEmptyMessage(Span<const uint8_t> payload, MessageType expected);

Status DecodeEstimatesResponse(Span<const uint8_t> payload,
                               std::vector<double>& estimates);
Result<uint64_t> DecodeAckResponse(Span<const uint8_t> payload);
Result<ServerStatsSnapshot> DecodeStatsResponse(Span<const uint8_t> payload);

/// Decodes a kTopK body; rejects k == 0.
Result<uint32_t> DecodeTopKRequest(Span<const uint8_t> payload);

/// Decodes a kTopKReply body into `hitters` (cleared, capacity reused).
/// The guaranteed byte must be strictly 0 or 1.
Status DecodeTopKReply(Span<const uint8_t> payload,
                       std::vector<sketch::HeavyHitter>& hitters);

/// Decodes a kMetricsReply body into `text`.
Status DecodeMetricsReply(Span<const uint8_t> payload, std::string& text);

/// Decodes a kWindowStatsReply body; the declared window count must match
/// the payload size exactly.
Result<WindowStatsSnapshot> DecodeWindowStatsReply(
    Span<const uint8_t> payload);

/// Decodes a kScopedRequest envelope. `inner` aliases `payload` (no
/// copy) and holds one complete inner request payload. Rejects unknown
/// header versions, empty inner payloads, and nested envelopes.
Status DecodeScopedRequest(Span<const uint8_t> payload, RequestHeader& header,
                           Span<const uint8_t>& inner);

/// Reconstructs the remote Status carried by a kError payload into
/// `remote`; the return value reports whether the payload itself decoded.
Status DecodeErrorResponse(Span<const uint8_t> payload, Status& remote);

/// StatusCode <-> on-wire error code (the u8 in kError frames). Unknown
/// wire codes map to kInternal rather than failing: an old client must
/// still surface errors from a newer server.
uint8_t WireCodeOfStatus(StatusCode code);
StatusCode StatusCodeOfWire(uint8_t wire);

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_PROTOCOL_H_

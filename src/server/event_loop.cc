#include "server/event_loop.h"

#include <cstring>
#include <utility>

#include "io/bytes.h"
#include "server/protocol.h"
#include "server/socket_io.h"

#ifndef _WIN32
#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif
#endif

namespace opthash::server {

Status EventLoopConfig::Validate() const {
  if (poll_millis < 1) {
    return Status::InvalidArgument("event loop poll cadence must be >= 1ms");
  }
  if (idle_timeout_seconds < 0.0) {
    return Status::InvalidArgument("idle timeout must be >= 0");
  }
  if (max_write_buffer < kMaxFramePayload + 64) {
    // One maximum response frame must always fit, or a single legitimate
    // full-size reply would count as "backpressure" and kill the session.
    return Status::InvalidArgument(
        "write buffer cap must hold at least one full frame (" +
        std::to_string(kMaxFramePayload + 64) + " bytes)");
  }
  if (write_high_watermark > max_write_buffer) {
    return Status::InvalidArgument(
        "write high watermark cannot exceed the write buffer cap");
  }
  return Status::OK();
}

/// One adopted socket: buffers, interest flags and session scratch, all
/// owned by the loop thread.
struct EventLoop::Connection {
  int fd = -1;
  std::vector<uint8_t> read_buffer;
  std::vector<uint8_t> write_buffer;
  size_t write_head = 0;  // Bytes of write_buffer already sent.
  bool close_after_flush = false;
  bool eof = false;     // Peer closed its write side.
  bool doomed = false;  // Close at the next opportunity, no more flushing.
  bool want_read = true;
  bool want_write = false;
  bool reg_read = true;  // Interest currently registered with the poller.
  bool reg_write = false;
  double last_active = 0.0;
  std::unique_ptr<SessionState> session;
};

#ifndef _WIN32

/// Readiness backend: epoll on Linux, poll(2) on other POSIX systems.
/// The loop never blocks in the poller longer than poll_millis, so stop
/// flags and adoption mailboxes are observed promptly even without a
/// wake byte.
class EventLoop::Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
  };

  ~Poller() { Close(); }

  Status Init() {
#ifdef __linux__
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::Internal(std::string("epoll_create1: ") +
                              std::strerror(errno));
    }
#endif
    return Status::OK();
  }

  void Close() {
#ifdef __linux__
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
#else
    interest_.clear();
#endif
  }

  Status Add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
    epoll_event event{};
    event.events = Mask(want_read, want_write);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      return Status::Internal(std::string("epoll_ctl add: ") +
                              std::strerror(errno));
    }
#else
    interest_[fd] = {want_read, want_write};
#endif
    return Status::OK();
  }

  void Mod(int fd, bool want_read, bool want_write) {
#ifdef __linux__
    epoll_event event{};
    event.events = Mask(want_read, want_write);
    event.data.fd = fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
#else
    interest_[fd] = {want_read, want_write};
#endif
  }

  void Del(int fd) {
#ifdef __linux__
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#else
    interest_.erase(fd);
#endif
  }

  void Wait(int timeout_millis, std::vector<Event>& events) {
    events.clear();
#ifdef __linux__
    epoll_event raw[256];
    const int ready = ::epoll_wait(epoll_fd_, raw, 256, timeout_millis);
    for (int i = 0; i < ready; ++i) {
      Event event;
      event.fd = raw[i].data.fd;
      // Errors and hangups surface as both-ready: the read()/send() on
      // the fd then reports the precise condition.
      const bool trouble =
          (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      event.readable = trouble || (raw[i].events & EPOLLIN) != 0;
      event.writable = trouble || (raw[i].events & EPOLLOUT) != 0;
      events.push_back(event);
    }
#else
    poll_scratch_.clear();
    for (const auto& [fd, want] : interest_) {
      pollfd entry{};
      entry.fd = fd;
      if (want.first) entry.events |= POLLIN;
      if (want.second) entry.events |= POLLOUT;
      poll_scratch_.push_back(entry);
    }
    const int ready = ::poll(poll_scratch_.data(), poll_scratch_.size(),
                             timeout_millis);
    if (ready <= 0) return;
    for (const pollfd& entry : poll_scratch_) {
      if (entry.revents == 0) continue;
      Event event;
      event.fd = entry.fd;
      const bool trouble =
          (entry.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      event.readable = trouble || (entry.revents & POLLIN) != 0;
      event.writable = trouble || (entry.revents & POLLOUT) != 0;
      events.push_back(event);
    }
#endif
  }

 private:
#ifdef __linux__
  static uint32_t Mask(bool want_read, bool want_write) {
    uint32_t mask = 0;
    if (want_read) mask |= EPOLLIN;
    if (want_write) mask |= EPOLLOUT;
    return mask;
  }
  int epoll_fd_ = -1;
#else
  std::unordered_map<int, std::pair<bool, bool>> interest_;
  std::vector<pollfd> poll_scratch_;
#endif
};

EventLoop::EventLoop(EventLoopConfig config, SessionFactory factory,
                     FrameHandler handler)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      handler_(std::move(handler)) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  OPTHASH_IO_RETURN_IF_ERROR(config_.Validate());
  OPTHASH_CHECK_MSG(!started_, "EventLoop::Start called twice");
  poller_ = std::make_unique<Poller>();
  OPTHASH_IO_RETURN_IF_ERROR(poller_->Init());
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    poller_.reset();
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  ::fcntl(wake_read_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_write_fd_, F_SETFL, O_NONBLOCK);
  const Status added = poller_->Add(wake_read_fd_, true, false);
  if (!added.ok()) {
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
    poller_.reset();
    return added;
  }
  stop_.store(false, std::memory_order_release);
  clock_.Restart();
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    Wake();
    thread_.join();
  }
  {
    // Adoptions that raced the shutdown never reached the loop thread.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (int fd : pending_adopt_) {
      ::close(fd);
      connection_count_.fetch_sub(1, std::memory_order_acq_rel);
    }
    pending_adopt_.clear();
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
  }
  poller_.reset();
}

Status EventLoop::Adopt(int fd) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (stop_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("event loop is stopped");
    }
    pending_adopt_.push_back(fd);
    connection_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  Wake();
  return Status::OK();
}

void EventLoop::Wake() {
  if (wake_write_fd_ < 0) return;
  const uint8_t byte = 1;
  // A full pipe already guarantees a pending wake-up.
  (void)!::write(wake_write_fd_, &byte, 1);
}

void EventLoop::Run() {
  std::vector<Poller::Event> events;
  while (true) {
    AdoptPending();
    if (stop_.load(std::memory_order_acquire)) break;
    poller_->Wait(config_.poll_millis, events);
    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        uint8_t drain[64];
        while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection& connection = *it->second;
      if (event.writable && !connection.doomed) FlushWrites(connection);
      if (event.readable && !connection.doomed) HandleReadable(connection);
      if (connection.doomed) doomed_scratch_.push_back(event.fd);
    }
    for (int fd : doomed_scratch_) CloseConnection(fd);
    doomed_scratch_.clear();
    if (config_.idle_timeout_seconds > 0.0) SweepIdle();
  }
  // Shutdown: give queued replies (e.g. the shutdown ack) one
  // best-effort non-blocking flush, then close everything.
  doomed_scratch_.clear();
  for (auto& [fd, connection] : connections_) {
    if (!connection->doomed) FlushWrites(*connection);
    doomed_scratch_.push_back(fd);
  }
  for (int fd : doomed_scratch_) CloseConnection(fd);
  doomed_scratch_.clear();
}

void EventLoop::AdoptPending() {
  std::vector<int> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending.swap(pending_adopt_);
  }
  for (int fd : pending) {
    const Status ready = SetNonBlocking(fd);
    Status added = ready;
    if (ready.ok()) added = poller_->Add(fd, true, false);
    if (!added.ok()) {
      ::close(fd);
      connection_count_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->session = factory_();
    connection->last_active = clock_.ElapsedSeconds();
    connections_[fd] = std::move(connection);
  }
}

void EventLoop::HandleReadable(Connection& connection) {
  // One bounded chunk per readiness event: level-triggered polling
  // re-fires while bytes remain, so no single firehose session can
  // starve its loop-mates.
  uint8_t chunk[64 * 1024];
  const ssize_t received = ::read(connection.fd, chunk, sizeof(chunk));
  if (received < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    connection.doomed = true;
    return;
  }
  if (received == 0) {
    connection.eof = true;
    connection.want_read = false;
    if (!connection.read_buffer.empty() && !connection.close_after_flush) {
      // Peer vanished mid-frame: answer error-then-hangup, best effort
      // (a half-closed peer can still read the verdict).
      EncodeErrorResponse(
          Status::InvalidArgument("truncated frame: peer closed mid-read"),
          response_scratch_);
      connection.write_buffer.insert(connection.write_buffer.end(),
                                     response_scratch_.begin(),
                                     response_scratch_.end());
      connection.read_buffer.clear();
    }
    if (connection.write_buffer.size() == connection.write_head) {
      connection.doomed = true;
      return;
    }
    connection.close_after_flush = true;
    FlushWrites(connection);
    return;
  }
  connection.last_active = clock_.ElapsedSeconds();
  connection.read_buffer.insert(connection.read_buffer.end(), chunk,
                                chunk + received);
  ParseFrames(connection);
}

void EventLoop::ParseFrames(Connection& connection) {
  std::vector<uint8_t>& buffer = connection.read_buffer;
  size_t head = 0;
  while (!connection.close_after_flush && !connection.doomed) {
    const size_t available = buffer.size() - head;
    if (available < kFrameHeaderSize) break;
    uint32_t length = 0;
    std::memcpy(&length, buffer.data() + head, sizeof(length));
    if (!io::HostIsLittleEndian()) length = io::ByteSwap32(length);
    if (length > kMaxFramePayload) {
      // Same answer-then-hangup (and the same message) the blocking
      // reader gave — rejected from the 4-byte prefix alone, before any
      // length-proportional buffering.
      EncodeErrorResponse(
          Status::InvalidArgument(
              "frame payload of " + std::to_string(length) +
              " bytes exceeds the " + std::to_string(kMaxFramePayload) +
              "-byte limit"),
          response_scratch_);
      connection.write_buffer.insert(connection.write_buffer.end(),
                                     response_scratch_.begin(),
                                     response_scratch_.end());
      connection.close_after_flush = true;
      break;
    }
    if (available - kFrameHeaderSize < length) break;  // Frame incomplete.
    const Span<const uint8_t> payload(
        buffer.data() + head + kFrameHeaderSize, length);
    const bool keep =
        handler_(*connection.session, payload, response_scratch_);
    connection.write_buffer.insert(connection.write_buffer.end(),
                                   response_scratch_.begin(),
                                   response_scratch_.end());
    head += kFrameHeaderSize + length;
    connection.last_active = clock_.ElapsedSeconds();
    if (!keep) connection.close_after_flush = true;
  }
  if (connection.close_after_flush) {
    buffer.clear();
    connection.want_read = false;
  } else if (head > 0) {
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<ptrdiff_t>(head));
  }
  FlushWrites(connection);
}

void EventLoop::FlushWrites(Connection& connection) {
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#endif
  std::vector<uint8_t>& buffer = connection.write_buffer;
  while (connection.write_head < buffer.size()) {
    const ssize_t sent =
        ::send(connection.fd, buffer.data() + connection.write_head,
               buffer.size() - connection.write_head, kSendFlags);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection.doomed = true;  // Peer reset under us.
      return;
    }
    connection.write_head += static_cast<size_t>(sent);
    connection.last_active = clock_.ElapsedSeconds();
  }
  if (connection.write_head == buffer.size()) {
    buffer.clear();
    connection.write_head = 0;
    connection.want_write = false;
    if (connection.close_after_flush) {
      connection.doomed = true;
      return;
    }
    if (!connection.eof) connection.want_read = true;
  } else {
    connection.want_write = true;
    const size_t pending = buffer.size() - connection.write_head;
    if (pending > config_.max_write_buffer) {
      // The peer stopped reading its replies; cut it loose before its
      // backlog becomes the daemon's memory problem.
      closed_backpressure_.fetch_add(1);
      connection.doomed = true;
      return;
    }
    const size_t watermark = config_.write_high_watermark > 0
                                 ? config_.write_high_watermark
                                 : config_.max_write_buffer / 2;
    if (!connection.close_after_flush && !connection.eof) {
      connection.want_read = pending <= watermark;
    }
    if (connection.write_head > (1u << 20)) {
      // Compact the consumed prefix so a long drain doesn't pin it.
      buffer.erase(buffer.begin(),
                   buffer.begin() +
                       static_cast<ptrdiff_t>(connection.write_head));
      connection.write_head = 0;
    }
  }
  UpdateInterest(connection);
}

void EventLoop::UpdateInterest(Connection& connection) {
  if (connection.doomed) return;
  if (connection.want_read != connection.reg_read ||
      connection.want_write != connection.reg_write) {
    poller_->Mod(connection.fd, connection.want_read, connection.want_write);
    connection.reg_read = connection.want_read;
    connection.reg_write = connection.want_write;
  }
}

void EventLoop::SweepIdle() {
  const double now = clock_.ElapsedSeconds();
  doomed_scratch_.clear();
  for (const auto& [fd, connection] : connections_) {
    if (now - connection->last_active > config_.idle_timeout_seconds) {
      doomed_scratch_.push_back(fd);
    }
  }
  for (int fd : doomed_scratch_) {
    closed_idle_.fetch_add(1);
    CloseConnection(fd);
  }
  doomed_scratch_.clear();
}

void EventLoop::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  poller_->Del(fd);
  ::close(fd);
  connections_.erase(it);
  connection_count_.fetch_sub(1, std::memory_order_acq_rel);
}

#else  // _WIN32

class EventLoop::Poller {};

EventLoop::EventLoop(EventLoopConfig config, SessionFactory factory,
                     FrameHandler handler)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      handler_(std::move(handler)) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  return Status::FailedPrecondition(
      "the opthash event loop requires POSIX sockets, unavailable in this "
      "build");
}
void EventLoop::Stop() {}
Status EventLoop::Adopt(int) {
  return Status::FailedPrecondition("event loop unavailable in this build");
}
void EventLoop::Wake() {}
void EventLoop::Run() {}
void EventLoop::AdoptPending() {}
void EventLoop::HandleReadable(Connection&) {}
void EventLoop::ParseFrames(Connection&) {}
void EventLoop::FlushWrites(Connection&) {}
void EventLoop::UpdateInterest(Connection&) {}
void EventLoop::SweepIdle() {}
void EventLoop::CloseConnection(int) {}

#endif  // _WIN32

EventLoopPool::EventLoopPool(size_t loops, EventLoopConfig config,
                             EventLoop::SessionFactory factory,
                             EventLoop::FrameHandler handler) {
  if (loops == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    loops = hardware > 0 ? hardware : 1;
  }
  loops_.reserve(loops);
  for (size_t i = 0; i < loops; ++i) {
    loops_.push_back(
        std::make_unique<EventLoop>(config, factory, handler));
  }
}

Status EventLoopPool::Start() {
  for (size_t i = 0; i < loops_.size(); ++i) {
    const Status started = loops_[i]->Start();
    if (!started.ok()) {
      for (size_t j = 0; j < i; ++j) loops_[j]->Stop();
      return started;
    }
  }
  return Status::OK();
}

void EventLoopPool::Stop() {
  for (auto& loop : loops_) loop->Stop();
}

Status EventLoopPool::Adopt(int fd) {
  const size_t at = next_.fetch_add(1, std::memory_order_relaxed);
  return loops_[at % loops_.size()]->Adopt(fd);
}

size_t EventLoopPool::connections() const {
  size_t total = 0;
  for (const auto& loop : loops_) total += loop->connections();
  return total;
}

uint64_t EventLoopPool::closed_idle() const {
  uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->closed_idle();
  return total;
}

uint64_t EventLoopPool::closed_backpressure() const {
  uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->closed_backpressure();
  return total;
}

}  // namespace opthash::server

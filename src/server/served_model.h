#ifndef OPTHASH_SERVER_SERVED_MODEL_H_
#define OPTHASH_SERVER_SERVED_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/span.h"
#include "common/status.h"
#include "server/protocol.h"
#include "sketch/top_k.h"
#include "stream/sharded_ingest.h"

namespace opthash::server {

/// \brief What the serving daemon holds behind its socket: one loadable,
/// queryable, (usually) ingestable, checkpointable frequency summary.
///
/// One interface covers every artifact the offline CLI produces — sketch
/// checkpoints (count-min, count-sketch, learned count-min, misra-gries,
/// space-saving), model bundles (featurizer + OptHashEstimator +
/// classifier), and their zero-copy mmap views. AMS checkpoints are
/// rejected at open time: they answer only the stream-wide F2 moment,
/// not per-key queries, so serving one is a configuration error.
///
/// Threading contract (what the server relies on):
///  - Ingest and SaveSnapshot may not run concurrently with each other or
///    with EstimateBatch; the server serializes them behind a writer lock
///    (SaveSnapshot shares the read side with queries).
///  - EstimateBatch is const and safe to call from many threads at once
///    PROVIDED each thread uses its own QueryContext — all per-query
///    mutable scratch lives in the context, never in the model.
class ServedModel {
 public:
  /// Per-session scratch for the batched query path. A warm context makes
  /// EstimateBatch allocation-free (the batch buffers are reused across
  /// requests, exactly like io::BundleQueryEngine's workspace).
  class QueryContext {
   public:
    virtual ~QueryContext() = default;
  };

  virtual ~ServedModel() = default;

  /// Human-readable artifact kind ("count-min", "model-bundle", ...).
  virtual const char* Kind() const = 0;

  /// True for mmap-backed views: queries only; Ingest and SaveSnapshot
  /// fail with FailedPrecondition.
  virtual bool ReadOnly() const = 0;

  /// Ingests one block of arrivals (unit increments) through the sharded
  /// ingestion engine; `config.num_threads == 1` is the plain sequential
  /// UpdateBatch path.
  virtual Status Ingest(Span<const uint64_t> keys,
                        const stream::ShardedIngestConfig& config) = 0;

  virtual std::unique_ptr<QueryContext> NewQueryContext() const = 0;

  /// out[i] = frequency estimate of keys[i]. keys.size() must equal
  /// out.size(). Answers are identical to the offline `query`/`restore`
  /// verbs over the same artifact (bundle queries behave like blank-text
  /// trace rows: ids the learned table cannot resolve route through the
  /// classifier on the featurized empty payload).
  virtual void EstimateBatch(QueryContext& context, Span<const uint64_t> keys,
                             Span<double> out) const = 0;

  /// True when this artifact kind can answer TopK — the capability flag
  /// the server checks before dispatching a kTopK frame, mirroring the
  /// ReadOnly/mmap capability pattern. Heavy-hitter summaries (mg, ss),
  /// the learned count-min and model bundles report their internal
  /// candidate tables; plain cms/countsketch artifacts store no ids and
  /// cannot (the offline CLI rejects them the same way).
  virtual bool SupportsTopK() const { return false; }

  /// The k heaviest keys of the artifact, heaviest first, in the shared
  /// HeavyHitter vocabulary (canonical order: estimate desc, id asc).
  /// Same threading contract as EstimateBatch: const, concurrent-safe
  /// with per-thread contexts. Default: FailedPrecondition naming the
  /// kinds that support the verb.
  virtual Status TopK(QueryContext& context, size_t k,
                      std::vector<sketch::HeavyHitter>& out) const;

  /// True when the artifact counts over a sliding window (a windowed
  /// ring) — the capability flag behind the kWindowStats verb, same
  /// pattern as SupportsTopK.
  virtual bool SupportsWindowStats() const { return false; }

  /// Ring position + per-window arrival counts (oldest window first).
  /// Default: FailedPrecondition explaining how to get a windowed model.
  virtual Status WindowStats(WindowStatsSnapshot& out) const;

  /// Writes a checkpoint loadable by OpenServedModel (and by the offline
  /// `restore` verb) to `path`. The rotator wraps this in
  /// write-temp-then-rename; this method just writes the file.
  virtual Status SaveSnapshot(const std::string& path) const = 0;

  /// Model-lifetime arrivals for kinds that track them (count-min,
  /// misra-gries, space-saving — survives checkpoint/restore); 0 when the
  /// artifact has no such counter.
  virtual uint64_t TotalItems() const = 0;
};

/// OpenServedModel's result: the model plus whether the zero-copy mmap
/// path was actually used (callers asked for mmap on an unsupported kind
/// get a full load plus `mmap_used == false`, mirroring the `restore
/// --mmap` fallback contract).
struct OpenedModel {
  std::unique_ptr<ServedModel> model;
  bool mmap_used = false;
};

/// Loads any CLI-produced artifact for serving: text or binary model
/// bundles, or single-sketch snapshot containers. With `use_mmap`, kinds
/// that support zero-copy serving (count-min checkpoints, binary model
/// bundles) are mapped read-only; unsupported kinds fall back to a full
/// load (reported via OpenedModel::mmap_used).
Result<OpenedModel> OpenServedModel(const std::string& path, bool use_mmap);

/// Geometry of a fresh, empty sketch to serve (daemon started with
/// --sketch instead of --in). Mirrors the `snapshot` verb's flags.
/// With `windows > 0` the sketch is wrapped in a WindowedSketch ring of
/// that many windows advancing every `window_items` arrivals;
/// `decay < 1.0` additionally turns on exponential decay at query time.
struct FreshSketchSpec {
  std::string kind = "cms";  // cms|countsketch|lcms|mg|ss
  size_t width = 1024;
  size_t depth = 4;
  size_t capacity = 256;
  size_t buckets = 1024;  // lcms budget (served with an empty oracle set).
  uint64_t seed = 1;
  bool conservative = false;
  size_t windows = 0;        // 0 = plain lifetime counting (no ring).
  uint64_t window_items = 0; // Arrivals per window; required when windowed.
  double decay = 1.0;        // Per-window geometric weight, in (0, 1].
};

Result<std::unique_ptr<ServedModel>> CreateServedSketch(
    const FreshSketchSpec& spec);

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_SERVED_MODEL_H_

#ifndef OPTHASH_SERVER_SNAPSHOT_ROTATOR_H_
#define OPTHASH_SERVER_SNAPSHOT_ROTATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace opthash::server {

/// \brief When and how the serving daemon checkpoints its model.
///
/// Rotation is the daemon's durability story: every rotation serializes
/// the live model into `dir/snapshot-NNNNNN.bin` via write-temp-then-
/// rename, so a `kill -9` at any instant leaves either the previous
/// complete snapshot or the new complete snapshot — never a torn file —
/// and a restarting daemon resumes from the highest-numbered one.
struct RotationConfig {
  /// Snapshot directory (created if missing). Empty disables rotation.
  std::string dir;
  /// Rotate after this many newly ingested items (0 = no item trigger).
  uint64_t every_items = 0;
  /// Rotate after this many seconds since the last rotation (0 = no time
  /// trigger). With both triggers zero, only explicit client `snapshot`
  /// requests rotate.
  double every_seconds = 0.0;
  /// Rotated snapshots retained on disk; older ones are deleted after
  /// each successful rotation.
  size_t keep = 4;
  /// Background trigger-check cadence.
  double poll_seconds = 0.05;

  bool enabled() const { return !dir.empty(); }
  Status Validate() const;
};

/// \brief Background snapshot rotation with bounded retention.
///
/// The rotator owns a sequence counter and a polling thread; the server
/// injects two callables so this class stays free of model and locking
/// concerns: `items()` reports lifetime-ingested items (drives the item
/// trigger) and `save(path)` must write a *consistent* snapshot to
/// `path` (the server implements it by serializing under its model read
/// lock, so rotation runs concurrently with queries and atomically with
/// respect to ingest blocks).
///
/// All rotations — background and explicit RotateNow — are serialized by
/// an internal mutex; sequence numbers are strictly increasing, continue
/// across daemon restarts (Start scans `dir` for the highest existing
/// sequence), and never reuse a live file name.
class SnapshotRotator {
 public:
  using ItemsFn = std::function<uint64_t()>;
  using SaveFn = std::function<Status(const std::string& path)>;

  SnapshotRotator(RotationConfig config, ItemsFn items, SaveFn save);
  ~SnapshotRotator();

  SnapshotRotator(const SnapshotRotator&) = delete;
  SnapshotRotator& operator=(const SnapshotRotator&) = delete;

  /// Creates `dir` if needed, resumes the sequence counter from existing
  /// snapshots, and spawns the polling thread when a trigger is
  /// configured. No-op (OK) when rotation is disabled.
  Status Start();

  /// Stops the polling thread. Idempotent; also run by the destructor.
  void Stop();

  /// Writes one rotation right now (used by the client `snapshot` request
  /// and by the polling thread). Returns the sequence number written.
  Result<uint64_t> RotateNow();

  /// Seconds since the last successful rotation; negative when none has
  /// happened this run. Never blocks on an in-flight rotation (stats
  /// probes must stay cheap while a large model serializes).
  double LastRotationAgeSeconds() const;

  /// Successful rotations this run. Non-blocking, like the age.
  uint64_t rotations() const;

  /// Rotations that FAILED this run (save error, or rename into place).
  /// A durability regression must be visible in stats/metrics, not just
  /// a stderr line nobody tails; an operator alerting on this counter
  /// learns the daemon stopped checkpointing while it still serves.
  uint64_t failed_rotations() const;

  const RotationConfig& config() const { return config_; }

  /// Absolute path of the highest-numbered `snapshot-NNNNNN.bin` in
  /// `dir`, or NotFound when the directory holds none — the daemon's
  /// crash-recovery probe.
  static Result<std::string> FindLatestSnapshot(const std::string& dir);

  /// All rotated snapshots in `dir` as (sequence, filename), ascending.
  static Result<std::vector<std::pair<uint64_t, std::string>>> ListRotated(
      const std::string& dir);

 private:
  void PollLoop();
  Result<uint64_t> RotateLocked();

  const RotationConfig config_;
  const ItemsFn items_;
  const SaveFn save_;

  // mutex_ serializes rotations (including the model save) and guards
  // the sequencing state. The observable counters live outside it so
  // rotations()/LastRotationAgeSeconds — and thus every stats request —
  // never stall behind an in-flight multi-second snapshot write.
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  bool started_ = false;
  uint64_t next_sequence_ = 1;
  uint64_t items_at_last_rotation_ = 0;
  std::thread poller_;

  std::atomic<uint64_t> rotations_{0};
  std::atomic<uint64_t> failed_rotations_{0};
  mutable std::mutex age_mutex_;  // Guards the two fields below only.
  bool rotated_once_ = false;
  Timer since_last_rotation_;
};

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_SNAPSHOT_ROTATOR_H_

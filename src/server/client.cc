#include "server/client.h"

#include <utility>

#include "io/bytes.h"
#include "server/socket_io.h"
#include "server/tcp_listener.h"

namespace opthash::server {
namespace {

Status RemoteError(Span<const uint8_t> payload) {
  Status error;
  OPTHASH_IO_RETURN_IF_ERROR(DecodeErrorResponse(payload, error));
  const std::string message = "server: " + error.message();
  switch (error.code()) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(message);
}

}  // namespace

Result<Client> Client::Connect(const std::string& target) {
  if (LooksLikeHostPort(target)) {
    auto address = ParseHostPort(target);
    if (!address.ok()) return address.status();
    auto fd = ConnectTcp(address.value());
    if (!fd.ok()) return fd.status();
    return Client(fd.value());
  }
  auto fd = ConnectUnix(target);
  if (!fd.ok()) return fd.status();
  return Client(fd.value());
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      model_id_(other.model_id_),
      request_frame_(std::move(other.request_frame_)),
      scoped_frame_(std::move(other.scoped_frame_)),
      response_payload_(std::move(other.response_payload_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    CloseSocket(fd_);
    fd_ = other.fd_;
    model_id_ = other.model_id_;
    request_frame_ = std::move(other.request_frame_);
    scoped_frame_ = std::move(other.scoped_frame_);
    response_payload_ = std::move(other.response_payload_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { CloseSocket(fd_); }

Status Client::RoundTrip() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  OPTHASH_IO_RETURN_IF_ERROR(WriteAll(
      fd_, Span<const uint8_t>(request_frame_.data(), request_frame_.size())));
  return ReadFramePayload(fd_, response_payload_);
}

Result<Span<const uint8_t>> Client::Call() {
  if (model_id_ != 0) {
    // Wrap the already-encoded request in a scoped envelope. The swap
    // keeps both buffers' capacity alive across calls, so a warm scoped
    // session still encodes without heap allocation.
    RequestHeader header;
    header.model_id = model_id_;
    EncodeScopedRequest(
        header,
        Span<const uint8_t>(request_frame_.data() + kFrameHeaderSize,
                            request_frame_.size() - kFrameHeaderSize),
        scoped_frame_);
    request_frame_.swap(scoped_frame_);
  }
  OPTHASH_IO_RETURN_IF_ERROR(RoundTrip());
  const Span<const uint8_t> payload(response_payload_.data(),
                                    response_payload_.size());
  OPTHASH_IO_ASSIGN(type, PeekMessageType(payload));
  if (type == MessageType::kError) return RemoteError(payload);
  return payload;
}

Status Client::Ping() {
  EncodeEmptyMessage(MessageType::kPing, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  return DecodeEmptyMessage(payload, MessageType::kPong);
}

Status Client::Query(Span<const uint64_t> keys, std::vector<double>& out) {
  out.clear();
  out.reserve(keys.size());
  std::vector<double> chunk_estimates;
  // Transparent chunking: spans beyond one frame's key capacity become
  // several requests (the encoder would otherwise trip its frame-size
  // invariant — an abort, not a Status).
  const size_t max_keys = MaxKeysPerRequest();
  for (size_t base = 0; base < keys.size() || base == 0; base += max_keys) {
    const Span<const uint64_t> chunk = keys.subspan(base, max_keys);
    EncodeKeyRequest(MessageType::kQuery, chunk, request_frame_);
    OPTHASH_IO_ASSIGN(payload, Call());
    OPTHASH_IO_RETURN_IF_ERROR(
        DecodeEstimatesResponse(payload, chunk_estimates));
    if (chunk_estimates.size() != chunk.size()) {
      return Status::Internal(
          "server answered " + std::to_string(chunk_estimates.size()) +
          " estimates for " + std::to_string(chunk.size()) + " keys");
    }
    out.insert(out.end(), chunk_estimates.begin(), chunk_estimates.end());
    if (keys.empty()) break;
  }
  return Status::OK();
}

Result<uint64_t> Client::Ingest(Span<const uint64_t> keys) {
  uint64_t total = 0;
  const size_t max_keys = MaxKeysPerRequest();
  for (size_t base = 0; base < keys.size() || base == 0; base += max_keys) {
    const Span<const uint64_t> chunk = keys.subspan(base, max_keys);
    EncodeKeyRequest(MessageType::kIngest, chunk, request_frame_);
    OPTHASH_IO_ASSIGN(payload, Call());
    OPTHASH_IO_ASSIGN(acked, DecodeAckResponse(payload));
    total = acked;
    if (keys.empty()) break;
  }
  return total;
}

Result<ServerStatsSnapshot> Client::Stats() {
  EncodeEmptyMessage(MessageType::kStats, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  return DecodeStatsResponse(payload);
}

Status Client::TopK(uint32_t k, std::vector<sketch::HeavyHitter>& out) {
  EncodeTopKRequest(k, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  return DecodeTopKReply(payload, out);
}

Status Client::Metrics(std::string& text) {
  EncodeEmptyMessage(MessageType::kMetrics, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  return DecodeMetricsReply(payload, text);
}

Result<WindowStatsSnapshot> Client::WindowStats() {
  EncodeEmptyMessage(MessageType::kWindowStats, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  return DecodeWindowStatsReply(payload);
}

Result<uint64_t> Client::Snapshot() {
  EncodeEmptyMessage(MessageType::kSnapshot, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  return DecodeAckResponse(payload);
}

Status Client::Shutdown() {
  EncodeEmptyMessage(MessageType::kShutdown, request_frame_);
  OPTHASH_IO_ASSIGN(payload, Call());
  OPTHASH_IO_ASSIGN(ack, DecodeAckResponse(payload));
  (void)ack;
  return Status::OK();
}

}  // namespace opthash::server

#ifndef OPTHASH_SERVER_LATENCY_HISTOGRAM_H_
#define OPTHASH_SERVER_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace opthash::server {

/// \brief Fixed-size log-linear latency histogram (the HdrHistogram idea
/// at its smallest): 16 linear sub-buckets per power of two, covering
/// [0, 2^36) microseconds in 528 counters with <= 6.25% relative bucket
/// width. Recording is two integer ops and an array increment — cheap
/// enough for the per-request serving hot path — and percentiles come
/// from one cumulative walk at stats time, so the server never stores
/// per-request samples. Not thread-safe; the server guards it with its
/// stats mutex.
class LatencyHistogram {
 public:
  static constexpr size_t kMinorBuckets = 16;    // Per power of two.
  static constexpr size_t kMajorBuckets = 32;    // Powers of two tracked.
  // Largest value landing in the last bucket: log2 = kMajorBuckets + 3
  // stays inside the (kMajorBuckets + 1) * kMinorBuckets counter array.
  static constexpr uint64_t kMaxTracked =
      (uint64_t{1} << (kMajorBuckets + 4)) - 1;
  static constexpr size_t kNumBuckets = kMinorBuckets * (kMajorBuckets + 1);

  void Record(double micros) {
    uint64_t v = micros <= 0.0 ? 0 : static_cast<uint64_t>(micros);
    if (v > kMaxTracked) v = kMaxTracked;
    ++buckets_[IndexOf(v)];
    sum_micros_ += v;
    ++count_;
  }

  uint64_t count() const { return count_; }

  /// Sum of recorded values (after the truncate-and-clamp Record applies),
  /// so `sum / count` is the mean of what the buckets actually hold.
  uint64_t sum_micros() const { return sum_micros_; }

  /// Raw per-bucket count, for exporters that re-render the histogram
  /// (e.g. the Prometheus `le` exposition). Index in [0, kNumBuckets).
  uint64_t bucket_count(size_t index) const { return buckets_[index]; }

  /// Inclusive upper bound of bucket `index`: every value recorded into
  /// it is <= this. The last bucket tops out at kMaxTracked (the clamp in
  /// Record guarantees nothing above it is ever stored).
  static uint64_t BucketUpperBoundMicros(size_t index) {
    if (index + 1 >= kNumBuckets) return kMaxTracked;
    return LowerBoundOf(index + 1) - 1;
  }

  /// Value at quantile `q` in (0, 1], as the lower bound of the covering
  /// bucket (a <= 6.25% underestimate by construction). 0 when empty.
  double PercentileMicros(double q) const {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (target == 0) target = 1;
    if (target > count_) target = count_;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return static_cast<double>(LowerBoundOf(i));
    }
    return static_cast<double>(kMaxTracked);
  }

  void Reset() { *this = LatencyHistogram(); }

 private:
  static size_t IndexOf(uint64_t v) {
    if (v < kMinorBuckets) return static_cast<size_t>(v);
    size_t log2 = 0;
    for (uint64_t w = v; w > 1; w >>= 1) ++log2;  // Not hot; stays portable.
    const size_t minor =
        static_cast<size_t>((v >> (log2 - 4)) & (kMinorBuckets - 1));
    return (log2 - 3) * kMinorBuckets + minor;
  }

  static uint64_t LowerBoundOf(size_t index) {
    if (index < kMinorBuckets) return index;
    const size_t log2 = index / kMinorBuckets + 3;
    const uint64_t minor = index % kMinorBuckets;
    return (uint64_t{1} << log2) + (minor << (log2 - 4));
  }

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t sum_micros_ = 0;
  uint64_t count_ = 0;
};

}  // namespace opthash::server

#endif  // OPTHASH_SERVER_LATENCY_HISTOGRAM_H_

#include "server/socket_io.h"

#include <cstring>

#include "io/bytes.h"
#include "server/protocol.h"

#ifndef _WIN32
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace opthash::server {

#ifndef _WIN32

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

bool UnixSocketsSupported() { return true; }

Result<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // A previous daemon that crashed leaves its socket file behind; binding
  // over it is the expected restart path. An *active* daemon is not
  // protected by this unlink — operators give each daemon its own path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Errno("bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = Errno("listen " + path);
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        Status::NotFound("connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> AcceptWithTimeout(int listen_fd, int timeout_millis) {
  pollfd poll_fd{};
  poll_fd.fd = listen_fd;
  poll_fd.events = POLLIN;
  const int ready = ::poll(&poll_fd, 1, timeout_millis);
  if (ready < 0) {
    if (errno == EINTR) return Status::NotFound("accept interrupted");
    return Errno("poll");
  }
  if (ready == 0) return Status::NotFound("accept timeout");
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  return fd;
}

Result<AcceptedSocket> AcceptAnyWithTimeout(Span<const int> listen_fds,
                                            int timeout_millis) {
  pollfd poll_fds[8];
  const size_t count = listen_fds.size() < 8 ? listen_fds.size() : 8;
  for (size_t i = 0; i < count; ++i) {
    poll_fds[i] = pollfd{};
    poll_fds[i].fd = listen_fds[i];
    poll_fds[i].events = POLLIN;
  }
  const int ready =
      ::poll(poll_fds, static_cast<nfds_t>(count), timeout_millis);
  if (ready < 0) {
    if (errno == EINTR) return Status::NotFound("accept interrupted");
    return Errno("poll");
  }
  if (ready == 0) return Status::NotFound("accept timeout");
  for (size_t i = 0; i < count; ++i) {
    if ((poll_fds[i].revents & POLLIN) == 0) continue;
    const int fd = ::accept(poll_fds[i].fd, nullptr, nullptr);
    if (fd < 0) return Errno("accept");
    AcceptedSocket accepted;
    accepted.fd = fd;
    accepted.listener_index = i;
    return accepted;
  }
  return Status::NotFound("accept timeout");
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

bool CloseSocket(int fd) {
  if (fd < 0) return true;
  return ::close(fd) == 0;
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Status WriteAll(int fd, Span<const uint8_t> bytes) {
  // MSG_NOSIGNAL: a peer that hung up must surface as an EPIPE Status,
  // not a process-killing SIGPIPE — the client library's error contract
  // cannot depend on every binary remembering to ignore the signal.
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#endif
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (n == 0) return Status::Internal("send returned 0");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

// Reads exactly `size` bytes. `at_boundary` distinguishes a clean peer
// close (EOF before any byte of a new frame) from mid-frame truncation.
Status ReadExact(int fd, uint8_t* out, size_t size, bool at_boundary) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (at_boundary && got == 0) {
        return Status::NotFound("connection closed");
      }
      return Status::InvalidArgument("truncated frame: peer closed mid-read");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status ReadFramePayload(int fd, std::vector<uint8_t>& payload) {
  uint8_t header[kFrameHeaderSize];
  OPTHASH_IO_RETURN_IF_ERROR(
      ReadExact(fd, header, sizeof(header), /*at_boundary=*/true));
  uint32_t length = 0;
  std::memcpy(&length, header, sizeof(length));
  if (!io::HostIsLittleEndian()) length = io::ByteSwap32(length);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte limit");
  }
  payload.clear();
  payload.resize(length);
  if (length == 0) return Status::OK();
  return ReadExact(fd, payload.data(), length, /*at_boundary=*/false);
}

#else  // _WIN32

namespace {
Status Unsupported() {
  return Status::FailedPrecondition(
      "opthash serving requires Unix-domain sockets, unavailable in this "
      "build");
}
}  // namespace

bool UnixSocketsSupported() { return false; }
Result<int> ListenUnix(const std::string&, int) { return Unsupported(); }
Result<int> ConnectUnix(const std::string&) { return Unsupported(); }
Result<int> AcceptWithTimeout(int, int) { return Unsupported(); }
Result<AcceptedSocket> AcceptAnyWithTimeout(Span<const int>, int) {
  return Unsupported();
}
Status SetNonBlocking(int) { return Unsupported(); }
bool CloseSocket(int) { return true; }
void ShutdownSocket(int) {}
Status WriteAll(int, Span<const uint8_t>) { return Unsupported(); }
Status ReadFramePayload(int, std::vector<uint8_t>&) { return Unsupported(); }

#endif  // _WIN32

}  // namespace opthash::server

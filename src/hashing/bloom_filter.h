#ifndef OPTHASH_HASHING_BLOOM_FILTER_H_
#define OPTHASH_HASHING_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace opthash::hashing {

/// \brief Classic Bloom filter (Bloom 1970, ref [20] in the paper).
///
/// Supports Add/MayContain over 64-bit keys with k independent probe
/// positions derived by double hashing (Kirsch-Mitzenmacher). Used by the
/// adaptive-counting extension of the opt-hash estimator (paper §5.3): the
/// filter decides whether an arriving element has been seen before, which
/// drives the per-bucket distinct-element counters.
class BloomFilter {
 public:
  /// \param num_bits  size of the bit array (>= 1)
  /// \param num_hashes number of probes per key (>= 1)
  /// \param seed       seed for the two base hash functions
  BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed);

  /// Sizes the filter for an expected insertion count and target false
  /// positive rate: m = -n ln(fpr) / (ln 2)^2, k = (m/n) ln 2.
  static BloomFilter ForExpectedInsertions(size_t expected, double target_fpr,
                                           uint64_t seed);

  void Add(uint64_t key);

  /// True if the key *may* have been added (never a false negative).
  bool MayContain(uint64_t key) const;

  /// Fraction of bits set (load factor); useful to estimate the current
  /// false-positive rate as load^k.
  double FillRatio() const;

  /// Estimated false positive probability at the current load.
  double EstimatedFpr() const;

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }

  /// Memory footprint of the bit array in bytes.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  uint64_t Probe(uint64_t key, size_t probe_index) const;

  size_t num_bits_;
  size_t num_hashes_;
  uint64_t seed1_;
  uint64_t seed2_;
  std::vector<uint64_t> words_;
  size_t bits_set_ = 0;
};

}  // namespace opthash::hashing

#endif  // OPTHASH_HASHING_BLOOM_FILTER_H_

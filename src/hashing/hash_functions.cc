#include "hashing/hash_functions.h"

#include "common/check.h"

namespace opthash::hashing {

uint64_t Mix64(uint64_t key) {
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDULL;
  key ^= key >> 33;
  key *= 0xC4CEB9FE1A85EC53ULL;
  key ^= key >> 33;
  return key;
}

uint64_t HashBytes(const void* data, size_t length, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xCBF29CE484222325ULL ^ seed;
  for (size_t i = 0; i < length; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return Mix64(hash);
}

namespace {

// (a*x + b) mod (2^61 - 1) without overflow, using 128-bit intermediates and
// the Mersenne reduction x mod p = (x & p) + (x >> 61), repeated once.
uint64_t MulAddModMersenne61(uint64_t a, uint64_t x, uint64_t b) {
  constexpr uint64_t kP = LinearHash::kPrime;
  __uint128_t product = static_cast<__uint128_t>(a) * x + b;
  uint64_t lo = static_cast<uint64_t>(product & kP);
  uint64_t hi = static_cast<uint64_t>(product >> 61);
  uint64_t result = lo + hi;
  if (result >= kP) result -= kP;
  return result;
}

}  // namespace

LinearHash::LinearHash(uint64_t range, Rng& rng) : range_(range) {
  OPTHASH_CHECK_GT(range, 0u);
  a_ = 1 + rng.NextBounded(kPrime - 1);
  b_ = rng.NextBounded(kPrime);
}

LinearHash::LinearHash(uint64_t range, uint64_t a, uint64_t b)
    : range_(range), a_(a), b_(b) {
  OPTHASH_CHECK_GT(range, 0u);
  OPTHASH_CHECK_GE(a, 1u);
  OPTHASH_CHECK_LT(a, kPrime);
  OPTHASH_CHECK_LT(b, kPrime);
}

uint64_t LinearHash::operator()(uint64_t key) const {
  // Reduce the key into the field first; keys above p would alias otherwise.
  uint64_t x = key % kPrime;
  return MulAddModMersenne61(a_, x, b_) % range_;
}

SignHash::SignHash(Rng& rng) : hash_(2, rng) {}

int SignHash::operator()(uint64_t key) const {
  return hash_(key) == 0 ? -1 : 1;
}

TabulationHash::TabulationHash(Rng& rng) : tables_(8 * 256) {
  for (auto& entry : tables_) entry = rng.NextUint64();
}

uint64_t TabulationHash::operator()(uint64_t key) const {
  uint64_t hash = 0;
  for (int byte_index = 0; byte_index < 8; ++byte_index) {
    const uint64_t byte = (key >> (8 * byte_index)) & 0xFF;
    hash ^= tables_[static_cast<size_t>(byte_index) * 256 + byte];
  }
  return hash;
}

}  // namespace opthash::hashing

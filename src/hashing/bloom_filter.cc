#include "hashing/bloom_filter.h"

#include <cmath>

#include "common/check.h"
#include "hashing/hash_functions.h"

namespace opthash::hashing {

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed)
    : num_bits_(num_bits), num_hashes_(num_hashes) {
  OPTHASH_CHECK_GE(num_bits, 1u);
  OPTHASH_CHECK_GE(num_hashes, 1u);
  uint64_t sm = seed;
  seed1_ = SplitMix64(sm);
  seed2_ = SplitMix64(sm) | 1;  // Odd step so probes cycle through all bits.
  words_.assign((num_bits + 63) / 64, 0);
}

BloomFilter BloomFilter::ForExpectedInsertions(size_t expected,
                                               double target_fpr,
                                               uint64_t seed) {
  OPTHASH_CHECK_GE(expected, 1u);
  OPTHASH_CHECK_GT(target_fpr, 0.0);
  OPTHASH_CHECK_LT(target_fpr, 1.0);
  const double ln2 = std::log(2.0);
  const double bits =
      -static_cast<double>(expected) * std::log(target_fpr) / (ln2 * ln2);
  const size_t num_bits = static_cast<size_t>(std::ceil(bits));
  const size_t num_hashes = static_cast<size_t>(
      std::max(1.0, std::round(bits / static_cast<double>(expected) * ln2)));
  return BloomFilter(std::max<size_t>(num_bits, 64), num_hashes, seed);
}

uint64_t BloomFilter::Probe(uint64_t key, size_t probe_index) const {
  // Kirsch-Mitzenmacher double hashing: g_i(x) = h1(x) + i*h2(x).
  const uint64_t h1 = Mix64(key ^ seed1_);
  const uint64_t h2 = Mix64(key ^ seed2_) | 1;
  return (h1 + probe_index * h2) % num_bits_;
}

void BloomFilter::Add(uint64_t key) {
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = Probe(key, i);
    uint64_t& word = words_[bit >> 6];
    const uint64_t mask = 1ULL << (bit & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++bits_set_;
    }
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = Probe(key, i);
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  return static_cast<double>(bits_set_) / static_cast<double>(num_bits_);
}

double BloomFilter::EstimatedFpr() const {
  return std::pow(FillRatio(), static_cast<double>(num_hashes_));
}

}  // namespace opthash::hashing

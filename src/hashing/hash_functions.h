#ifndef OPTHASH_HASHING_HASH_FUNCTIONS_H_
#define OPTHASH_HASHING_HASH_FUNCTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace opthash::hashing {

/// \brief Strong 64-bit finalizer (the MurmurHash3 fmix64 step).
uint64_t Mix64(uint64_t key);

/// \brief Hash of an arbitrary byte string (FNV-1a core + Mix64 finalizer).
uint64_t HashBytes(const void* data, size_t length, uint64_t seed = 0);

/// \brief Hash of a std::string.
inline uint64_t HashString(const std::string& text, uint64_t seed = 0) {
  return HashBytes(text.data(), text.size(), seed);
}

/// \brief A 2-universal Carter-Wegman hash over the Mersenne prime 2^61 - 1.
///
/// h(x) = ((a*x + b) mod p) mod range, with a drawn uniformly from [1, p-1]
/// and b from [0, p-1]. This is the "random linear hash function" that the
/// Count-Min Sketch analysis (Cormode & Muthukrishnan 2005) assumes, giving
/// pairwise-independent bucket assignments.
class LinearHash {
 public:
  /// Draws (a, b) from `rng`; maps keys into [0, range).
  LinearHash(uint64_t range, Rng& rng);

  /// Deterministic construction from explicit coefficients (for tests).
  LinearHash(uint64_t range, uint64_t a, uint64_t b);

  uint64_t operator()(uint64_t key) const;

  uint64_t range() const { return range_; }
  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  static constexpr uint64_t kPrime = (1ULL << 61) - 1;

 private:
  uint64_t range_;
  uint64_t a_;
  uint64_t b_;
};

/// \brief Pairwise-independent ±1 sign hash used by the Count Sketch.
class SignHash {
 public:
  explicit SignHash(Rng& rng);

  /// Returns +1 or -1.
  int operator()(uint64_t key) const;

  /// The underlying range-2 LinearHash (bucket 0 means sign -1). The
  /// sketch kernel layer derives its vectorized sign computation from
  /// these coefficients.
  const LinearHash& linear() const { return hash_; }

 private:
  LinearHash hash_;
};

/// \brief Simple tabulation hashing: 3-independent and fast in practice.
///
/// Splits the 64-bit key into 8 bytes and XORs per-byte random tables
/// (Patrascu & Thorup, "The power of simple tabulation hashing").
class TabulationHash {
 public:
  explicit TabulationHash(Rng& rng);

  uint64_t operator()(uint64_t key) const;

 private:
  std::vector<uint64_t> tables_;  // 8 tables of 256 entries, flattened.
};

}  // namespace opthash::hashing

#endif  // OPTHASH_HASHING_HASH_FUNCTIONS_H_

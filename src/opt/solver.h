#ifndef OPTHASH_OPT_SOLVER_H_
#define OPTHASH_OPT_SOLVER_H_

#include "opt/objective.h"
#include "opt/problem.h"

namespace opthash::opt {

/// \brief Output of any hashing-scheme solver.
struct SolveResult {
  Assignment assignment;
  ObjectiveValue objective;
  /// Sweeps for BCD; explored nodes for branch-and-bound; 0 for DP.
  size_t iterations = 0;
  /// True when the solver certifies global optimality (DP with lambda = 1,
  /// or branch-and-bound that exhausted its tree within budget).
  bool proven_optimal = false;
  /// Best lower bound established (equals objective.overall when optimal).
  double lower_bound = 0.0;
  double elapsed_seconds = 0.0;
  /// Objective value after each BCD sweep (empty for other solvers); used
  /// to study convergence ("converges after a few tens of iterations").
  std::vector<double> sweep_objectives;
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_SOLVER_H_

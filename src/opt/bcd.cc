#include "opt/bcd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"
#include "opt/bucket_stats.h"

namespace opthash::opt {

BcdSolver::BcdSolver(BcdConfig config) : config_(config) {
  OPTHASH_CHECK_GE(config_.max_sweeps, 1u);
  OPTHASH_CHECK_GE(config_.num_restarts, 1u);
}

SolveResult BcdSolver::Solve(const HashingProblem& problem) const {
  OPTHASH_CHECK_MSG(problem.Validate().ok(), "invalid problem");
  Timer timer;
  Rng rng(config_.seed);
  SolveResult best;
  bool have_best = false;
  for (size_t restart = 0; restart < config_.num_restarts; ++restart) {
    Assignment initial = InitializeAssignment(problem, config_.init, rng);
    SolveResult candidate = Descend(problem, std::move(initial), rng);
    if (!have_best || candidate.objective.overall < best.objective.overall) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  best.elapsed_seconds = timer.ElapsedSeconds();
  return best;
}

SolveResult BcdSolver::SolveFrom(const HashingProblem& problem,
                                 Assignment initial) const {
  OPTHASH_CHECK_MSG(problem.Validate().ok(), "invalid problem");
  OPTHASH_CHECK_MSG(IsValidAssignment(problem, initial),
                    "invalid starting assignment");
  Timer timer;
  Rng rng(config_.seed);
  SolveResult result = Descend(problem, std::move(initial), rng);
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

SolveResult BcdSolver::Descend(const HashingProblem& problem,
                               Assignment assignment, Rng& rng) const {
  const size_t n = problem.NumElements();
  const size_t b = problem.num_buckets;
  const double lambda = problem.lambda;
  const bool use_features = lambda < 1.0 && problem.FeatureDim() > 0;
  const size_t feature_dim = use_features ? problem.FeatureDim() : 0;
  // Never destroyed, per the style rule on static storage duration
  // objects with non-trivial destructors.
  static const auto& kNoFeatures = *new std::vector<double>();

  auto features_of = [&](size_t i) -> const std::vector<double>& {
    return use_features ? problem.features[i] : kNoFeatures;
  };

  // Build bucket stats and the per-bucket error cache for the initial map
  // (Algorithm 1, lines 2-9).
  std::vector<BucketStats> buckets(b, BucketStats(feature_dim));
  for (size_t i = 0; i < n; ++i) {
    buckets[static_cast<size_t>(assignment[i])].Add(problem.frequencies[i],
                                                    features_of(i));
  }
  std::vector<double> bucket_error(b, 0.0);
  double total_error = 0.0;
  for (size_t j = 0; j < b; ++j) {
    bucket_error[j] = buckets[j].Error(lambda);
    total_error += bucket_error[j];
  }

  SolveResult result;
  result.sweep_objectives.push_back(total_error);

  double previous = total_error;
  size_t sweeps = 0;
  while (sweeps < config_.max_sweeps) {
    // Algorithm 1, line 12: fresh random permutation of the blocks.
    const std::vector<size_t> permutation = rng.Permutation(n);
    for (size_t element : permutation) {
      const auto current = static_cast<size_t>(assignment[element]);
      const double f = problem.frequencies[element];
      const std::vector<double>& x = features_of(element);

      // Error of the current bucket with the element removed.
      const BucketStats& home = buckets[current];
      const double home_without =
          lambda * home.EstimationErrorWithout(f) +
          (1.0 - lambda) *
              (home.SimilarityError() + home.SimilarityDeltaRemove(x));
      const double home_delta = bucket_error[current] - home_without;

      // Find the bucket whose error increases the least by hosting the
      // element; staying put costs exactly home_delta.
      size_t best_bucket = current;
      double best_delta = home_delta;
      for (size_t j = 0; j < b; ++j) {
        if (j == current) continue;
        const BucketStats& target = buckets[j];
        double delta = lambda * (target.EstimationErrorWith(f) -
                                 target.EstimationError());
        if (use_features) {
          delta += (1.0 - lambda) * target.SimilarityDeltaAdd(x);
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_bucket = j;
        }
      }

      if (best_bucket == current) continue;

      // Apply the move and refresh the two touched bucket error caches.
      buckets[current].Remove(f, x);
      buckets[best_bucket].Add(f, x);
      assignment[element] = static_cast<int32_t>(best_bucket);
      total_error -= bucket_error[current] + bucket_error[best_bucket];
      bucket_error[current] = buckets[current].Error(lambda);
      bucket_error[best_bucket] = buckets[best_bucket].Error(lambda);
      total_error += bucket_error[current] + bucket_error[best_bucket];
    }
    ++sweeps;
    result.sweep_objectives.push_back(total_error);
    const double improvement = previous - total_error;
    if (improvement < config_.tolerance * std::max(1.0, std::abs(previous))) {
      break;
    }
    previous = total_error;
  }

  result.assignment = std::move(assignment);
  result.iterations = sweeps;
  result.objective = EvaluateObjective(problem, result.assignment);
  result.proven_optimal = false;
  return result;
}

}  // namespace opthash::opt

#ifndef OPTHASH_OPT_INITIALIZATION_H_
#define OPTHASH_OPT_INITIALIZATION_H_

#include "common/random.h"
#include "opt/problem.h"

namespace opthash::opt {

/// \brief Starting-point strategies for the block coordinate descent
/// algorithm (paper §4.3 discusses all four).
enum class InitStrategy {
  /// Uniformly random bucket per element.
  kRandom,
  /// Sort elements by observed frequency and allocate consecutive chunks of
  /// ceil(n/b) elements to consecutive buckets.
  kSortedSplit,
  /// The heavy-hitter heuristic: the b-1 most frequent elements each get a
  /// private bucket; everything else shares the last bucket.
  kHeavyHitter,
  /// Warm start from the optimal lambda = 1 solution computed by the DP
  /// (paper §4.4: "we propose to use it as a warm start for the general
  /// lambda in [0,1) case").
  kDpWarmStart,
};

const char* InitStrategyName(InitStrategy strategy);

/// \brief Builds an initial assignment for `problem` with the requested
/// strategy. `rng` is only consumed by kRandom.
Assignment InitializeAssignment(const HashingProblem& problem,
                                InitStrategy strategy, Rng& rng);

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_INITIALIZATION_H_

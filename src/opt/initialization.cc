#include "opt/initialization.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "opt/dp.h"

namespace opthash::opt {

const char* InitStrategyName(InitStrategy strategy) {
  switch (strategy) {
    case InitStrategy::kRandom:
      return "random";
    case InitStrategy::kSortedSplit:
      return "sorted_split";
    case InitStrategy::kHeavyHitter:
      return "heavy_hitter";
    case InitStrategy::kDpWarmStart:
      return "dp_warm_start";
  }
  return "unknown";
}

Assignment InitializeAssignment(const HashingProblem& problem,
                                InitStrategy strategy, Rng& rng) {
  OPTHASH_CHECK_MSG(problem.Validate().ok(), "invalid problem");
  const size_t n = problem.NumElements();
  const size_t b = problem.num_buckets;
  Assignment assignment(n, 0);

  switch (strategy) {
    case InitStrategy::kRandom: {
      for (size_t i = 0; i < n; ++i) {
        assignment[i] = static_cast<int32_t>(rng.NextBounded(b));
      }
      break;
    }
    case InitStrategy::kSortedSplit: {
      // Sort by frequency; bucket t holds the t-th chunk of ceil(n/b)
      // consecutive elements (paper §4.3's second initialization).
      std::vector<size_t> order(n);
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t c) {
        return problem.frequencies[a] < problem.frequencies[c];
      });
      const size_t chunk = (n + b - 1) / b;
      for (size_t t = 0; t < n; ++t) {
        assignment[order[t]] = static_cast<int32_t>(
            std::min(t / chunk, b - 1));
      }
      break;
    }
    case InitStrategy::kHeavyHitter: {
      // The b-1 most frequent elements get private buckets 1..b-1; the rest
      // share bucket 0 (paper §4.3's heavy-hitter heuristic).
      std::vector<size_t> order(n);
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t c) {
        return problem.frequencies[a] > problem.frequencies[c];
      });
      for (size_t rank = 0; rank < n; ++rank) {
        if (rank + 1 < b) {
          assignment[order[rank]] = static_cast<int32_t>(rank + 1);
        } else {
          assignment[order[rank]] = 0;
        }
      }
      break;
    }
    case InitStrategy::kDpWarmStart: {
      DpSolver dp;
      assignment = dp.Solve(problem).assignment;
      break;
    }
  }
  return assignment;
}

}  // namespace opthash::opt

#ifndef OPTHASH_OPT_BUCKET_STATS_H_
#define OPTHASH_OPT_BUCKET_STATS_H_

#include <cstddef>
#include <vector>

namespace opthash::opt {

/// \brief Incrementally maintained statistics for one bucket I_j.
///
/// This is the data structure behind Algorithm 1's "we maintain, for each
/// bucket, the set of elements I_j mapped therein, its cardinality c_j and
/// mean frequency mu_j, as well as the associated estimation error e_j and
/// similarity error s_j" — augmented so every quantity the BCD inner loop
/// needs is answered without rescanning bucket members:
///
///  * frequencies live in a sorted vector with prefix sums, so the
///    sum-of-absolute-deviations around *any* pivot (the current mean, the
///    mean after a hypothetical insertion/removal) is O(log c_j);
///  * features are folded into Σx (vector) and Σ||x||² (scalar), so the
///    similarity delta of adding/removing an element x is O(p) via
///        Σ_k ||x - x_k||² = c·||x||² - 2·<x, Σx> + Σ||x_k||².
///
/// The similarity error s_j counts *ordered* pairs, matching the paper's
/// Σ_{(i,k) ∈ I_j × I_j} ||x_i - x_k||² (each unordered pair twice,
/// self-pairs contribute zero).
class BucketStats {
 public:
  /// \param feature_dim dimension p of element features (0 if lambda == 1
  ///        and features are ignored).
  explicit BucketStats(size_t feature_dim = 0);

  /// Inserts an element with frequency `f` and features `x` (x may be empty
  /// iff the bucket was created with feature_dim == 0).
  void Add(double f, const std::vector<double>& x);

  /// Removes one element with this exact frequency (must be present).
  void Remove(double f, const std::vector<double>& x);

  size_t count() const { return sorted_freqs_.size(); }
  bool empty() const { return sorted_freqs_.empty(); }

  /// Mean frequency mu_j; 0 for an empty bucket.
  double Mean() const;

  /// Sum of member frequencies.
  double FrequencySum() const { return freq_sum_; }

  /// Estimation error e_j = Σ_{i∈I_j} |f_i - mu_j|.
  double EstimationError() const;

  /// e_j if an element with frequency `f` were added.
  double EstimationErrorWith(double f) const;

  /// e_j if one member with frequency `f` were removed (must be a member).
  double EstimationErrorWithout(double f) const;

  /// Similarity error s_j = Σ_{(i,k)∈I_j×I_j} ||x_i - x_k||² (ordered pairs).
  double SimilarityError() const { return similarity_error_; }

  /// Change in s_j if `x` were added: +2·Σ_k ||x - x_k||².
  double SimilarityDeltaAdd(const std::vector<double>& x) const;

  /// Change in s_j if member `x` were removed: -2·Σ_{k≠x} ||x - x_k||².
  double SimilarityDeltaRemove(const std::vector<double>& x) const;

  /// Combined bucket error  lambda·e_j + (1-lambda)·s_j.
  double Error(double lambda) const;

  /// Sum of absolute deviations of all members around an arbitrary pivot.
  double SumAbsDeviations(double pivot) const;

  /// Member frequencies in ascending order (used by the branch-and-bound
  /// lower bounds).
  const std::vector<double>& sorted_frequencies() const {
    return sorted_freqs_;
  }

 private:
  // Σ_k ||x - x_k||² over current members.
  double SumSquaredDistancesTo(const std::vector<double>& x) const;

  size_t feature_dim_;
  std::vector<double> sorted_freqs_;
  std::vector<double> prefix_sums_;  // prefix_sums_[i] = sum of first i freqs.
  double freq_sum_ = 0.0;
  std::vector<double> feature_sum_;  // Σx over members.
  double feature_sq_sum_ = 0.0;      // Σ||x||² over members.
  double similarity_error_ = 0.0;    // s_j, maintained incrementally.
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_BUCKET_STATS_H_

#include "opt/objective.h"

#include <cmath>

#include "common/check.h"

namespace opthash::opt {

ObjectiveValue EvaluateObjective(const HashingProblem& problem,
                                 const Assignment& assignment) {
  OPTHASH_CHECK_MSG(IsValidAssignment(problem, assignment),
                    "invalid assignment");
  const size_t n = problem.NumElements();
  const size_t b = problem.num_buckets;
  const size_t p = problem.FeatureDim();
  const bool use_features = problem.lambda < 1.0 && p > 0;

  // Bucket aggregates in one pass.
  std::vector<double> freq_sum(b, 0.0);
  std::vector<size_t> counts(b, 0);
  std::vector<double> feature_sq_sum(b, 0.0);      // Σ||x||² per bucket
  std::vector<std::vector<double>> feature_sum;    // Σx per bucket
  if (use_features) {
    feature_sum.assign(b, std::vector<double>(p, 0.0));
  }
  for (size_t i = 0; i < n; ++i) {
    const auto j = static_cast<size_t>(assignment[i]);
    freq_sum[j] += problem.frequencies[i];
    ++counts[j];
    if (use_features) {
      const auto& x = problem.features[i];
      double sq = 0.0;
      for (size_t d = 0; d < p; ++d) {
        feature_sum[j][d] += x[d];
        sq += x[d] * x[d];
      }
      feature_sq_sum[j] += sq;
    }
  }

  ObjectiveValue value;
  for (size_t i = 0; i < n; ++i) {
    const auto j = static_cast<size_t>(assignment[i]);
    const double mean = freq_sum[j] / static_cast<double>(counts[j]);
    value.estimation_error += std::abs(problem.frequencies[i] - mean);
  }
  if (use_features) {
    // Σ_{(i,k)∈I_j×I_j} ||x_i - x_k||² = 2 c_j Σ||x||² - 2 ||Σx||².
    for (size_t j = 0; j < b; ++j) {
      if (counts[j] == 0) continue;
      double sum_norm_sq = 0.0;
      for (size_t d = 0; d < p; ++d) {
        sum_norm_sq += feature_sum[j][d] * feature_sum[j][d];
      }
      const double bucket_similarity =
          2.0 * static_cast<double>(counts[j]) * feature_sq_sum[j] -
          2.0 * sum_norm_sq;
      value.similarity_error +=
          bucket_similarity < 0.0 ? 0.0 : bucket_similarity;
    }
  }
  value.overall = problem.lambda * value.estimation_error +
                  (1.0 - problem.lambda) * value.similarity_error;
  return value;
}

NormalizedObjective NormalizeObjective(const HashingProblem& problem,
                                       const Assignment& assignment) {
  const ObjectiveValue raw = EvaluateObjective(problem, assignment);
  const auto n = static_cast<double>(problem.NumElements());

  // Count ordered pairs that share a bucket (the similarity term's support).
  std::vector<double> counts(problem.num_buckets, 0.0);
  for (int32_t j : assignment) counts[static_cast<size_t>(j)] += 1.0;
  double pairs = 0.0;
  for (double c : counts) pairs += c * c;

  NormalizedObjective normalized;
  normalized.estimation_error_per_element = raw.estimation_error / n;
  normalized.similarity_error_per_pair =
      pairs > 0.0 ? raw.similarity_error / pairs : 0.0;
  normalized.overall =
      problem.lambda * normalized.estimation_error_per_element +
      (1.0 - problem.lambda) * normalized.similarity_error_per_pair;
  return normalized;
}

}  // namespace opthash::opt

#ifndef OPTHASH_OPT_BCD_H_
#define OPTHASH_OPT_BCD_H_

#include <cstdint>

#include "opt/initialization.h"
#include "opt/solver.h"

namespace opthash::opt {

/// \brief Configuration for the block coordinate descent solver.
struct BcdConfig {
  /// Hard cap on full sweeps over all n element blocks.
  size_t max_sweeps = 100;
  /// Terminate when the per-sweep objective improvement drops below
  /// tolerance * max(1, |previous objective|) — the paper's
  /// "ε_{t-1} - ε_t < ϵ" criterion.
  double tolerance = 1e-9;
  /// Starting point strategy (paper §4.3 / §4.4 discuss all four).
  InitStrategy init = InitStrategy::kRandom;
  /// Independent restarts; the best local optimum is returned ("the process
  /// can be repeated multiple times from different starting points").
  size_t num_restarts = 1;
  uint64_t seed = 13;
};

/// \brief Algorithm 1: block coordinate descent over element blocks.
///
/// Each sweep visits the n blocks z_i in a fresh random permutation. For a
/// block, every candidate bucket j is scored by the *change* in total error
/// if element i moved there — evaluated in O(log c_j + p) from the
/// incremental BucketStats — and the element greedily moves to the argmin
/// (staying put on ties). Every accepted move strictly decreases the
/// objective, so the sweep objective sequence is non-increasing and the
/// algorithm terminates at a local optimum.
class BcdSolver {
 public:
  explicit BcdSolver(BcdConfig config = {});

  /// Runs num_restarts descents from fresh initializations, returns best.
  SolveResult Solve(const HashingProblem& problem) const;

  /// Single descent from a caller-provided starting assignment.
  SolveResult SolveFrom(const HashingProblem& problem,
                        Assignment initial) const;

  const BcdConfig& config() const { return config_; }

 private:
  SolveResult Descend(const HashingProblem& problem, Assignment assignment,
                      Rng& rng) const;

  BcdConfig config_;
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_BCD_H_

#include "opt/dp.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "common/timer.h"
#include "opt/interval_cost.h"
#include "opt/smawk.h"

namespace opthash::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cost oracle dispatching on the configured cluster center.
class ClusterCost {
 public:
  ClusterCost(const std::vector<double>& sorted, DpCostCenter center)
      : center_(center) {
    if (center == DpCostCenter::kMean) {
      mean_.emplace(sorted);
    } else {
      median_.emplace(sorted);
    }
  }

  double Cost(size_t i, size_t j) const {
    return center_ == DpCostCenter::kMean ? mean_->Cost(i, j)
                                          : median_->Cost(i, j);
  }

  size_t size() const {
    return center_ == DpCostCenter::kMean ? mean_->size() : median_->size();
  }

 private:
  DpCostCenter center_;
  std::optional<IntervalCost> mean_;
  std::optional<MedianIntervalCost> median_;
};

// One DP layer: given the previous layer's costs (prev[i-1] = optimal cost
// of clustering v[0..i-1] into m-1 clusters), compute for each end index j
// the best split i (start of the last cluster) minimizing
// prev[i-1] + w(i, j), with i constrained to [min_split, j].
struct Layer {
  std::vector<double> cost;    // cost[j]
  std::vector<int32_t> split;  // split[j] = chosen i
};

double Candidate(const ClusterCost& w, const std::vector<double>& prev,
                 size_t i, size_t j) {
  return prev[i - 1] + w.Cost(i, j);
}

Layer ComputeLayerQuadratic(const ClusterCost& w,
                            const std::vector<double>& prev, size_t min_split) {
  const size_t n = w.size();
  Layer layer{std::vector<double>(n, kInf), std::vector<int32_t>(n, -1)};
  for (size_t j = min_split; j < n; ++j) {
    for (size_t i = min_split; i <= j; ++i) {
      const double candidate = Candidate(w, prev, i, j);
      if (candidate < layer.cost[j]) {
        layer.cost[j] = candidate;
        layer.split[j] = static_cast<int32_t>(i);
      }
    }
  }
  return layer;
}

void DivideConquerRange(const ClusterCost& w, const std::vector<double>& prev,
                        size_t jlo, size_t jhi, size_t ilo, size_t ihi,
                        Layer& layer) {
  if (jlo > jhi) return;
  const size_t mid = jlo + (jhi - jlo) / 2;
  size_t best_i = ilo;
  double best_cost = kInf;
  const size_t upper = std::min(ihi, mid);
  for (size_t i = ilo; i <= upper; ++i) {
    const double candidate = Candidate(w, prev, i, mid);
    if (candidate < best_cost) {
      best_cost = candidate;
      best_i = i;
    }
  }
  layer.cost[mid] = best_cost;
  layer.split[mid] = static_cast<int32_t>(best_i);
  if (mid > jlo) DivideConquerRange(w, prev, jlo, mid - 1, ilo, best_i, layer);
  if (mid < jhi) DivideConquerRange(w, prev, mid + 1, jhi, best_i, ihi, layer);
}

Layer ComputeLayerDivideConquer(const ClusterCost& w,
                                const std::vector<double>& prev,
                                size_t min_split) {
  const size_t n = w.size();
  Layer layer{std::vector<double>(n, kInf), std::vector<int32_t>(n, -1)};
  DivideConquerRange(w, prev, min_split, n - 1, min_split, n - 1, layer);
  return layer;
}

Layer ComputeLayerSmawk(const ClusterCost& w, const std::vector<double>& prev,
                        size_t min_split) {
  const size_t n = w.size();
  Layer layer{std::vector<double>(n, kInf), std::vector<int32_t>(n, -1)};
  // Rows are end indices j = min_split..n-1; columns are splits
  // i = min_split..n-1. Entries above the diagonal (i > j) are padded with
  // an increasing +inf-like ramp that preserves total monotonicity.
  const size_t rows = n - min_split;
  const size_t cols = n - min_split;
  constexpr double kPad = 1e30;
  auto value = [&](size_t r, size_t c) -> double {
    const size_t j = min_split + r;
    const size_t i = min_split + c;
    if (i > j) return kPad + static_cast<double>(c);
    return Candidate(w, prev, i, j);
  };
  const std::vector<size_t> argmin = SmawkRowMinima(rows, cols, value);
  for (size_t r = 0; r < rows; ++r) {
    const size_t j = min_split + r;
    const size_t i = min_split + argmin[r];
    layer.cost[j] = Candidate(w, prev, i, j);
    layer.split[j] = static_cast<int32_t>(i);
  }
  return layer;
}

}  // namespace

const char* DpAlgorithmName(DpAlgorithm algorithm) {
  switch (algorithm) {
    case DpAlgorithm::kQuadratic:
      return "quadratic";
    case DpAlgorithm::kDivideConquer:
      return "divide_and_conquer";
    case DpAlgorithm::kSmawk:
      return "smawk";
  }
  return "unknown";
}

const char* DpCostCenterName(DpCostCenter center) {
  switch (center) {
    case DpCostCenter::kMean:
      return "mean";
    case DpCostCenter::kMedian:
      return "median";
  }
  return "unknown";
}

DpSolver::DpSolver(DpConfig config) : config_(config) {}

SolveResult DpSolver::Solve(const HashingProblem& problem) const {
  OPTHASH_CHECK_MSG(problem.Validate().ok(),
                    problem.Validate().ToString().c_str());
  Timer timer;
  const size_t n = problem.NumElements();
  const size_t b = problem.num_buckets;
  const bool certified = problem.lambda == 1.0 &&
                         config_.algorithm == DpAlgorithm::kQuadratic &&
                         config_.center == DpCostCenter::kMean;

  SolveResult result;
  result.assignment.assign(n, 0);

  // Sort element indices by frequency (stable ties by index).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t c) {
    return problem.frequencies[a] < problem.frequencies[c];
  });
  std::vector<double> sorted(n);
  for (size_t t = 0; t < n; ++t) sorted[t] = problem.frequencies[order[t]];

  const size_t clusters = std::min(b, n);
  if (clusters == n) {
    // Every element gets its own bucket: zero estimation error.
    for (size_t t = 0; t < n; ++t) {
      result.assignment[order[t]] = static_cast<int32_t>(t);
    }
    result.objective = EvaluateObjective(problem, result.assignment);
    result.proven_optimal = problem.lambda == 1.0;
    result.lower_bound = result.proven_optimal ? result.objective.overall : 0.0;
    result.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  const ClusterCost w(sorted, config_.center);

  // Layer 1: one cluster covering v[0..j].
  std::vector<double> prev(n);
  for (size_t j = 0; j < n; ++j) prev[j] = w.Cost(0, j);

  // Layers 2..clusters, keeping split points for backtracking.
  std::vector<std::vector<int32_t>> splits(clusters + 1);
  for (size_t m = 2; m <= clusters; ++m) {
    const size_t min_split = m - 1;  // Need at least m-1 elements before i.
    Layer layer;
    switch (config_.algorithm) {
      case DpAlgorithm::kQuadratic:
        layer = ComputeLayerQuadratic(w, prev, min_split);
        break;
      case DpAlgorithm::kDivideConquer:
        layer = ComputeLayerDivideConquer(w, prev, min_split);
        break;
      case DpAlgorithm::kSmawk:
        layer = ComputeLayerSmawk(w, prev, min_split);
        break;
    }
    splits[m] = std::move(layer.split);
    prev = std::move(layer.cost);
  }

  // Backtrack: the last cluster of layer m covers [splits[m][j], j].
  size_t j = n - 1;
  std::vector<int32_t> sorted_assignment(n, 0);
  for (size_t m = clusters; m >= 2; --m) {
    const auto i = static_cast<size_t>(splits[m][j]);
    for (size_t t = i; t <= j; ++t) {
      sorted_assignment[t] = static_cast<int32_t>(m - 1);
    }
    OPTHASH_CHECK_GE(i, 1u);
    j = i - 1;
  }
  // Remaining prefix belongs to cluster 0 (already zero-initialized).

  for (size_t t = 0; t < n; ++t) {
    result.assignment[order[t]] = sorted_assignment[t];
  }
  result.objective = EvaluateObjective(problem, result.assignment);
  result.proven_optimal = certified;
  result.lower_bound = certified ? result.objective.overall : 0.0;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace opthash::opt

#include "opt/bucket_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opthash::opt {

BucketStats::BucketStats(size_t feature_dim)
    : feature_dim_(feature_dim), feature_sum_(feature_dim, 0.0) {
  prefix_sums_.push_back(0.0);
}

void BucketStats::Add(double f, const std::vector<double>& x) {
  if (feature_dim_ > 0) {
    OPTHASH_CHECK_EQ(x.size(), feature_dim_);
    similarity_error_ += SimilarityDeltaAdd(x);
    double sq = 0.0;
    for (size_t d = 0; d < feature_dim_; ++d) {
      feature_sum_[d] += x[d];
      sq += x[d] * x[d];
    }
    feature_sq_sum_ += sq;
  }
  const auto pos =
      std::upper_bound(sorted_freqs_.begin(), sorted_freqs_.end(), f);
  sorted_freqs_.insert(pos, f);
  freq_sum_ += f;
  prefix_sums_.resize(sorted_freqs_.size() + 1);
  for (size_t i = 0; i < sorted_freqs_.size(); ++i) {
    prefix_sums_[i + 1] = prefix_sums_[i] + sorted_freqs_[i];
  }
}

void BucketStats::Remove(double f, const std::vector<double>& x) {
  const auto pos =
      std::lower_bound(sorted_freqs_.begin(), sorted_freqs_.end(), f);
  OPTHASH_CHECK_MSG(pos != sorted_freqs_.end() && *pos == f,
                    "Remove of a frequency that is not a bucket member");
  sorted_freqs_.erase(pos);
  freq_sum_ -= f;
  prefix_sums_.resize(sorted_freqs_.size() + 1);
  for (size_t i = 0; i < sorted_freqs_.size(); ++i) {
    prefix_sums_[i + 1] = prefix_sums_[i] + sorted_freqs_[i];
  }
  if (feature_dim_ > 0) {
    OPTHASH_CHECK_EQ(x.size(), feature_dim_);
    double sq = 0.0;
    for (size_t d = 0; d < feature_dim_; ++d) {
      feature_sum_[d] -= x[d];
      sq += x[d] * x[d];
    }
    feature_sq_sum_ -= sq;
    // Delta computed against the post-removal aggregates: -2 Σ_{k≠x}||x-x_k||².
    similarity_error_ -= 2.0 * SumSquaredDistancesTo(x);
    if (sorted_freqs_.empty()) similarity_error_ = 0.0;  // Kill drift.
  }
}

double BucketStats::Mean() const {
  if (sorted_freqs_.empty()) return 0.0;
  return freq_sum_ / static_cast<double>(sorted_freqs_.size());
}

double BucketStats::SumAbsDeviations(double pivot) const {
  if (sorted_freqs_.empty()) return 0.0;
  // Members below the pivot contribute pivot - f; the rest f - pivot.
  const auto split =
      std::lower_bound(sorted_freqs_.begin(), sorted_freqs_.end(), pivot);
  const auto below = static_cast<size_t>(split - sorted_freqs_.begin());
  const size_t above = sorted_freqs_.size() - below;
  const double below_sum = prefix_sums_[below];
  const double above_sum = freq_sum_ - below_sum;
  return (pivot * static_cast<double>(below) - below_sum) +
         (above_sum - pivot * static_cast<double>(above));
}

double BucketStats::EstimationError() const {
  return SumAbsDeviations(Mean());
}

double BucketStats::EstimationErrorWith(double f) const {
  const double new_mean =
      (freq_sum_ + f) / static_cast<double>(sorted_freqs_.size() + 1);
  return SumAbsDeviations(new_mean) + std::abs(f - new_mean);
}

double BucketStats::EstimationErrorWithout(double f) const {
  OPTHASH_CHECK(!sorted_freqs_.empty());
  if (sorted_freqs_.size() == 1) return 0.0;
  const double new_mean =
      (freq_sum_ - f) / static_cast<double>(sorted_freqs_.size() - 1);
  // Deviations of all members around the new mean, minus the removed one.
  return SumAbsDeviations(new_mean) - std::abs(f - new_mean);
}

double BucketStats::SumSquaredDistancesTo(const std::vector<double>& x) const {
  // Σ_k ||x - x_k||² = c·||x||² - 2<x, Σx> + Σ||x_k||².
  double x_sq = 0.0;
  double dot = 0.0;
  for (size_t d = 0; d < feature_dim_; ++d) {
    x_sq += x[d] * x[d];
    dot += x[d] * feature_sum_[d];
  }
  const double total = static_cast<double>(sorted_freqs_.size()) * x_sq -
                       2.0 * dot + feature_sq_sum_;
  // Guard against tiny negative values from floating point cancellation.
  return total < 0.0 ? 0.0 : total;
}

double BucketStats::SimilarityDeltaAdd(const std::vector<double>& x) const {
  if (feature_dim_ == 0) return 0.0;
  return 2.0 * SumSquaredDistancesTo(x);
}

double BucketStats::SimilarityDeltaRemove(const std::vector<double>& x) const {
  if (feature_dim_ == 0) return 0.0;
  // Σ_{k≠x} ||x - x_k||² = Σ_k ||x - x_k||² (self term is zero), computed
  // against the *current* aggregates that still include x.
  return -2.0 * SumSquaredDistancesTo(x);
}

double BucketStats::Error(double lambda) const {
  return lambda * EstimationError() + (1.0 - lambda) * similarity_error_;
}

}  // namespace opthash::opt

#ifndef OPTHASH_OPT_EXACT_H_
#define OPTHASH_OPT_EXACT_H_

#include "opt/bcd.h"
#include "opt/solver.h"

namespace opthash::opt {

/// \brief Budget and options for the exact branch-and-bound solver.
struct ExactConfig {
  /// Stop after exploring this many search nodes (0 = unlimited).
  size_t node_limit = 20'000'000;
  /// Wall-clock budget in seconds (0 = unlimited). When the budget runs out
  /// the incumbent is returned with proven_optimal = false — mirroring a
  /// MIP solver hitting its time limit.
  double time_limit_seconds = 30.0;
  /// Seed the incumbent with a BCD solution (strongly recommended).
  bool use_bcd_incumbent = true;
  BcdConfig bcd;
};

/// \brief Exact solver for Problem (1) by depth-first branch-and-bound.
///
/// This plays the role of the paper's `milp` (Problem (2) in Gurobi): it
/// certifies optimal hashing schemes on small instances and polishes BCD
/// solutions on larger ones under a time budget. See DESIGN.md §1 for why
/// this substitutes for the commercial MIP solver.
///
/// Search: elements in decreasing-frequency order; bucket symmetry broken
/// by allowing an element to open at most one new bucket. Bounds:
///  * assigned estimation error >= sum of matched-pair ranges per bucket
///    (|a - mu| + |b - mu| >= |a - b| for disjoint pairs, any mean);
///  * assigned similarity error is exact and only grows;
///  * remaining elements contribute at least lambda times the free-center
///    k-median cost of clustering them into <= b groups, precomputed by a
///    suffix DP.
class ExactSolver {
 public:
  explicit ExactSolver(ExactConfig config = {});

  SolveResult Solve(const HashingProblem& problem) const;

  const ExactConfig& config() const { return config_; }

 private:
  ExactConfig config_;
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_EXACT_H_

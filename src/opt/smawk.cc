#include "opt/smawk.h"

#include "common/check.h"

namespace opthash::opt {

namespace {

// Recursive SMAWK on the submatrix induced by `rows` (ascending original row
// indices) and `cols` (ascending original column indices). Writes the
// leftmost-argmin column of each listed row into `out`.
void SmawkRecurse(const std::vector<size_t>& rows,
                  const std::vector<size_t>& cols,
                  const std::function<double(size_t, size_t)>& value,
                  std::vector<size_t>& out) {
  if (rows.empty()) return;

  // REDUCE: prune columns that cannot hold any row minimum, keeping at most
  // |rows| candidates. The classic stack construction.
  std::vector<size_t> surviving;
  surviving.reserve(rows.size());
  for (size_t col : cols) {
    while (!surviving.empty()) {
      const size_t row = rows[surviving.size() - 1];
      if (value(row, surviving.back()) > value(row, col)) {
        surviving.pop_back();
      } else {
        break;
      }
    }
    if (surviving.size() < rows.size()) surviving.push_back(col);
  }

  // INTERPOLATE: solve odd rows recursively, then fill even rows by scanning
  // between the argmins of their odd neighbours.
  std::vector<size_t> odd_rows;
  for (size_t r = 1; r < rows.size(); r += 2) odd_rows.push_back(rows[r]);
  SmawkRecurse(odd_rows, surviving, value, out);

  size_t col_cursor = 0;
  for (size_t r = 0; r < rows.size(); r += 2) {
    const size_t row = rows[r];
    // The argmin of this even row lies between the argmin of the previous
    // odd row and that of the next odd row (inclusive).
    const size_t upper_col =
        (r + 1 < rows.size()) ? out[rows[r + 1]] : surviving.back();
    size_t best_col = surviving[col_cursor];
    double best_value = value(row, best_col);
    while (surviving[col_cursor] != upper_col) {
      ++col_cursor;
      OPTHASH_CHECK_LT(col_cursor, surviving.size());
      const double candidate = value(row, surviving[col_cursor]);
      if (candidate < best_value) {
        best_value = candidate;
        best_col = surviving[col_cursor];
      }
    }
    out[row] = best_col;
  }
}

}  // namespace

std::vector<size_t> SmawkRowMinima(
    size_t num_rows, size_t num_cols,
    const std::function<double(size_t, size_t)>& value) {
  OPTHASH_CHECK_GT(num_rows, 0u);
  OPTHASH_CHECK_GT(num_cols, 0u);
  std::vector<size_t> rows(num_rows);
  std::vector<size_t> cols(num_cols);
  for (size_t r = 0; r < num_rows; ++r) rows[r] = r;
  for (size_t c = 0; c < num_cols; ++c) cols[c] = c;
  std::vector<size_t> out(num_rows, 0);
  SmawkRecurse(rows, cols, value, out);
  return out;
}

}  // namespace opthash::opt

#include "opt/interval_cost.h"

#include <algorithm>

namespace opthash::opt {

IntervalCost::IntervalCost(std::vector<double> sorted_values)
    : values_(std::move(sorted_values)) {
  OPTHASH_CHECK(std::is_sorted(values_.begin(), values_.end()));
  prefix_.resize(values_.size() + 1, 0.0);
  for (size_t k = 0; k < values_.size(); ++k) {
    prefix_[k + 1] = prefix_[k] + values_[k];
  }
}

double IntervalCost::Mean(size_t i, size_t j) const {
  OPTHASH_CHECK_LE(i, j);
  OPTHASH_CHECK_LT(j, values_.size());
  return (prefix_[j + 1] - prefix_[i]) / static_cast<double>(j - i + 1);
}

double IntervalCost::Cost(size_t i, size_t j) const {
  OPTHASH_CHECK_LE(i, j);
  OPTHASH_CHECK_LT(j, values_.size());
  const double total = prefix_[j + 1] - prefix_[i];
  const auto len = static_cast<double>(j - i + 1);
  const double mean = total / len;
  // First index in [i, j] with value >= mean.
  const auto split =
      std::lower_bound(values_.begin() + static_cast<long>(i),
                       values_.begin() + static_cast<long>(j + 1), mean);
  const auto below =
      static_cast<size_t>(split - (values_.begin() + static_cast<long>(i)));
  const double below_sum = prefix_[i + below] - prefix_[i];
  const double above_sum = total - below_sum;
  const auto above = static_cast<double>(j - i + 1 - below);
  const double cost = (mean * static_cast<double>(below) - below_sum) +
                      (above_sum - mean * above);
  return cost < 0.0 ? 0.0 : cost;
}

MedianIntervalCost::MedianIntervalCost(std::vector<double> sorted_values)
    : values_(std::move(sorted_values)) {
  OPTHASH_CHECK(std::is_sorted(values_.begin(), values_.end()));
  prefix_.resize(values_.size() + 1, 0.0);
  for (size_t k = 0; k < values_.size(); ++k) {
    prefix_[k + 1] = prefix_[k] + values_[k];
  }
}

double MedianIntervalCost::Median(size_t i, size_t j) const {
  OPTHASH_CHECK_LE(i, j);
  OPTHASH_CHECK_LT(j, values_.size());
  return values_[i + (j - i) / 2];
}

double MedianIntervalCost::Cost(size_t i, size_t j) const {
  OPTHASH_CHECK_LE(i, j);
  OPTHASH_CHECK_LT(j, values_.size());
  const size_t mid = i + (j - i) / 2;
  const double median = values_[mid];
  // v[i..mid] <= median <= v[mid..j] on sorted input.
  const double below_sum = prefix_[mid + 1] - prefix_[i];
  const double above_sum = prefix_[j + 1] - prefix_[mid + 1];
  const auto below_count = static_cast<double>(mid - i + 1);
  const auto above_count = static_cast<double>(j - mid);
  const double cost = (median * below_count - below_sum) +
                      (above_sum - median * above_count);
  return cost < 0.0 ? 0.0 : cost;
}

}  // namespace opthash::opt

#ifndef OPTHASH_OPT_INTERVAL_COST_H_
#define OPTHASH_OPT_INTERVAL_COST_H_

#include <vector>

#include "common/check.h"

namespace opthash::opt {

/// \brief O(log n) interval cost oracle for the lambda = 1 clustering DP.
///
/// Over a *sorted* value array v[0..n-1], Cost(i, j) returns
///   Σ_{t=i..j} |v_t - mean(v_i..v_j)|,
/// the estimation error a bucket containing exactly v_i..v_j would incur
/// (paper Problem (3) restricted to one bucket). Because the array is
/// sorted, members below/above the interval mean form contiguous runs that
/// prefix sums evaluate in O(1) after one binary search.
class IntervalCost {
 public:
  explicit IntervalCost(std::vector<double> sorted_values);

  /// Cost of the cluster spanning indices [i, j], inclusive; i <= j.
  double Cost(size_t i, size_t j) const;

  /// Mean of v[i..j].
  double Mean(size_t i, size_t j) const;

  size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  std::vector<double> prefix_;  // prefix_[k] = v_0 + ... + v_{k-1}
};

/// \brief O(1) interval cost oracle for classic 1-D k-median clustering:
/// Cost(i, j) = Σ_{t=i..j} |v_t - median(v_i..v_j)| over a sorted array.
///
/// Unlike the mean-centred cost of Problem (3), this cost satisfies the
/// concave quadrangle inequality (Grønlund et al. 2017, paper ref [41]), so
/// divide-and-conquer and SMAWK DP layers are *exact* for it. It is the
/// cost the paper's cited tooling (Ckmeans.1d.dp, Wu 1991) optimizes, and
/// the sense in which Problem (3) "is an one-dimensional k-median
/// clustering problem". The library exposes both so the reproduction can
/// be faithful (mean) and fast-with-certificates (median).
class MedianIntervalCost {
 public:
  explicit MedianIntervalCost(std::vector<double> sorted_values);

  /// Cost of the cluster spanning indices [i, j], inclusive; i <= j.
  double Cost(size_t i, size_t j) const;

  /// Lower median of v[i..j].
  double Median(size_t i, size_t j) const;

  size_t size() const { return values_.size(); }

 private:
  std::vector<double> values_;
  std::vector<double> prefix_;
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_INTERVAL_COST_H_

#include "opt/problem.h"

#include "common/check.h"

namespace opthash::opt {

Status HashingProblem::Validate() const {
  if (frequencies.empty()) {
    return Status::InvalidArgument("problem has no elements");
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("num_buckets must be >= 1");
  }
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  for (double f : frequencies) {
    if (f < 0.0) return Status::InvalidArgument("negative frequency");
  }
  if (lambda < 1.0) {
    if (features.size() != frequencies.size()) {
      return Status::InvalidArgument(
          "features must be provided for every element when lambda < 1");
    }
    const size_t dim = features.front().size();
    for (const auto& x : features) {
      if (x.size() != dim) {
        return Status::InvalidArgument("inconsistent feature dimensions");
      }
    }
  } else if (!features.empty() && features.size() != frequencies.size()) {
    return Status::InvalidArgument(
        "features, when provided, must match the number of elements");
  }
  return Status::OK();
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  OPTHASH_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

bool IsValidAssignment(const HashingProblem& problem,
                       const Assignment& assignment) {
  if (assignment.size() != problem.NumElements()) return false;
  for (int32_t bucket : assignment) {
    if (bucket < 0 || static_cast<size_t>(bucket) >= problem.num_buckets) {
      return false;
    }
  }
  return true;
}

}  // namespace opthash::opt

#include "opt/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/timer.h"
#include "opt/bucket_stats.h"
#include "opt/interval_cost.h"

namespace opthash::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// P[r] = optimal cost of clustering the r smallest frequencies into at most
// `buckets` groups with free (median) centers. O(n^2 * b) precompute; the
// exact solver only runs on small n.
std::vector<double> SuffixClusteringBound(const std::vector<double>& ascending,
                                          size_t buckets) {
  const size_t n = ascending.size();
  const MedianIntervalCost cost(ascending);
  std::vector<double> prev(n + 1, kInf);  // <= m clusters for first r values
  prev[0] = 0.0;
  for (size_t r = 1; r <= n; ++r) prev[r] = cost.Cost(0, r - 1);
  for (size_t m = 2; m <= std::min(buckets, n); ++m) {
    std::vector<double> cur(n + 1, kInf);
    cur[0] = 0.0;
    for (size_t r = 1; r <= n; ++r) {
      cur[r] = prev[r];  // Using fewer clusters is allowed.
      for (size_t split = 1; split < r; ++split) {
        const double candidate = prev[split] + cost.Cost(split, r - 1);
        if (candidate < cur[r]) cur[r] = candidate;
      }
    }
    prev = std::move(cur);
  }
  return prev;
}

// Matched-pair lower bound on a bucket's eventual estimation error given
// its currently assigned member frequencies (ascending): pair the smallest
// with the largest, second smallest with second largest, ...; each pair
// (a, b) contributes |a - b| regardless of the final mean.
double MatchedPairBound(const std::vector<double>& sorted) {
  double bound = 0.0;
  size_t lo = 0;
  size_t hi = sorted.size();
  while (hi - lo >= 2) {
    bound += sorted[hi - 1] - sorted[lo];
    ++lo;
    --hi;
  }
  return bound;
}

struct SearchState {
  const HashingProblem* problem = nullptr;
  const ExactConfig* config = nullptr;
  const Timer* timer = nullptr;
  std::vector<size_t> order;           // Elements, decreasing frequency.
  std::vector<double> remaining_bound; // remaining_bound[t]: depth-t suffix.
  std::vector<BucketStats> buckets;
  std::vector<double> bucket_lb;       // Per-bucket partial lower bound.
  double partial_lb = 0.0;
  Assignment assignment;
  Assignment best_assignment;
  double incumbent = kInf;
  size_t nodes = 0;
  bool budget_exhausted = false;
  bool use_features = false;

  bool OutOfBudget() {
    if (config->node_limit > 0 && nodes > config->node_limit) {
      budget_exhausted = true;
    }
    // Poll the clock sparsely; Timer reads are cheap but not free.
    if (config->time_limit_seconds > 0.0 && (nodes & 0x3FF) == 0 &&
        timer->ElapsedSeconds() > config->time_limit_seconds) {
      budget_exhausted = true;
    }
    return budget_exhausted;
  }

  double BucketPartialBound(size_t j) const {
    const double lambda = problem->lambda;
    double bound = lambda * MatchedPairBound(buckets[j].sorted_frequencies());
    if (use_features) {
      bound += (1.0 - lambda) * buckets[j].SimilarityError();
    }
    return bound;
  }

  void Dfs(size_t depth, size_t buckets_used) {
    ++nodes;
    if (OutOfBudget()) return;
    const size_t n = problem->NumElements();
    if (depth == n) {
      const ObjectiveValue value = EvaluateObjective(*problem, assignment);
      if (value.overall < incumbent - 1e-12) {
        incumbent = value.overall;
        best_assignment = assignment;
      }
      return;
    }
    const double lambda = problem->lambda;
    const size_t element = order[depth];
    const double f = problem->frequencies[element];
    // Never destroyed, per the style rule on static storage duration
    // objects with non-trivial destructors.
    static const auto& kNoFeatures = *new std::vector<double>();
    const std::vector<double>& x =
        use_features ? problem->features[element] : kNoFeatures;

    // Symmetry breaking: buckets are interchangeable, so the element may
    // enter any used bucket or open exactly the next unused one.
    const size_t candidate_count =
        std::min(problem->num_buckets, buckets_used + 1);
    for (size_t j = 0; j < candidate_count; ++j) {
      buckets[j].Add(f, x);
      const double old_bucket_lb = bucket_lb[j];
      const double new_bucket_lb = BucketPartialBound(j);
      partial_lb += new_bucket_lb - old_bucket_lb;
      bucket_lb[j] = new_bucket_lb;

      const double future = lambda * remaining_bound[n - depth - 1];
      if (partial_lb + future < incumbent - 1e-12) {
        assignment[element] = static_cast<int32_t>(j);
        Dfs(depth + 1, std::max(buckets_used, j + 1));
      }

      partial_lb += old_bucket_lb - bucket_lb[j];
      bucket_lb[j] = old_bucket_lb;
      buckets[j].Remove(f, x);
      if (budget_exhausted) return;
    }
  }
};

}  // namespace

ExactSolver::ExactSolver(ExactConfig config) : config_(config) {}

SolveResult ExactSolver::Solve(const HashingProblem& problem) const {
  OPTHASH_CHECK_MSG(problem.Validate().ok(), "invalid problem");
  Timer timer;
  const size_t n = problem.NumElements();

  SearchState state;
  state.problem = &problem;
  state.config = &config_;
  state.timer = &timer;
  state.use_features = problem.lambda < 1.0 && problem.FeatureDim() > 0;

  // Incumbent from BCD (optionally) — branch-and-bound then only needs to
  // certify or improve it.
  if (config_.use_bcd_incumbent) {
    BcdSolver bcd(config_.bcd);
    SolveResult warm = bcd.Solve(problem);
    state.incumbent = warm.objective.overall;
    state.best_assignment = std::move(warm.assignment);
  }

  state.order.resize(n);
  std::iota(state.order.begin(), state.order.end(), size_t{0});
  std::stable_sort(state.order.begin(), state.order.end(),
                   [&](size_t a, size_t c) {
                     return problem.frequencies[a] > problem.frequencies[c];
                   });

  // remaining_bound[r] = free-center clustering bound for the r smallest
  // frequencies (the suffix of the DFS order).
  std::vector<double> ascending = problem.frequencies;
  std::sort(ascending.begin(), ascending.end());
  state.remaining_bound = SuffixClusteringBound(ascending, problem.num_buckets);

  state.buckets.assign(
      problem.num_buckets,
      BucketStats(state.use_features ? problem.FeatureDim() : 0));
  state.bucket_lb.assign(problem.num_buckets, 0.0);
  state.assignment.assign(n, 0);
  if (state.best_assignment.empty()) {
    state.best_assignment.assign(n, 0);
    state.incumbent = kInf;
  }

  state.Dfs(0, 0);

  SolveResult result;
  result.assignment = std::move(state.best_assignment);
  if (result.assignment.empty() ||
      !IsValidAssignment(problem, result.assignment)) {
    result.assignment.assign(n, 0);
  }
  result.objective = EvaluateObjective(problem, result.assignment);
  result.iterations = state.nodes;
  result.proven_optimal = !state.budget_exhausted;
  result.lower_bound =
      result.proven_optimal ? result.objective.overall : 0.0;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace opthash::opt

#ifndef OPTHASH_OPT_MILP_MODEL_H_
#define OPTHASH_OPT_MILP_MODEL_H_

#include <cstddef>
#include <vector>

#include "opt/problem.h"

namespace opthash::opt {

/// \brief Size statistics of the Problem (2) formulation for an instance.
struct MilpModelStats {
  size_t num_binary_vars = 0;      // z_ij
  size_t num_error_vars = 0;       // e_ij
  size_t num_theta_vars = 0;       // theta_ikj
  size_t num_delta_vars = 0;       // delta_ikj
  size_t num_assignment_constraints = 0;  // sum_j z_ij = 1
  size_t num_error_constraints = 0;       // the two aggregated inequalities
  size_t num_theta_constraints = 0;       // three per (i,k,j)
  size_t num_delta_constraints = 0;       // three per (i,k,j)
  double big_m = 0.0;

  size_t TotalVariables() const {
    return num_binary_vars + num_error_vars + num_theta_vars + num_delta_vars;
  }
  size_t TotalConstraints() const {
    return num_assignment_constraints + num_error_constraints +
           num_theta_constraints + num_delta_constraints;
  }
};

/// \brief Outcome of evaluating the linearized model at a fixed Z.
struct MilpEvaluation {
  /// Objective of Problem (2) with (theta, delta, E) set to their minimal
  /// feasible values for this Z.
  double linearized_objective = 0.0;
  /// True iff the constructed (Z, E, Theta, Delta) point satisfies every
  /// constraint of Problem (2).
  bool feasible = false;
  /// Largest constraint violation found (0 when feasible).
  double max_violation = 0.0;
};

/// \brief Materialization of the mixed-integer linear reformulation
/// (Theorem 1 / Problem (2)).
///
/// The paper solves Problem (2) with Gurobi; offline we cannot, but the
/// reformulation itself is still valuable: this class builds the exact
/// variable/constraint system and verifies *numerically* that for any
/// feasible Z the minimal-cost completion of the auxiliary variables
/// (E, Theta, Delta) reproduces Problem (1)'s nonlinear objective — which
/// is precisely the content of Theorem 1. The test suite exercises this on
/// randomized instances; the ExactSolver provides the optimization half.
class MilpModel {
 public:
  explicit MilpModel(const HashingProblem& problem);

  /// Variable / constraint census of the formulation (the O(n^2 b) scaling
  /// discussed in §4.2).
  MilpModelStats Stats() const;

  /// Big-M constant: max_i f0_i (Theorem 1's requirement).
  double BigM() const { return big_m_; }

  /// Sets Z from `assignment`, completes (E, Theta, Delta) minimally, checks
  /// all constraints of Problem (2), and returns the linearized objective.
  MilpEvaluation EvaluateAt(const Assignment& assignment) const;

 private:
  const HashingProblem& problem_;
  double big_m_;
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_MILP_MODEL_H_

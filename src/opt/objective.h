#ifndef OPTHASH_OPT_OBJECTIVE_H_
#define OPTHASH_OPT_OBJECTIVE_H_

#include "opt/problem.h"

namespace opthash::opt {

/// \brief Decomposed objective value of an assignment.
struct ObjectiveValue {
  /// Σ_i |f0_i - mu_{j(i)}|  — the estimation error term of Problem (1).
  double estimation_error = 0.0;
  /// Σ_i Σ_{k: j(k)=j(i)} ||x_i - x_k||²  — the similarity error term.
  double similarity_error = 0.0;
  /// lambda·estimation + (1-lambda)·similarity.
  double overall = 0.0;
};

/// \brief Evaluates Problem (1)'s objective from scratch in
/// O(n·p + n log n). Authoritative reference used to validate the
/// incremental bookkeeping of every solver.
ObjectiveValue EvaluateObjective(const HashingProblem& problem,
                                 const Assignment& assignment);

/// \brief Per-scale normalizations used by the paper's Experiments 2-5
/// ("we convert the errors in a per element / per pair of elements scale").
struct NormalizedObjective {
  double estimation_error_per_element = 0.0;
  double similarity_error_per_pair = 0.0;
  double overall = 0.0;  // lambda·est/element + (1-lambda)·sim/pair
};

NormalizedObjective NormalizeObjective(const HashingProblem& problem,
                                       const Assignment& assignment);

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_OBJECTIVE_H_

#ifndef OPTHASH_OPT_DP_H_
#define OPTHASH_OPT_DP_H_

#include "opt/solver.h"

namespace opthash::opt {

/// \brief Algorithm used to compute each DP layer's row minima.
enum class DpAlgorithm {
  /// Direct O(n²) scan per layer — the O(n²b) reference of ref [39].
  /// Exact for BOTH cluster-center choices.
  kQuadratic,
  /// Divide-and-conquer on monotone argmins — O(n log n) per layer.
  /// Exact for kMedian (whose cost satisfies the quadrangle inequality);
  /// a fast near-optimal heuristic for kMean (observed < ~2% gap; the
  /// mean-centred cost is *not* Monge — see dp_test / interval_cost_test).
  kDivideConquer,
  /// SMAWK matrix searching — O(n) per layer, the O(nb) method of
  /// Wu 1991 (paper ref [40]). Same exactness caveats as kDivideConquer.
  kSmawk,
};

/// \brief Which center defines a bucket's clustering cost.
enum class DpCostCenter {
  /// Σ |f - mean(bucket)|: faithful to Problem (3), whose frequency
  /// estimate is the bucket *average*.
  kMean,
  /// Σ |f - median(bucket)|: classic 1-D k-median — what the paper's cited
  /// tooling (Ckmeans.1d.dp / Wu's matrix searching) actually optimizes,
  /// and the variant for which the fast layer algorithms carry proofs.
  kMedian,
};

const char* DpAlgorithmName(DpAlgorithm algorithm);
const char* DpCostCenterName(DpCostCenter center);

struct DpConfig {
  DpAlgorithm algorithm = DpAlgorithm::kQuadratic;
  DpCostCenter center = DpCostCenter::kMean;
};

/// \brief Solves Problem (3) — the lambda = 1 special case — via dynamic
/// programming over contiguous sorted-order clusters (paper §4.4).
///
/// Optimal clusters are contiguous runs in sorted-frequency order (verified
/// against exhaustive search over ALL partitions, contiguous or not, in the
/// test suite). The certified-exact configuration for Problem (3) is the
/// default {kQuadratic, kMean}; {kDivideConquer|kSmawk, kMedian} is exact
/// for the k-median relaxation and is the fast path for large instances.
///
/// When the problem's lambda is < 1, the solver still optimizes only the
/// estimation term (matching the paper's `dp` line in Experiment 1: "dp ...
/// optimizes only for the estimation error independently of the value of
/// lambda"); the returned objective is evaluated at the problem's lambda.
/// proven_optimal is set only for lambda == 1 with {kQuadratic, kMean}.
class DpSolver {
 public:
  explicit DpSolver(DpConfig config = {});

  SolveResult Solve(const HashingProblem& problem) const;

  const DpConfig& config() const { return config_; }

 private:
  DpConfig config_;
};

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_DP_H_

#ifndef OPTHASH_OPT_PROBLEM_H_
#define OPTHASH_OPT_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace opthash::opt {

/// \brief Bucket index per element: assignment[i] = j means z_ij = 1.
/// This is the dense encoding of the one-hot matrix Z of Problem (1).
using Assignment = std::vector<int32_t>;

/// \brief An instance of the optimal-hashing problem (paper Problem (1)).
///
/// Given n elements observed in the stream prefix — each with an empirical
/// frequency f0_i and a feature vector x_i — and b available buckets, find
/// the one-hot assignment Z minimizing
///
///   sum_i sum_j z_ij [ lambda * |f0_i - mu_j| +
///                      (1 - lambda) * sum_k z_kj ||x_i - x_k||^2 ],
///
/// where mu_j is the mean frequency of the elements mapped to bucket j.
/// lambda = 1 weighs only the estimation error; lambda = 0 only the
/// feature-similarity error.
struct HashingProblem {
  /// Empirical prefix frequencies f0 (length n, non-negative).
  std::vector<double> frequencies;
  /// Feature vectors x_i (length n, equal dimension p; may be empty vectors
  /// when lambda == 1, in which case features are ignored).
  std::vector<std::vector<double>> features;
  /// Number of available buckets b (>= 1).
  size_t num_buckets = 0;
  /// Trade-off hyperparameter lambda in [0, 1].
  double lambda = 1.0;

  size_t NumElements() const { return frequencies.size(); }
  size_t FeatureDim() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Structural validation (sizes, ranges). Every solver calls this first.
  Status Validate() const;
};

/// \brief Squared Euclidean distance ||a - b||^2.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// \brief True if `assignment` is structurally valid for `problem`
/// (right length, every bucket index in [0, b)).
bool IsValidAssignment(const HashingProblem& problem,
                       const Assignment& assignment);

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_PROBLEM_H_

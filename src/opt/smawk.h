#ifndef OPTHASH_OPT_SMAWK_H_
#define OPTHASH_OPT_SMAWK_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace opthash::opt {

/// \brief Row-minima of an implicitly defined totally monotone matrix
/// (SMAWK algorithm; Aggarwal, Klawe, Moran, Shor, Wilber 1987).
///
/// `value(row, col)` must be a totally monotone num_rows x num_cols matrix:
/// for every 2x2 submatrix, if the upper-left entry is strictly greater
/// than the upper-right, the lower-left must be strictly greater than the
/// lower-right. The 1-D clustering DP layers satisfy this via the
/// quadrangle inequality of the interval cost (Wu 1991, paper ref [40]).
///
/// Returns, for each row, the column index of its leftmost minimum.
/// Runs in O(num_rows + num_cols) evaluations.
std::vector<size_t> SmawkRowMinima(
    size_t num_rows, size_t num_cols,
    const std::function<double(size_t, size_t)>& value);

}  // namespace opthash::opt

#endif  // OPTHASH_OPT_SMAWK_H_

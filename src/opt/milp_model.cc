#include "opt/milp_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opthash::opt {

MilpModel::MilpModel(const HashingProblem& problem) : problem_(problem) {
  OPTHASH_CHECK_MSG(problem.Validate().ok(), "invalid problem");
  big_m_ = 0.0;
  for (double f : problem.frequencies) big_m_ = std::max(big_m_, f);
  if (big_m_ <= 0.0) big_m_ = 1.0;
}

MilpModelStats MilpModel::Stats() const {
  const size_t n = problem_.NumElements();
  const size_t b = problem_.num_buckets;
  MilpModelStats stats;
  stats.num_binary_vars = n * b;
  stats.num_error_vars = n * b;
  stats.num_theta_vars = n * n * b;
  stats.num_delta_vars = n * n * b;
  stats.num_assignment_constraints = n;
  stats.num_error_constraints = 2 * n * b;
  stats.num_theta_constraints = 3 * n * n * b;
  stats.num_delta_constraints = 3 * n * n * b;
  stats.big_m = big_m_;
  return stats;
}

MilpEvaluation MilpModel::EvaluateAt(const Assignment& assignment) const {
  OPTHASH_CHECK_MSG(IsValidAssignment(problem_, assignment),
                    "invalid assignment");
  const size_t n = problem_.NumElements();
  const size_t b = problem_.num_buckets;
  const double lambda = problem_.lambda;
  const bool use_features = lambda < 1.0 && problem_.FeatureDim() > 0;

  // Bucket aggregates.
  std::vector<double> freq_sum(b, 0.0);
  std::vector<double> counts(b, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto j = static_cast<size_t>(assignment[i]);
    freq_sum[j] += problem_.frequencies[i];
    counts[j] += 1.0;
  }

  MilpEvaluation eval;
  eval.feasible = true;
  double max_violation = 0.0;
  auto check_ge = [&max_violation](double lhs, double rhs) {
    const double violation = rhs - lhs;
    if (violation > max_violation) max_violation = violation;
  };

  // Minimal completion: e_ij = |f_i - mu_j| for non-empty buckets (0 for
  // empty ones), theta_ikj = e_ij * z_kj, delta_ikj = z_ij * z_kj.
  // The loop both accumulates the linearized objective and re-checks every
  // constraint family of Problem (2) at this point.
  double objective = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const auto assigned = static_cast<size_t>(assignment[i]);
    for (size_t j = 0; j < b; ++j) {
      const double z_sum = counts[j];
      const double mu = z_sum > 0.0 ? freq_sum[j] / z_sum : 0.0;
      const double e_ij =
          z_sum > 0.0 ? std::abs(problem_.frequencies[i] - mu) : 0.0;
      if (e_ij > big_m_ + 1e-9) {
        // Theorem 1 requires M >= max_i f0_i to dominate every e_ij.
        eval.feasible = false;
      }

      // Aggregated error constraints:
      //   sum_k theta_ikj >= +/- (f_i * sum_k z_kj - sum_k f_k z_kj).
      const double theta_sum = e_ij * z_sum;  // theta_ikj = e_ij for members.
      check_ge(theta_sum, problem_.frequencies[i] * z_sum - freq_sum[j]);
      check_ge(theta_sum, freq_sum[j] - problem_.frequencies[i] * z_sum);

      // theta linearization constraints, per k:
      //   theta >= e - M(1-z), theta <= e, theta <= M z.
      for (size_t k = 0; k < n; ++k) {
        const double z_kj = static_cast<size_t>(assignment[k]) == j ? 1.0 : 0.0;
        const double theta = e_ij * z_kj;
        check_ge(theta, e_ij - big_m_ * (1.0 - z_kj));
        check_ge(e_ij, theta);
        check_ge(big_m_ * z_kj, theta);
      }

      // Objective contribution lambda * theta_iij.
      const double z_ij = assigned == j ? 1.0 : 0.0;
      objective += lambda * e_ij * z_ij;

      // delta linearization and similarity contribution.
      if (use_features) {
        for (size_t k = 0; k < n; ++k) {
          const double z_kj =
              static_cast<size_t>(assignment[k]) == j ? 1.0 : 0.0;
          const double delta = z_ij * z_kj;
          check_ge(delta, z_ij + z_kj - 1.0);
          check_ge(z_ij, delta);
          check_ge(z_kj, delta);
          if (delta > 0.0) {
            objective += (1.0 - lambda) *
                         SquaredDistance(problem_.features[i],
                                         problem_.features[k]);
          }
        }
      }
    }
  }

  eval.max_violation = std::max(0.0, max_violation);
  if (eval.max_violation > 1e-9) eval.feasible = false;
  eval.linearized_objective = objective;
  return eval;
}

}  // namespace opthash::opt

#ifndef OPTHASH_COMMON_RANDOM_H_
#define OPTHASH_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace opthash {

/// \brief SplitMix64: fast 64-bit mixer used for seeding and hashing.
///
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// \brief Deterministic xoshiro256** PRNG.
///
/// All stochastic components in the library (data generation, BCD element
/// permutations, classifier bagging, sketch seeds) draw from this generator
/// so that every experiment is exactly reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seed the generator (expands the seed via SplitMix64).
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit word.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    OPTHASH_CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0ULL - bound) % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    OPTHASH_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<size_t> Permutation(size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Sample an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  size_t SampleDiscrete(const std::vector<double>& weights);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Samples `k` distinct indices from [0, weights.size()) without
/// replacement, with inclusion probability increasing in weights[i]
/// (Efraimidis-Spirakis exponential races: smallest -log(u)/w keys win).
/// Zero-weight items are only chosen once all positive weights are taken.
/// Returns the chosen indices in an unspecified order.
std::vector<size_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, size_t k, Rng& rng);

/// \brief Draws ranks from a (generalized) Zipf distribution.
///
/// P(rank = r) ∝ 1 / r^s for r in [1, n]. Sampling is O(log n) via binary
/// search over the precomputed CDF; the table build is O(n).
class ZipfSampler {
 public:
  /// \param n number of ranks (n >= 1)
  /// \param s skew exponent (s >= 0; s = 1 is classic Zipf)
  ZipfSampler(size_t n, double s);

  /// A rank in [1, n].
  size_t Sample(Rng& rng) const;

  /// Probability mass of a given rank in [1, n].
  double Probability(size_t rank) const;

  size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  size_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[r-1] = P(rank <= r)
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_RANDOM_H_

#include "common/csv_reader.h"

#include <cstdio>

namespace opthash {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char ch = content[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cell += '"';  // Escaped quote.
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (cell_started && !cell.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted cell");
        }
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        break;  // Tolerate CRLF.
      case '\n':
        end_row();
        break;
      default:
        cell += ch;
        cell_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted cell");
  }
  // Final row without trailing newline.
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::string content;
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  return ParseCsv(content);
}

}  // namespace opthash

#ifndef OPTHASH_COMMON_PREFIX_SUMS_H_
#define OPTHASH_COMMON_PREFIX_SUMS_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace opthash {

/// \brief Immutable prefix sums over a double sequence.
///
/// Sum(i, j) returns values[i] + ... + values[j] in O(1). Used by the 1-D
/// clustering DP to evaluate interval costs.
class PrefixSums {
 public:
  PrefixSums() = default;

  explicit PrefixSums(const std::vector<double>& values) {
    sums_.resize(values.size() + 1, 0.0);
    for (size_t i = 0; i < values.size(); ++i) {
      sums_[i + 1] = sums_[i] + values[i];
    }
  }

  /// Sum of values[i..j] inclusive; requires i <= j < size().
  double Sum(size_t i, size_t j) const {
    OPTHASH_CHECK_LE(i, j);
    OPTHASH_CHECK_LT(j, size());
    return sums_[j + 1] - sums_[i];
  }

  /// Sum of the first `count` values.
  double Head(size_t count) const {
    OPTHASH_CHECK_LE(count, size());
    return sums_[count];
  }

  size_t size() const { return sums_.empty() ? 0 : sums_.size() - 1; }
  bool empty() const { return size() == 0; }

 private:
  std::vector<double> sums_;
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_PREFIX_SUMS_H_

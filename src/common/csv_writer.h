#ifndef OPTHASH_COMMON_CSV_WRITER_H_
#define OPTHASH_COMMON_CSV_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace opthash {

/// \brief Minimal CSV emitter used by benches that dump plottable series
/// (e.g. the Figure 1 visualization panels).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Serializes the header plus all rows; cells containing commas, quotes or
  /// newlines are quoted per RFC 4180.
  std::string ToString() const;

  /// Writes the CSV to `path`, overwriting any existing file.
  Status WriteFile(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_CSV_WRITER_H_

#ifndef OPTHASH_COMMON_RUNNING_STATS_H_
#define OPTHASH_COMMON_RUNNING_STATS_H_

#include <cmath>
#include <cstddef>
#include <limits>

namespace opthash {

/// \brief Numerically stable streaming mean / variance / extremes
/// (Welford's algorithm). Used to aggregate repeated experiment trials.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  void Reset() { *this = RunningStats(); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_RUNNING_STATS_H_

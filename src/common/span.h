#ifndef OPTHASH_COMMON_SPAN_H_
#define OPTHASH_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace opthash {

/// \brief Minimal C++17 stand-in for std::span: a non-owning view over a
/// contiguous range. Used by the batched sketch update paths
/// (`UpdateBatch(Span<const uint64_t>)`) and the sharded ingestion engine,
/// which hands each worker thread a sub-range of the trace without copying.
///
/// Only the operations the ingest hot paths need are provided; the view is
/// trivially copyable and cheap to pass by value.
template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;

  constexpr Span() noexcept = default;
  constexpr Span(T* data, size_t size) noexcept : data_(data), size_(size) {}

  /// Views over vectors; the const-vector overload participates only for
  /// Span<const T>.
  Span(std::vector<value_type>& v) noexcept  // NOLINT implicit
      : data_(v.data()), size_(v.size()) {}
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::vector<value_type>& v) noexcept  // NOLINT implicit
      : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T* begin() const noexcept { return data_; }
  constexpr T* end() const noexcept { return data_ + size_; }

  T& operator[](size_t index) const {
    OPTHASH_CHECK_LT(index, size_);
    return data_[index];
  }

  /// The sub-view [offset, offset + count); count is clamped to the tail.
  Span subspan(size_t offset, size_t count) const {
    OPTHASH_CHECK_LE(offset, size_);
    const size_t tail = size_ - offset;
    return Span(data_ + offset, count < tail ? count : tail);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_SPAN_H_

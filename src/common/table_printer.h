#ifndef OPTHASH_COMMON_TABLE_PRINTER_H_
#define OPTHASH_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace opthash {

/// \brief Fixed-width text table for experiment output.
///
/// Every bench binary renders its paper table/figure series through this
/// printer so outputs are uniform and machine-greppable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);

  /// Renders the table (with a header separator) to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_TABLE_PRINTER_H_

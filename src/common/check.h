#ifndef OPTHASH_COMMON_CHECK_H_
#define OPTHASH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal-invariant checking. CHECK macros abort on violation; they guard
// programmer errors, not recoverable conditions (use Status for those).
// They are active in all build types: the library is an experimental
// artifact, and silent invariant corruption would invalidate every
// reproduction number downstream.

#define OPTHASH_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define OPTHASH_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define OPTHASH_CHECK_GE(a, b) OPTHASH_CHECK((a) >= (b))
#define OPTHASH_CHECK_GT(a, b) OPTHASH_CHECK((a) > (b))
#define OPTHASH_CHECK_LE(a, b) OPTHASH_CHECK((a) <= (b))
#define OPTHASH_CHECK_LT(a, b) OPTHASH_CHECK((a) < (b))
#define OPTHASH_CHECK_EQ(a, b) OPTHASH_CHECK((a) == (b))
#define OPTHASH_CHECK_NE(a, b) OPTHASH_CHECK((a) != (b))

#endif  // OPTHASH_COMMON_CHECK_H_

#ifndef OPTHASH_COMMON_CHECK_H_
#define OPTHASH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal-invariant checking. CHECK macros abort on violation; they guard
// programmer errors, not recoverable conditions (use Status for those).
// They are active in all build types: the library is an experimental
// artifact, and silent invariant corruption would invalidate every
// reproduction number downstream.

#define OPTHASH_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define OPTHASH_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Must-succeed Status (or Status-like: anything with ok()/ToString())
// expression: aborts with the rendered error when it fails. For paths
// where a failure is a programmer error — test fixtures, startup wiring,
// encode of values just validated — NOT for recoverable conditions.
// For Result<T>, check `OPTHASH_CHECK_OK(r.status())` then use *r.
#define OPTHASH_CHECK_OK(expr)                                               \
  do {                                                                       \
    auto opthash_check_ok_status = (expr);                                   \
    if (!opthash_check_ok_status.ok()) {                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s is not OK: %s\n",      \
                   __FILE__, __LINE__, #expr,                                \
                   opthash_check_ok_status.ToString().c_str());              \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define OPTHASH_CHECK_GE(a, b) OPTHASH_CHECK((a) >= (b))
#define OPTHASH_CHECK_GT(a, b) OPTHASH_CHECK((a) > (b))
#define OPTHASH_CHECK_LE(a, b) OPTHASH_CHECK((a) <= (b))
#define OPTHASH_CHECK_LT(a, b) OPTHASH_CHECK((a) < (b))
#define OPTHASH_CHECK_EQ(a, b) OPTHASH_CHECK((a) == (b))
#define OPTHASH_CHECK_NE(a, b) OPTHASH_CHECK((a) != (b))

#endif  // OPTHASH_COMMON_CHECK_H_

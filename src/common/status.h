#ifndef OPTHASH_COMMON_STATUS_H_
#define OPTHASH_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace opthash {

/// \brief Error category for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
};

/// \brief Lightweight success/error result for fallible operations.
///
/// Mirrors the Arrow/RocksDB idiom: library entry points that can fail on
/// user input return Status (or Result<T>) instead of throwing.
///
/// [[nodiscard]]: silently dropping a Status return hides I/O failures and
/// protocol errors, so discards are a compile-time warning tree-wide
/// (-Werror under OPTHASH_WERROR). A call site that genuinely cannot act
/// on a failure must write `(void)expr;  // reason` — greppable, and the
/// reason is reviewable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : inner_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : inner_(std::move(status)) {  // NOLINT implicit
    OPTHASH_CHECK_MSG(!std::get<Status>(inner_).ok(),
                      "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(inner_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(inner_);
  }

  const T& value() const& {
    OPTHASH_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(inner_);
  }
  T& value() & {
    OPTHASH_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(inner_);
  }
  T&& value() && {
    OPTHASH_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(std::move(inner_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, Status> inner_;
};

}  // namespace opthash

#endif  // OPTHASH_COMMON_STATUS_H_

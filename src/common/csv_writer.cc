#include "common/csv_writer.h"

#include <cstdio>

#include "common/check.h"

namespace opthash {

namespace {

std::string EscapeCell(const std::string& cell) {
  bool needs_quotes = false;
  for (char ch : cell) {
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OPTHASH_CHECK(!headers_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  OPTHASH_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += EscapeCell(row[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  const std::string data = ToString();
  const size_t written = std::fwrite(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (written != data.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace opthash

#ifndef OPTHASH_COMMON_CSV_READER_H_
#define OPTHASH_COMMON_CSV_READER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace opthash {

/// \brief Minimal RFC-4180-ish CSV parsing, the inverse of CsvWriter.
///
/// Supports quoted cells containing commas, escaped quotes ("") and
/// embedded newlines. Used by the trace I/O layer so users can run the
/// estimators on their own data.

/// Parses a full CSV document into rows of cells.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& content);

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace opthash

#endif  // OPTHASH_COMMON_CSV_READER_H_

#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace opthash {

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  Shuffle(perm);
  return perm;
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  OPTHASH_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    OPTHASH_CHECK_GE(w, 0.0);
    total += w;
  }
  OPTHASH_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<size_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, size_t k, Rng& rng) {
  const size_t n = weights.size();
  if (k >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    return all;
  }
  // Exponential race: item i finishes at time -log(u_i)/w_i; the k earliest
  // finishers form a weighted sample without replacement.
  std::vector<std::pair<double, size_t>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    OPTHASH_CHECK_GE(weights[i], 0.0);
    const double u = std::max(rng.NextDouble(), 1e-300);
    const double key = weights[i] > 0.0
                           ? -std::log(u) / weights[i]
                           : std::numeric_limits<double>::infinity();
    keys[i] = {key, i};
  }
  std::nth_element(keys.begin(), keys.begin() + static_cast<long>(k),
                   keys.end());
  std::vector<size_t> chosen(k);
  for (size_t i = 0; i < k; ++i) chosen[i] = keys[i].second;
  return chosen;
}

ZipfSampler::ZipfSampler(size_t n, double s) : n_(n), s_(s) {
  OPTHASH_CHECK_GE(n, 1u);
  OPTHASH_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), s);
    cdf_[r - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_;
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Probability(size_t rank) const {
  OPTHASH_CHECK_GE(rank, 1u);
  OPTHASH_CHECK_LE(rank, n_);
  const double lower = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lower;
}

}  // namespace opthash

// Quickstart: the smallest end-to-end use of the opt-hash estimator.
//
//   1. Observe a stream prefix and count element frequencies.
//   2. Train the estimator: the optimizer assigns prefix elements to
//      buckets; a classifier learns to route unseen elements by features.
//   3. Keep processing the stream in O(1) per arrival.
//   4. Answer count queries for any element at any time.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "core/opt_hash_estimator.h"

using opthash::core::ClassifierKind;
using opthash::core::OptHashConfig;
using opthash::core::OptHashEstimator;
using opthash::core::PrefixElement;
using opthash::core::SolverKind;
using opthash::stream::StreamItem;

int main() {
  // ---------------------------------------------------------------- 1 ---
  // A toy prefix: ids 1..4 are "popular" elements (large counts), ids
  // 100..109 are rare. Each element carries one feature that separates the
  // two populations (think: query length).
  std::vector<PrefixElement> prefix;
  for (uint64_t id = 1; id <= 4; ++id) {
    prefix.push_back({.id = id,
                      .frequency = 90.0 + static_cast<double>(id),
                      .features = {1.0}});
  }
  for (uint64_t id = 100; id < 110; ++id) {
    prefix.push_back({.id = id,
                      .frequency = 3.0,
                      .features = {8.0}});
  }

  // ---------------------------------------------------------------- 2 ---
  OptHashConfig config;
  config.total_buckets = 20;   // Total memory: 20 buckets of 4 bytes.
  config.id_ratio = 0.5;       // c = b/n: buckets vs stored-ID split.
  config.lambda = 1.0;         // Optimize pure estimation error.
  config.solver = SolverKind::kDp;            // Provably optimal for λ=1.
  config.classifier = ClassifierKind::kCart;  // Routes unseen elements.
  auto trained = OptHashEstimator::Train(config, prefix);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  OptHashEstimator estimator = std::move(trained).value();
  std::printf("trained: %zu buckets + %zu stored ids = %zu buckets (%.2f KB)\n",
              estimator.num_buckets(), estimator.num_stored_ids(),
              estimator.MemoryBuckets(), estimator.MemoryKb());

  // ---------------------------------------------------------------- 3 ---
  // Stream processing: element 2 shows up 10 more times.
  for (int arrival = 0; arrival < 10; ++arrival) {
    estimator.Update({2, nullptr});
  }

  // ---------------------------------------------------------------- 4 ---
  // Count queries. Stored elements route through the learned hash table.
  std::printf("estimate(id=2)    = %.1f   (true 92 + 10 = 102)\n",
              estimator.Estimate({2, nullptr}));
  std::printf("estimate(id=100)  = %.1f   (true 3)\n",
              estimator.Estimate({100, nullptr}));

  // An element never seen before: the classifier routes it by features.
  // Features near 1.0 look "popular"; features near 8.0 look "rare".
  const std::vector<double> popular_features = {1.0};
  const std::vector<double> rare_features = {8.0};
  std::printf("estimate(new, popular-looking) = %.1f\n",
              estimator.Estimate(StreamItem{999, &popular_features}));
  std::printf("estimate(new, rare-looking)    = %.1f\n",
              estimator.Estimate(StreamItem{998, &rare_features}));
  return 0;
}

// Network telemetry: track per-source-IP flow counts at a router with a
// few KB of state and flag heavy hitters (the §1 "denial of service"
// motivation). Element = source IPv4 address; features are derived from
// the address structure (octets + subnet aggregates), which is exactly the
// kind of side information a collector has for never-before-seen sources.
//
// The synthetic traffic model: a handful of "hot" /24 subnets (e.g. a
// botnet or a popular CDN) emit most flows; background sources are spread
// uniformly. Feature/frequency correlation therefore exists at the subnet
// level, which the classifier exploits for unseen IPs.

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/baseline_estimators.h"
#include "core/opt_hash_estimator.h"

using namespace opthash;

namespace {

struct TrafficModel {
  std::vector<uint32_t> hot_subnets;  // /24 prefixes (upper 24 bits).
  Rng rng{2024};

  uint32_t SampleSource() {
    if (rng.NextBernoulli(0.7)) {
      // Hot subnet: one of 8 /24s, low byte zipf-ish.
      const uint32_t subnet = hot_subnets[rng.NextBounded(hot_subnets.size())];
      return subnet | static_cast<uint32_t>(rng.NextBounded(32));
    }
    // Background: uniform host in 10.0.0.0/8.
    return (10u << 24) | static_cast<uint32_t>(rng.NextBounded(1u << 24));
  }
};

// Features: the four octets (scaled) plus a "hot subnet" indicator-style
// aggregate the collector could precompute (here: whether the /24 prefix
// is one of the known-busy subnets, encoded as distance 0/1).
std::vector<double> IpFeatures(uint32_t ip,
                               const std::set<uint32_t>& hot_subnets) {
  const double o1 = static_cast<double>((ip >> 24) & 0xFF) / 255.0;
  const double o2 = static_cast<double>((ip >> 16) & 0xFF) / 255.0;
  const double o3 = static_cast<double>((ip >> 8) & 0xFF) / 255.0;
  const double o4 = static_cast<double>(ip & 0xFF) / 255.0;
  const double hot = hot_subnets.count(ip & 0xFFFFFF00u) ? 1.0 : 0.0;
  return {o1, o2, o3, o4, hot};
}

std::string IpToString(uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

}  // namespace

int main() {
  TrafficModel model;
  std::set<uint32_t> hot_subnets;
  for (uint32_t s = 0; s < 8; ++s) {
    const uint32_t subnet =
        (192u << 24) | (168u << 16) | (s << 8);  // 192.168.s.0/24.
    model.hot_subnets.push_back(subnet);
    hot_subnets.insert(subnet);
  }

  // Phase 1: observe a prefix window of 40k flows.
  stream::ExactCounter prefix_counts;
  for (int flow = 0; flow < 40000; ++flow) {
    prefix_counts.Add(model.SampleSource());
  }
  std::printf("prefix window: %zu distinct sources\n",
              prefix_counts.NumDistinct());

  std::vector<core::PrefixElement> prefix;
  for (const auto& [ip, count] : prefix_counts.counts()) {
    prefix.push_back({.id = ip,
                      .frequency = static_cast<double>(count),
                      .features = IpFeatures(static_cast<uint32_t>(ip),
                                             hot_subnets)});
  }

  // 4 KB budget for both estimators.
  constexpr size_t kBudget = 1000;
  core::OptHashConfig config;
  config.total_buckets = kBudget;
  config.id_ratio = 0.3;
  config.lambda = 1.0;
  config.solver = core::SolverKind::kDp;
  config.dp.algorithm = opt::DpAlgorithm::kSmawk;
  config.dp.center = opt::DpCostCenter::kMedian;
  config.classifier = core::ClassifierKind::kCart;
  auto trained = core::OptHashEstimator::Train(config, prefix);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  core::OptHashEstimator opt_hash = std::move(trained).value();
  core::CountMinEstimator count_min(kBudget, 4, 99);

  // Phase 2: live traffic — 200k more flows.
  stream::ExactCounter truth;
  for (const auto& [ip, count] : prefix_counts.counts()) truth.Add(ip, count);
  std::unordered_map<uint64_t, std::vector<double>> feature_cache;
  for (int flow = 0; flow < 200000; ++flow) {
    const uint32_t ip = model.SampleSource();
    truth.Add(ip);
    auto it = feature_cache.find(ip);
    if (it == feature_cache.end()) {
      it = feature_cache.emplace(ip, IpFeatures(ip, hot_subnets)).first;
    }
    const stream::StreamItem item{ip, &it->second};
    opt_hash.Update(item);
    count_min.Update(item);
  }

  // Heavy-hitter detection: flag sources with estimate above a threshold;
  // score precision/recall against the exact top set.
  const uint64_t threshold = truth.total() / 500;  // 0.2% of traffic.
  std::set<uint64_t> true_heavy;
  for (const auto& [ip, count] : truth.counts()) {
    if (count >= threshold) true_heavy.insert(ip);
  }
  auto detect = [&](const core::FrequencyEstimator& estimator) {
    size_t true_positives = 0;
    size_t flagged = 0;
    for (const auto& [ip, features] : feature_cache) {
      const stream::StreamItem item{ip, &features};
      if (estimator.Estimate(item) >= static_cast<double>(threshold)) {
        ++flagged;
        if (true_heavy.count(ip)) ++true_positives;
      }
    }
    const double precision =
        flagged == 0 ? 1.0
                     : static_cast<double>(true_positives) /
                           static_cast<double>(flagged);
    const double recall = true_heavy.empty()
                              ? 1.0
                              : static_cast<double>(true_positives) /
                                    static_cast<double>(true_heavy.size());
    std::printf("  %-10s flagged %4zu | precision %.3f | recall %.3f\n",
                estimator.Name(), flagged, precision, recall);
  };
  std::printf("\nheavy-hitter detection (threshold = %llu flows, %zu true "
              "heavy sources):\n",
              static_cast<unsigned long long>(threshold), true_heavy.size());
  detect(opt_hash);
  detect(count_min);

  // Show a few example sources.
  std::printf("\nper-source estimates:\n");
  std::vector<std::pair<uint64_t, uint64_t>> sorted_truth(
      truth.counts().begin(), truth.counts().end());
  std::sort(sorted_truth.begin(), sorted_truth.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (size_t idx : {size_t{0}, size_t{10}, size_t{100},
                     sorted_truth.size() / 2}) {
    const auto [ip, count] = sorted_truth[idx];
    auto it = feature_cache.find(ip);
    if (it == feature_cache.end()) {
      it = feature_cache
               .emplace(ip, IpFeatures(static_cast<uint32_t>(ip), hot_subnets))
               .first;
    }
    const stream::StreamItem item{ip, &it->second};
    std::printf("  %-16s true %7llu | opt-hash %9.1f | count-min %9.1f\n",
                IpToString(static_cast<uint32_t>(ip)).c_str(),
                static_cast<unsigned long long>(count),
                opt_hash.Estimate(item), count_min.Estimate(item));
  }
  return 0;
}

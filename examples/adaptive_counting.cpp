// Adaptive counting (paper §5.3): the static opt-hash estimator only
// tracks elements stored during training; the adaptive extension keeps
// counting *everything* by routing each arrival through the classifier and
// using a Bloom filter to maintain per-bucket distinct-element counts.
//
// This example constructs a stream whose composition changes after the
// prefix: a batch of brand-new elements ramps up. The static estimator's
// answers for them stay frozen at the stale bucket averages, while the
// adaptive estimator follows the ramp (with the documented overestimation
// bias when the Bloom filter saturates).

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/adaptive_estimator.h"

using namespace opthash;

int main() {
  Rng rng(7);

  // Prefix population: ids 0..49 "steady" elements, ~20 arrivals each.
  std::vector<core::PrefixElement> prefix;
  std::vector<uint64_t> prefix_ids;
  for (uint64_t id = 0; id < 50; ++id) {
    prefix.push_back({.id = id,
                      .frequency = 18.0 + static_cast<double>(id % 5),
                      .features = {0.0 + 0.1 * rng.NextGaussian()}});
    prefix_ids.push_back(id);
  }

  core::OptHashConfig config;
  config.total_buckets = 80;
  config.id_ratio = 0.5;
  config.lambda = 1.0;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;

  auto train = [&]() {
    auto result = core::OptHashEstimator::Train(config, prefix);
    if (!result.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(result).value();
  };

  core::OptHashEstimator static_estimator = train();
  core::AdaptiveConfig adaptive_config;
  adaptive_config.bloom_fpr = 0.01;
  adaptive_config.expected_distinct = 1000;
  core::AdaptiveOptHashEstimator adaptive(train(), adaptive_config,
                                          prefix_ids);

  // Post-prefix traffic: 30 brand-new elements (ids 1000..1029) arrive 25
  // times each, with features similar to the steady population.
  std::vector<std::vector<double>> new_features;
  for (uint64_t i = 0; i < 30; ++i) {
    new_features.push_back({0.0 + 0.1 * rng.NextGaussian()});
  }
  for (int round = 0; round < 25; ++round) {
    for (uint64_t i = 0; i < 30; ++i) {
      const stream::StreamItem item{1000 + i, &new_features[i]};
      static_estimator.Update(item);
      adaptive.Update(item);
    }
  }

  std::printf("After 25 arrivals each of 30 brand-new elements "
              "(true count = 25):\n\n");
  std::printf("%-26s %12s %12s\n", "", "static", "adaptive");
  double static_total = 0.0;
  double adaptive_total = 0.0;
  for (uint64_t i = 0; i < 30; ++i) {
    const stream::StreamItem item{1000 + i, &new_features[i]};
    static_total += static_estimator.Estimate(item);
    adaptive_total += adaptive.Estimate(item);
  }
  std::printf("%-26s %12.2f %12.2f\n", "mean estimate (true 25)",
              static_total / 30.0, adaptive_total / 30.0);

  // A never-seen element: adaptive answers 0 via the Bloom filter.
  const std::vector<double> ghost_features = {0.0};
  const stream::StreamItem ghost{999999, &ghost_features};
  std::printf("%-26s %12.2f %12.2f\n", "never-seen element",
              static_estimator.Estimate(ghost), adaptive.Estimate(ghost));

  // Prefix elements remain answerable by both.
  const stream::StreamItem steady{3, nullptr};
  std::printf("%-26s %12.2f %12.2f   (true ~21)\n", "steady prefix element",
              static_estimator.Estimate(steady), adaptive.Estimate(steady));

  std::printf("\nBloom filter: %zu bits, %zu hashes, fill %.3f, est. FPR %.4f\n",
              adaptive.bloom().num_bits(), adaptive.bloom().num_hashes(),
              adaptive.bloom().FillRatio(), adaptive.bloom().EstimatedFpr());
  std::printf("memory: static %zu buckets, adaptive %zu buckets "
              "(incl. Bloom bits)\n",
              static_estimator.MemoryBuckets(), adaptive.MemoryBuckets());
  return 0;
}

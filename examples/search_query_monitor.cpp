// Search-query monitoring (the paper's §7 scenario): estimate how often
// each query hits a search frontend using a few KB of state.
//
// The example trains opt-hash on day 0 of a synthetic query log (bag-of-
// words features over the query text, per §7.3), streams a week of
// traffic, and compares its per-query estimates against an equally sized
// Count-Min Sketch and the exact truth.

#include <cstdio>
#include <set>
#include <unordered_map>

#include "core/baseline_estimators.h"
#include "core/evaluation.h"
#include "core/opt_hash_estimator.h"
#include "stream/features.h"
#include "stream/query_log.h"

using namespace opthash;

int main() {
  // A scaled-down 7-day query log (see stream/query_log.h for the shape).
  stream::QueryLogConfig log_config;
  log_config.num_queries = 20000;
  log_config.arrivals_per_day = 10000;
  log_config.num_days = 8;
  stream::QueryLog log(log_config);

  // Day 0 = observed prefix. Fit the 500-word vocabulary on it.
  std::unordered_map<size_t, double> day0;
  for (size_t rank : log.GenerateDay(0)) day0[rank] += 1.0;
  std::vector<std::pair<std::string, double>> corpus;
  for (const auto& [rank, count] : day0) {
    corpus.push_back({log.QueryText(rank), count});
  }
  stream::BagOfWordsFeaturizer featurizer(500);
  featurizer.Fit(corpus);
  std::printf("day 0: %zu distinct queries, vocabulary = %zu words\n",
              day0.size(), featurizer.VocabularySize());

  // Train opt-hash with an 8 KB budget (2000 buckets).
  std::vector<core::PrefixElement> prefix;
  for (const auto& [rank, count] : day0) {
    prefix.push_back({.id = log.QueryId(rank),
                      .frequency = count,
                      .features = featurizer.Featurize(log.QueryText(rank))});
  }
  core::OptHashConfig config;
  config.total_buckets = 2000;
  config.id_ratio = 0.3;
  config.lambda = 1.0;
  config.solver = core::SolverKind::kBcd;
  config.classifier = core::ClassifierKind::kRandomForest;
  config.rf.num_trees = 10;
  auto trained = core::OptHashEstimator::Train(config, prefix);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  core::OptHashEstimator opt_hash = std::move(trained).value();
  core::CountMinEstimator count_min(2000, 4, /*seed=*/7);

  // Stream days 0..7 (the baseline also ingests day 0).
  stream::ExactCounter truth;
  for (size_t rank : log.GenerateDay(0)) {
    truth.Add(log.QueryId(rank));
    count_min.Update({log.QueryId(rank), nullptr});
  }
  for (size_t day = 1; day < log_config.num_days; ++day) {
    for (size_t rank : log.GenerateDay(day)) {
      truth.Add(log.QueryId(rank));
      opt_hash.Update({log.QueryId(rank), nullptr});
      count_min.Update({log.QueryId(rank), nullptr});
    }
  }

  // Per-query report for a few ranks.
  std::printf("\n%-28s %8s %10s %10s\n", "query", "true", "opt-hash",
              "count-min");
  std::unordered_map<size_t, std::vector<double>> feature_cache;
  for (size_t rank : {1u, 5u, 25u, 200u, 2000u, 15000u}) {
    feature_cache[rank] = featurizer.Featurize(log.QueryText(rank));
    const stream::StreamItem item{log.QueryId(rank), &feature_cache[rank]};
    std::printf("%-28s %8llu %10.1f %10.1f\n",
                log.QueryText(rank).substr(0, 28).c_str(),
                static_cast<unsigned long long>(truth.Count(log.QueryId(rank))),
                opt_hash.Estimate(item), count_min.Estimate(item));
  }

  // Aggregate errors over the queries seen in the final day.
  const std::vector<size_t> final_day_arrivals = log.GenerateDay(7);
  std::set<size_t> final_day(final_day_arrivals.begin(),
                             final_day_arrivals.end());
  std::vector<core::EvalQuery> queries;
  for (size_t rank : final_day) {
    auto [it, unused] =
        feature_cache.try_emplace(rank, featurizer.Featurize(log.QueryText(rank)));
    queries.push_back({{log.QueryId(rank), &it->second},
                       static_cast<double>(truth.Count(log.QueryId(rank)))});
  }
  const core::ErrorMetrics opt_metrics =
      core::EvaluateEstimator(opt_hash, queries);
  const core::ErrorMetrics cms_metrics =
      core::EvaluateEstimator(count_min, queries);
  std::printf("\nerrors over %zu final-day queries (both estimators ~8 KB):\n",
              queries.size());
  std::printf("  opt-hash : avg abs %.2f | expected %.2f\n",
              opt_metrics.average_absolute_error,
              opt_metrics.expected_magnitude_error);
  std::printf("  count-min: avg abs %.2f | expected %.2f\n",
              cms_metrics.average_absolute_error,
              cms_metrics.expected_magnitude_error);
  return 0;
}

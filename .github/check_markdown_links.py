#!/usr/bin/env python3
"""Fails on dead intra-repo links in tracked markdown files.

Checks every [text](target) whose target is a relative path: the file must
exist, and an optional #anchor must match a heading in the target (GitHub
anchor slugging: lowercase, spaces -> dashes, punctuation dropped).
External URLs (http/https/mailto) are skipped on purpose — network
flakiness must not gate merges.

Run from the repository root: python3 .github/check_markdown_links.py
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as handle:
        text = CODE_FENCE_RE.sub("", handle.read())
    return {github_anchor(match) for match in HEADING_RE.findall(text)}


def main() -> int:
    files = subprocess.run(
        ["git", "ls-files", "*.md"], capture_output=True, text=True,
        check=True).stdout.split()
    errors = []
    for md_file in files:
        with open(md_file, encoding="utf-8") as handle:
            text = CODE_FENCE_RE.sub("", handle.read())
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            base = os.path.dirname(md_file)
            resolved = (os.path.normpath(os.path.join(base, path_part))
                        if path_part else md_file)
            if not os.path.exists(resolved):
                errors.append(f"{md_file}: dead link -> {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if github_anchor(anchor) not in anchors_of(resolved):
                    errors.append(f"{md_file}: dead anchor -> {target}")
    for error in errors:
        print(error)
    checked = len(files)
    print(f"checked {checked} markdown files, {len(errors)} dead links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

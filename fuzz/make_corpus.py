#!/usr/bin/env python3
"""Regenerates the checked-in seed corpora under fuzz/corpus/.

Seeds are of two kinds: well-formed inputs produced by the real
encoders/writers (run `opthash_cli` for the snapshot-based ones), and
hostile shapes carried over from the deterministic PR-6 fuzz suite
(truncations, type confusion, corrupted length prefixes) so the fuzzers
start at the known-interesting corners instead of rediscovering them.

Usage: fuzz/make_corpus.py [--cli build/tools/opthash_cli]

Wire-frame seeds are built directly from the docs/OPERATIONS.md byte
layout (this script is a second, independent rendering of the spec —
if the C++ encoders drift from the doc, replaying these seeds through
the decoders is exactly the test that notices). Snapshot seeds need the
CLI binary; without --cli those are skipped and the existing files kept.
"""

import argparse
import os
import struct
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.abspath(__file__))


def write(sub, name, payload):
    path = os.path.join(ROOT, "corpus", sub, name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(payload)
    print("%-40s %4d bytes" % (os.path.join(sub, name), len(payload)))


def frame_seeds():
    # NOTE: decode_frame consumes PAYLOADS (bytes after the length
    # prefix), matching the decoders' contract.
    u32 = lambda v: struct.pack("<I", v)
    u64 = lambda v: struct.pack("<Q", v)
    f64 = lambda v: struct.pack("<d", v)
    seeds = {
        "ping": bytes([4]),
        "stats_request": bytes([3]),
        "shutdown": bytes([6]),
        "metrics_request": bytes([8]),
        "window_stats_request": bytes([10]),
        "query_three_keys": bytes([1]) + u32(3) + u64(1) + u64(42) +
            u64(2**63),
        "ingest_two_keys": bytes([2]) + u32(2) + u64(7) + u64(7),
        "topk_request": bytes([7]) + u32(32),
        "scoped_ping": bytes([9, 1]) + u32(0) + bytes([4]),
        "scoped_window_stats": bytes([9, 1]) + u32(6) + bytes([10]),
        "estimates_reply": bytes([129]) + u32(2) + f64(1.5) + f64(0.0),
        "ack_reply": bytes([130]) + u64(123456),
        "topk_reply_one_hitter": bytes([133]) + u32(1) + u64(9) +
            f64(10.0) + f64(0.5) + bytes([1]),
        "metrics_reply": bytes([134]) + u32(12) + b"opthash_up 1",
        "window_stats_reply": bytes([135]) + u64(4) + u64(7) + u64(2) +
            f64(0.5) + u32(2) + u64(3) + u64(1),
        "error_reply": bytes([255, 3]) + u32(4) + b"nope",
        # Hostile shapes from the PR-6 mutation classes.
        "hostile_empty": b"",
        "hostile_unknown_type": bytes([77]),
        "hostile_truncated_query": bytes([1]) + u32(100) + u64(1),
        "hostile_overdeclared_windows": bytes([135]) + u64(0) * 3 +
            f64(1.0) + u32(200) + u64(1),
        "hostile_nested_envelope": bytes([9, 1]) + u32(0) +
            bytes([9, 1]) + u32(0) + bytes([4]),
        "hostile_topk_flag_byte_2": bytes([133]) + u32(1) + u64(9) +
            f64(10.0) + f64(0.5) + bytes([2]),
    }
    for name, payload in seeds.items():
        write("decode_frame", name, payload)


def snapshot_seeds(cli):
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "trace.csv")
        with open(trace, "w") as fh:
            fh.write("id,text\n")
            for key, text in ((1, "a"), (1, "b"), (2, "c"), (3, "a"),
                              (1, "d")):
                fh.write("%d,q%s\n" % (key, text))

        def snap(name, *extra):
            out = os.path.join(tmp, name + ".bin")
            subprocess.run(
                [cli, "snapshot", "--trace", trace, "--out", out,
                 "--sketch", "cms", "--width", "16", "--depth", "2",
                 *extra],
                check=True, stdout=subprocess.DEVNULL)
            with open(out, "rb") as fh:
                return fh.read()

        plain = snap("plain")
        windowed = snap("windowed", "--windows", "2", "--window", "3",
                        "--decay", "0.5")

    write("snapshot_parse", "cms_checkpoint", plain)
    write("snapshot_parse", "windowed_cms_checkpoint", windowed)
    corrupt = bytearray(plain)
    corrupt[len(corrupt) // 2] ^= 0xFF  # payload bit flip: CRC must catch
    write("snapshot_parse", "hostile_payload_bitflip", bytes(corrupt))
    write("snapshot_parse", "hostile_truncated", plain[:40])
    write("snapshot_parse", "hostile_bad_magic", b"NOTSNAPS" + plain[8:])

    # The windowed-restore corpus holds raw kWindowedSketch SECTION
    # payloads: slice the section out of the container per the
    # docs/FORMATS.md table layout (entry: u32 type, u32 flags,
    # u64 offset, u64 length, u32 crc, u32 pad).
    count = struct.unpack_from("<I", windowed, 0x0C)[0]
    payload = None
    for i in range(count):
        base = 0x20 + 32 * i
        stype = struct.unpack_from("<I", windowed, base)[0]
        offset = struct.unpack_from("<Q", windowed, base + 8)[0]
        length = struct.unpack_from("<Q", windowed, base + 16)[0]
        if stype == 7:  # kWindowedSketch
            payload = windowed[offset:offset + length]
    if payload is None:
        sys.exit("no kWindowedSketch section in the generated checkpoint")
    write("windowed_restore", "windowed_cms_midwindow", payload)
    write("windowed_restore", "hostile_truncated_ring", payload[:21])
    bad_version = bytearray(payload)
    bad_version[0] = 9
    write("windowed_restore", "hostile_future_version", bytes(bad_version))
    lying_w = bytearray(payload)
    struct.pack_into("<I", lying_w, 5, 2 ** 20 + 5)  # W beyond the cap
    write("windowed_restore", "hostile_absurd_window_count", bytes(lying_w))
    foreign = bytearray(payload)
    struct.pack_into("<I", foreign, 1, 5)  # inner type -> misra-gries
    write("windowed_restore", "hostile_cross_kind_inner", bytes(foreign))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="",
                        help="path to a built opthash_cli (enables the "
                             "snapshot-based seeds)")
    args = parser.parse_args()
    frame_seeds()
    if args.cli:
        snapshot_seeds(args.cli)
    else:
        print("note: --cli not given; snapshot/windowed seeds not "
              "regenerated")


if __name__ == "__main__":
    main()

// Fuzz harness for the wire-frame decode surface: the bytes here are
// exactly what a hostile client can put after a length prefix. Every
// decoder must return a clean Status/Result on garbage — no crash, no
// over-read (ASan enforces the latter when enabled). Decoders are run
// unconditionally, not just the one matching the type byte: type
// confusion is a required rejection path, and each decoder owns its own
// type check.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "server/protocol.h"

namespace {

// The harness deliberately ignores rejection Statuses — the invariant
// under fuzz is "no crash", not "no error". Named (not `(void)`) so the
// discards are greppable as intentional.
void ExpectedRejectionIsFine(const opthash::Status& status) {
  (void)status;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace opthash::server;  // NOLINT one TU, fuzz entry only
  const opthash::Span<const uint8_t> payload(data, size);

  auto type = PeekMessageType(payload);

  std::vector<uint64_t> keys;
  ExpectedRejectionIsFine(
      DecodeKeyRequest(payload, MessageType::kQuery, keys));
  ExpectedRejectionIsFine(
      DecodeKeyRequest(payload, MessageType::kIngest, keys));
  for (const MessageType empty_kind :
       {MessageType::kStats, MessageType::kPing, MessageType::kSnapshot,
        MessageType::kShutdown, MessageType::kMetrics,
        MessageType::kWindowStats, MessageType::kPong}) {
    ExpectedRejectionIsFine(DecodeEmptyMessage(payload, empty_kind));
  }

  std::vector<double> estimates;
  ExpectedRejectionIsFine(DecodeEstimatesResponse(payload, estimates));
  if (auto ack = DecodeAckResponse(payload); ack.ok()) (void)*ack;
  if (auto stats = DecodeStatsResponse(payload); stats.ok()) {
    (void)stats.value().items_ingested;
  }
  if (auto k = DecodeTopKRequest(payload); k.ok()) (void)*k;
  std::vector<opthash::sketch::HeavyHitter> hitters;
  ExpectedRejectionIsFine(DecodeTopKReply(payload, hitters));
  std::string text;
  ExpectedRejectionIsFine(DecodeMetricsReply(payload, text));
  if (auto window = DecodeWindowStatsReply(payload); window.ok()) {
    (void)window.value().window_counts.size();
  }
  opthash::Status remote = opthash::Status::OK();
  ExpectedRejectionIsFine(DecodeErrorResponse(payload, remote));

  // A scoped envelope that decodes hands back an inner payload view —
  // walk one level the way the server dispatch does (nesting is
  // rejected by the decoder itself).
  RequestHeader header;
  opthash::Span<const uint8_t> inner;
  if (DecodeScopedRequest(payload, header, inner).ok()) {
    auto inner_type = PeekMessageType(inner);
    ExpectedRejectionIsFine(
        DecodeKeyRequest(inner, MessageType::kQuery, keys));
    ExpectedRejectionIsFine(DecodeEmptyMessage(inner, MessageType::kPing));
    if (auto k = DecodeTopKRequest(inner); k.ok()) (void)*k;
    (void)inner_type;
  }
  (void)type;
  return 0;
}

// Fuzz harness for the windowed-section restore path: the bytes are one
// kWindowedSketch section payload from an untrusted checkpoint. The
// inner-type probe and the full ring deserialization must reject hostile
// shapes (lying window counts, truncated inner payloads, absurd W) with
// a Status, and any ring they ACCEPT must answer queries and advance
// without faulting — restore-then-use is the operator's code path after
// a crash, and "loads fine, dies on first query" is the regression this
// harness hunts.

#include <cstddef>
#include <cstdint>

#include "common/span.h"
#include "io/bytes.h"
#include "io/windowed_snapshot.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"

namespace {

template <typename Sketch>
void RestoreAndExercise(opthash::Span<const uint8_t> payload) {
  opthash::io::ByteReader reader(payload);
  auto ring = opthash::io::DeserializeWindowedSketch<Sketch>(reader);
  if (!ring.ok()) return;  // Clean rejection is the common, fine case.
  // Accepted ring: the restore contract says it is usable — query it,
  // feed it, advance it across a window boundary.
  auto& windowed = ring.value();
  (void)windowed.Estimate(1);
  (void)windowed.total_items();
  for (uint64_t key = 0; key < 32; ++key) windowed.Update(key);
  (void)windowed.Estimate(1);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using opthash::io::SectionType;
  const opthash::Span<const uint8_t> payload(data, size);

  auto inner = opthash::io::PeekWindowedInnerType(payload);
  if (inner.ok()) (void)opthash::io::SectionTypeName(*inner);

  // Dispatch like the restore path — and also deliberately WRONG, the
  // cross-kind load an operator can trigger with a mislabelled file;
  // each deserializer owns rejecting foreign inner types.
  RestoreAndExercise<opthash::sketch::CountMinSketch>(payload);
  RestoreAndExercise<opthash::sketch::CountSketch>(payload);
  RestoreAndExercise<opthash::sketch::MisraGries>(payload);
  RestoreAndExercise<opthash::sketch::SpaceSaving>(payload);
  return 0;
}

// Fallback main() for compilers without -fsanitize=fuzzer (gcc): replay
// every file named on the command line through LLVMFuzzerTestOneInput.
// No coverage feedback — this exists so the harnesses compile, the
// checked-in corpora run as ctests, and a parser regression against a
// seed still crashes, on any toolchain. Mirrors libFuzzer's own
// behavior for file arguments (run each once, report, exit 0).

#include <cstdint>
#include <cstdio>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* file = std::fopen(argv[i], "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "standalone fuzz driver: cannot open %s\n",
                   argv[i]);
      return 2;
    }
    std::fseek(file, 0, SEEK_END);
    const long length = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> bytes(length > 0 ? static_cast<size_t>(length) : 0);
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      std::fclose(file);
      std::fprintf(stderr, "standalone fuzz driver: short read on %s\n",
                   argv[i]);
      return 2;
    }
    std::fclose(file);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::fprintf(stderr,
               "standalone fuzz driver: %d input(s) replayed, no crash\n",
               replayed);
  return 0;
}

// Fuzz harness for the snapshot container parser — the bytes are a
// whole on-disk snapshot file as an operator (or an attacker who can
// write to the snapshot directory) could present it. Parse must reject
// corruption with a Status; what it accepts must be fully walkable:
// every section's type, payload span and CRC verification must work
// without faulting.

#include <cstddef>
#include <cstdint>

#include "common/span.h"
#include "io/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace opthash::io;  // NOLINT one TU, fuzz entry only
  const opthash::Span<const uint8_t> bytes(data, size);

  // Strict parse: payload CRCs verified up front.
  auto strict = SnapshotView::Parse(bytes, /*verify_payload_crcs=*/true);
  // Lazy parse (the mmap path) + explicit verification afterwards: the
  // two-phase walk must be as crash-free as the one-phase one.
  auto lazy = SnapshotView::Parse(bytes, /*verify_payload_crcs=*/false);
  if (lazy.ok()) {
    const SnapshotView& view = lazy.value();
    for (const SnapshotSection& section : view.sections()) {
      (void)SectionTypeName(section.type);
      // Touch every payload byte: an out-of-buffer span is the bug
      // class this harness exists for (ASan turns it into a crash).
      uint64_t checksum = 0;
      for (const uint8_t byte : section.payload) checksum += byte;
      (void)checksum;
    }
    (void)view.Find(SectionType::kCountMinSketch);
    (void)view.Find(SectionType::kWindowedSketch);
    const opthash::Status verify = view.VerifyPayloadCrcs();
    // Strict parse and lazy-then-verify must agree on acceptance.
    if (strict.ok() != verify.ok()) __builtin_trap();
  } else if (strict.ok()) {
    // Accepting strictly but rejecting lazily is parser inconsistency.
    __builtin_trap();
  }
  return 0;
}

// The sketch-layer top-k surface (sketch/top_k.h): soundness of every
// reported bound against exact oracle counts (guaranteed must mean
// exact), the canonical ordering and CSV contract every higher layer
// reuses, the candidate-scan fallbacks for sketches without candidate
// tables, and MergeTopK composing with key-partitioned sharded
// ingestion so --threads top-k equals single-thread top-k.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/span.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "sketch/top_k.h"
#include "stream/sharded_ingest.h"

namespace opthash::sketch {
namespace {

std::vector<uint64_t> MakeTrace(size_t length, size_t universe, uint64_t seed,
                                std::unordered_map<uint64_t, uint64_t>* truth) {
  Rng rng(seed);
  ZipfSampler zipf(universe, 1.1);
  std::vector<uint64_t> trace(length);
  for (auto& key : trace) {
    key = zipf.Sample(rng);
    if (truth != nullptr) ++(*truth)[key];
  }
  return trace;
}

// Divisor trace: key j in 1..10 appears once per multiple of j below
// 500, so exact counts are floor(499/j) — heavily skewed and trivially
// checkable.
std::vector<uint64_t> DivisorTrace(
    std::unordered_map<uint64_t, uint64_t>* truth) {
  std::vector<uint64_t> trace;
  for (uint64_t i = 1; i < 500; ++i) {
    for (uint64_t j = 1; j <= 10; ++j) {
      if (i % j == 0) {
        trace.push_back(j);
        if (truth != nullptr) ++(*truth)[j];
      }
    }
  }
  return trace;
}

TEST(HeavyHitterTest, SortIsEstimateDescendingIdAscending) {
  std::vector<HeavyHitter> hitters = {
      {5, 10.0, 0.0, true},
      {9, 30.0, 1.0, false},
      {2, 10.0, 0.0, true},
      {1, 20.0, 0.0, true},
  };
  SortHeavyHitters(hitters);
  ASSERT_EQ(hitters.size(), 4u);
  EXPECT_EQ(hitters[0].id, 9u);
  EXPECT_EQ(hitters[1].id, 1u);
  EXPECT_EQ(hitters[2].id, 2u);  // Tie on 10.0: id ascending.
  EXPECT_EQ(hitters[3].id, 5u);
}

TEST(HeavyHitterTest, CsvRowAndHeaderAreTheSharedContract) {
  EXPECT_STREQ(kHeavyHitterCsvHeader, "id,estimate,error_bound,guaranteed");
  EXPECT_EQ(HeavyHitterCsvRow({7, 1234.5, 2.25, true}), "7,1234.50,2.25,1");
  EXPECT_EQ(HeavyHitterCsvRow({0, 0.0, 0.0, false}), "0,0.00,0.00,0");
}

TEST(MisraGriesTopKTest, ExactAndGuaranteedWhenNoDecrementEverRan) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = DivisorTrace(&truth);
  MisraGries summary(16);  // 10 distinct keys: no counter is ever evicted.
  summary.UpdateBatch(Span<const uint64_t>(trace));

  const auto hitters = TopK(summary, 5);
  ASSERT_EQ(hitters.size(), 5u);
  for (size_t i = 0; i < hitters.size(); ++i) {
    // Keys 1..5 in order: divisor counts strictly decrease with j.
    EXPECT_EQ(hitters[i].id, i + 1);
    EXPECT_EQ(hitters[i].estimate,
              static_cast<double>(truth[hitters[i].id]));
    EXPECT_EQ(hitters[i].error_bound, 0.0);
    EXPECT_TRUE(hitters[i].guaranteed);
  }
}

TEST(MisraGriesTopKTest, DeficitBoundBracketsTrueCounts) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 3, &truth);
  MisraGries summary(32);  // Far fewer counters than distinct keys.
  summary.UpdateBatch(Span<const uint64_t>(trace));

  const auto hitters = TopK(summary, 32);
  ASSERT_FALSE(hitters.empty());
  for (const HeavyHitter& hitter : hitters) {
    const double exact = static_cast<double>(truth[hitter.id]);
    // Lower-bound estimate, with f in [estimate, estimate + D].
    EXPECT_LE(hitter.estimate, exact) << "id " << hitter.id;
    EXPECT_GE(hitter.estimate + hitter.error_bound, exact)
        << "id " << hitter.id;
    if (hitter.guaranteed) {
      EXPECT_EQ(hitter.estimate, exact) << "id " << hitter.id;
    }
  }
  // All hitters share the one summary-wide deficit, and this overflowing
  // trace must have a nonzero one.
  EXPECT_GT(hitters[0].error_bound, 0.0);
  for (const HeavyHitter& hitter : hitters) {
    EXPECT_EQ(hitter.error_bound, hitters[0].error_bound);
    EXPECT_FALSE(hitter.guaranteed);
  }
}

TEST(SpaceSavingTopKTest, GuaranteedMeansExactAndBoundsAreSound) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 5, &truth);
  SpaceSaving summary(64);
  summary.UpdateBatch(Span<const uint64_t>(trace));

  const auto hitters = TopK(summary, 64);
  ASSERT_FALSE(hitters.empty());
  bool any_guaranteed = false;
  for (const HeavyHitter& hitter : hitters) {
    const double exact = static_cast<double>(truth[hitter.id]);
    // Upper-bound estimate, with f in [estimate - error, estimate].
    EXPECT_GE(hitter.estimate, exact) << "id " << hitter.id;
    EXPECT_LE(hitter.estimate - hitter.error_bound, exact)
        << "id " << hitter.id;
    EXPECT_EQ(hitter.guaranteed, hitter.error_bound == 0.0);
    if (hitter.guaranteed) {
      any_guaranteed = true;
      EXPECT_EQ(hitter.estimate, exact) << "id " << hitter.id;
    }
  }
  // A Zipf head this heavy must produce some never-evicted counters.
  EXPECT_TRUE(any_guaranteed);
}

TEST(SpaceSavingTopKTest, KBeyondTrackedReturnsEveryCounter) {
  SpaceSaving summary(8);
  for (uint64_t key = 0; key < 5; ++key) summary.Update(key, key + 1);
  EXPECT_EQ(TopK(summary, 100).size(), 5u);
  EXPECT_TRUE(TopK(summary, 0).empty());
}

TEST(LearnedCountMinTopKTest, OracleKeysReportExactCounts) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 9, &truth);
  const std::vector<uint64_t> heavy = SelectTopKeys(truth, 20);
  auto lcms = LearnedCountMinSketch::Create(500, 4, heavy, 17);
  ASSERT_TRUE(lcms.ok());
  lcms.value().UpdateBatch(Span<const uint64_t>(trace));

  const auto hitters = TopK(lcms.value(), 10);
  ASSERT_EQ(hitters.size(), 10u);
  for (const HeavyHitter& hitter : hitters) {
    EXPECT_EQ(hitter.estimate, static_cast<double>(truth[hitter.id]));
    EXPECT_EQ(hitter.error_bound, 0.0);
    EXPECT_TRUE(hitter.guaranteed);
  }
  for (size_t i = 1; i < hitters.size(); ++i) {
    EXPECT_GE(hitters[i - 1].estimate, hitters[i].estimate);
  }
}

TEST(CountMinCandidateScanTest, UpperBoundsWithSketchWideEpsilonBound) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 11, &truth);
  CountMinSketch sketch(512, 4, 7);
  sketch.UpdateBatch(Span<const uint64_t>(trace));

  std::vector<uint64_t> candidates;
  for (uint64_t key = 1; key <= 100; ++key) {
    candidates.push_back(key);
    candidates.push_back(key);  // Duplicates must be ignored.
  }
  const auto hitters =
      TopKOverCandidates(sketch, Span<const uint64_t>(candidates), 10);
  ASSERT_EQ(hitters.size(), 10u);
  const double bound =
      sketch.Epsilon() * static_cast<double>(sketch.total_count());
  for (const HeavyHitter& hitter : hitters) {
    EXPECT_GE(hitter.estimate, static_cast<double>(truth[hitter.id]));
    EXPECT_EQ(hitter.error_bound, bound);
    EXPECT_FALSE(hitter.guaranteed);
  }
}

TEST(CountSketchCandidateScanTest, NoDeterministicBoundConvention) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 500, 13, &truth);
  CountSketch sketch(512, 5, 11);
  sketch.UpdateBatch(Span<const uint64_t>(trace));

  std::vector<uint64_t> candidates;
  for (uint64_t key = 1; key <= 80; ++key) candidates.push_back(key);
  const auto hitters =
      TopKOverCandidates(sketch, Span<const uint64_t>(candidates), 8);
  ASSERT_EQ(hitters.size(), 8u);
  for (const HeavyHitter& hitter : hitters) {
    EXPECT_GE(hitter.estimate, 0.0);  // Non-negative clamped estimator.
    // error_bound == 0 with guaranteed == false encodes "no
    // deterministic bound available".
    EXPECT_EQ(hitter.error_bound, 0.0);
    EXPECT_FALSE(hitter.guaranteed);
  }
}

TEST(MergeTopKTest, SumsEstimatesAndBoundsAndAndsGuaranteed) {
  const std::vector<std::vector<HeavyHitter>> shards = {
      {{1, 10.0, 0.0, true}, {2, 5.0, 1.0, false}},
      {{1, 7.0, 0.0, true}, {3, 20.0, 0.0, true}},
      {{2, 4.0, 2.0, false}},
  };
  const auto merged =
      MergeTopK(Span<const std::vector<HeavyHitter>>(shards), 10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (HeavyHitter{3, 20.0, 0.0, true}));
  EXPECT_EQ(merged[1], (HeavyHitter{1, 17.0, 0.0, true}));
  EXPECT_EQ(merged[2], (HeavyHitter{2, 9.0, 3.0, false}));
}

TEST(MergeTopKTest, TruncatesToKAndHandlesEmptyInput) {
  const std::vector<std::vector<HeavyHitter>> shards = {
      {{1, 3.0, 0.0, true}, {2, 2.0, 0.0, true}, {3, 1.0, 0.0, true}},
  };
  EXPECT_EQ(MergeTopK(Span<const std::vector<HeavyHitter>>(shards), 2).size(),
            2u);
  const std::vector<std::vector<HeavyHitter>> none;
  EXPECT_TRUE(
      MergeTopK(Span<const std::vector<HeavyHitter>>(none), 5).empty());
}

TEST(ShardedTopKTest, KeyPartitionedIngestMatchesSingleThreadTopK) {
  // A trace whose distinct keys fit every per-shard capacity: both the
  // sequential summary and the key-partitioned shards count exactly, so
  // the top-k lists must be identical records at every thread count.
  std::vector<uint64_t> trace;
  for (uint64_t key = 1; key <= 100; ++key) {
    for (uint64_t copy = 0; copy < 101 - key; ++copy) trace.push_back(key);
  }
  // Deterministic shuffle so arrival order interleaves shards.
  Rng rng(19);
  for (size_t i = trace.size(); i > 1; --i) {
    std::swap(trace[i - 1], trace[rng.NextBounded(i)]);
  }

  stream::ShardedIngestConfig single;
  single.num_threads = 1;
  single.mode = stream::ShardMode::kKeyPartitioned;

  {
    MisraGries sequential(128);
    ASSERT_TRUE(stream::ShardedIngest(Span<const uint64_t>(trace), single,
                                      sequential)
                    .ok());
    const auto expected = TopK(sequential, 20);
    for (size_t threads = 2; threads <= 4; ++threads) {
      stream::ShardedIngestConfig config = single;
      config.num_threads = threads;
      MisraGries sharded(128);
      ASSERT_TRUE(stream::ShardedIngest(Span<const uint64_t>(trace), config,
                                        sharded)
                      .ok());
      EXPECT_EQ(TopK(sharded, 20), expected) << "threads=" << threads;
    }
    ASSERT_EQ(expected.size(), 20u);
    EXPECT_EQ(expected[0].id, 1u);
    EXPECT_EQ(expected[0].estimate, 100.0);
    EXPECT_TRUE(expected[0].guaranteed);
  }
  {
    SpaceSaving sequential(128);
    ASSERT_TRUE(stream::ShardedIngest(Span<const uint64_t>(trace), single,
                                      sequential)
                    .ok());
    const auto expected = TopK(sequential, 20);
    for (size_t threads = 2; threads <= 4; ++threads) {
      stream::ShardedIngestConfig config = single;
      config.num_threads = threads;
      SpaceSaving sharded(128);
      ASSERT_TRUE(stream::ShardedIngest(Span<const uint64_t>(trace), config,
                                        sharded)
                      .ok());
      EXPECT_EQ(TopK(sharded, 20), expected) << "threads=" << threads;
    }
    ASSERT_EQ(expected.size(), 20u);
    EXPECT_EQ(expected[0].id, 1u);
    EXPECT_EQ(expected[0].estimate, 100.0);
    EXPECT_TRUE(expected[0].guaranteed);
  }
}

TEST(ShardedTopKTest, MergeTopKComposesOverflowingShardsSoundly) {
  // Shards small enough to overflow: merged estimates/bounds must still
  // bracket the exact counts (MG from below, SS from above).
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 500, 23, &truth);
  constexpr size_t kShards = 4;

  std::vector<MisraGries> mg_shards(kShards, MisraGries(32));
  std::vector<SpaceSaving> ss_shards(kShards, SpaceSaving(32));
  for (uint64_t key : trace) {
    const size_t shard = stream::KeyShardOf(key, kShards);
    mg_shards[shard].Update(key);
    ss_shards[shard].Update(key);
  }

  std::vector<std::vector<HeavyHitter>> mg_lists;
  std::vector<std::vector<HeavyHitter>> ss_lists;
  for (size_t shard = 0; shard < kShards; ++shard) {
    mg_lists.push_back(TopK(mg_shards[shard], 32));
    ss_lists.push_back(TopK(ss_shards[shard], 32));
  }
  const auto mg_merged =
      MergeTopK(Span<const std::vector<HeavyHitter>>(mg_lists), 16);
  const auto ss_merged =
      MergeTopK(Span<const std::vector<HeavyHitter>>(ss_lists), 16);
  ASSERT_EQ(mg_merged.size(), 16u);
  ASSERT_EQ(ss_merged.size(), 16u);
  for (const HeavyHitter& hitter : mg_merged) {
    const double exact = static_cast<double>(truth[hitter.id]);
    EXPECT_LE(hitter.estimate, exact) << "id " << hitter.id;
    EXPECT_GE(hitter.estimate + hitter.error_bound, exact)
        << "id " << hitter.id;
  }
  for (const HeavyHitter& hitter : ss_merged) {
    const double exact = static_cast<double>(truth[hitter.id]);
    EXPECT_GE(hitter.estimate, exact) << "id " << hitter.id;
    EXPECT_LE(hitter.estimate - hitter.error_bound, exact)
        << "id " << hitter.id;
    if (hitter.guaranteed) {
      EXPECT_EQ(hitter.estimate, exact);
    }
  }
}

}  // namespace
}  // namespace opthash::sketch

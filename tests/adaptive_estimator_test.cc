#include "core/adaptive_estimator.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::core {
namespace {

std::vector<PrefixElement> TwoTierPrefix(uint64_t seed) {
  Rng rng(seed);
  std::vector<PrefixElement> prefix;
  for (size_t i = 0; i < 10; ++i) {
    prefix.push_back({.id = 100 + i,
                      .frequency = 50.0,
                      .features = {4.0 + rng.NextGaussian() * 0.1}});
  }
  for (size_t i = 0; i < 10; ++i) {
    prefix.push_back({.id = 200 + i,
                      .frequency = 2.0,
                      .features = {-4.0 + rng.NextGaussian() * 0.1}});
  }
  return prefix;
}

OptHashEstimator TrainBase(uint64_t seed) {
  OptHashConfig config;
  config.total_buckets = 30;
  config.id_ratio = 0.5;
  config.solver = SolverKind::kDp;
  config.classifier = ClassifierKind::kCart;
  auto result = OptHashEstimator::Train(config, TwoTierPrefix(seed));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

std::vector<uint64_t> PrefixIds() {
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 10; ++i) ids.push_back(100 + i);
  for (size_t i = 0; i < 10; ++i) ids.push_back(200 + i);
  return ids;
}

AdaptiveConfig SmallAdaptiveConfig() {
  AdaptiveConfig config;
  config.bloom_fpr = 0.01;
  config.expected_distinct = 1000;
  return config;
}

TEST(AdaptiveEstimatorTest, NeverSeenElementEstimatesZero) {
  AdaptiveOptHashEstimator adaptive(TrainBase(1), SmallAdaptiveConfig(),
                                    PrefixIds());
  const std::vector<double> features = {4.0};
  const stream::StreamItem never_seen{987654, &features};
  EXPECT_DOUBLE_EQ(adaptive.Estimate(never_seen), 0.0);
}

TEST(AdaptiveEstimatorTest, PrefixElementsStartSeen) {
  AdaptiveOptHashEstimator adaptive(TrainBase(2), SmallAdaptiveConfig(),
                                    PrefixIds());
  const stream::StreamItem heavy{100, nullptr};
  EXPECT_GT(adaptive.Estimate(heavy), 10.0);
}

TEST(AdaptiveEstimatorTest, TracksNewElementsUnlikeStaticMode) {
  // A brand-new element arrives repeatedly: the static estimator ignores
  // it, the adaptive one tracks it through the classifier + Bloom filter.
  // Training is deterministic, so two identically configured estimators
  // share the same learned scheme.
  OptHashEstimator static_estimator = TrainBase(3);
  AdaptiveOptHashEstimator adaptive(TrainBase(3), SmallAdaptiveConfig(),
                                    PrefixIds());

  const std::vector<double> light_features = {-4.0};
  const stream::StreamItem newcomer{555555, &light_features};
  for (int rep = 0; rep < 30; ++rep) {
    static_estimator.Update(newcomer);
    adaptive.Update(newcomer);
  }
  // Static: still not in the table, estimate unchanged by updates.
  // Adaptive: the newcomer was counted into its (light) bucket.
  EXPECT_GT(adaptive.Estimate(newcomer), 0.0);
  // The light bucket average rose above the static one because 30 arrivals
  // were added against one extra distinct element.
  EXPECT_GT(adaptive.Estimate(newcomer),
            0.9 * static_estimator.Estimate(newcomer));
}

TEST(AdaptiveEstimatorTest, SeenArrivalDoesNotIncreaseDistinctCount) {
  AdaptiveOptHashEstimator adaptive(TrainBase(4), SmallAdaptiveConfig(),
                                    PrefixIds());
  const stream::StreamItem tracked{100, nullptr};
  const double before = adaptive.Estimate(tracked);
  // 10 arrivals of an already-seen element raise phi_j but not c_j, so the
  // estimate strictly increases.
  for (int rep = 0; rep < 10; ++rep) adaptive.Update(tracked);
  EXPECT_GT(adaptive.Estimate(tracked), before);
}

TEST(AdaptiveEstimatorTest, OverestimationBiasUnderBloomFalsePositives) {
  // Force a tiny Bloom filter so false positives are common; the estimator
  // must then *over*estimate on average (paper §5.3's bias analysis).
  OptHashEstimator base = TrainBase(5);
  AdaptiveConfig config;
  config.bloom_fpr = 0.5;  // Deliberately poor filter.
  config.expected_distinct = 10;
  AdaptiveOptHashEstimator adaptive(std::move(base), config, PrefixIds());

  // Stream: 300 distinct fresh elements, each arriving exactly 4 times.
  Rng rng(6);
  const std::vector<double> light_features = {-4.0};
  std::vector<stream::StreamItem> fresh;
  for (uint64_t i = 0; i < 300; ++i) {
    fresh.push_back({10000 + i, &light_features});
  }
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& item : fresh) adaptive.Update(item);
  }
  double signed_error = 0.0;
  for (const auto& item : fresh) {
    signed_error += adaptive.Estimate(item) - 4.0;
  }
  EXPECT_GT(signed_error / 300.0, 0.0);
}

TEST(AdaptiveEstimatorTest, AccurateOnFreshElementsWithGoodBloom) {
  OptHashEstimator base = TrainBase(7);
  AdaptiveConfig config;
  config.bloom_fpr = 0.001;
  config.expected_distinct = 5000;
  AdaptiveOptHashEstimator adaptive(std::move(base), config, PrefixIds());

  const std::vector<double> light_features = {-4.0};
  std::vector<stream::StreamItem> fresh;
  for (uint64_t i = 0; i < 200; ++i) {
    fresh.push_back({20000 + i, &light_features});
  }
  for (int rep = 0; rep < 5; ++rep) {
    for (const auto& item : fresh) adaptive.Update(item);
  }
  // All fresh elements landed in light buckets with 5 arrivals each; the
  // initial 10 light prefix elements (freq 2, count 10) dilute the average
  // only mildly. Estimates should be in the right ballpark of 5.
  double total = 0.0;
  for (const auto& item : fresh) total += adaptive.Estimate(item);
  const double mean_estimate = total / 200.0;
  EXPECT_GT(mean_estimate, 2.0);
  EXPECT_LT(mean_estimate, 9.0);
}

TEST(AdaptiveEstimatorTest, MemoryIncludesBloomFilter) {
  OptHashEstimator base = TrainBase(8);
  const size_t base_memory = base.MemoryBuckets();
  AdaptiveOptHashEstimator adaptive(std::move(base), SmallAdaptiveConfig(),
                                    PrefixIds());
  EXPECT_GT(adaptive.MemoryBuckets(), base_memory);
  EXPECT_EQ(adaptive.MemoryBuckets(),
            base_memory + (adaptive.bloom().MemoryBytes() + 3) / 4);
}

TEST(AdaptiveEstimatorTest, NameDistinguishesMode) {
  AdaptiveOptHashEstimator adaptive(TrainBase(9), SmallAdaptiveConfig(),
                                    PrefixIds());
  EXPECT_STREQ(adaptive.Name(), "opt-hash-adaptive");
}

}  // namespace
}  // namespace opthash::core

#include "opt/dp.h"

#include <algorithm>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "opt/bcd.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

HashingProblem FreqProblem(std::vector<double> freqs, size_t buckets) {
  HashingProblem problem;
  problem.frequencies = std::move(freqs);
  problem.num_buckets = buckets;
  problem.lambda = 1.0;
  return problem;
}

TEST(DpTest, TrivialOneBucket) {
  const HashingProblem problem = FreqProblem({1.0, 5.0, 9.0}, 1);
  const SolveResult result = DpSolver().Solve(problem);
  EXPECT_TRUE(result.proven_optimal);
  // Mean 5: 4 + 0 + 4.
  EXPECT_DOUBLE_EQ(result.objective.overall, 8.0);
}

TEST(DpTest, MoreBucketsThanElementsIsFree) {
  const HashingProblem problem = FreqProblem({3.0, 1.0, 7.0}, 5);
  const SolveResult result = DpSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(result.objective.overall, 0.0);
  // All elements in distinct buckets.
  std::set<int32_t> used(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(DpTest, ObviousTwoClusterSplit) {
  const HashingProblem problem =
      FreqProblem({1.0, 2.0, 1.5, 100.0, 101.0, 99.0}, 2);
  const SolveResult result = DpSolver().Solve(problem);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[1], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_EQ(result.assignment[4], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(DpTest, MatchesBruteForceOverAllPartitionsIncludingNonContiguous) {
  // Validates both optimality of the DP *and* the contiguity argument: the
  // brute force enumerates every assignment, contiguous or not.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const HashingProblem problem = testutil::RandomProblem(
        7 + seed % 3, 2 + seed % 2, 1.0, 0, seed, /*max_freq=*/30.0);
    const double brute = testutil::BruteForceOptimum(problem);
    const SolveResult result = DpSolver().Solve(problem);
    EXPECT_NEAR(result.objective.overall, brute, 1e-9) << "seed " << seed;
    EXPECT_TRUE(result.proven_optimal);
  }
}

TEST(DpTest, AllThreeAlgorithmsAgreeForMedianCenter) {
  // The median-centred cost satisfies the quadrangle inequality, so the
  // D&C and SMAWK layers must reproduce the quadratic reference exactly.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(60, 7, 1.0, 0, seed, 500.0);
    DpConfig quadratic{DpAlgorithm::kQuadratic, DpCostCenter::kMedian};
    DpConfig divide{DpAlgorithm::kDivideConquer, DpCostCenter::kMedian};
    DpConfig smawk{DpAlgorithm::kSmawk, DpCostCenter::kMedian};
    const double q = DpSolver(quadratic).Solve(problem).objective.overall;
    const double d = DpSolver(divide).Solve(problem).objective.overall;
    const double s = DpSolver(smawk).Solve(problem).objective.overall;
    EXPECT_NEAR(q, d, 1e-7) << "seed " << seed;
    EXPECT_NEAR(q, s, 1e-7) << "seed " << seed;
  }
}

TEST(DpTest, FastAlgorithmsNearOptimalForMeanCenter) {
  // The mean-centred cost is not Monge, so D&C/SMAWK only approximate the
  // quadratic reference — but the observed gap stays small (< 3%).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(120, 8, 1.0, 0, seed, 500.0);
    const double q = DpSolver(DpConfig{DpAlgorithm::kQuadratic,
                                       DpCostCenter::kMean})
                         .Solve(problem)
                         .objective.overall;
    const double d = DpSolver(DpConfig{DpAlgorithm::kDivideConquer,
                                       DpCostCenter::kMean})
                         .Solve(problem)
                         .objective.overall;
    const double s = DpSolver(DpConfig{DpAlgorithm::kSmawk,
                                       DpCostCenter::kMean})
                         .Solve(problem)
                         .objective.overall;
    EXPECT_GE(d, q - 1e-9) << "seed " << seed;  // q is the exact optimum.
    EXPECT_GE(s, q - 1e-9) << "seed " << seed;
    EXPECT_LE(d, 1.03 * q + 1e-9) << "seed " << seed;
    EXPECT_LE(s, 1.03 * q + 1e-9) << "seed " << seed;
  }
}

TEST(DpTest, MedianCenterNearOptimalForProblem3) {
  // The k-median partition, evaluated under Problem (3)'s mean-based
  // objective, stays close to the certified optimum — the justification
  // for using the fast path on large instances.
  for (uint64_t seed = 60; seed <= 65; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(100, 8, 1.0, 0, seed, 300.0);
    const double exact = DpSolver(DpConfig{DpAlgorithm::kQuadratic,
                                           DpCostCenter::kMean})
                             .Solve(problem)
                             .objective.overall;
    const double median_based =
        DpSolver(DpConfig{DpAlgorithm::kSmawk, DpCostCenter::kMedian})
            .Solve(problem)
            .objective.overall;
    EXPECT_GE(median_based, exact - 1e-9);
    EXPECT_LE(median_based, 1.1 * exact + 1e-9) << "seed " << seed;
  }
}

TEST(DpTest, DuplicatedFrequenciesShareBuckets) {
  const HashingProblem problem =
      FreqProblem({4.0, 4.0, 4.0, 4.0, 9.0, 9.0}, 2);
  const SolveResult result = DpSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(result.objective.overall, 0.0);
}

TEST(DpTest, BucketsAreContiguousInSortedOrder) {
  const HashingProblem problem = testutil::RandomProblem(50, 6, 1.0, 0, 42);
  const SolveResult result = DpSolver().Solve(problem);
  // Sort elements by frequency; the bucket sequence must be non-decreasing.
  std::vector<size_t> order(problem.NumElements());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return problem.frequencies[a] < problem.frequencies[b];
  });
  for (size_t t = 1; t < order.size(); ++t) {
    EXPECT_GE(result.assignment[order[t]], result.assignment[order[t - 1]]);
  }
}

TEST(DpTest, MoreBucketsNeverIncreaseCost) {
  const HashingProblem base = testutil::RandomProblem(40, 1, 1.0, 0, 43);
  double previous = std::numeric_limits<double>::infinity();
  for (size_t b = 1; b <= 12; ++b) {
    HashingProblem problem = base;
    problem.num_buckets = b;
    const double cost = DpSolver().Solve(problem).objective.overall;
    EXPECT_LE(cost, previous + 1e-9) << "b = " << b;
    previous = cost;
  }
}

TEST(DpTest, LambdaBelowOneEvaluatedButNotCertified) {
  HashingProblem problem = testutil::RandomProblem(20, 3, 0.5, 2, 44);
  const SolveResult result = DpSolver().Solve(problem);
  EXPECT_FALSE(result.proven_optimal);
  // Objective evaluated at the problem's lambda includes similarity.
  const ObjectiveValue check = EvaluateObjective(problem, result.assignment);
  EXPECT_NEAR(result.objective.overall, check.overall, 1e-9);
}

TEST(DpTest, DpEstimationErrorLowerBoundsBcdForLambdaOne) {
  // On lambda = 1 problems, DP is optimal, so no other solver can beat it.
  for (uint64_t seed = 50; seed < 55; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(80, 8, 1.0, 0, seed);
    const double dp_cost = DpSolver().Solve(problem).objective.overall;
    BcdSolver bcd;
    const double bcd_cost = bcd.Solve(problem).objective.overall;
    EXPECT_LE(dp_cost, bcd_cost + 1e-9) << "seed " << seed;
  }
}

TEST(DpTest, AlgorithmNames) {
  EXPECT_STREQ(DpAlgorithmName(DpAlgorithm::kQuadratic), "quadratic");
  EXPECT_STREQ(DpAlgorithmName(DpAlgorithm::kDivideConquer),
               "divide_and_conquer");
  EXPECT_STREQ(DpAlgorithmName(DpAlgorithm::kSmawk), "smawk");
}

TEST(DpTest, SingleElement) {
  const HashingProblem problem = FreqProblem({7.0}, 3);
  const SolveResult result = DpSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(result.objective.overall, 0.0);
  EXPECT_TRUE(IsValidAssignment(problem, result.assignment));
}

class DpSizeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(DpSizeSweep, VariantsAgreeAcrossSizes) {
  const auto [n, b] = GetParam();
  const HashingProblem problem = testutil::RandomProblem(n, b, 1.0, 0, n + b);
  const double q = DpSolver(DpConfig{DpAlgorithm::kQuadratic,
                                     DpCostCenter::kMedian})
                       .Solve(problem)
                       .objective.overall;
  const double d = DpSolver(DpConfig{DpAlgorithm::kDivideConquer,
                                     DpCostCenter::kMedian})
                       .Solve(problem)
                       .objective.overall;
  const double s =
      DpSolver(DpConfig{DpAlgorithm::kSmawk, DpCostCenter::kMedian})
          .Solve(problem)
          .objective.overall;
  EXPECT_NEAR(q, d, 1e-7);
  EXPECT_NEAR(q, s, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DpSizeSweep,
    ::testing::Values(std::make_tuple(5, 2), std::make_tuple(12, 4),
                      std::make_tuple(30, 3), std::make_tuple(100, 10),
                      std::make_tuple(200, 16), std::make_tuple(64, 64)));

}  // namespace
}  // namespace opthash::opt
